//! Per-dimension skew configuration and hierarchy-level aggregation.

use crate::ZipfWeights;

/// Skew configuration of one dimension's bottom level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DimensionSkew {
    /// Zipf exponent θ; 0 = uniform.
    pub theta: f64,
    /// Optional shuffle seed. `None` keeps weights in rank order (member 0
    /// heaviest); `Some(seed)` spreads heavy members over the ordinal range
    /// with a deterministic permutation.
    pub shuffle_seed: Option<u64>,
}

impl DimensionSkew {
    /// Uniform (no skew) configuration.
    pub const UNIFORM: Self = Self {
        theta: 0.0,
        shuffle_seed: None,
    };

    /// Creates a skew configuration with the given θ and no shuffling.
    pub fn zipf(theta: f64) -> Self {
        Self {
            theta,
            shuffle_seed: None,
        }
    }

    /// A hot-spot profile: a steep Zipf concentrating most of the access
    /// mass on a handful of members, dispersed over the ordinal range by
    /// a deterministic shuffle (so the hot members do not all land in the
    /// first fragment of a range partition).
    pub fn hot_spot(theta: f64, shuffle_seed: u64) -> Self {
        Self {
            theta,
            shuffle_seed: Some(shuffle_seed),
        }
    }

    /// Whether this configuration is exactly uniform.
    pub fn is_uniform(&self) -> bool {
        self.theta == 0.0
    }
}

impl Default for DimensionSkew {
    fn default() -> Self {
        Self::UNIFORM
    }
}

/// Summary statistics of a weight vector, used by allocator heuristics and
/// reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewSummary {
    /// Largest member weight.
    pub max_weight: f64,
    /// Smallest member weight.
    pub min_weight: f64,
    /// Squared coefficient of variation (0 for uniform).
    pub squared_cv: f64,
}

impl SkewSummary {
    /// Computes the summary of a normalized weight vector.
    pub fn of(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "summary of empty weight vector");
        let n = weights.len() as f64;
        let mean = 1.0 / n;
        let mut max_weight = f64::MIN;
        let mut min_weight = f64::MAX;
        let mut var = 0.0;
        for &w in weights {
            max_weight = max_weight.max(w);
            min_weight = min_weight.min(w);
            var += (w - mean) * (w - mean);
        }
        var /= n;
        Self {
            max_weight,
            min_weight,
            squared_cv: var / (mean * mean),
        }
    }
}

/// Bottom-level member weights for every dimension of a schema, with
/// aggregation to coarser levels.
///
/// The model stores one normalized weight vector per dimension. Fragment
/// weights are products of per-dimension member weights (dimension
/// independence, as in the original evaluation).
#[derive(Debug, Clone, PartialEq)]
pub struct SkewModel {
    /// `bottom[d][m]` = weight of member `m` of dimension `d`'s bottom level.
    bottom: Vec<Vec<f64>>,
    configs: Vec<DimensionSkew>,
}

impl SkewModel {
    /// Builds the model from per-dimension bottom cardinalities and skew
    /// configurations. `cards[d]` must be ≥ 1.
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length or a cardinality is zero.
    pub fn new(cards: &[u64], configs: &[DimensionSkew]) -> Self {
        assert_eq!(
            cards.len(),
            configs.len(),
            "one skew config per dimension required"
        );
        let bottom = cards
            .iter()
            .zip(configs)
            .map(|(&n, cfg)| {
                let z = ZipfWeights::new(n as usize, cfg.theta);
                match cfg.shuffle_seed {
                    Some(seed) => z.shuffled(seed),
                    None => z.weights().to_vec(),
                }
            })
            .collect();
        Self {
            bottom,
            configs: configs.to_vec(),
        }
    }

    /// Builds a fully uniform model for the given bottom cardinalities.
    pub fn uniform(cards: &[u64]) -> Self {
        let configs = vec![DimensionSkew::UNIFORM; cards.len()];
        Self::new(cards, &configs)
    }

    /// Number of dimensions covered.
    #[inline]
    pub fn num_dimensions(&self) -> usize {
        self.bottom.len()
    }

    /// The configuration of dimension `d`.
    #[inline]
    pub fn config(&self, d: usize) -> DimensionSkew {
        self.configs[d]
    }

    /// Whether every dimension is uniform.
    pub fn is_uniform(&self) -> bool {
        self.configs.iter().all(DimensionSkew::is_uniform)
    }

    /// Bottom-level weights of dimension `d`.
    #[inline]
    pub fn bottom_weights(&self, d: usize) -> &[f64] {
        &self.bottom[d]
    }

    /// Aggregates dimension `d`'s bottom weights to a coarser level with
    /// `level_card` members (uniform nesting: each of the `level_card`
    /// parents owns a contiguous range of `bottom/level_card` members).
    ///
    /// # Panics
    ///
    /// Panics if `level_card` does not divide the bottom cardinality.
    pub fn level_weights(&self, d: usize, level_card: u64) -> Vec<f64> {
        let bottom = &self.bottom[d];
        let n = bottom.len() as u64;
        assert!(
            level_card >= 1 && n.is_multiple_of(level_card),
            "level cardinality {level_card} must divide bottom cardinality {n}"
        );
        let per = (n / level_card) as usize;
        bottom
            .chunks_exact(per)
            .map(|chunk| chunk.iter().sum())
            .collect()
    }

    /// Summary statistics of dimension `d` at a level with `level_card`
    /// members.
    pub fn level_summary(&self, d: usize, level_card: u64) -> SkewSummary {
        SkewSummary::of(&self.level_weights(d, level_card))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() <= eps, "{a} !~ {b}");
    }

    #[test]
    fn uniform_model_has_equal_weights() {
        let m = SkewModel::uniform(&[4, 8]);
        assert!(m.is_uniform());
        for &w in m.bottom_weights(0) {
            assert_close(w, 0.25, 1e-15);
        }
        for &w in m.bottom_weights(1) {
            assert_close(w, 0.125, 1e-15);
        }
    }

    #[test]
    fn level_aggregation_preserves_mass() {
        let m = SkewModel::new(&[24], &[DimensionSkew::zipf(1.0)]);
        for card in [1u64, 2, 3, 4, 6, 8, 12, 24] {
            let w = m.level_weights(0, card);
            assert_eq!(w.len(), card as usize);
            assert_close(w.iter().sum::<f64>(), 1.0, 1e-9);
        }
    }

    #[test]
    fn level_aggregation_of_uniform_is_uniform() {
        let m = SkewModel::uniform(&[24]);
        let w = m.level_weights(0, 8);
        for &x in &w {
            assert_close(x, 0.125, 1e-12);
        }
    }

    #[test]
    fn aggregation_at_bottom_is_identity() {
        let m = SkewModel::new(&[10], &[DimensionSkew::zipf(0.7)]);
        let w = m.level_weights(0, 10);
        assert_eq!(w.as_slice(), m.bottom_weights(0));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn aggregation_rejects_non_divisor() {
        let m = SkewModel::uniform(&[10]);
        let _ = m.level_weights(0, 3);
    }

    #[test]
    fn summary_detects_skew() {
        let uni = SkewModel::uniform(&[100]).level_summary(0, 100);
        assert_close(uni.squared_cv, 0.0, 1e-12);
        assert_close(uni.max_weight, 0.01, 1e-12);

        let skewed = SkewModel::new(&[100], &[DimensionSkew::zipf(1.0)]).level_summary(0, 100);
        assert!(skewed.squared_cv > 0.5);
        assert!(skewed.max_weight > 5.0 * skewed.min_weight);
    }

    #[test]
    fn shuffle_changes_order_not_mass() {
        let plain = SkewModel::new(&[64], &[DimensionSkew::zipf(1.0)]);
        let shuffled = SkewModel::new(
            &[64],
            &[DimensionSkew {
                theta: 1.0,
                shuffle_seed: Some(3),
            }],
        );
        assert_ne!(plain.bottom_weights(0), shuffled.bottom_weights(0));
        assert_close(shuffled.bottom_weights(0).iter().sum::<f64>(), 1.0, 1e-9);
        // Aggregated summaries differ because heavy members disperse.
        let s_plain = plain.level_summary(0, 4);
        let s_shuf = shuffled.level_summary(0, 4);
        assert!(s_shuf.squared_cv <= s_plain.squared_cv + 1e-12);
    }

    #[test]
    #[should_panic(expected = "one skew config per dimension")]
    fn mismatched_lengths_rejected() {
        let _ = SkewModel::new(&[4, 5], &[DimensionSkew::UNIFORM]);
    }

    #[test]
    fn hot_spot_is_steep_and_dispersed() {
        let hot = DimensionSkew::hot_spot(1.8, 7);
        assert!(!hot.is_uniform());
        assert_eq!(hot.shuffle_seed, Some(7));
        let m = SkewModel::new(&[64], &[hot]);
        let s = m.level_summary(0, 64);
        // Most mass on a handful of members.
        assert!(s.max_weight > 0.3, "max weight {}", s.max_weight);
        // Same seed reproduces the same dispersion; a different seed moves it.
        let again = SkewModel::new(&[64], &[DimensionSkew::hot_spot(1.8, 7)]);
        assert_eq!(m.bottom_weights(0), again.bottom_weights(0));
        let other = SkewModel::new(&[64], &[DimensionSkew::hot_spot(1.8, 8)]);
        assert_ne!(m.bottom_weights(0), other.bottom_weights(0));
    }

    #[test]
    fn config_accessors() {
        let m = SkewModel::new(&[4], &[DimensionSkew::zipf(0.5)]);
        assert_eq!(m.num_dimensions(), 1);
        assert_eq!(m.config(0).theta, 0.5);
        assert!(!m.is_uniform());
    }
}
