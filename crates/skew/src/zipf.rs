//! Normalized Zipf member-weight vectors.

use rand::Rng;

/// Precomputed, normalized Zipf(θ) weights over `n` members.
///
/// Member `i` (0-based rank) receives weight proportional to
/// `1 / (i + 1)^θ`; weights are normalized to sum to 1. θ = 0 yields the
/// uniform distribution, θ = 1 the classic Zipf distribution the paper's
/// "zipf-like data distribution" refers to.
///
/// The weights are stored in rank order (member 0 is the heaviest). Use
/// [`ZipfWeights::shuffled`] to decorrelate member ordinals from weight
/// ranks when a dimension's heavy members should not be adjacent.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfWeights {
    theta: f64,
    weights: Vec<f64>,
    /// Cumulative distribution, `cdf[i] = Σ weights[0..=i]`; last entry is 1.
    cdf: Vec<f64>,
}

impl ZipfWeights {
    /// Computes normalized Zipf(θ) weights for `n` members.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, θ is negative, or θ is not finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "ZipfWeights requires at least one member");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "theta must be finite and non-negative, got {theta}"
        );
        let mut weights = Vec::with_capacity(n);
        if theta == 0.0 {
            // Exact uniform case; avoids powf rounding noise.
            weights.resize(n, 1.0 / n as f64);
        } else {
            let mut sum = 0.0;
            for i in 0..n {
                let w = 1.0 / ((i + 1) as f64).powf(theta);
                weights.push(w);
                sum += w;
            }
            for w in &mut weights {
                *w /= sum;
            }
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            cdf.push(acc);
        }
        // Guard against floating point drift so sampling never overruns.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Self {
            theta,
            weights,
            cdf,
        }
    }

    /// The θ this vector was built with.
    #[inline]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the vector is empty (never true; kept for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The normalized weights in rank order.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Weight of member `i`.
    #[inline]
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Total weight of the heaviest `k` members.
    pub fn top_k_mass(&self, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let k = k.min(self.len());
        self.cdf[k - 1]
    }

    /// Samples a member index proportionally to its weight, given a uniform
    /// draw `u ∈ [0, 1)`.
    pub fn sample_with(&self, u: f64) -> usize {
        debug_assert!((0.0..=1.0).contains(&u));
        // partition_point: first index whose cdf exceeds u.
        self.cdf.partition_point(|&c| c <= u).min(self.len() - 1)
    }

    /// Samples a member index proportionally to its weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.sample_with(rng.gen::<f64>())
    }

    /// Returns the weights permuted by a deterministic Fisher–Yates shuffle
    /// seeded with `seed`, so heavy members are spread over the ordinal
    /// range instead of clustering at the front.
    pub fn shuffled(&self, seed: u64) -> Vec<f64> {
        let mut out = self.weights.clone();
        // Small deterministic xorshift so the skew crate does not need a
        // full RNG for reproducible permutations.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in (1..out.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            out.swap(i, j);
        }
        out
    }

    /// Squared coefficient of variation of the weights — 0 for uniform,
    /// growing with skew. Useful as a scalar skew indicator.
    pub fn squared_cv(&self) -> f64 {
        let n = self.len() as f64;
        let mean = 1.0 / n;
        let var = self
            .weights
            .iter()
            .map(|w| (w - mean) * (w - mean))
            .sum::<f64>()
            / n;
        var / (mean * mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() <= eps, "{a} !~ {b} (eps {eps})");
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = ZipfWeights::new(8, 0.0);
        for &w in z.weights() {
            assert_close(w, 0.125, 1e-15);
        }
        assert_close(z.squared_cv(), 0.0, 1e-12);
    }

    #[test]
    fn weights_sum_to_one() {
        for theta in [0.0, 0.25, 0.5, 1.0, 2.0] {
            let z = ZipfWeights::new(1000, theta);
            let s: f64 = z.weights().iter().sum();
            assert_close(s, 1.0, 1e-9);
        }
    }

    #[test]
    fn weights_are_monotone_nonincreasing() {
        let z = ZipfWeights::new(100, 0.86);
        for pair in z.weights().windows(2) {
            assert!(pair[0] >= pair[1]);
        }
    }

    #[test]
    fn classic_zipf_ratios() {
        let z = ZipfWeights::new(4, 1.0);
        // ratios 1 : 1/2 : 1/3 : 1/4
        assert_close(z.weight(0) / z.weight(1), 2.0, 1e-12);
        assert_close(z.weight(0) / z.weight(3), 4.0, 1e-12);
    }

    #[test]
    fn top_k_mass_grows_and_bounds() {
        let z = ZipfWeights::new(50, 1.0);
        assert_eq!(z.top_k_mass(0), 0.0);
        let mut prev = 0.0;
        for k in 1..=50 {
            let m = z.top_k_mass(k);
            assert!(m >= prev);
            prev = m;
        }
        assert_close(z.top_k_mass(50), 1.0, 1e-12);
        assert_close(z.top_k_mass(500), 1.0, 1e-12);
    }

    #[test]
    fn sampling_respects_cdf_boundaries() {
        let z = ZipfWeights::new(4, 0.0);
        assert_eq!(z.sample_with(0.0), 0);
        assert_eq!(z.sample_with(0.2499), 0);
        assert_eq!(z.sample_with(0.25), 1);
        assert_eq!(z.sample_with(0.9999), 3);
        assert_eq!(z.sample_with(1.0), 3);
    }

    #[test]
    fn sampling_matches_weights_statistically() {
        use rand::{rngs::StdRng, SeedableRng};
        let z = ZipfWeights::new(8, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 8];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let observed = c as f64 / n as f64;
            let expected = z.weight(i);
            assert!(
                (observed - expected).abs() < 0.01,
                "member {i}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let z = ZipfWeights::new(64, 1.0);
        let a = z.shuffled(7);
        let b = z.shuffled(7);
        let c = z.shuffled(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut sorted_a = a.clone();
        let mut sorted_orig = z.weights().to_vec();
        sorted_a.sort_by(f64::total_cmp);
        sorted_orig.sort_by(f64::total_cmp);
        assert_eq!(sorted_a, sorted_orig);
    }

    #[test]
    fn squared_cv_grows_with_theta() {
        let a = ZipfWeights::new(100, 0.25).squared_cv();
        let b = ZipfWeights::new(100, 0.5).squared_cv();
        let c = ZipfWeights::new(100, 1.0).squared_cv();
        assert!(a < b && b < c);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn rejects_zero_members() {
        let _ = ZipfWeights::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_theta() {
        let _ = ZipfWeights::new(4, -0.5);
    }
}
