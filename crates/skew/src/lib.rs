//! Data-skew modeling for WARLOCK.
//!
//! The tool lets the DBA incorporate data skew "at the bottom level of each
//! dimension by specifying a zipf-like data distribution". This crate
//! provides:
//!
//! * [`ZipfWeights`] — normalized Zipf(θ) member weights with cumulative
//!   lookup and sampling,
//! * [`DimensionSkew`] / [`SkewModel`] — per-dimension skew configuration,
//!   including aggregation of bottom-level weights to coarser hierarchy
//!   levels (uniform nesting), and
//! * [`SkewSummary`] — summary statistics (maximum weight, squared
//!   coefficient of variation) used by the allocator and the cost model.
//!
//! θ = 0 reproduces the uniform case exactly; θ = 1 is classic Zipf.

//!
//! # Example
//!
//! ```
//! use warlock_skew::ZipfWeights;
//!
//! let z = ZipfWeights::new(4, 1.0);
//! // Classic Zipf ratios 1 : 1/2 : 1/3 : 1/4, normalized.
//! assert!((z.weight(0) / z.weight(3) - 4.0).abs() < 1e-12);
//! assert!((z.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

mod distribution;
mod zipf;

pub use distribution::{DimensionSkew, SkewModel, SkewSummary};
pub use zipf::ZipfWeights;
