//! Star-schema model for the WARLOCK data-allocation advisor.
//!
//! WARLOCK (Stöhr & Rahm, VLDB 2001) operates on *relational star schemas*
//! with denormalized, hierarchically organized dimension tables and one or
//! more fact tables. Each dimension level is represented by a particular
//! dimension attribute; fact tables contain measure attributes and refer to
//! the bottom dimension attributes by foreign keys.
//!
//! This crate provides:
//!
//! * [`Dimension`] / [`Level`] — a hierarchically organized dimension whose
//!   levels are ordered coarse → fine with strictly increasing cardinality
//!   and integral fan-outs (uniform nesting),
//! * [`FactTable`] / [`Measure`] — fact-table metadata including row sizes
//!   and row counts (explicit or density-derived),
//! * [`StarSchema`] — the validated combination of both,
//! * [`apb1`](apb1_like_schema) — an APB-1-like preset schema mirroring the
//!   OLAP Council benchmark configuration the original tool was demonstrated
//!   with.
//!
//! The model is purely *statistical*: it records cardinalities and sizes,
//! not data. Actual synthetic rows are produced by `warlock-sim`.
//!
//! # Example
//!
//! ```
//! use warlock_schema::{StarSchema, Dimension, FactTable};
//!
//! let product = Dimension::builder("product")
//!     .level("division", 5)
//!     .level("line", 15)
//!     .level("code", 9000)
//!     .build()
//!     .unwrap();
//! let time = Dimension::builder("time")
//!     .level("year", 2)
//!     .level("month", 24)
//!     .build()
//!     .unwrap();
//! let fact = FactTable::builder("sales")
//!     .measure("units", 8)
//!     .measure("dollars", 8)
//!     .rows(1_000_000)
//!     .build();
//! let schema = StarSchema::builder()
//!     .dimension(product)
//!     .dimension(time)
//!     .fact(fact)
//!     .build()
//!     .unwrap();
//! assert_eq!(schema.bottom_cardinality_product(), 9000 * 24);
//! ```

#![warn(missing_docs)]

mod apb1;
mod dimension;
mod error;
mod fact;
mod ids;
mod random;
mod star;

pub use apb1::{apb1_like_schema, Apb1Config};
pub use dimension::{Dimension, DimensionBuilder, Level};
pub use error::SchemaError;
pub use fact::{FactTable, FactTableBuilder, Measure};
pub use ids::{DimensionId, LevelId, LevelRef};
pub use random::{random_schema, RandomSchemaConfig};
pub use star::{StarSchema, StarSchemaBuilder};

/// Width, in bytes, of a dimension foreign-key column in the fact table.
pub const FOREIGN_KEY_BYTES: u32 = 4;

/// Fixed per-row storage overhead (tuple header) assumed for fact rows.
pub const ROW_OVERHEAD_BYTES: u32 = 8;
