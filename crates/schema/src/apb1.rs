//! APB-1-like preset schema.
//!
//! The WARLOCK demonstration used configurations modeled after the OLAP
//! Council's APB-1 benchmark (Release II, 1998). The original APB-1
//! specification is not redistributable, so this module reconstructs an
//! *APB-1-like* configuration with the same shape: four hierarchical
//! dimensions (product, customer, time, channel) and a sales fact table
//! whose size is controlled by a density factor.
//!
//! Cardinalities follow the published outline of APB-1 (≈9000 products,
//! 900 customer stores, 24 months, 9 channels), adjusted minimally so that
//! every fan-out is integral as the uniform-nesting model requires.

use crate::{Dimension, FactTable, SchemaError, StarSchema};

/// Tunable knobs of the APB-1-like preset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Apb1Config {
    /// Fraction of the dimensional cross product present in the fact table.
    /// APB-1 uses channel-dependent densities around 1 %; the preset default
    /// is `0.01`.
    pub density: f64,
    /// Multiplier on the bottom (code-level) product cardinality; `1` gives
    /// the standard 9000 products. Larger values scale the warehouse.
    pub product_scale: u64,
    /// Multiplier on the customer store count; `1` gives 900 stores.
    pub customer_scale: u64,
    /// Number of months of history; must be a multiple of 12. Default 24.
    pub months: u64,
}

impl Default for Apb1Config {
    fn default() -> Self {
        Self {
            density: 0.01,
            product_scale: 1,
            customer_scale: 1,
            months: 24,
        }
    }
}

impl Apb1Config {
    /// Validates the configuration invariants.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.density > 0.0 && self.density <= 1.0) {
            return Err(format!("density must be in (0,1], got {}", self.density));
        }
        if self.product_scale == 0 || self.customer_scale == 0 {
            return Err("scales must be >= 1".into());
        }
        if self.months == 0 || !self.months.is_multiple_of(12) {
            return Err(format!(
                "months must be a positive multiple of 12, got {}",
                self.months
            ));
        }
        Ok(())
    }
}

/// Builds the APB-1-like star schema.
///
/// Default dimensions:
///
/// | dimension | levels (coarse → fine) | cardinalities |
/// |-----------|------------------------|---------------|
/// | product   | division, line, family, group, class, code | 5, 15, 75, 300, 900, 9000 |
/// | customer  | retailer, store        | 90, 900 |
/// | time      | year, quarter, month   | 2, 8, 24 |
/// | channel   | base                   | 9 |
///
/// The fact table `sales` has APB-1's measure set (unit sales, dollar
/// sales, cost, inventory) and a density-derived row count — with the
/// defaults `0.01 × 9000 × 900 × 24 × 9 ≈ 17.5 M` rows.
pub fn apb1_like_schema(config: Apb1Config) -> Result<StarSchema, SchemaError> {
    config.validate().expect("invalid Apb1Config");
    let ps = config.product_scale;
    let cs = config.customer_scale;
    let years = config.months / 12;

    let product = Dimension::builder("product")
        .level("division", 5)
        .level("line", 15)
        .level("family", 75)
        .level("group", 300)
        .level("class", 900)
        .level("code", 9000 * ps)
        .build()?;
    let customer = Dimension::builder("customer")
        .level("retailer", 90)
        .level("store", 900 * cs)
        .build()?;
    let time = Dimension::builder("time")
        .level("year", years)
        .level("quarter", years * 4)
        .level("month", config.months)
        .build()?;
    let channel = Dimension::builder("channel").level("base", 9).build()?;

    let fact = FactTable::builder("sales")
        .measure("unit_sales", 8)
        .measure("dollar_sales", 8)
        .measure("cost", 8)
        .measure("inventory", 8)
        .density(config.density)
        .build();

    StarSchema::builder()
        .dimension(product)
        .dimension(customer)
        .dimension(time)
        .dimension(channel)
        .fact(fact)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_preset_builds() {
        let s = apb1_like_schema(Apb1Config::default()).unwrap();
        assert_eq!(s.num_dimensions(), 4);
        assert_eq!(s.bottom_cardinality_product(), 9000 * 900 * 24 * 9);
        // ~17.5 M rows at density 0.01
        let rows = s.fact_rows(0);
        assert_eq!(rows, (9000u64 * 900 * 24 * 9) / 100);
        // 8 overhead + 4 FKs * 4 + 4 measures * 8 = 56 bytes
        assert_eq!(s.fact_row_bytes(0), 56);
    }

    #[test]
    fn scaling_multiplies_cardinalities() {
        let s = apb1_like_schema(Apb1Config {
            product_scale: 2,
            customer_scale: 3,
            months: 36,
            ..Default::default()
        })
        .unwrap();
        let (_, product) = s.dimension_by_name("product").unwrap();
        assert_eq!(product.bottom().cardinality(), 18000);
        let (_, customer) = s.dimension_by_name("customer").unwrap();
        assert_eq!(customer.bottom().cardinality(), 2700);
        let (_, time) = s.dimension_by_name("time").unwrap();
        assert_eq!(time.levels()[0].cardinality(), 3);
        assert_eq!(time.bottom().cardinality(), 36);
    }

    #[test]
    fn config_validation() {
        assert!(Apb1Config::default().validate().is_ok());
        assert!(Apb1Config {
            density: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(Apb1Config {
            months: 13,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(Apb1Config {
            product_scale: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic(expected = "invalid Apb1Config")]
    fn schema_build_panics_on_invalid_config() {
        let _ = apb1_like_schema(Apb1Config {
            density: 2.0,
            ..Default::default()
        });
    }

    #[test]
    fn all_fanouts_are_integral() {
        let s = apb1_like_schema(Apb1Config::default()).unwrap();
        for d in s.dimensions() {
            for li in 0..d.depth() {
                let f = d.fanout(crate::LevelId(li as u16)).unwrap();
                assert!(f >= 1, "fanout must be >= 1 in {}", d.name());
            }
        }
    }
}
