//! Error type for schema construction and validation.

use std::fmt;

/// Errors raised while building or validating a star schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A dimension was declared without any level.
    EmptyDimension {
        /// Name of the offending dimension.
        dimension: String,
    },
    /// A level was declared with cardinality zero.
    ZeroCardinality {
        /// Name of the offending dimension.
        dimension: String,
        /// Name of the offending level.
        level: String,
    },
    /// Level cardinalities must strictly increase from coarse to fine.
    NonIncreasingCardinality {
        /// Name of the offending dimension.
        dimension: String,
        /// Name of the finer level whose cardinality does not increase.
        level: String,
        /// Cardinality of the coarser (parent) level.
        parent_cardinality: u64,
        /// Cardinality of the finer level.
        cardinality: u64,
    },
    /// Under uniform nesting every level cardinality must be an integral
    /// multiple of its parent's cardinality.
    RaggedFanout {
        /// Name of the offending dimension.
        dimension: String,
        /// Name of the finer level with the fractional fan-out.
        level: String,
        /// Cardinality of the coarser (parent) level.
        parent_cardinality: u64,
        /// Cardinality of the finer level.
        cardinality: u64,
    },
    /// Two dimensions (or two levels within one dimension) share a name.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// The schema was built without any dimension.
    NoDimensions,
    /// The schema was built without a fact table.
    NoFactTable,
    /// A fact table would contain zero rows.
    EmptyFactTable {
        /// Name of the offending fact table.
        fact: String,
    },
    /// A referenced dimension id does not exist in the schema.
    UnknownDimension {
        /// The out-of-range dimension index.
        index: usize,
    },
    /// A referenced level id does not exist in its dimension.
    UnknownLevel {
        /// The dimension in which the lookup happened.
        dimension: String,
        /// The out-of-range level index.
        index: usize,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyDimension { dimension } => {
                write!(f, "dimension `{dimension}` has no levels")
            }
            Self::ZeroCardinality { dimension, level } => {
                write!(f, "level `{dimension}.{level}` has cardinality 0")
            }
            Self::NonIncreasingCardinality {
                dimension,
                level,
                parent_cardinality,
                cardinality,
            } => write!(
                f,
                "level `{dimension}.{level}` cardinality {cardinality} does not exceed \
                 its parent's cardinality {parent_cardinality}"
            ),
            Self::RaggedFanout {
                dimension,
                level,
                parent_cardinality,
                cardinality,
            } => write!(
                f,
                "level `{dimension}.{level}` cardinality {cardinality} is not an integral \
                 multiple of its parent's cardinality {parent_cardinality} (uniform nesting)"
            ),
            Self::DuplicateName { name } => write!(f, "duplicate name `{name}`"),
            Self::NoDimensions => write!(f, "star schema has no dimensions"),
            Self::NoFactTable => write!(f, "star schema has no fact table"),
            Self::EmptyFactTable { fact } => {
                write!(f, "fact table `{fact}` has zero rows")
            }
            Self::UnknownDimension { index } => {
                write!(f, "dimension index {index} out of range")
            }
            Self::UnknownLevel { dimension, index } => {
                write!(
                    f,
                    "level index {index} out of range in dimension `{dimension}`"
                )
            }
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SchemaError::RaggedFanout {
            dimension: "product".into(),
            level: "class".into(),
            parent_cardinality: 4,
            cardinality: 15,
        };
        let s = e.to_string();
        assert!(s.contains("product.class"));
        assert!(s.contains("15"));
        assert!(s.contains('4'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(SchemaError::NoDimensions, SchemaError::NoDimensions);
        assert_ne!(
            SchemaError::NoDimensions,
            SchemaError::DuplicateName { name: "x".into() }
        );
    }
}
