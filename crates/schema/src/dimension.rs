//! Hierarchically organized dimensions.
//!
//! A dimension is an ordered list of [`Level`]s from coarse to fine, e.g.
//! `time: year → quarter → month`. Each level carries the *total* number of
//! distinct members at that level. Under the uniform-nesting model every
//! member of a level has the same number of children, so each cardinality
//! must be an integral multiple of its parent's.

use crate::{LevelId, SchemaError};

/// One hierarchy level (dimension attribute) of a dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Level {
    name: String,
    cardinality: u64,
}

impl Level {
    /// The attribute name of this level (unique within its dimension).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of distinct members at this level.
    #[inline]
    pub fn cardinality(&self) -> u64 {
        self.cardinality
    }
}

/// A denormalized, hierarchically organized dimension table.
///
/// Levels are stored coarse → fine; [`Dimension::bottom`] is the finest
/// level, which the fact table references by foreign key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dimension {
    name: String,
    levels: Vec<Level>,
}

impl Dimension {
    /// Starts building a dimension with the given name.
    pub fn builder(name: impl Into<String>) -> DimensionBuilder {
        DimensionBuilder {
            name: name.into(),
            levels: Vec::new(),
        }
    }

    /// The dimension's name (unique within its schema).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All levels, ordered coarse → fine.
    #[inline]
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// Number of levels in the hierarchy.
    #[inline]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Looks a level up by id.
    pub fn level(&self, id: LevelId) -> Result<&Level, SchemaError> {
        self.levels
            .get(id.index())
            .ok_or(SchemaError::UnknownLevel {
                dimension: self.name.clone(),
                index: id.index(),
            })
    }

    /// The id of the finest (bottom) level.
    #[inline]
    pub fn bottom_level(&self) -> LevelId {
        LevelId((self.levels.len() - 1) as u16)
    }

    /// The finest (bottom) level itself.
    #[inline]
    pub fn bottom(&self) -> &Level {
        self.levels.last().expect("validated: at least one level")
    }

    /// Cardinality of the given level.
    pub fn cardinality(&self, id: LevelId) -> Result<u64, SchemaError> {
        Ok(self.level(id)?.cardinality())
    }

    /// Fan-out of `level`: how many members of `level` nest under one member
    /// of its parent level. The coarsest level's fan-out is its own
    /// cardinality (children of the implicit ALL root).
    pub fn fanout(&self, id: LevelId) -> Result<u64, SchemaError> {
        let card = self.cardinality(id)?;
        if id.index() == 0 {
            return Ok(card);
        }
        let parent = self.levels[id.index() - 1].cardinality();
        Ok(card / parent)
    }

    /// How many members of `fine` descend from one member of `coarse`.
    ///
    /// Requires `coarse` to be at least as coarse as `fine`; equal levels
    /// yield 1.
    pub fn descendants_per_member(
        &self,
        coarse: LevelId,
        fine: LevelId,
    ) -> Result<u64, SchemaError> {
        assert!(
            coarse.is_coarser_or_equal(fine),
            "descendants_per_member requires coarse <= fine"
        );
        let c = self.cardinality(coarse)?;
        let f = self.cardinality(fine)?;
        Ok(f / c)
    }

    /// Maps a bottom-level member ordinal to its ancestor ordinal at `level`.
    ///
    /// Under uniform nesting member `m` of the bottom level descends from
    /// ancestor `m / descendants_per_member(level, bottom)` at `level`.
    pub fn ancestor_of_bottom(&self, bottom_member: u64, level: LevelId) -> u64 {
        let per = self.bottom().cardinality() / self.levels[level.index()].cardinality();
        bottom_member / per
    }

    /// Finds a level id by attribute name.
    pub fn level_by_name(&self, name: &str) -> Option<LevelId> {
        self.levels
            .iter()
            .position(|l| l.name == name)
            .map(|i| LevelId(i as u16))
    }
}

/// Builder for [`Dimension`]; validates the hierarchy on [`build`](Self::build).
#[derive(Debug, Clone)]
pub struct DimensionBuilder {
    name: String,
    levels: Vec<Level>,
}

impl DimensionBuilder {
    /// Appends the next finer level with the given total cardinality.
    pub fn level(mut self, name: impl Into<String>, cardinality: u64) -> Self {
        self.levels.push(Level {
            name: name.into(),
            cardinality,
        });
        self
    }

    /// Validates the hierarchy and produces the dimension.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError`] if the dimension has no levels, a level has
    /// cardinality zero or duplicates a name, cardinalities do not strictly
    /// increase, or a fan-out is fractional.
    pub fn build(self) -> Result<Dimension, SchemaError> {
        if self.levels.is_empty() {
            return Err(SchemaError::EmptyDimension {
                dimension: self.name,
            });
        }
        let mut seen = std::collections::BTreeSet::new();
        for level in &self.levels {
            if level.cardinality == 0 {
                return Err(SchemaError::ZeroCardinality {
                    dimension: self.name,
                    level: level.name.clone(),
                });
            }
            if !seen.insert(level.name.as_str().to_owned()) {
                return Err(SchemaError::DuplicateName {
                    name: level.name.clone(),
                });
            }
        }
        for pair in self.levels.windows(2) {
            let (parent, child) = (&pair[0], &pair[1]);
            if child.cardinality <= parent.cardinality {
                return Err(SchemaError::NonIncreasingCardinality {
                    dimension: self.name,
                    level: child.name.clone(),
                    parent_cardinality: parent.cardinality,
                    cardinality: child.cardinality,
                });
            }
            if child.cardinality % parent.cardinality != 0 {
                return Err(SchemaError::RaggedFanout {
                    dimension: self.name,
                    level: child.name.clone(),
                    parent_cardinality: parent.cardinality,
                    cardinality: child.cardinality,
                });
            }
        }
        Ok(Dimension {
            name: self.name,
            levels: self.levels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn product() -> Dimension {
        Dimension::builder("product")
            .level("division", 5)
            .level("line", 15)
            .level("family", 75)
            .level("group", 300)
            .level("class", 900)
            .level("code", 9000)
            .build()
            .unwrap()
    }

    #[test]
    fn builds_valid_hierarchy() {
        let d = product();
        assert_eq!(d.depth(), 6);
        assert_eq!(d.bottom().cardinality(), 9000);
        assert_eq!(d.bottom_level(), LevelId(5));
        assert_eq!(d.name(), "product");
    }

    #[test]
    fn fanouts() {
        let d = product();
        assert_eq!(d.fanout(LevelId(0)).unwrap(), 5); // divisions under ALL
        assert_eq!(d.fanout(LevelId(1)).unwrap(), 3); // lines per division
        assert_eq!(d.fanout(LevelId(5)).unwrap(), 10); // codes per class
    }

    #[test]
    fn descendants_per_member() {
        let d = product();
        assert_eq!(
            d.descendants_per_member(LevelId(0), LevelId(5)).unwrap(),
            1800
        );
        assert_eq!(d.descendants_per_member(LevelId(2), LevelId(2)).unwrap(), 1);
    }

    #[test]
    #[should_panic(expected = "coarse <= fine")]
    fn descendants_rejects_inverted_order() {
        let d = product();
        let _ = d.descendants_per_member(LevelId(5), LevelId(0));
    }

    #[test]
    fn ancestor_mapping_is_uniform() {
        let d = product();
        // 9000 codes / 5 divisions = 1800 codes per division.
        assert_eq!(d.ancestor_of_bottom(0, LevelId(0)), 0);
        assert_eq!(d.ancestor_of_bottom(1799, LevelId(0)), 0);
        assert_eq!(d.ancestor_of_bottom(1800, LevelId(0)), 1);
        assert_eq!(d.ancestor_of_bottom(8999, LevelId(0)), 4);
        // identity at the bottom level
        assert_eq!(d.ancestor_of_bottom(1234, LevelId(5)), 1234);
    }

    #[test]
    fn rejects_empty() {
        let err = Dimension::builder("empty").build().unwrap_err();
        assert!(matches!(err, SchemaError::EmptyDimension { .. }));
    }

    #[test]
    fn rejects_zero_cardinality() {
        let err = Dimension::builder("d").level("a", 0).build().unwrap_err();
        assert!(matches!(err, SchemaError::ZeroCardinality { .. }));
    }

    #[test]
    fn rejects_non_increasing() {
        let err = Dimension::builder("d")
            .level("a", 10)
            .level("b", 10)
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::NonIncreasingCardinality { .. }));
    }

    #[test]
    fn rejects_ragged_fanout() {
        let err = Dimension::builder("d")
            .level("a", 4)
            .level("b", 15)
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::RaggedFanout { .. }));
    }

    #[test]
    fn rejects_duplicate_level_name() {
        let err = Dimension::builder("d")
            .level("a", 4)
            .level("a", 8)
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::DuplicateName { .. }));
    }

    #[test]
    fn level_lookup_by_name_and_id() {
        let d = product();
        assert_eq!(d.level_by_name("group"), Some(LevelId(3)));
        assert_eq!(d.level_by_name("nope"), None);
        assert!(d.level(LevelId(6)).is_err());
        assert_eq!(d.level(LevelId(4)).unwrap().name(), "class");
    }

    #[test]
    fn single_level_dimension_is_valid() {
        let d = Dimension::builder("channel")
            .level("base", 9)
            .build()
            .unwrap();
        assert_eq!(d.depth(), 1);
        assert_eq!(d.fanout(LevelId(0)).unwrap(), 9);
        assert_eq!(d.bottom_level(), LevelId(0));
    }
}
