//! Fact tables and measures.
//!
//! A fact table holds one row per recorded event; each row carries one
//! foreign key per dimension (referencing the bottom level) and a set of
//! measure attributes used for aggregation. The model is statistical: only
//! row counts and byte widths matter for allocation decisions.

use crate::{FOREIGN_KEY_BYTES, ROW_OVERHEAD_BYTES};

/// One measure attribute of a fact table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Measure {
    name: String,
    bytes: u32,
}

impl Measure {
    /// The measure's column name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Storage width of the measure, in bytes.
    #[inline]
    pub fn bytes(&self) -> u32 {
        self.bytes
    }
}

/// How the fact-table row count is specified.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RowSpec {
    /// Explicit row count.
    Explicit(u64),
    /// Fraction of the full cross product of bottom-level cardinalities
    /// (APB-1 calls this *density*).
    Density(f64),
}

/// Metadata of one fact table.
#[derive(Debug, Clone, PartialEq)]
pub struct FactTable {
    name: String,
    measures: Vec<Measure>,
    row_spec: RowSpec,
    explicit_row_bytes: Option<u32>,
}

impl FactTable {
    /// Starts building a fact table with the given name.
    pub fn builder(name: impl Into<String>) -> FactTableBuilder {
        FactTableBuilder {
            name: name.into(),
            measures: Vec::new(),
            row_spec: RowSpec::Explicit(0),
            explicit_row_bytes: None,
        }
    }

    /// The fact table's name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared measures.
    #[inline]
    pub fn measures(&self) -> &[Measure] {
        &self.measures
    }

    /// Width of one fact row in bytes.
    ///
    /// If not set explicitly this is `overhead + #dims·fk + Σ measure widths`;
    /// the number of dimensions is supplied by the schema at validation time
    /// via [`FactTable::row_bytes_for`].
    pub fn row_bytes_for(&self, num_dimensions: usize) -> u32 {
        if let Some(b) = self.explicit_row_bytes {
            return b;
        }
        ROW_OVERHEAD_BYTES
            + num_dimensions as u32 * FOREIGN_KEY_BYTES
            + self.measures.iter().map(Measure::bytes).sum::<u32>()
    }

    /// Resolves the row count given the product of bottom cardinalities.
    pub fn rows_for(&self, bottom_cardinality_product: u128) -> u64 {
        match self.row_spec {
            RowSpec::Explicit(n) => n,
            RowSpec::Density(d) => {
                let raw = (bottom_cardinality_product as f64) * d;
                raw.round().max(0.0) as u64
            }
        }
    }

    /// Returns the density if the row count was density-specified.
    pub fn density(&self) -> Option<f64> {
        match self.row_spec {
            RowSpec::Density(d) => Some(d),
            RowSpec::Explicit(_) => None,
        }
    }
}

/// Builder for [`FactTable`].
#[derive(Debug, Clone)]
pub struct FactTableBuilder {
    name: String,
    measures: Vec<Measure>,
    row_spec: RowSpec,
    explicit_row_bytes: Option<u32>,
}

impl FactTableBuilder {
    /// Adds a measure column of the given byte width.
    pub fn measure(mut self, name: impl Into<String>, bytes: u32) -> Self {
        self.measures.push(Measure {
            name: name.into(),
            bytes,
        });
        self
    }

    /// Sets an explicit row count.
    pub fn rows(mut self, rows: u64) -> Self {
        self.row_spec = RowSpec::Explicit(rows);
        self
    }

    /// Sets the row count as a density: the fraction of all bottom-level
    /// value combinations that actually occur (APB-1 style).
    pub fn density(mut self, density: f64) -> Self {
        assert!(
            density > 0.0 && density <= 1.0,
            "density must be in (0, 1], got {density}"
        );
        self.row_spec = RowSpec::Density(density);
        self
    }

    /// Overrides the computed row width with an explicit byte count.
    pub fn row_bytes(mut self, bytes: u32) -> Self {
        self.explicit_row_bytes = Some(bytes);
        self
    }

    /// Produces the fact table. Row-count validation happens at schema
    /// build time, when the dimensions are known.
    pub fn build(self) -> FactTable {
        FactTable {
            name: self.name,
            measures: self.measures,
            row_spec: self.row_spec,
            explicit_row_bytes: self.explicit_row_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_bytes_computed_from_shape() {
        let f = FactTable::builder("sales")
            .measure("units", 8)
            .measure("dollars", 8)
            .rows(100)
            .build();
        // 8 overhead + 4 dims * 4 bytes + 16 measure bytes
        assert_eq!(f.row_bytes_for(4), 8 + 16 + 16);
        assert_eq!(f.row_bytes_for(2), 8 + 8 + 16);
    }

    #[test]
    fn explicit_row_bytes_win() {
        let f = FactTable::builder("sales").row_bytes(100).rows(1).build();
        assert_eq!(f.row_bytes_for(4), 100);
    }

    #[test]
    fn explicit_rows() {
        let f = FactTable::builder("sales").rows(1_000_000).build();
        assert_eq!(f.rows_for(123_456_789), 1_000_000);
        assert_eq!(f.density(), None);
    }

    #[test]
    fn density_rows() {
        let f = FactTable::builder("sales").density(0.01).build();
        assert_eq!(f.rows_for(1_000_000), 10_000);
        assert_eq!(f.density(), Some(0.01));
    }

    #[test]
    #[should_panic(expected = "density must be in (0, 1]")]
    fn rejects_bad_density() {
        let _ = FactTable::builder("sales").density(1.5);
    }

    #[test]
    fn measures_accessible() {
        let f = FactTable::builder("sales").measure("m", 4).rows(1).build();
        assert_eq!(f.measures().len(), 1);
        assert_eq!(f.measures()[0].name(), "m");
        assert_eq!(f.measures()[0].bytes(), 4);
        assert_eq!(f.name(), "sales");
    }
}
