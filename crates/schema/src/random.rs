//! Seeded random schema generation for robustness tests.
//!
//! The advisor must behave on *any* valid star schema, not just the
//! APB-1-like preset. This module builds structurally random schemas —
//! random dimension counts, hierarchy depths and integral fan-outs — from
//! a seed, without a `rand` dependency (a splitmix-style generator keeps
//! the crate dependency-free).

use crate::{Dimension, FactTable, SchemaError, StarSchema};

/// Knobs of the random schema generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomSchemaConfig {
    /// Minimum and maximum number of dimensions.
    pub dimensions: (usize, usize),
    /// Minimum and maximum hierarchy depth per dimension.
    pub depth: (usize, usize),
    /// Maximum fan-out per level (drawn from `2..=max_fanout`).
    pub max_fanout: u64,
    /// Fact rows, drawn from `1..=max_rows`.
    pub max_rows: u64,
}

impl Default for RandomSchemaConfig {
    fn default() -> Self {
        Self {
            dimensions: (1, 5),
            depth: (1, 4),
            max_fanout: 12,
            max_rows: 10_000_000,
        }
    }
}

/// Deterministic splitmix64 step.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn in_range(state: &mut u64, lo: u64, hi: u64) -> u64 {
    debug_assert!(hi >= lo);
    lo + next(state) % (hi - lo + 1)
}

/// Builds a random, always-valid star schema from `seed`.
///
/// Every hierarchy has strictly increasing cardinalities with integral
/// fan-outs by construction, so the result always passes validation.
pub fn random_schema(seed: u64, config: RandomSchemaConfig) -> Result<StarSchema, SchemaError> {
    let mut state = seed ^ 0xdeadbeefcafef00d;
    let num_dims = in_range(
        &mut state,
        config.dimensions.0.max(1) as u64,
        config.dimensions.1.max(config.dimensions.0.max(1)) as u64,
    ) as usize;

    let mut builder = StarSchema::builder();
    for d in 0..num_dims {
        let depth = in_range(
            &mut state,
            config.depth.0.max(1) as u64,
            config.depth.1.max(config.depth.0.max(1)) as u64,
        ) as usize;
        let mut dim = Dimension::builder(format!("dim{d}"));
        let mut cardinality = 1u64;
        for l in 0..depth {
            let fanout = in_range(&mut state, 2, config.max_fanout.max(2));
            cardinality *= fanout;
            dim = dim.level(format!("l{l}"), cardinality);
        }
        builder = builder.dimension(dim.build()?);
    }
    let rows = in_range(&mut state, 1, config.max_rows.max(1));
    let measures = in_range(&mut state, 0, 4);
    let mut fact = FactTable::builder("fact");
    for m in 0..measures {
        fact = fact.measure(format!("m{m}"), 8);
    }
    builder.fact(fact.rows(rows).build()).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_valid_over_many_seeds() {
        for seed in 0..200 {
            let s = random_schema(seed, RandomSchemaConfig::default()).unwrap();
            assert!(s.num_dimensions() >= 1 && s.num_dimensions() <= 5);
            for d in s.dimensions() {
                assert!(d.depth() >= 1 && d.depth() <= 4);
                // Fan-outs integral by construction; re-check.
                for l in 0..d.depth() {
                    assert!(d.fanout(crate::LevelId(l as u16)).unwrap() >= 2);
                }
            }
            assert!(s.fact_rows(0) >= 1);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_schema(7, RandomSchemaConfig::default()).unwrap();
        let b = random_schema(7, RandomSchemaConfig::default()).unwrap();
        let c = random_schema(8, RandomSchemaConfig::default()).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn respects_config_bounds() {
        let cfg = RandomSchemaConfig {
            dimensions: (3, 3),
            depth: (2, 2),
            max_fanout: 4,
            max_rows: 100,
        };
        for seed in 0..50 {
            let s = random_schema(seed, cfg).unwrap();
            assert_eq!(s.num_dimensions(), 3);
            for d in s.dimensions() {
                assert_eq!(d.depth(), 2);
                assert!(d.bottom().cardinality() <= 16);
            }
            assert!(s.fact_rows(0) <= 100);
        }
    }
}
