//! The validated star schema: dimensions plus fact tables.

use crate::{Dimension, DimensionId, FactTable, LevelId, LevelRef, SchemaError};

/// A validated relational star schema.
///
/// Holds the hierarchically organized dimensions and one or more fact
/// tables. All advisor components take a `StarSchema` by reference; it is
/// immutable after construction.
#[derive(Debug, Clone, PartialEq)]
pub struct StarSchema {
    dimensions: Vec<Dimension>,
    facts: Vec<FactTable>,
}

impl StarSchema {
    /// Starts building a schema.
    pub fn builder() -> StarSchemaBuilder {
        StarSchemaBuilder {
            dimensions: Vec::new(),
            facts: Vec::new(),
        }
    }

    /// All dimensions, in declaration order.
    #[inline]
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dimensions
    }

    /// Number of dimensions.
    #[inline]
    pub fn num_dimensions(&self) -> usize {
        self.dimensions.len()
    }

    /// All fact tables, in declaration order.
    #[inline]
    pub fn facts(&self) -> &[FactTable] {
        &self.facts
    }

    /// The primary (first-declared) fact table.
    #[inline]
    pub fn fact(&self) -> &FactTable {
        &self.facts[0]
    }

    /// Looks a dimension up by id.
    pub fn dimension(&self, id: DimensionId) -> Result<&Dimension, SchemaError> {
        self.dimensions
            .get(id.index())
            .ok_or(SchemaError::UnknownDimension { index: id.index() })
    }

    /// Looks a dimension up by name.
    pub fn dimension_by_name(&self, name: &str) -> Option<(DimensionId, &Dimension)> {
        self.dimensions
            .iter()
            .enumerate()
            .find(|(_, d)| d.name() == name)
            .map(|(i, d)| (DimensionId(i as u16), d))
    }

    /// Resolves a `"dimension.level"`-style pair of names to a [`LevelRef`].
    pub fn level_ref(&self, dimension: &str, level: &str) -> Option<LevelRef> {
        let (id, dim) = self.dimension_by_name(dimension)?;
        let lvl = dim.level_by_name(level)?;
        Some(LevelRef {
            dimension: id,
            level: lvl,
        })
    }

    /// Cardinality of the attribute a [`LevelRef`] names.
    pub fn cardinality(&self, r: LevelRef) -> Result<u64, SchemaError> {
        self.dimension(r.dimension)?.cardinality(r.level)
    }

    /// Product of bottom-level cardinalities over all dimensions — the size
    /// of the full dimensional cross product.
    pub fn bottom_cardinality_product(&self) -> u128 {
        self.dimensions
            .iter()
            .map(|d| d.bottom().cardinality() as u128)
            .product()
    }

    /// Resolved row count of fact table `fact_index`.
    pub fn fact_rows(&self, fact_index: usize) -> u64 {
        self.facts[fact_index].rows_for(self.bottom_cardinality_product())
    }

    /// Resolved row width, in bytes, of fact table `fact_index`.
    pub fn fact_row_bytes(&self, fact_index: usize) -> u32 {
        self.facts[fact_index].row_bytes_for(self.num_dimensions())
    }

    /// Total fact bytes (rows × row width) of fact table `fact_index`.
    pub fn fact_bytes(&self, fact_index: usize) -> u64 {
        self.fact_rows(fact_index) * u64::from(self.fact_row_bytes(fact_index))
    }

    /// Iterates over every (dimension, level) pair in the schema.
    pub fn all_level_refs(&self) -> impl Iterator<Item = LevelRef> + '_ {
        self.dimensions.iter().enumerate().flat_map(|(di, d)| {
            (0..d.depth()).map(move |li| LevelRef {
                dimension: DimensionId(di as u16),
                level: LevelId(li as u16),
            })
        })
    }
}

/// Builder for [`StarSchema`]; validates on [`build`](Self::build).
#[derive(Debug, Clone)]
pub struct StarSchemaBuilder {
    dimensions: Vec<Dimension>,
    facts: Vec<FactTable>,
}

impl StarSchemaBuilder {
    /// Adds a dimension. Order determines [`DimensionId`]s.
    pub fn dimension(mut self, dimension: Dimension) -> Self {
        self.dimensions.push(dimension);
        self
    }

    /// Adds a fact table. The first one becomes the primary fact table.
    pub fn fact(mut self, fact: FactTable) -> Self {
        self.facts.push(fact);
        self
    }

    /// Validates and produces the schema.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError`] when there are no dimensions or fact tables,
    /// names collide, or any fact table resolves to zero rows.
    pub fn build(self) -> Result<StarSchema, SchemaError> {
        if self.dimensions.is_empty() {
            return Err(SchemaError::NoDimensions);
        }
        if self.facts.is_empty() {
            return Err(SchemaError::NoFactTable);
        }
        let mut names = std::collections::BTreeSet::new();
        for d in &self.dimensions {
            if !names.insert(d.name().to_owned()) {
                return Err(SchemaError::DuplicateName {
                    name: d.name().to_owned(),
                });
            }
        }
        for f in &self.facts {
            if !names.insert(f.name().to_owned()) {
                return Err(SchemaError::DuplicateName {
                    name: f.name().to_owned(),
                });
            }
        }
        let schema = StarSchema {
            dimensions: self.dimensions,
            facts: self.facts,
        };
        for (i, f) in schema.facts.iter().enumerate() {
            if schema.fact_rows(i) == 0 {
                return Err(SchemaError::EmptyFactTable {
                    fact: f.name().to_owned(),
                });
            }
        }
        Ok(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_schema() -> StarSchema {
        StarSchema::builder()
            .dimension(
                Dimension::builder("time")
                    .level("year", 2)
                    .level("quarter", 8)
                    .level("month", 24)
                    .build()
                    .unwrap(),
            )
            .dimension(
                Dimension::builder("channel")
                    .level("base", 9)
                    .build()
                    .unwrap(),
            )
            .fact(
                FactTable::builder("sales")
                    .measure("units", 8)
                    .density(0.5)
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_resolves() {
        let s = small_schema();
        assert_eq!(s.num_dimensions(), 2);
        assert_eq!(s.bottom_cardinality_product(), 24 * 9);
        assert_eq!(s.fact_rows(0), 108); // 216 * 0.5
        assert_eq!(s.fact_row_bytes(0), 8 + 2 * 4 + 8);
        assert_eq!(s.fact_bytes(0), 108 * 24);
    }

    #[test]
    fn lookup_by_name() {
        let s = small_schema();
        let (id, d) = s.dimension_by_name("channel").unwrap();
        assert_eq!(id, DimensionId(1));
        assert_eq!(d.name(), "channel");
        assert!(s.dimension_by_name("nope").is_none());

        let r = s.level_ref("time", "quarter").unwrap();
        assert_eq!(r, LevelRef::new(0, 1));
        assert_eq!(s.cardinality(r).unwrap(), 8);
        assert!(s.level_ref("time", "nope").is_none());
        assert!(s.level_ref("nope", "year").is_none());
    }

    #[test]
    fn all_level_refs_enumerates_everything() {
        let s = small_schema();
        let refs: Vec<_> = s.all_level_refs().collect();
        assert_eq!(refs.len(), 4);
        assert_eq!(refs[0], LevelRef::new(0, 0));
        assert_eq!(refs[3], LevelRef::new(1, 0));
    }

    #[test]
    fn rejects_empty_parts() {
        assert!(matches!(
            StarSchema::builder().build().unwrap_err(),
            SchemaError::NoDimensions
        ));
        let d = Dimension::builder("d").level("a", 2).build().unwrap();
        assert!(matches!(
            StarSchema::builder().dimension(d).build().unwrap_err(),
            SchemaError::NoFactTable
        ));
    }

    #[test]
    fn rejects_duplicate_names_across_kinds() {
        let d = Dimension::builder("sales").level("a", 2).build().unwrap();
        let f = FactTable::builder("sales").rows(1).build();
        let err = StarSchema::builder()
            .dimension(d)
            .fact(f)
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::DuplicateName { .. }));
    }

    #[test]
    fn rejects_zero_row_fact() {
        let d = Dimension::builder("d").level("a", 2).build().unwrap();
        let f = FactTable::builder("f").rows(0).build();
        let err = StarSchema::builder()
            .dimension(d)
            .fact(f)
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::EmptyFactTable { .. }));
    }

    #[test]
    fn unknown_dimension_lookup_fails() {
        let s = small_schema();
        assert!(s.dimension(DimensionId(9)).is_err());
    }

    #[test]
    fn multiple_fact_tables() {
        let s = StarSchema::builder()
            .dimension(Dimension::builder("d").level("a", 4).build().unwrap())
            .fact(FactTable::builder("f1").rows(10).build())
            .fact(FactTable::builder("f2").rows(20).build())
            .build()
            .unwrap();
        assert_eq!(s.facts().len(), 2);
        assert_eq!(s.fact().name(), "f1");
        assert_eq!(s.fact_rows(1), 20);
    }
}
