//! Typed identifiers for dimensions and hierarchy levels.
//!
//! The advisor passes (dimension, level) pairs around constantly — as
//! fragmentation attributes, query references, bitmap subjects. Typed ids
//! keep those from being confused with plain indices and make the public
//! API self-describing.

use std::fmt;

/// Index of a dimension within a [`StarSchema`](crate::StarSchema).
///
/// Dimension ids are dense: the `i`-th dimension added to the schema builder
/// receives id `i`. They are only meaningful relative to one schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DimensionId(pub u16);

/// Index of a level within a [`Dimension`](crate::Dimension).
///
/// Level `0` is the *coarsest* level (e.g. `year`); the highest id is the
/// *finest* (bottom) level (e.g. `month`). This matches the paper's notion
/// of dimension attributes ordered along the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LevelId(pub u16);

impl DimensionId {
    /// Returns the id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LevelId {
    /// Returns the id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether `self` is at least as coarse as `other` (smaller or equal id).
    #[inline]
    pub fn is_coarser_or_equal(self, other: LevelId) -> bool {
        self.0 <= other.0
    }

    /// Whether `self` is strictly finer than `other` (larger id).
    #[inline]
    pub fn is_finer(self, other: LevelId) -> bool {
        self.0 > other.0
    }
}

impl fmt::Display for DimensionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Display for LevelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A fully qualified reference to one dimension attribute: a (dimension,
/// level) pair.
///
/// This is the unit in which fragmentation attributes and query predicates
/// are expressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LevelRef {
    /// The referenced dimension.
    pub dimension: DimensionId,
    /// The referenced level within that dimension.
    pub level: LevelId,
}

impl LevelRef {
    /// Creates a level reference from raw indices.
    #[inline]
    pub fn new(dimension: u16, level: u16) -> Self {
        Self {
            dimension: DimensionId(dimension),
            level: LevelId(level),
        }
    }
}

impl fmt::Display for LevelRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.dimension, self.level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_is_coarse_to_fine() {
        let year = LevelId(0);
        let month = LevelId(2);
        assert!(year.is_coarser_or_equal(month));
        assert!(year.is_coarser_or_equal(year));
        assert!(month.is_finer(year));
        assert!(!year.is_finer(month));
    }

    #[test]
    fn display_forms() {
        assert_eq!(LevelRef::new(1, 2).to_string(), "d1.l2");
        assert_eq!(DimensionId(7).to_string(), "d7");
        assert_eq!(LevelId(3).to_string(), "l3");
    }

    #[test]
    fn ids_index() {
        assert_eq!(DimensionId(3).index(), 3);
        assert_eq!(LevelId(9).index(), 9);
    }

    #[test]
    fn level_ref_is_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let mut set = BTreeSet::new();
        set.insert(LevelRef::new(0, 1));
        set.insert(LevelRef::new(0, 0));
        set.insert(LevelRef::new(1, 0));
        let v: Vec<_> = set.into_iter().collect();
        assert_eq!(
            v,
            vec![
                LevelRef::new(0, 0),
                LevelRef::new(0, 1),
                LevelRef::new(1, 0)
            ]
        );
    }
}
