//! Shared fixtures for the WARLOCK benchmark & experiment harness.
//!
//! Both the criterion micro-benchmarks (`benches/`) and the experiment
//! binary (`src/bin/experiments.rs`, regenerating every table/figure of
//! EXPERIMENTS.md) build on the same demonstration configuration: the
//! APB-1-like schema and ten-class mix on a 16-disk circa-2001 system.

#![warn(missing_docs)]

pub mod alloc_probe;
pub mod fleet;

use warlock::{AdvisorConfig, Warlock};
use warlock_bitmap::{BitmapScheme, SchemeConfig};
use warlock_schema::{apb1_like_schema, Apb1Config, StarSchema};
use warlock_storage::SystemConfig;
use warlock_workload::{apb1_like_mix, QueryMix};

/// The demonstration fixture: schema, mix, system and derived scheme.
pub struct Fixture {
    /// APB-1-like star schema.
    pub schema: StarSchema,
    /// Ten-class weighted mix.
    pub mix: QueryMix,
    /// 16-disk circa-2001 system.
    pub system: SystemConfig,
    /// Bitmap scheme derived for the mix.
    pub scheme: BitmapScheme,
}

impl Fixture {
    /// Builds the default demonstration fixture.
    pub fn demo() -> Self {
        Self::with_disks(16)
    }

    /// Builds the fixture with a custom disk count.
    pub fn with_disks(disks: u32) -> Self {
        let schema = apb1_like_schema(Apb1Config::default()).expect("preset schema");
        let mix = apb1_like_mix().expect("preset mix");
        let system = SystemConfig::default_2001(disks);
        let scheme = BitmapScheme::derive(&schema, &mix, SchemeConfig::default());
        Self {
            schema,
            mix,
            system,
            scheme,
        }
    }

    /// An owned advisory session over the fixture (default config).
    pub fn session(&self) -> Warlock {
        self.session_with(AdvisorConfig::default())
    }

    /// An owned advisory session with a custom configuration.
    pub fn session_with(&self, config: AdvisorConfig) -> Warlock {
        Warlock::builder()
            .schema(self.schema.clone())
            .system(self.system)
            .mix(self.mix.clone())
            .config(config)
            .build()
            .expect("fixture inputs are valid")
    }
}

/// A small scaled-down fixture for simulation-backed experiments, where
/// rows are actually materialized.
pub struct SmallFixture {
    /// Scaled-down star schema (3 dimensions, 3M rows).
    pub schema: StarSchema,
    /// Four-class mix.
    pub mix: QueryMix,
    /// 17-disk system (prime: avoids stride aliasing).
    pub system: SystemConfig,
    /// Bitmap scheme for the mix.
    pub scheme: BitmapScheme,
}

impl SmallFixture {
    /// Builds the simulation fixture.
    pub fn new() -> Self {
        use warlock_schema::{Dimension, FactTable};
        use warlock_workload::{DimensionPredicate, QueryClass};
        let schema = StarSchema::builder()
            .dimension(
                Dimension::builder("product")
                    .level("division", 4)
                    .level("line", 16)
                    .level("code", 128)
                    .build()
                    .expect("valid"),
            )
            .dimension(
                Dimension::builder("time")
                    .level("year", 2)
                    .level("month", 24)
                    .build()
                    .expect("valid"),
            )
            .dimension(
                Dimension::builder("channel")
                    .level("base", 6)
                    .build()
                    .expect("valid"),
            )
            .fact(
                FactTable::builder("sales")
                    .measure("m", 8)
                    .rows(3_000_000)
                    .build(),
            )
            .build()
            .expect("valid schema");
        let mix = QueryMix::builder()
            .class(
                QueryClass::new("month_line")
                    .with(1, DimensionPredicate::point(1))
                    .with(0, DimensionPredicate::point(1)),
                3.0,
            )
            .class(
                QueryClass::new("year_division")
                    .with(1, DimensionPredicate::point(0))
                    .with(0, DimensionPredicate::point(0)),
                2.0,
            )
            .class(
                QueryClass::new("channel_month")
                    .with(2, DimensionPredicate::point(0))
                    .with(1, DimensionPredicate::point(1)),
                2.0,
            )
            .class(
                QueryClass::new("code_pinpoint")
                    .with(0, DimensionPredicate::point(2))
                    .with(1, DimensionPredicate::point(1)),
                1.0,
            )
            .build()
            .expect("valid mix");
        let system = SystemConfig::default_2001(17);
        let scheme = BitmapScheme::derive(&schema, &mix, SchemeConfig::default());
        Self {
            schema,
            mix,
            system,
            scheme,
        }
    }

    /// An owned advisory session over the small fixture.
    pub fn session(&self) -> Warlock {
        Warlock::builder()
            .schema(self.schema.clone())
            .system(self.system)
            .mix(self.mix.clone())
            .build()
            .expect("fixture inputs are valid")
    }
}

impl Default for SmallFixture {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_fixture_builds_and_advises() {
        let f = Fixture::demo();
        let report = f.session().run().unwrap();
        assert!(!report.ranked.is_empty());
    }

    #[test]
    fn small_fixture_validates() {
        let f = SmallFixture::new();
        f.mix.validate(&f.schema).unwrap();
        assert_eq!(f.system.num_disks, 17);
    }
}
