//! A counting global allocator shared by the harness binaries.
//!
//! [`CountingAlloc`] is a pass-through wrapper over the system
//! allocator that tracks allocation counts and the peak number of live
//! heap bytes. `#[global_allocator]` must be declared in each *binary*
//! that wants the probe:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: warlock_bench::alloc_probe::CountingAlloc =
//!     warlock_bench::alloc_probe::CountingAlloc;
//! ```
//!
//! [`allocation_profile`] then brackets a closure and reports what it
//! allocated. When the probe is *not* installed the counters never
//! move; [`probe_installed`] lets callers record honest zeros instead
//! of bogus measurements.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A pass-through allocator that tracks allocation counts and the peak
/// number of live heap bytes.
pub struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        let live =
            LIVE_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed) + layout.size() as u64;
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

/// Runs `f` and reports `(result, allocations, peak extra live bytes)`
/// during it. Both counters read 0 when [`CountingAlloc`] is not the
/// binary's global allocator.
pub fn allocation_profile<R>(f: impl FnOnce() -> R) -> (R, u64, u64) {
    let live = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(live, Ordering::Relaxed);
    let allocations = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    let peak = PEAK_BYTES.load(Ordering::Relaxed).saturating_sub(live);
    (
        result,
        ALLOCATIONS.load(Ordering::Relaxed) - allocations,
        peak,
    )
}

/// Whether [`CountingAlloc`] is actually installed as the global
/// allocator of the running binary (probed with a real heap
/// allocation, so memory metrics can be reported as absent rather than
/// as zeros that look like measurements).
pub fn probe_installed() -> bool {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    std::hint::black_box(vec![0u8; 64]);
    ALLOCATIONS.load(Ordering::Relaxed) != before
}

#[cfg(test)]
mod tests {
    use super::*;

    // The unit-test binary does not install the probe: the profile must
    // degrade to zeros and `probe_installed` must say so.
    #[test]
    fn profile_degrades_gracefully_without_the_probe() {
        assert!(!probe_installed());
        let (value, allocs, peak) = allocation_profile(|| vec![1u8; 1024].len());
        assert_eq!(value, 1024);
        assert_eq!(allocs, 0);
        assert_eq!(peak, 0);
    }
}
