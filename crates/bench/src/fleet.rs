//! The scenario-fleet harness: runs rank → allocate → what-if over a
//! generated scenario fleet, checks cross-cutting invariants, and
//! aggregates a versioned perf-trajectory report (`BENCH_*.json`).
//!
//! Two kinds of numbers live in a [`FleetReport`], with different
//! reproducibility contracts:
//!
//! * **Exact** — the scenario-set fingerprint, candidate-space sizes
//!   and invariant outcomes are pure functions of `(seed, count,
//!   space)`; [`diff_reports`] compares them *exactly* and flags any
//!   difference as an incomparable-baseline error.
//! * **Measured** — latencies, throughput, allocation counts and peak
//!   live bytes vary run to run; [`diff_reports`] compares them per
//!   scenario class under a relative tolerance.

use std::collections::BTreeMap;
use std::time::Instant;

use warlock::config_file::{parse_config, ParsedConfig};
use warlock::{SessionReport, Warlock};
use warlock_json::{Json, ToJson};
use warlock_scenarios::{generate_fleet, Scenario, ScenarioSpace};

use crate::alloc_probe::{allocation_profile, probe_installed};

/// Schema version of the `BENCH_*.json` document this module writes.
/// v2 added `candidates_per_sec`; v3 added the non-gating
/// allocation-quality numbers (`greedy_heat_imbalance`,
/// `graph_heat_imbalance`, `graph_makespan_ratio`); v4 added the
/// non-gating resident-optimizer replay numbers
/// (`drift_detect_batches`, `drift_readvise_ms`). Older documents
/// still parse — absent fields default to 0, which the diff skips.
pub const SCHEMA_VERSION: u64 = 4;

/// Every `sample_stride`-th scenario additionally re-ranks with forced
/// chunked-streaming settings and asserts bit-identical reports.
pub const SAMPLE_STRIDE: u32 = 5;

/// Measured metrics of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioMetrics {
    /// Scenario index within the fleet.
    pub id: u32,
    /// Stable label, e.g. `s007-deep/hot_spot/drifting`.
    pub label: String,
    /// Coverage-grid class label, e.g. `deep/hot_spot/drifting`.
    pub class: String,
    /// Disks in the generated system configuration.
    pub disks: u32,
    /// Exact candidate-space size (reproducible).
    pub candidates: u64,
    /// Fragments of the top-ranked candidate (reproducible).
    pub fragments: u64,
    /// Wall-clock of the cold rank (enumerate + evaluate + twofold rank).
    pub rank_ms: f64,
    /// Single-thread cold-cache evaluation throughput: candidates/sec
    /// through the batched evaluator (cost-table build included) over
    /// the scenario's structurally admissible candidate space — no
    /// memo, no ranking, one worker.
    pub candidates_per_sec: f64,
    /// Wall-clock of planning the winner's allocation.
    pub alloc_ms: f64,
    /// Wall-clock of a warm `what_if_disks` variation (pure cache hits).
    pub whatif_ms: f64,
    /// Hit fraction of the evaluation memo over the whole scenario run.
    pub cache_hit_rate: f64,
    /// Peak extra live heap bytes over the run (0 without the probe).
    pub peak_bytes: u64,
    /// Heap allocations over the run (0 without the probe).
    pub allocations: u64,
    /// Max-over-mean mix-weighted disk heat of the winner's allocation
    /// under the greedy size-based policy (non-gating; 0 when the
    /// judge could not run).
    pub greedy_heat_imbalance: f64,
    /// The same heat imbalance under the co-access graph partitioner.
    pub graph_heat_imbalance: f64,
    /// Simulated replay makespan of the graph policy over greedy's
    /// (< 1 means the partitioner wins head-to-head; non-gating).
    pub graph_makespan_ratio: f64,
    /// Observation batches of the scenario's seeded drift trajectory
    /// replayed before the resident optimizer fired its first auto
    /// re-advise — the drift-detection latency in workload terms
    /// (non-gating; 0 for non-drifting scenarios or when the replay
    /// could not run).
    pub drift_detect_batches: f64,
    /// Wall-clock (ms) of the `observe` call that crossed the drift
    /// threshold — drift scoring plus the incremental warm re-rank at
    /// the adopted mix (non-gating; 0 when no re-advise fired).
    pub drift_readvise_ms: f64,
}

/// One failed cross-cutting invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantFailure {
    /// Label of the offending scenario.
    pub scenario: String,
    /// Which invariant broke.
    pub invariant: String,
    /// Human-readable detail.
    pub detail: String,
}

/// Aggregated metrics of one scenario class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassAggregate {
    /// Class label (`schema/skew/mix`).
    pub class: String,
    /// Scenarios aggregated.
    pub scenarios: u64,
    /// Median cold-rank latency (ms).
    pub rank_ms_p50: f64,
    /// 99th-percentile cold-rank latency (ms).
    pub rank_ms_p99: f64,
    /// Scenario throughput: members / total wall-clock seconds.
    pub throughput_per_s: f64,
    /// Mean single-thread cold-cache evaluation throughput across
    /// members (candidates/sec, see
    /// [`ScenarioMetrics::candidates_per_sec`]).
    pub candidates_per_sec: f64,
    /// Total candidate-space size across members (reproducible).
    pub candidates: u64,
    /// Largest peak live bytes among members.
    pub peak_bytes_max: u64,
    /// Mean evaluation-memo hit rate.
    pub cache_hit_rate_mean: f64,
    /// Mean graph/greedy simulated makespan ratio across members
    /// (non-gating; 0 when no member carried the number).
    pub graph_makespan_ratio: f64,
    /// Mean warm re-advise cost (ms) across the members whose drift
    /// replay fired (non-gating; 0 when none did).
    pub drift_readvise_ms: f64,
}

/// The versioned perf-trajectory document (`BENCH_*.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Document schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Fleet seed.
    pub seed: u64,
    /// Scenarios generated.
    pub count: u32,
    /// FNV-1a fingerprint of every rendered scenario config, in fleet
    /// order — byte-identical scenario sets have equal fingerprints.
    pub fingerprint: String,
    /// Whether the counting global allocator was installed (memory
    /// numbers are honest zeros otherwise).
    pub counting_allocator: bool,
    /// Failed invariants (empty on a healthy run).
    pub failures: Vec<InvariantFailure>,
    /// Per-scenario measurements, in fleet order.
    pub scenarios: Vec<ScenarioMetrics>,
    /// Per-class aggregates, in stable class order.
    pub classes: Vec<ClassAggregate>,
    /// Total harness wall-clock (ms).
    pub total_ms: f64,
}

/// FNV-1a over the rendered configs — the fleet's identity.
pub fn fleet_fingerprint(fleet: &[Scenario]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for scenario in fleet {
        for byte in scenario.config_string().bytes().chain([0u8]) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{hash:016x}")
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Single-thread cold-cache sweep of the scenario's candidate space
/// through the batched evaluator: cost-table build + layout + SoA
/// costing for every structurally admissible candidate, no memo, no
/// ranking. Returns candidates/sec (0 when nothing was evaluable) —
/// the fleet's evaluation-throughput trajectory number.
fn eval_sweep(parsed: &ParsedConfig) -> f64 {
    use warlock_bitmap::BitmapScheme;
    use warlock_cost::{evaluate_chunk, ChunkBatch, CostModel, CostTables};
    use warlock_fragment::{CandidateSource, FragmentLayout, LayoutScratch};

    const GROUP: usize = 64;

    let scheme = BitmapScheme::derive(&parsed.schema, &parsed.mix, parsed.advisor.scheme);
    let model = CostModel::new(&parsed.schema, &parsed.system, &scheme, &parsed.mix);
    let Ok(model) = model.with_fact_index(parsed.advisor.fact_index) else {
        return 0.0;
    };

    let started = Instant::now();
    let tables = CostTables::build(&model, &parsed.advisor.range_options);
    let source = CandidateSource::ranged(
        &parsed.schema,
        parsed.advisor.max_dimensionality,
        &parsed.advisor.range_options,
    );
    let mut scratch = LayoutScratch::new();
    let mut batch = ChunkBatch::new();
    let mut swept = 0u64;
    let mut staged = 0usize;
    let mut sink = 0.0f64;
    let max_fragments = u128::from(parsed.advisor.thresholds.max_fragments);
    for fragmentation in source {
        if fragmentation.num_fragments(&parsed.schema) > max_fragments {
            continue;
        }
        let layout = FragmentLayout::new_in(
            &mut scratch,
            &parsed.schema,
            fragmentation,
            parsed.advisor.fact_index,
        );
        batch.push(layout, &mut scratch);
        staged += 1;
        if staged == GROUP {
            for cost in evaluate_chunk(&tables, &mut batch) {
                sink += cost.io_cost_ms;
            }
            swept += staged as u64;
            staged = 0;
        }
    }
    if staged > 0 {
        for cost in evaluate_chunk(&tables, &mut batch) {
            sink += cost.io_cost_ms;
        }
        swept += staged as u64;
    }
    let secs = started.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    if swept == 0 || secs <= 0.0 {
        0.0
    } else {
        swept as f64 / secs
    }
}

/// Runs one scenario end to end, appending metrics or a failure.
fn run_scenario(
    scenario: &Scenario,
    metrics: &mut Vec<ScenarioMetrics>,
    failures: &mut Vec<InvariantFailure>,
) {
    let label = scenario.label();
    let mut fail = |invariant: &str, detail: String| {
        failures.push(InvariantFailure {
            scenario: label.clone(),
            invariant: invariant.into(),
            detail,
        });
    };

    // Invariant: the rendered config parses back to the same inputs —
    // the generator's output is a valid config file.
    match parse_config(&scenario.config_string()) {
        Ok(reparsed) => {
            if reparsed.schema != scenario.parsed.schema {
                fail(
                    "config_round_trip",
                    "schema changed across render/parse".into(),
                );
            }
        }
        Err(e) => {
            fail(
                "config_round_trip",
                format!("rendered config rejected: {e}"),
            );
            return;
        }
    }

    let session = match scenario.session() {
        Ok(s) => s,
        Err(e) => {
            fail("session_build", e.to_string());
            return;
        }
    };

    let run = allocation_profile(|| {
        let started = Instant::now();
        let baseline = match session.rank() {
            Ok(r) => r.clone(),
            Err(e) => return Err(("rank", e.to_string())),
        };
        let rank_ms = started.elapsed().as_secs_f64() * 1e3;

        // Invariant: lazy enumeration visited the entire space.
        let space = session.candidate_space_size();
        if baseline.enumerated as u128 != space {
            return Err((
                "space_size",
                format!("enumerated {} != space size {}", baseline.enumerated, space),
            ));
        }

        // Invariant: the machine-readable report round-trips through
        // its JSON wire form, compact and pretty.
        let report = match session.session_report() {
            Ok(r) => r,
            Err(e) => return Err(("report_round_trip", e.to_string())),
        };
        for text in [report.to_json().render(), report.to_json().pretty()] {
            match SessionReport::from_json_str(&text) {
                Ok(back) if back == report => {}
                Ok(_) => return Err(("report_round_trip", "reparse differs".into())),
                Err(e) => return Err(("report_round_trip", e.to_string())),
            }
        }

        // Invariant: the winner's allocation covers every fragment
        // exactly once on a valid disk.
        let alloc_started = Instant::now();
        let plan = match session.plan_allocation(1) {
            Ok(p) => p,
            Err(e) => return Err(("allocation", e.to_string())),
        };
        let alloc_ms = alloc_started.elapsed().as_secs_f64() * 1e3;
        let placements = plan.allocation.placements();
        if placements.is_empty() {
            return Err(("allocation_coverage", "no fragments placed".into()));
        }
        if placements.len() != plan.allocation.num_fragments() {
            return Err((
                "allocation_coverage",
                format!(
                    "{} placements for {} fragments",
                    placements.len(),
                    plan.allocation.num_fragments()
                ),
            ));
        }
        if let Some(&bad) = placements
            .iter()
            .find(|&&d| d >= plan.allocation.num_disks())
        {
            return Err((
                "allocation_coverage",
                format!(
                    "fragment placed on disk {bad} of {}",
                    plan.allocation.num_disks()
                ),
            ));
        }
        let occupied: u64 = plan.allocation.occupancy().iter().sum();
        if occupied == 0 {
            return Err(("allocation_coverage", "zero bytes placed".into()));
        }

        // Invariant (sampled): forced chunked-streaming settings
        // reproduce the baseline ranking bit-for-bit.
        if scenario.id.is_multiple_of(SAMPLE_STRIDE) {
            for chunk in [1usize, 64] {
                let mut config = session.config().clone();
                config.chunk_size = chunk;
                config.parallelism = 1;
                let streamed = Warlock::builder()
                    .schema(session.schema().clone())
                    .system(*session.system())
                    .mix(session.mix().clone())
                    .config(config)
                    .build()
                    .and_then(|s| s.run());
                match streamed {
                    Ok(streamed) if streamed == baseline => {}
                    Ok(_) => {
                        return Err((
                            "streaming_equivalence",
                            format!("chunk_size={chunk} ranking differs from baseline"),
                        ))
                    }
                    Err(e) => return Err(("streaming_equivalence", e.to_string())),
                }
            }
        }

        // Warm what-if variation: first call populates the varied
        // entries, second call must be pure cache hits.
        let disks = session.system().num_disks;
        let varied = disks.saturating_mul(2).max(2);
        if let Err(e) = session.what_if_disks(varied) {
            return Err(("what_if", e.to_string()));
        }
        let whatif_started = Instant::now();
        if let Err(e) = session.what_if_disks(varied) {
            return Err(("what_if", e.to_string()));
        }
        let whatif_ms = whatif_started.elapsed().as_secs_f64() * 1e3;

        let stats = session.cache_stats();
        let lookups = stats.hits + stats.misses;
        let cache_hit_rate = if lookups == 0 {
            0.0
        } else {
            stats.hits as f64 / lookups as f64
        };

        let top = baseline
            .ranked
            .first()
            .map(|r| r.cost.num_fragments)
            .unwrap_or(0);
        Ok((rank_ms, alloc_ms, whatif_ms, cache_hit_rate, space, top))
    });
    let (outcome, allocations, peak_bytes) = run;
    match outcome {
        Ok((rank_ms, alloc_ms, whatif_ms, cache_hit_rate, space, fragments)) => {
            // Measured outside the allocation profile so the memory
            // numbers keep covering only the rank → allocate → what-if
            // arc they always did.
            let candidates_per_sec = eval_sweep(&scenario.parsed);
            let (greedy_heat_imbalance, graph_heat_imbalance, graph_makespan_ratio) =
                policy_quality(&session);
            let (drift_detect_batches, drift_readvise_ms) = drift_replay(scenario, &session);
            metrics.push(ScenarioMetrics {
                id: scenario.id,
                label: label.clone(),
                class: scenario.class.label(),
                disks: session.system().num_disks,
                candidates: u64::try_from(space).unwrap_or(u64::MAX),
                fragments,
                rank_ms,
                candidates_per_sec,
                alloc_ms,
                whatif_ms,
                cache_hit_rate,
                peak_bytes,
                allocations,
                greedy_heat_imbalance,
                graph_heat_imbalance,
                graph_makespan_ratio,
                drift_detect_batches,
                drift_readvise_ms,
            });
        }
        Err((invariant, detail)) => fail(invariant, detail),
    }
}

/// Non-gating resident-optimizer numbers: replays the scenario's seeded
/// drift trajectory through `observe` on an auto-advising clone and
/// reports `(batches until the first auto re-advise fired, wall-clock ms
/// of the observe call that fired it)`. The clone shares the scenario's
/// warm evaluation cache, so the measured cost is the *incremental*
/// re-advise the resident optimizer actually pays. All zeros for
/// non-drifting scenarios or when the replay cannot run — the diff
/// skips zero baselines.
fn drift_replay(scenario: &Scenario, session: &Warlock) -> (f64, f64) {
    let trajectory = scenario.drift_trajectory();
    if trajectory.is_empty() {
        return (0.0, 0.0);
    }
    let mut session = session.clone();
    if session.set_auto_advise(true).is_err() {
        return (0.0, 0.0);
    }
    let mut detect_batches = 0.0f64;
    let mut readvise_ms = 0.0f64;
    for (i, batch) in trajectory.iter().enumerate() {
        let started = Instant::now();
        let Ok(status) = session.observe(batch) else {
            return (0.0, 0.0);
        };
        if detect_batches == 0.0 && status.events_emitted > 0 {
            detect_batches = (i + 1) as f64;
            readvise_ms = started.elapsed().as_secs_f64() * 1e3;
        }
    }
    (detect_batches, readvise_ms)
}

/// Non-gating allocation-quality numbers from the head-to-head policy
/// judge: `(greedy heat imbalance, graph heat imbalance, graph/greedy
/// makespan ratio)`. All zeros when the judge cannot run — the diff
/// skips zero baselines, so older or degenerate runs stay comparable.
fn policy_quality(session: &Warlock) -> (f64, f64, f64) {
    let Ok(rec) = session.recommend_policy() else {
        return (0.0, 0.0, 0.0);
    };
    let find = |name: &str| rec.verdicts.iter().find(|v| v.policy == name);
    match (find("greedy"), find("graph")) {
        (Some(greedy), Some(graph)) => (
            greedy.heat_imbalance,
            graph.heat_imbalance,
            if greedy.makespan_ms > 0.0 {
                graph.makespan_ms / greedy.makespan_ms
            } else {
                0.0
            },
        ),
        _ => (0.0, 0.0, 0.0),
    }
}

/// Runs the fleet harness: generates `count` scenarios from `seed` over
/// `space`, drives each through rank → allocate → what-if with the
/// cross-cutting invariants of the module docs, and aggregates the
/// per-class perf trajectory.
pub fn run_fleet(seed: u64, count: u32, space: &ScenarioSpace) -> Result<FleetReport, String> {
    space.validate()?;
    let started = Instant::now();
    let fleet = generate_fleet(seed, count as usize, space);
    let fingerprint = fleet_fingerprint(&fleet);

    let mut scenarios = Vec::with_capacity(fleet.len());
    let mut failures = Vec::new();
    for scenario in &fleet {
        run_scenario(scenario, &mut scenarios, &mut failures);
    }

    // Aggregate per class, keyed by the full class label; iteration
    // order of the BTreeMap gives a stable document order.
    let mut by_class: BTreeMap<String, Vec<&ScenarioMetrics>> = BTreeMap::new();
    for m in &scenarios {
        by_class.entry(m.class.clone()).or_default().push(m);
    }
    let classes = by_class
        .into_iter()
        .map(|(class, members)| {
            let mut rank_ms: Vec<f64> = members.iter().map(|m| m.rank_ms).collect();
            rank_ms.sort_by(f64::total_cmp);
            let total_s: f64 = members
                .iter()
                .map(|m| (m.rank_ms + m.alloc_ms + m.whatif_ms) / 1e3)
                .sum();
            ClassAggregate {
                scenarios: members.len() as u64,
                rank_ms_p50: percentile(&rank_ms, 0.5),
                rank_ms_p99: percentile(&rank_ms, 0.99),
                throughput_per_s: if total_s > 0.0 {
                    members.len() as f64 / total_s
                } else {
                    0.0
                },
                candidates_per_sec: members.iter().map(|m| m.candidates_per_sec).sum::<f64>()
                    / members.len() as f64,
                candidates: members.iter().map(|m| m.candidates).sum(),
                peak_bytes_max: members.iter().map(|m| m.peak_bytes).max().unwrap_or(0),
                cache_hit_rate_mean: members.iter().map(|m| m.cache_hit_rate).sum::<f64>()
                    / members.len() as f64,
                graph_makespan_ratio: {
                    // Mean over the members that carried the number.
                    let carried: Vec<f64> = members
                        .iter()
                        .map(|m| m.graph_makespan_ratio)
                        .filter(|&r| r > 0.0)
                        .collect();
                    if carried.is_empty() {
                        0.0
                    } else {
                        carried.iter().sum::<f64>() / carried.len() as f64
                    }
                },
                drift_readvise_ms: {
                    // Mean over the members whose drift replay fired.
                    let carried: Vec<f64> = members
                        .iter()
                        .map(|m| m.drift_readvise_ms)
                        .filter(|&r| r > 0.0)
                        .collect();
                    if carried.is_empty() {
                        0.0
                    } else {
                        carried.iter().sum::<f64>() / carried.len() as f64
                    }
                },
                class,
            }
        })
        .collect();

    Ok(FleetReport {
        schema_version: SCHEMA_VERSION,
        seed,
        count,
        fingerprint,
        counting_allocator: probe_installed(),
        failures,
        scenarios,
        classes,
        total_ms: started.elapsed().as_secs_f64() * 1e3,
    })
}

// ---------------------------------------------------------------------
// JSON wire form

impl FleetReport {
    /// Serializes the report (pretty, trailing newline — the committed
    /// `BENCH_*.json` form).
    pub fn to_json_string(&self) -> String {
        let scenarios: Vec<Json> = self
            .scenarios
            .iter()
            .map(|m| {
                Json::object([
                    ("id", Json::Int(m.id as i64)),
                    ("label", Json::Str(m.label.clone())),
                    ("class", Json::Str(m.class.clone())),
                    ("disks", Json::Int(m.disks as i64)),
                    ("candidates", Json::Int(m.candidates as i64)),
                    ("fragments", Json::Int(m.fragments as i64)),
                    ("rank_ms", Json::Num(m.rank_ms)),
                    ("candidates_per_sec", Json::Num(m.candidates_per_sec)),
                    ("alloc_ms", Json::Num(m.alloc_ms)),
                    ("whatif_ms", Json::Num(m.whatif_ms)),
                    ("cache_hit_rate", Json::Num(m.cache_hit_rate)),
                    ("peak_bytes", Json::Int(m.peak_bytes as i64)),
                    ("allocations", Json::Int(m.allocations as i64)),
                    ("greedy_heat_imbalance", Json::Num(m.greedy_heat_imbalance)),
                    ("graph_heat_imbalance", Json::Num(m.graph_heat_imbalance)),
                    ("graph_makespan_ratio", Json::Num(m.graph_makespan_ratio)),
                    ("drift_detect_batches", Json::Num(m.drift_detect_batches)),
                    ("drift_readvise_ms", Json::Num(m.drift_readvise_ms)),
                ])
            })
            .collect();
        let classes: Vec<Json> = self
            .classes
            .iter()
            .map(|c| {
                Json::object([
                    ("class", Json::Str(c.class.clone())),
                    ("scenarios", Json::Int(c.scenarios as i64)),
                    ("rank_ms_p50", Json::Num(c.rank_ms_p50)),
                    ("rank_ms_p99", Json::Num(c.rank_ms_p99)),
                    ("throughput_per_s", Json::Num(c.throughput_per_s)),
                    ("candidates_per_sec", Json::Num(c.candidates_per_sec)),
                    ("candidates", Json::Int(c.candidates as i64)),
                    ("peak_bytes_max", Json::Int(c.peak_bytes_max as i64)),
                    ("cache_hit_rate_mean", Json::Num(c.cache_hit_rate_mean)),
                    ("graph_makespan_ratio", Json::Num(c.graph_makespan_ratio)),
                    ("drift_readvise_ms", Json::Num(c.drift_readvise_ms)),
                ])
            })
            .collect();
        let failures: Vec<Json> = self
            .failures
            .iter()
            .map(|f| {
                Json::object([
                    ("scenario", Json::Str(f.scenario.clone())),
                    ("invariant", Json::Str(f.invariant.clone())),
                    ("detail", Json::Str(f.detail.clone())),
                ])
            })
            .collect();
        let mut text = Json::object([
            ("schema_version", Json::Int(self.schema_version as i64)),
            ("bench", Json::Str("scenario-fleet".into())),
            ("seed", Json::Int(self.seed as i64)),
            ("count", Json::Int(self.count as i64)),
            ("fingerprint", Json::Str(self.fingerprint.clone())),
            ("counting_allocator", Json::Bool(self.counting_allocator)),
            ("failures", Json::Arr(failures)),
            ("scenarios", Json::Arr(scenarios)),
            ("classes", Json::Arr(classes)),
            ("total_ms", Json::Num(self.total_ms)),
        ])
        .pretty();
        text.push('\n');
        text
    }

    /// Parses a report from its JSON text.
    pub fn from_json_str(input: &str) -> Result<Self, String> {
        let doc = warlock_json::parse(input).map_err(|e| e.to_string())?;
        let version = doc
            .req("schema_version")
            .and_then(|v| {
                v.as_u64()
                    .ok_or_else(|| warlock_json::JsonError::shape("schema_version not a number"))
            })
            .map_err(|e| e.to_string())?;
        if version == 0 || version > SCHEMA_VERSION {
            return Err(format!(
                "unsupported fleet report schema_version {version} (expected 1..={SCHEMA_VERSION})"
            ));
        }
        let str_field = |v: &Json, key: &str| -> Result<String, String> {
            Ok(v.req(key)
                .map_err(|e| e.to_string())?
                .as_str()
                .ok_or_else(|| format!("`{key}` is not a string"))?
                .to_string())
        };
        let u64_field = |v: &Json, key: &str| -> Result<u64, String> {
            v.req(key)
                .map_err(|e| e.to_string())?
                .as_u64()
                .ok_or_else(|| format!("`{key}` is not an unsigned integer"))
        };
        let f64_field = |v: &Json, key: &str| -> Result<f64, String> {
            v.req(key)
                .map_err(|e| e.to_string())?
                .as_f64()
                .ok_or_else(|| format!("`{key}` is not a number"))
        };
        // Fields added after v1 default to 0 in older documents (the
        // diff skips 0 baselines).
        let f64_opt = |v: &Json, key: &str| -> Result<f64, String> {
            match v.req(key) {
                Ok(value) => value
                    .as_f64()
                    .ok_or_else(|| format!("`{key}` is not a number")),
                Err(_) => Ok(0.0),
            }
        };
        let arr_field = |v: &Json, key: &str| -> Result<Vec<Json>, String> {
            Ok(v.req(key)
                .map_err(|e| e.to_string())?
                .as_array()
                .ok_or_else(|| format!("`{key}` is not an array"))?
                .to_vec())
        };
        let scenarios = arr_field(&doc, "scenarios")?
            .iter()
            .map(|m| {
                Ok(ScenarioMetrics {
                    id: u64_field(m, "id")? as u32,
                    label: str_field(m, "label")?,
                    class: str_field(m, "class")?,
                    disks: u64_field(m, "disks")? as u32,
                    candidates: u64_field(m, "candidates")?,
                    fragments: u64_field(m, "fragments")?,
                    rank_ms: f64_field(m, "rank_ms")?,
                    candidates_per_sec: f64_opt(m, "candidates_per_sec")?,
                    alloc_ms: f64_field(m, "alloc_ms")?,
                    whatif_ms: f64_field(m, "whatif_ms")?,
                    cache_hit_rate: f64_field(m, "cache_hit_rate")?,
                    peak_bytes: u64_field(m, "peak_bytes")?,
                    allocations: u64_field(m, "allocations")?,
                    greedy_heat_imbalance: f64_opt(m, "greedy_heat_imbalance")?,
                    graph_heat_imbalance: f64_opt(m, "graph_heat_imbalance")?,
                    graph_makespan_ratio: f64_opt(m, "graph_makespan_ratio")?,
                    drift_detect_batches: f64_opt(m, "drift_detect_batches")?,
                    drift_readvise_ms: f64_opt(m, "drift_readvise_ms")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let classes = arr_field(&doc, "classes")?
            .iter()
            .map(|c| {
                Ok(ClassAggregate {
                    class: str_field(c, "class")?,
                    scenarios: u64_field(c, "scenarios")?,
                    rank_ms_p50: f64_field(c, "rank_ms_p50")?,
                    rank_ms_p99: f64_field(c, "rank_ms_p99")?,
                    throughput_per_s: f64_field(c, "throughput_per_s")?,
                    candidates_per_sec: f64_opt(c, "candidates_per_sec")?,
                    candidates: u64_field(c, "candidates")?,
                    peak_bytes_max: u64_field(c, "peak_bytes_max")?,
                    cache_hit_rate_mean: f64_field(c, "cache_hit_rate_mean")?,
                    graph_makespan_ratio: f64_opt(c, "graph_makespan_ratio")?,
                    drift_readvise_ms: f64_opt(c, "drift_readvise_ms")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let failures = arr_field(&doc, "failures")?
            .iter()
            .map(|f| {
                Ok(InvariantFailure {
                    scenario: str_field(f, "scenario")?,
                    invariant: str_field(f, "invariant")?,
                    detail: str_field(f, "detail")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(FleetReport {
            schema_version: version,
            seed: u64_field(&doc, "seed")?,
            count: u64_field(&doc, "count")? as u32,
            fingerprint: str_field(&doc, "fingerprint")?,
            counting_allocator: doc
                .req("counting_allocator")
                .map_err(|e| e.to_string())?
                .as_bool()
                .ok_or("`counting_allocator` is not a bool")?,
            failures,
            scenarios,
            classes,
            total_ms: f64_field(&doc, "total_ms")?,
        })
    }
}

// ---------------------------------------------------------------------
// Diff mode

/// Knobs of [`diff_reports`]. The relative `tolerance` is the gate; the
/// absolute floors keep micro-scale noise from tripping it — a class
/// whose rank takes 50 µs can triple on a context switch, which is not
/// a regression. A metric only regresses when it is beyond tolerance
/// *and* its absolute change clears the floor.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffOptions {
    /// Allowed relative change (`0.5` = +50% latency / −33% throughput).
    pub tolerance: f64,
    /// Absolute latency slack (ms) under which changes are noise.
    pub latency_floor_ms: f64,
    /// Absolute peak-memory slack (bytes) under which changes are noise.
    pub bytes_floor: u64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            tolerance: 0.5,
            latency_floor_ms: 5.0,
            bytes_floor: 1 << 20,
        }
    }
}

impl DiffOptions {
    /// Default floors with a custom relative tolerance.
    pub fn with_tolerance(tolerance: f64) -> Self {
        Self {
            tolerance,
            ..Self::default()
        }
    }

    /// Zero floors: every relative change beyond tolerance regresses.
    /// For deterministic tests on synthetic reports, not wall-clock data.
    pub fn strict(tolerance: f64) -> Self {
        Self {
            tolerance,
            latency_floor_ms: 0.0,
            bytes_floor: 0,
        }
    }
}

/// Outcome of comparing two fleet reports.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffOutcome {
    /// One comparison line per class and metric.
    pub lines: Vec<String>,
    /// Regressions beyond tolerance (empty ⇒ pass).
    pub regressions: Vec<String>,
}

impl DiffOutcome {
    /// Whether the current report is no worse than the baseline.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Relative change `current / baseline - 1`, with 0-baselines skipped.
fn ratio(baseline: f64, current: f64) -> Option<f64> {
    if baseline <= 0.0 || current < 0.0 {
        None
    } else {
        Some(current / baseline - 1.0)
    }
}

/// Compares `current` against `baseline` under [`DiffOptions`].
///
/// Exact fields (seed, count, fingerprint, invariant outcomes) must
/// match — a mismatch means the two runs measured different fleets and
/// no metric comparison is meaningful.
pub fn diff_reports(
    baseline: &FleetReport,
    current: &FleetReport,
    options: &DiffOptions,
) -> Result<DiffOutcome, String> {
    let tolerance = options.tolerance;
    if baseline.schema_version > current.schema_version {
        return Err(format!(
            "schema_version mismatch: baseline {} is newer than current {}",
            baseline.schema_version, current.schema_version
        ));
    }
    if (baseline.seed, baseline.count) != (current.seed, current.count) {
        return Err(format!(
            "fleet mismatch: baseline seed {}/count {} vs current seed {}/count {}",
            baseline.seed, baseline.count, current.seed, current.count
        ));
    }
    if baseline.fingerprint != current.fingerprint {
        return Err(format!(
            "scenario-set fingerprint mismatch: {} vs {} (generator changed?)",
            baseline.fingerprint, current.fingerprint
        ));
    }
    if !(tolerance.is_finite() && tolerance >= 0.0) {
        return Err(format!(
            "tolerance must be a finite non-negative ratio, got {tolerance}"
        ));
    }

    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    for failure in &current.failures {
        regressions.push(format!(
            "invariant {} broke on {}: {}",
            failure.invariant, failure.scenario, failure.detail
        ));
    }

    let baseline_classes: BTreeMap<&str, &ClassAggregate> = baseline
        .classes
        .iter()
        .map(|c| (c.class.as_str(), c))
        .collect();
    for class in &current.classes {
        let Some(base) = baseline_classes.get(class.class.as_str()) else {
            regressions.push(format!("class {} missing from baseline", class.class));
            continue;
        };
        if base.candidates != class.candidates {
            regressions.push(format!(
                "class {}: candidate space changed {} -> {}",
                class.class, base.candidates, class.candidates
            ));
        }
        // Latency: higher is worse.
        for (metric, b, c) in [
            ("rank_ms_p50", base.rank_ms_p50, class.rank_ms_p50),
            ("rank_ms_p99", base.rank_ms_p99, class.rank_ms_p99),
        ] {
            if let Some(delta) = ratio(b, c) {
                lines.push(format!(
                    "{:<34} {metric:<12} {b:>10.3} -> {c:>10.3}  ({:+.1}%)",
                    class.class,
                    delta * 100.0
                ));
                if delta > tolerance && c - b > options.latency_floor_ms {
                    regressions.push(format!(
                        "class {}: {metric} regressed {b:.3} -> {c:.3} ({:+.1}% > +{:.0}%)",
                        class.class,
                        delta * 100.0,
                        tolerance * 100.0
                    ));
                }
            }
        }
        // Throughput: lower is worse.
        if let Some(delta) = ratio(base.throughput_per_s, class.throughput_per_s) {
            lines.push(format!(
                "{:<34} {:<12} {:>10.3} -> {:>10.3}  ({:+.1}%)",
                class.class,
                "scen_per_s",
                base.throughput_per_s,
                class.throughput_per_s,
                delta * 100.0
            ));
            let floor = 1.0 / (1.0 + tolerance) - 1.0;
            // Noise floor in time domain: the per-scenario wall-clock
            // implied by the throughputs must differ by more than the
            // latency slack.
            let ms_per_scenario = |throughput: f64| {
                if throughput > 0.0 {
                    1e3 / throughput
                } else {
                    0.0
                }
            };
            let slowed_ms =
                ms_per_scenario(class.throughput_per_s) - ms_per_scenario(base.throughput_per_s);
            if delta < floor && slowed_ms > options.latency_floor_ms {
                regressions.push(format!(
                    "class {}: throughput regressed {:.3} -> {:.3}/s ({:+.1}% < {:.0}%)",
                    class.class,
                    base.throughput_per_s,
                    class.throughput_per_s,
                    delta * 100.0,
                    floor * 100.0
                ));
            }
        }
        // Evaluation throughput: lower is worse. A 0 baseline (pre-v2
        // document) is skipped by `ratio`.
        if let Some(delta) = ratio(base.candidates_per_sec, class.candidates_per_sec) {
            lines.push(format!(
                "{:<34} {:<12} {:>10.0} -> {:>10.0}  ({:+.1}%)",
                class.class,
                "cand_per_s",
                base.candidates_per_sec,
                class.candidates_per_sec,
                delta * 100.0
            ));
            let floor = 1.0 / (1.0 + tolerance) - 1.0;
            if delta < floor {
                regressions.push(format!(
                    "class {}: candidates_per_sec regressed {:.0} -> {:.0}/s ({:+.1}% < {:.0}%)",
                    class.class,
                    base.candidates_per_sec,
                    class.candidates_per_sec,
                    delta * 100.0,
                    floor * 100.0
                ));
            }
        }
        // Peak memory: only comparable when both runs had the probe.
        if baseline.counting_allocator && current.counting_allocator {
            if let Some(delta) = ratio(base.peak_bytes_max as f64, class.peak_bytes_max as f64) {
                lines.push(format!(
                    "{:<34} {:<12} {:>10} -> {:>10}  ({:+.1}%)",
                    class.class,
                    "peak_bytes",
                    base.peak_bytes_max,
                    class.peak_bytes_max,
                    delta * 100.0
                ));
                if delta > tolerance
                    && class.peak_bytes_max.saturating_sub(base.peak_bytes_max)
                        > options.bytes_floor
                {
                    regressions.push(format!(
                        "class {}: peak_bytes_max regressed {} -> {} ({:+.1}% > +{:.0}%)",
                        class.class,
                        base.peak_bytes_max,
                        class.peak_bytes_max,
                        delta * 100.0,
                        tolerance * 100.0
                    ));
                }
            }
        }
    }
    for base in &baseline.classes {
        if !current.classes.iter().any(|c| c.class == base.class) {
            regressions.push(format!("class {} missing from current run", base.class));
        }
    }
    Ok(DiffOutcome { lines, regressions })
}

/// Injects a synthetic slowdown of `factor` (>1) into every measured
/// metric: latencies multiply, throughput divides. Exact fields are
/// untouched, so the canary stays diffable against its source — this
/// exists to prove the diff gate trips.
pub fn apply_canary(report: &mut FleetReport, factor: f64) {
    for m in &mut report.scenarios {
        m.rank_ms *= factor;
        m.alloc_ms *= factor;
        m.whatif_ms *= factor;
        m.candidates_per_sec /= factor;
        m.peak_bytes = (m.peak_bytes as f64 * factor) as u64;
    }
    for c in &mut report.classes {
        c.rank_ms_p50 *= factor;
        c.rank_ms_p99 *= factor;
        c.throughput_per_s /= factor;
        c.candidates_per_sec /= factor;
        c.peak_bytes_max = (c.peak_bytes_max as f64 * factor) as u64;
    }
    report.total_ms *= factor;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_report() -> FleetReport {
        run_fleet(7, 6, &ScenarioSpace::default()).unwrap()
    }

    #[test]
    fn fleet_runs_clean_and_round_trips() {
        let report = small_report();
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(report.scenarios.len(), 6);
        assert!(!report.classes.is_empty());
        let text = report.to_json_string();
        let back = FleetReport::from_json_str(&text).unwrap();
        assert_eq!(back.fingerprint, report.fingerprint);
        assert_eq!(back.scenarios, report.scenarios);
        assert_eq!(back.classes, report.classes);
    }

    #[test]
    fn exact_fields_are_reproducible() {
        let a = run_fleet(7, 6, &ScenarioSpace::default()).unwrap();
        let b = run_fleet(7, 6, &ScenarioSpace::default()).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.failures, b.failures);
        for (x, y) in a.scenarios.iter().zip(&b.scenarios) {
            assert_eq!((x.id, &x.label, &x.class), (y.id, &y.label, &y.class));
            assert_eq!(
                (x.candidates, x.fragments, x.disks),
                (y.candidates, y.fragments, y.disks)
            );
        }
        let c = run_fleet(8, 6, &ScenarioSpace::default()).unwrap();
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn diff_passes_against_itself_and_catches_a_canary() {
        let report = small_report();
        let strict = DiffOptions::strict(0.5);
        let clean = diff_reports(&report, &report, &strict).unwrap();
        assert!(clean.passed(), "{:?}", clean.regressions);

        let mut slowed = report.clone();
        apply_canary(&mut slowed, 4.0);
        let tripped = diff_reports(&report, &slowed, &strict).unwrap();
        assert!(!tripped.passed());
        assert!(tripped
            .regressions
            .iter()
            .any(|r| r.contains("rank_ms_p50")));
        assert!(tripped.regressions.iter().any(|r| r.contains("throughput")));
    }

    #[test]
    fn noise_floors_swallow_micro_jitter_but_not_real_slowdowns() {
        let report = small_report();
        let mut jittered = report.clone();
        // Micro-jitter: +1 ms on a sub-millisecond class is a huge ratio
        // but stays under the 5 ms latency floor.
        jittered.classes[0].rank_ms_p50 += 1.0;
        jittered.classes[0].rank_ms_p99 += 1.0;
        let outcome = diff_reports(&report, &jittered, &DiffOptions::with_tolerance(0.5)).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.regressions);

        // A genuine slowdown clears both the ratio and the floor.
        let mut slowed = report.clone();
        slowed.classes[0].rank_ms_p50 += 50.0;
        slowed.classes[0].rank_ms_p99 += 50.0;
        let outcome = diff_reports(&report, &slowed, &DiffOptions::with_tolerance(0.5)).unwrap();
        assert!(!outcome.passed());
    }

    #[test]
    fn diff_rejects_incomparable_fleets() {
        let report = small_report();
        let strict = DiffOptions::strict(0.5);
        let mut other = report.clone();
        other.fingerprint = "0000000000000000".into();
        assert!(diff_reports(&report, &other, &strict)
            .unwrap_err()
            .contains("fingerprint"));
        let mut other = report.clone();
        other.seed = 9;
        assert!(diff_reports(&report, &other, &strict)
            .unwrap_err()
            .contains("fleet mismatch"));
        assert!(diff_reports(&report, &report, &DiffOptions::strict(-1.0)).is_err());
    }

    #[test]
    fn unsupported_schema_version_is_rejected() {
        let text = small_report()
            .to_json_string()
            .replace("\"schema_version\": 4", "\"schema_version\": 99");
        assert!(FleetReport::from_json_str(&text)
            .unwrap_err()
            .contains("schema_version"));
    }

    /// Simulates an older document: drops `keys` from every object in
    /// the tree and rewrites the version marker.
    fn downgrade(report: &FleetReport, version: u64, keys: &[&str]) -> String {
        fn strip(json: &mut Json, keys: &[&str]) {
            match json {
                Json::Obj(members) => {
                    members.retain(|(k, _)| !keys.contains(&k.as_str()));
                    for (_, v) in members {
                        strip(v, keys);
                    }
                }
                Json::Arr(items) => {
                    for v in items {
                        strip(v, keys);
                    }
                }
                _ => {}
            }
        }
        let mut doc = warlock_json::parse(&report.to_json_string()).unwrap();
        strip(&mut doc, keys);
        if let Json::Obj(members) = &mut doc {
            for (k, v) in members {
                if k == "schema_version" {
                    *v = Json::Int(version as i64);
                }
            }
        }
        doc.pretty()
    }

    #[test]
    fn v1_documents_parse_with_candidates_per_sec_defaulted() {
        // A v1 document has no `candidates_per_sec` (nor the v3 quality
        // numbers); strip the fields and downgrade the version marker
        // to simulate one.
        let report = small_report();
        let text = downgrade(
            &report,
            1,
            &[
                "candidates_per_sec",
                "greedy_heat_imbalance",
                "graph_heat_imbalance",
                "graph_makespan_ratio",
                "drift_detect_batches",
                "drift_readvise_ms",
            ],
        );
        let parsed = FleetReport::from_json_str(&text).expect("v1 document must parse");
        assert!(parsed.scenarios.iter().all(|m| m.candidates_per_sec == 0.0));
        assert!(parsed.classes.iter().all(|c| c.candidates_per_sec == 0.0));
        // Diffing a v1 baseline against a v3 current skips the new
        // metrics instead of erroring.
        let outcome = diff_reports(&parsed, &report, &DiffOptions::strict(0.5)).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.regressions);
    }

    #[test]
    fn v2_documents_parse_with_quality_numbers_defaulted() {
        // A v2 document predates the policy judge: no heat-imbalance or
        // makespan-ratio fields anywhere.
        let report = small_report();
        let text = downgrade(
            &report,
            2,
            &[
                "greedy_heat_imbalance",
                "graph_heat_imbalance",
                "graph_makespan_ratio",
                "drift_detect_batches",
                "drift_readvise_ms",
            ],
        );
        let parsed = FleetReport::from_json_str(&text).expect("v2 document must parse");
        assert!(parsed
            .scenarios
            .iter()
            .all(|m| m.graph_makespan_ratio == 0.0 && m.greedy_heat_imbalance == 0.0));
        assert!(parsed.classes.iter().all(|c| c.graph_makespan_ratio == 0.0));
        // …and v2 keeps its gated metrics, so the diff still runs.
        assert!(parsed.scenarios.iter().any(|m| m.candidates_per_sec > 0.0));
        let outcome = diff_reports(&parsed, &report, &DiffOptions::strict(0.5)).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.regressions);
    }

    #[test]
    fn quality_numbers_are_recorded_and_non_gating() {
        let report = small_report();
        // Every clean scenario carries the judged quality numbers…
        for m in &report.scenarios {
            assert!(m.greedy_heat_imbalance >= 1.0 - 1e-9, "{}", m.label);
            assert!(m.graph_heat_imbalance >= 1.0 - 1e-9, "{}", m.label);
            assert!(m.graph_makespan_ratio > 0.0, "{}", m.label);
        }
        assert!(report.classes.iter().all(|c| c.graph_makespan_ratio > 0.0));
        // …and wrecking them never trips the diff gate.
        let mut wrecked = report.clone();
        for m in &mut wrecked.scenarios {
            m.graph_makespan_ratio *= 100.0;
            m.greedy_heat_imbalance *= 100.0;
            m.graph_heat_imbalance *= 100.0;
        }
        for c in &mut wrecked.classes {
            c.graph_makespan_ratio *= 100.0;
        }
        let outcome = diff_reports(&report, &wrecked, &DiffOptions::strict(0.5)).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.regressions);
    }

    #[test]
    fn v3_documents_parse_with_drift_numbers_defaulted() {
        // A v3 document predates the resident-optimizer replay: no
        // drift fields anywhere.
        let report = small_report();
        let text = downgrade(&report, 3, &["drift_detect_batches", "drift_readvise_ms"]);
        let parsed = FleetReport::from_json_str(&text).expect("v3 document must parse");
        assert!(parsed
            .scenarios
            .iter()
            .all(|m| m.drift_detect_batches == 0.0 && m.drift_readvise_ms == 0.0));
        assert!(parsed.classes.iter().all(|c| c.drift_readvise_ms == 0.0));
        let outcome = diff_reports(&parsed, &report, &DiffOptions::strict(0.5)).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.regressions);
    }

    #[test]
    fn drift_numbers_are_recorded_and_non_gating() {
        let report = small_report();
        // The 6-scenario fleet contains exactly one Drifting-mix
        // member (mix shape cycles fastest in the coverage grid), and
        // its seeded trajectory must have fired the auto re-advise.
        let drifting: Vec<_> = report
            .scenarios
            .iter()
            .filter(|m| m.drift_detect_batches > 0.0)
            .collect();
        assert_eq!(drifting.len(), 1, "expected exactly one drifting member");
        assert!(drifting[0].drift_readvise_ms > 0.0, "{}", drifting[0].label);
        assert!(report.classes.iter().any(|c| c.drift_readvise_ms > 0.0));
        // Non-drifting members carry zeros.
        assert!(report
            .scenarios
            .iter()
            .filter(|m| m.drift_detect_batches == 0.0)
            .all(|m| m.drift_readvise_ms == 0.0));
        // Wrecking the drift numbers never trips the diff gate.
        let mut wrecked = report.clone();
        for m in &mut wrecked.scenarios {
            m.drift_detect_batches *= 100.0;
            m.drift_readvise_ms *= 100.0;
        }
        for c in &mut wrecked.classes {
            c.drift_readvise_ms *= 100.0;
        }
        let outcome = diff_reports(&report, &wrecked, &DiffOptions::strict(0.5)).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.regressions);
        // …and the numbers survive a JSON round-trip.
        let parsed = FleetReport::from_json_str(&report.to_json_string()).unwrap();
        let round_tripped = parsed
            .scenarios
            .iter()
            .find(|m| m.label == drifting[0].label)
            .unwrap();
        assert_eq!(
            round_tripped.drift_detect_batches,
            drifting[0].drift_detect_batches
        );
        assert_eq!(
            round_tripped.drift_readvise_ms,
            drifting[0].drift_readvise_ms
        );
    }
}
