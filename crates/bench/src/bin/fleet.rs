//! Scenario-fleet perf-trajectory harness.
//!
//! Usage:
//!
//! ```text
//! fleet run    [--seed N] [--count N] [--out PATH] [--quiet]
//! fleet diff   <baseline.json> <current.json> [--tolerance F]
//! fleet canary <in.json> <out.json> [--factor F]
//! fleet list   [--seed N] [--count N]
//! ```
//!
//! `run` generates the seeded fleet, drives every scenario through
//! rank → allocate → what-if under the cross-cutting invariants, and
//! writes the versioned `BENCH_*.json` perf-trajectory document.
//! `diff` compares two such documents (exact fields exactly, measured
//! metrics under `--tolerance`, default 0.5 = +50%) and exits non-zero
//! on regression. `canary` injects a synthetic slowdown into a report —
//! a self-test proving the diff gate trips. `list` prints the scenario
//! set without running anything.

use std::process::ExitCode;

use warlock_bench::alloc_probe::CountingAlloc;
use warlock_bench::fleet::{apply_canary, diff_reports, run_fleet, DiffOptions, FleetReport};
use warlock_scenarios::{generate_fleet, ScenarioSpace};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const DEFAULT_SEED: u64 = 42;
const DEFAULT_COUNT: u32 = 25;
const DEFAULT_TOLERANCE: f64 = 0.5;
const DEFAULT_FACTOR: f64 = 4.0;

struct Args {
    positional: Vec<String>,
    seed: u64,
    count: u32,
    out: Option<String>,
    tolerance: f64,
    factor: f64,
    quiet: bool,
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        seed: DEFAULT_SEED,
        count: DEFAULT_COUNT,
        out: None,
        tolerance: DEFAULT_TOLERANCE,
        factor: DEFAULT_FACTOR,
        quiet: false,
    };
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} expects a value"))
        };
        match arg.as_str() {
            "--seed" => args.seed = parse_num(value("--seed")?, "--seed")?,
            "--count" => args.count = parse_num(value("--count")?, "--count")?,
            "--out" => args.out = Some(value("--out")?.clone()),
            "--tolerance" => args.tolerance = parse_float(value("--tolerance")?, "--tolerance")?,
            "--factor" => args.factor = parse_float(value("--factor")?, "--factor")?,
            "--quiet" => args.quiet = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => args.positional.push(other.to_string()),
        }
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: `{value}` is not a valid number"))
}

fn parse_float(value: &str, flag: &str) -> Result<f64, String> {
    let parsed: f64 = parse_num(value, flag)?;
    if !parsed.is_finite() || parsed < 0.0 {
        return Err(format!("{flag}: `{value}` must be finite and non-negative"));
    }
    Ok(parsed)
}

fn load(path: &str) -> Result<FleetReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    FleetReport::from_json_str(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let report = run_fleet(args.seed, args.count, &ScenarioSpace::default())?;
    if !args.quiet {
        eprintln!(
            "fleet: {} scenarios (seed {}, fingerprint {}) in {:.0} ms, \
             counting allocator {}",
            report.scenarios.len(),
            report.seed,
            report.fingerprint,
            report.total_ms,
            if report.counting_allocator {
                "on"
            } else {
                "off"
            },
        );
        for class in &report.classes {
            eprintln!(
                "  {:<34} n={} rank p50 {:>8.3} ms  p99 {:>8.3} ms  {:>7.1}/s  eval {:>9.0} cand/s  peak {:>9} B",
                class.class,
                class.scenarios,
                class.rank_ms_p50,
                class.rank_ms_p99,
                class.throughput_per_s,
                class.candidates_per_sec,
                class.peak_bytes_max,
            );
        }
    }
    let text = report.to_json_string();
    match &args.out {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?;
            if !args.quiet {
                eprintln!("fleet: wrote {path}");
            }
        }
        None => print!("{text}"),
    }
    if !report.failures.is_empty() {
        for failure in &report.failures {
            eprintln!(
                "fleet: INVARIANT {} broke on {}: {}",
                failure.invariant, failure.scenario, failure.detail
            );
        }
        return Err(format!("{} invariant failure(s)", report.failures.len()));
    }
    Ok(())
}

fn cmd_diff(args: &Args) -> Result<(), String> {
    let [baseline_path, current_path] = args.positional.as_slice() else {
        return Err("diff expects exactly two report paths".into());
    };
    let baseline = load(baseline_path)?;
    let current = load(current_path)?;
    let outcome = diff_reports(
        &baseline,
        &current,
        &DiffOptions::with_tolerance(args.tolerance),
    )?;
    if !args.quiet {
        for line in &outcome.lines {
            println!("{line}");
        }
    }
    if outcome.passed() {
        println!(
            "fleet diff: PASS ({} comparisons within ±{:.0}%)",
            outcome.lines.len(),
            args.tolerance * 100.0
        );
        Ok(())
    } else {
        for regression in &outcome.regressions {
            eprintln!("fleet diff: REGRESSION {regression}");
        }
        Err(format!("{} regression(s)", outcome.regressions.len()))
    }
}

fn cmd_canary(args: &Args) -> Result<(), String> {
    let [input, output] = args.positional.as_slice() else {
        return Err("canary expects an input and an output path".into());
    };
    let mut report = load(input)?;
    apply_canary(&mut report, args.factor);
    std::fs::write(output, report.to_json_string()).map_err(|e| format!("{output}: {e}"))?;
    if !args.quiet {
        eprintln!(
            "fleet: wrote {output} with a ×{} synthetic slowdown",
            args.factor
        );
    }
    Ok(())
}

fn cmd_list(args: &Args) -> Result<(), String> {
    let fleet = generate_fleet(args.seed, args.count as usize, &ScenarioSpace::default());
    for scenario in &fleet {
        let parsed = &scenario.parsed;
        println!(
            "{:<40} dims={} rows={:>9} disks={:>3} classes={}",
            scenario.label(),
            parsed.schema.num_dimensions(),
            parsed.schema.fact_rows(0),
            parsed.system.num_disks,
            parsed.mix.len(),
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (command, rest) = match args.positional.split_first() {
        Some((cmd, rest)) => (cmd.clone(), rest.to_vec()),
        None => {
            eprintln!(
                "usage: fleet <run|diff|canary|list> [args]  (see the module docs in src/bin/fleet.rs)"
            );
            return ExitCode::FAILURE;
        }
    };
    let args = Args {
        positional: rest,
        ..args
    };
    let result = match command.as_str() {
        "run" => cmd_run(&args),
        "diff" => cmd_diff(&args),
        "canary" => cmd_canary(&args),
        "list" => cmd_list(&args),
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fleet: {e}");
            ExitCode::FAILURE
        }
    }
}
