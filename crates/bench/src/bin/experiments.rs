//! WARLOCK experiment harness: regenerates every table/figure of
//! EXPERIMENTS.md (experiment ids from DESIGN.md §4).
//!
//! Usage: `cargo run --release -p warlock-bench --bin experiments [ID...]`
//! with ids `e1..e10`, `v1`, or `all` (default).

use std::env;

use warlock::report::{render_allocation, render_analysis, render_ranking};
use warlock::AdvisorConfig;
use warlock_alloc::{allocate, AllocationPolicy};
use warlock_bench::{Fixture, SmallFixture};
use warlock_bitmap::estimate;
use warlock_fragment::{FragmentLayout, Fragmentation, SkewModelExt};
use warlock_skew::DimensionSkew;
use warlock_storage::{Architecture, PrefetchPolicy};

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13",
            "e14", "v1",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        match id {
            "e1" => e1(),
            "e2" => e2(),
            "e3" => e3(),
            "e4" => e4(),
            "e5" => e5(),
            "e6" => e6(),
            "e7" => e7(),
            "e8" => e8(),
            "e9" => e9(),
            "e10" => e10(),
            "e11" => e11(),
            "e12" => e12(),
            "e13" => e13(),
            "e14" => e14(),
            "v1" => v1(),
            other => eprintln!("unknown experiment id: {other}"),
        }
    }
}

fn heading(id: &str, title: &str) {
    println!("\n=== {} — {} ===\n", id.to_uppercase(), title);
}

/// E1: the Fig.-2 per-fragmentation query statistic of the winner.
fn e1() {
    heading("e1", "per-fragmentation query analysis (Fig. 2 top)");
    let f = Fixture::demo();
    let advisor = f.session();
    let report = advisor.run().expect("pipeline runs");
    let top = report.top().expect("candidates survive");
    println!(
        "{}",
        render_analysis(
            &advisor
                .analyze_candidate(&top.cost.fragmentation)
                .expect("analyzes")
        )
    );
}

/// E2: the twofold-ranked candidate list.
fn e2() {
    heading("e2", "ranked fragmentation candidates (twofold ranking)");
    let f = Fixture::demo();
    let config = AdvisorConfig {
        top_n: 15,
        ..Default::default()
    };
    let report = f.session_with(config).run().expect("pipeline runs");
    println!("{}", render_ranking(&report));
}

/// E3: the clustering-vs-declustering trade-off scatter.
fn e3() {
    heading("e3", "throughput vs response trade-off over all candidates");
    let f = Fixture::demo();
    let advisor = f.session();
    let ctx = advisor.threshold_context();
    let candidates = warlock_fragment::enumerate_candidates(&f.schema, 4);
    let mut rows: Vec<(String, u64, f64, f64)> = Vec::new();
    for frag in candidates {
        if frag.num_fragments(&f.schema) > 1 << 20 {
            continue;
        }
        let layout = FragmentLayout::new(&f.schema, frag, 0);
        if advisor.config().thresholds.check(&layout, ctx).is_err() {
            continue;
        }
        let cost = advisor.evaluate(layout.fragmentation()).expect("evaluates");
        rows.push((
            layout.fragmentation().label(&f.schema),
            layout.num_fragments(),
            cost.io_cost_ms,
            cost.response_ms,
        ));
    }
    rows.sort_by(|a, b| a.2.total_cmp(&b.2));
    println!(
        "{:<52} {:>10} {:>14} {:>14}  pareto",
        "fragmentation", "#frags", "io-cost [ms]", "response [ms]"
    );
    println!("{}", "-".repeat(102));
    let mut best_rt = f64::INFINITY;
    for (label, frags, io, rt) in &rows {
        let pareto = *rt < best_rt;
        if pareto {
            best_rt = *rt;
        }
        println!(
            "{:<52} {:>10} {:>14.1} {:>14.1}  {}",
            label,
            frags,
            io,
            rt,
            if pareto { "*" } else { "" }
        );
    }
    println!("\n(* = Pareto-optimal: no candidate with lower I/O cost has lower response)");
}

/// E4: response-time speedup vs number of disks.
fn e4() {
    heading(
        "e4",
        "response time vs number of disks (declustering speedup)",
    );
    let candidates = [
        (
            "1-D time.month",
            Fragmentation::from_pairs(&[(2, 2)]).unwrap(),
        ),
        (
            "2-D product.line × time.month",
            Fragmentation::from_pairs(&[(0, 1), (2, 2)]).unwrap(),
        ),
        (
            "3-D line × month × channel",
            Fragmentation::from_pairs(&[(0, 1), (2, 2), (3, 0)]).unwrap(),
        ),
    ];
    print!("{:<8}", "disks");
    for (name, _) in &candidates {
        print!(" {:>32}", name);
    }
    println!();
    println!("{}", "-".repeat(108));
    for disks in [1u32, 2, 4, 8, 16, 32, 64, 128] {
        let f = Fixture::with_disks(disks);
        let advisor = f.session();
        print!("{:<8}", disks);
        for (_, frag) in &candidates {
            let rt = advisor.evaluate(frag).expect("evaluates").response_ms;
            print!(" {:>30.1}ms", rt);
        }
        println!();
    }
    println!("\n(weighted mix response; speedup saturates once accessed fragments < disks)");
}

/// E5: prefetch-granule sensitivity.
fn e5() {
    heading("e5", "prefetch granule sensitivity (fixed vs auto)");
    let frag = Fragmentation::from_pairs(&[(0, 1), (2, 2)]).unwrap();
    println!(
        "{:<12} {:>14} {:>14} {:>12}",
        "granule", "io-cost [ms]", "response [ms]", "I/Os"
    );
    println!("{}", "-".repeat(56));
    for pages in [1u32, 2, 4, 8, 16, 32, 64, 128, 256] {
        let mut f = Fixture::demo();
        f.system.fact_prefetch = PrefetchPolicy::Fixed(pages);
        f.system.bitmap_prefetch = PrefetchPolicy::Fixed(pages);
        let cost = f.session().evaluate(&frag).expect("evaluates");
        println!(
            "{:<12} {:>14.1} {:>14.1} {:>12.0}",
            format!("fixed {pages}"),
            cost.io_cost_ms,
            cost.response_ms,
            cost.total_ios
        );
    }
    let f = Fixture::demo(); // auto policy is the default
    let cost = f.session().evaluate(&frag).expect("evaluates");
    println!(
        "{:<12} {:>14.1} {:>14.1} {:>12.0}",
        "auto", cost.io_cost_ms, cost.response_ms, cost.total_ios
    );
    println!("\n(auto picks per-object optima: fragment-sized for fact, vector-sized for bitmaps)");
}

/// E6: skew sweep — round-robin vs greedy allocation.
fn e6() {
    heading(
        "e6",
        "data skew: round-robin vs greedy size-based allocation",
    );
    let f = Fixture::demo();
    let frag = Fragmentation::from_pairs(&[(0, 1), (2, 2)]).unwrap(); // line × month
    println!(
        "{:<8} {:>15} {:>15} {:>12} {:>12} {:>18}",
        "zipf θ", "rr imbalance", "greedy imbal.", "rr cv", "greedy cv", "auto picks"
    );
    println!("{}", "-".repeat(86));
    for &theta in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        let skew = f.schema.skew_model(&[
            DimensionSkew::zipf(theta),
            DimensionSkew::UNIFORM,
            DimensionSkew::UNIFORM,
            DimensionSkew::UNIFORM,
        ]);
        let layout = FragmentLayout::new(&f.schema, frag.clone(), 0);
        let rows = layout.fragment_rows(&f.schema, &skew);
        let row_bytes = u64::from(f.schema.fact_row_bytes(0));
        let sizes: Vec<u64> = rows.iter().map(|&r| r * row_bytes).collect();
        let rr = allocate(sizes.clone(), 16, AllocationPolicy::RoundRobin).occupancy_stats();
        let greedy = allocate(sizes.clone(), 16, AllocationPolicy::GreedySize).occupancy_stats();
        let auto = allocate(sizes, 16, AllocationPolicy::default());
        println!(
            "{:<8} {:>15.3} {:>15.3} {:>12.3} {:>12.3} {:>18}",
            theta,
            rr.imbalance,
            greedy.imbalance,
            rr.cv,
            greedy.cv,
            match auto.scheme() {
                warlock_alloc::AllocationScheme::RoundRobin => "round-robin",
                warlock_alloc::AllocationScheme::GreedySize => "greedy",
                warlock_alloc::AllocationScheme::GreedyHeat => "heat",
                warlock_alloc::AllocationScheme::GraphPartition => "graph",
            }
        );
    }
    println!("\n(paper §2: greedy size-based allocation under notable data skew)");
}

/// E7: bitmap scheme — standard vs hierarchically encoded.
fn e7() {
    heading("e7", "bitmap scheme: standard vs hierarchically encoded");
    let f = Fixture::demo();
    let frag = Fragmentation::from_pairs(&[(0, 1), (2, 2)]).unwrap();
    let layout = FragmentLayout::new(&f.schema, frag, 0);
    let rows = (layout.uniform_rows_per_fragment().round() as u64).max(1);
    println!(
        "{:<22} {:>12} {:>10} {:>22} {:>22} {:>18}",
        "attribute", "cardinality", "kind", "stored pages/frag", "point-read pages", "space vs std"
    );
    println!("{}", "-".repeat(112));
    for r in f.schema.all_level_refs() {
        let dim = f.schema.dimension(r.dimension).unwrap();
        let level = dim.level(r.level).unwrap();
        let card = level.cardinality();
        let label = format!("{}.{}", dim.name(), level.name());
        let access = f.scheme.access_for(&f.schema, r.dimension, r.level);
        let (kind, stored, read) = match access {
            Some(warlock_bitmap::IndexKind::Standard { cardinality }) => (
                "standard",
                estimate::standard_stored_pages(rows, cardinality, f.system.page),
                estimate::standard_read_pages(rows, 1, f.system.page),
            ),
            Some(warlock_bitmap::IndexKind::Encoded { slices }) => {
                let enc = warlock_bitmap::HierarchicalEncoding::for_dimension(dim);
                (
                    "encoded",
                    estimate::encoded_stored_pages(rows, enc.total_bits(), f.system.page),
                    estimate::encoded_read_pages(rows, slices, f.system.page),
                )
            }
            None => ("-", 0, 0),
        };
        let std_pages = estimate::standard_stored_pages(rows, card, f.system.page);
        let ratio = if stored > 0 {
            format!("{:.1}x", std_pages as f64 / stored as f64)
        } else {
            "-".into()
        };
        println!(
            "{:<22} {:>12} {:>10} {:>22} {:>22} {:>18}",
            label, card, kind, stored, read, ratio
        );
    }
    println!("\n(encoded indexes trade point-read cost for massive space savings on high-cardinality attributes)");
}

/// E8: fragmentation dimensionality study.
fn e8() {
    heading("e8", "fragmentation dimensionality vs performance");
    let f = Fixture::demo();
    let advisor = f.session();
    let ctx = advisor.threshold_context();
    println!(
        "{:<6} {:<44} {:>10} {:>14} {:>14}",
        "dims", "best candidate (by response)", "#frags", "io-cost [ms]", "response [ms]"
    );
    println!("{}", "-".repeat(94));
    for d in 0..=4usize {
        let mut best: Option<(String, u64, f64, f64)> = None;
        for frag in warlock_fragment::enumerate_candidates(&f.schema, d) {
            if frag.dimensionality() != d || frag.num_fragments(&f.schema) > 1 << 20 {
                continue;
            }
            let layout = FragmentLayout::new(&f.schema, frag, 0);
            if d > 0 && advisor.config().thresholds.check(&layout, ctx).is_err() {
                continue;
            }
            let cost = advisor.evaluate(layout.fragmentation()).expect("evaluates");
            let row = (
                layout.fragmentation().label(&f.schema),
                layout.num_fragments(),
                cost.io_cost_ms,
                cost.response_ms,
            );
            if best.as_ref().map(|b| row.3 < b.3).unwrap_or(true) {
                best = Some(row);
            }
        }
        if let Some((label, frags, io, rt)) = best {
            println!(
                "{:<6} {:<44} {:>10} {:>14.1} {:>14.1}",
                d, label, frags, io, rt
            );
        } else {
            println!("{:<6} (no candidate survives thresholds)", d);
        }
    }
    println!(
        "\n(multi-dimensional fragmentation confines more query classes; gains flatten at 3-D)"
    );
}

/// E9: Shared Everything vs Shared Disk.
fn e9() {
    heading("e9", "Shared Everything vs Shared Disk architectures");
    let frag = Fragmentation::from_pairs(&[(0, 1), (2, 2)]).unwrap();
    println!(
        "{:<14} {:<26} {:>14} {:>14}",
        "processors", "architecture", "io-cost [ms]", "response [ms]"
    );
    println!("{}", "-".repeat(72));
    for procs in [1u32, 2, 4, 8, 16, 32] {
        for (name, arch) in [
            (
                "SharedEverything",
                Architecture::SharedEverything { processors: procs },
            ),
            (
                "SharedDisk (nodes×4)",
                Architecture::shared_disk((procs / 4).max(1), procs.min(4)),
            ),
        ] {
            let mut f = Fixture::demo();
            f.system.architecture = arch;
            let cost = f.session().evaluate(&frag).expect("evaluates");
            println!(
                "{:<14} {:<26} {:>14.1} {:>14.1}",
                procs, name, cost.io_cost_ms, cost.response_ms
            );
        }
    }
    println!("\n(identical disk work; SD pays coordination overhead, low processor counts cap parallelism)");
}

/// E10: the physical allocation scheme of the winner (Fig. 2 bottom).
fn e10() {
    heading("e10", "physical allocation scheme (Fig. 2 bottom)");
    let f = Fixture::demo();
    let advisor = f.session();
    let report = advisor.run().expect("pipeline runs");
    let top = report.top().expect("candidates survive");
    println!(
        "{}",
        render_allocation(
            &advisor
                .plan_candidate(&top.cost.fragmentation)
                .expect("plans")
        )
    );
}

/// E11: ablation of the twofold ranking heuristic.
fn e11() {
    heading(
        "e11",
        "ranking ablation: twofold vs response-only vs io-only",
    );
    let f = Fixture::demo();

    // Twofold (the paper's heuristic).
    let twofold = f.session().run().expect("pipeline runs");
    let twofold_top = twofold.top().expect("candidates").clone();

    // Response-only: keep 100 % in phase 1.
    let response_only = f
        .session_with(AdvisorConfig {
            top_x_percent: 100.0,
            ..Default::default()
        })
        .run()
        .expect("pipeline runs");
    let response_top = response_only.top().expect("candidates").clone();

    // I/O-only: phase 1 keeps exactly the cheapest candidate.
    let io_only = f
        .session_with(AdvisorConfig {
            top_x_percent: 0.1,
            min_keep: 1,
            top_n: 1,
            ..Default::default()
        })
        .run()
        .expect("pipeline runs");
    let io_top = io_only.top().expect("candidates").clone();

    println!(
        "{:<16} {:<44} {:>13} {:>14} {:>16}",
        "heuristic", "winner", "io-cost [ms]", "response [ms]", "saturation [q/s]"
    );
    println!("{}", "-".repeat(108));
    for (name, top) in [
        ("twofold", &twofold_top),
        ("response-only", &response_top),
        ("io-only", &io_top),
    ] {
        let sat = warlock_cost::contention_estimate(
            top.cost.response_ms,
            top.cost.io_cost_ms,
            f.system.num_disks,
            warlock_cost::LoadPoint {
                arrivals_per_s: 0.0,
            },
        )
        .saturation_rate_per_s;
        println!(
            "{:<16} {:<44} {:>13.1} {:>14.1} {:>16.2}",
            name, top.label, top.cost.io_cost_ms, top.cost.response_ms, sat
        );
    }
    println!("\n(the twofold heuristic trades a little response for sustainable multi-user load)");
}

/// E12: multi-user load curves of competing candidates.
fn e12() {
    heading(
        "e12",
        "multi-user load curves (analytical contention model)",
    );
    let f = Fixture::demo();
    let advisor = f.session();
    let candidates = [
        (
            "line × month × channel",
            Fragmentation::from_pairs(&[(0, 1), (2, 2), (3, 0)]).unwrap(),
        ),
        (
            "family × month × channel",
            Fragmentation::from_pairs(&[(0, 2), (2, 2), (3, 0)]).unwrap(),
        ),
        ("month only", Fragmentation::from_pairs(&[(2, 2)]).unwrap()),
    ];
    let costs: Vec<_> = candidates
        .iter()
        .map(|(_, c)| advisor.evaluate(c).expect("evaluates"))
        .collect();
    print!("{:<14}", "load [q/s]");
    for (name, _) in &candidates {
        print!(" {:>28}", name);
    }
    println!();
    println!("{}", "-".repeat(102));
    for rate in [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0] {
        print!("{:<14}", rate);
        for cost in &costs {
            let est = warlock_cost::contention_estimate(
                cost.response_ms,
                cost.io_cost_ms,
                f.system.num_disks,
                warlock_cost::LoadPoint {
                    arrivals_per_s: rate,
                },
            );
            if est.response_ms.is_finite() {
                print!(" {:>26.1}ms", est.response_ms);
            } else {
                print!(" {:>28}", "saturated");
            }
        }
        println!();
    }
    println!("\n(candidates with low single-user response but high I/O cost saturate first)");
}

/// E13: range fragmentation (the general MDHF case) as an extension.
fn e13() {
    heading(
        "e13",
        "range fragmentation: intermediate granularities (MDHF extension)",
    );
    let f = Fixture::demo();
    let advisor = f.session();
    // Sweep range sizes on product.code crossed with time.month, bracketed
    // by the point candidates at the adjacent hierarchy levels.
    let candidates: Vec<(String, Fragmentation)> = vec![
        (
            "product.class × month (point)".into(),
            Fragmentation::from_pairs(&[(0, 4), (2, 2)]).unwrap(),
        ),
        (
            "product.code[r=10] × month".into(),
            Fragmentation::from_ranged_pairs(&[(0, 5, 10), (2, 2, 1)]).unwrap(),
        ),
        (
            "product.code[r=5] × month".into(),
            Fragmentation::from_ranged_pairs(&[(0, 5, 5), (2, 2, 1)]).unwrap(),
        ),
        (
            "product.code[r=2] × month".into(),
            Fragmentation::from_ranged_pairs(&[(0, 5, 2), (2, 2, 1)]).unwrap(),
        ),
        (
            "product.family × month[r=3]".into(),
            Fragmentation::from_ranged_pairs(&[(0, 2, 1), (2, 2, 3)]).unwrap(),
        ),
        (
            "product.family × quarter (point)".into(),
            Fragmentation::from_pairs(&[(0, 2), (2, 1)]).unwrap(),
        ),
    ];
    println!(
        "{:<36} {:>10} {:>14} {:>14}",
        "candidate", "#frags", "io-cost [ms]", "response [ms]"
    );
    println!("{}", "-".repeat(78));
    for (name, frag) in &candidates {
        let cost = advisor.evaluate(frag).expect("evaluates");
        println!(
            "{:<36} {:>10} {:>14.1} {:>14.1}",
            name, cost.num_fragments, cost.io_cost_ms, cost.response_ms
        );
    }
    println!(
        "\n(code[r=10] reproduces class exactly — ranges synthesize granularities between\n\
         hierarchy levels; month[r=3] likewise equals quarter)"
    );
}

/// E14: heat-based allocation under skewed access traffic (extension).
fn e14() {
    heading("e14", "heat-based allocation under access skew (extension)");
    let f = Fixture::demo();
    // month × channel layout: 216 fragments over 16 disks.
    let frag = Fragmentation::from_pairs(&[(2, 2), (3, 0)]).unwrap();
    let layout = FragmentLayout::new(&f.schema, frag, 0);
    let n = layout.num_fragments() as usize;
    // Recency traffic: the current month draws most queries, the previous
    // month half of that, history a trickle — a classic warehouse pattern
    // the paper's size-balancing schemes cannot see.
    let mut heats = vec![1.0f64; n];
    for idx in 0..n as u64 {
        let coords = layout.coords_of(idx);
        let month = coords[0];
        heats[idx as usize] = match month {
            23 => 100.0,
            22 => 50.0,
            _ => 1.0,
        };
    }
    let sizes = vec![1_000_000u64; n];

    let rr = warlock_alloc::round_robin(sizes.clone(), 16);
    let by_size = warlock_alloc::greedy_by_size(sizes.clone(), 16);
    let by_heat = warlock_alloc::greedy_by_heat(&heats, sizes, 16);

    println!(
        "{:<22} {:>16} {:>18} {:>20}",
        "scheme", "heat imbalance", "occupancy imbal.", "hot-month disks hit"
    );
    println!("{}", "-".repeat(80));
    for (name, alloc) in [
        ("round-robin", &rr),
        ("greedy by size", &by_size),
        ("greedy by heat", &by_heat),
    ] {
        let hot_disks: std::collections::BTreeSet<u32> = (0..n)
            .filter(|&i| heats[i] >= 100.0)
            .map(|i| alloc.disk_of(i))
            .collect();
        println!(
            "{:<22} {:>16.3} {:>18.3} {:>20}",
            name,
            warlock_alloc::heat_imbalance(alloc, &heats),
            alloc.occupancy_stats().imbalance,
            hot_disks.len(),
        );
    }
    println!(
        "\n(uniform sizes blind the size-based schemes to traffic: their hot disks carry 67%\n\
         more heat than average; heat-greedy balances heat to 3% at some occupancy cost —\n\
         the classic space/load trade-off)"
    );
}

/// V1: analytical model vs event-driven simulation.
fn v1() {
    heading("v1", "analytical model vs event-driven simulation");
    let f = SmallFixture::new();
    let frag = Fragmentation::from_pairs(&[(0, 1), (1, 1)]).unwrap(); // line × month
    let layout = FragmentLayout::new(&f.schema, frag, 0);
    let allocation = warlock_alloc::round_robin(
        vec![1u64; layout.num_fragments() as usize],
        f.system.num_disks,
    );
    println!(
        "single-query validation ({}):",
        layout.fragmentation().label(&f.schema)
    );
    println!(
        "{:<20} {:>14} {:>14} {:>10}",
        "query class", "analytic [ms]", "simulated [ms]", "error"
    );
    println!("{}", "-".repeat(62));
    let rows = warlock_sim::compare_single_queries(
        &f.schema,
        &f.system,
        &f.scheme,
        &f.mix,
        &layout,
        &allocation,
        25,
        42,
    );
    for r in &rows {
        println!(
            "{:<20} {:>14.1} {:>14.1} {:>9.1}%",
            r.class_name,
            r.analytic_ms,
            r.simulated_ms,
            r.relative_error * 100.0
        );
    }

    // Page-hit model validation: real synthetic rows, real bitmap
    // selection, exact page counts vs the Yao estimate.
    println!("\npage-hit model validation (materialized fragments, division predicate):");
    println!(
        "{:<12} {:>14} {:>16} {:>10}",
        "fragment", "yao estimate", "actual pages", "error"
    );
    println!("{}", "-".repeat(56));
    {
        use warlock_fragment::SkewModelExt;
        let skew = f.schema.uniform_skew_model();
        let data = warlock_sim::SyntheticFact::generate(&f.schema, &skew, 200_000, 11);
        let vlayout = FragmentLayout::new(
            &f.schema,
            Fragmentation::from_pairs(&[(1, 0)]).unwrap(), // by year: 2 fragments
            0,
        );
        let warehouse = warlock_sim::MaterializedWarehouse::build(&f.schema, &vlayout, &data);
        let (_, product) = f.schema.dimension_by_name("product").unwrap();
        for frag_id in 0..vlayout.num_fragments() {
            let column = warehouse.fragment_column(&data, frag_id, 0);
            let encoded = warlock_bitmap::EncodedBitmapIndex::build(product, &column);
            let selection = encoded.query_level(warlock_schema::LevelId(0), 1);
            let cmp = warlock_sim::compare_page_hits(&selection, 146);
            println!(
                "{:<12} {:>14.1} {:>16.1} {:>9.1}%",
                frag_id,
                cmp.estimated_pages,
                cmp.actual_pages,
                cmp.relative_error * 100.0
            );
        }
    }

    println!("\nclosed workload scaling (10 queries per stream):");
    println!(
        "{:>8} {:>16} {:>18} {:>13}",
        "streams", "mean resp [ms]", "throughput [q/s]", "utilization"
    );
    for streams in [1usize, 2, 4, 8, 16] {
        let stats = warlock_sim::closed_workload(
            &f.schema,
            &f.system,
            &f.scheme,
            &f.mix,
            &layout,
            &allocation,
            streams,
            10,
            7,
        );
        println!(
            "{:>8} {:>16.1} {:>18.2} {:>13.2}",
            streams, stats.mean_response_ms, stats.throughput_per_s, stats.utilization
        );
    }

    // Throughput heuristic check: the candidate with lower total I/O cost
    // sustains higher closed-system throughput.
    println!("\nthroughput heuristic (8 streams): io-cost rank vs simulated throughput");
    println!(
        "{:<28} {:>14} {:>18}",
        "fragmentation", "io-cost [ms]", "throughput [q/s]"
    );
    println!("{}", "-".repeat(64));
    let advisor = f.session();
    for frag in [
        Fragmentation::from_pairs(&[(0, 1), (1, 1)]).unwrap(),
        Fragmentation::from_pairs(&[(1, 1)]).unwrap(),
        Fragmentation::from_pairs(&[(2, 0)]).unwrap(),
    ] {
        let layout = FragmentLayout::new(&f.schema, frag.clone(), 0);
        let allocation = warlock_alloc::round_robin(
            vec![1u64; layout.num_fragments() as usize],
            f.system.num_disks,
        );
        let cost = advisor.evaluate(&frag).expect("evaluates");
        let stats = warlock_sim::closed_workload(
            &f.schema,
            &f.system,
            &f.scheme,
            &f.mix,
            &layout,
            &allocation,
            8,
            10,
            7,
        );
        println!(
            "{:<28} {:>14.1} {:>18.2}",
            frag.label(&f.schema),
            cost.io_cost_ms,
            stats.throughput_per_s
        );
    }
}
