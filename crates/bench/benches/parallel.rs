//! Criterion: parallel candidate evaluation, the per-session
//! evaluation cache, and the streaming candidate pipeline.
//!
//! `engine/run_workers_*` sweeps the `AdvisorConfig::parallelism` knob
//! over the full 168-candidate APB-1-like pipeline — the 4-worker point
//! is expected to finish in well under half the serial wall-clock on a
//! 4-way machine. `cache/*` contrasts a cold what-if variation (every
//! candidate re-costed) with a warm one (pure cache hits).
//!
//! `space/*` sweeps the candidate space itself: point vs ranged
//! enumeration, chunked-streaming vs materialized. A counting global
//! allocator records allocation counts and **peak live bytes** around
//! each variant (printed once before the timed runs), so the perf
//! trajectory captures the streaming memory win, not just wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use warlock::AdvisorConfig;
use warlock_bench::alloc_probe::{allocation_profile, CountingAlloc};
use warlock_bench::Fixture;
use warlock_fragment::CandidateSource;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn bench_worker_sweep(c: &mut Criterion) {
    let f = Fixture::demo();
    let mut group = c.benchmark_group("engine");
    for workers in [1usize, 2, 4, 8] {
        let mut session = f.session_with(AdvisorConfig {
            parallelism: workers,
            ..Default::default()
        });
        group.bench_function(BenchmarkId::new("run_workers", workers), |b| {
            b.iter(|| {
                // Drop the memo so every iteration re-costs all 168
                // candidates — this measures evaluation, not the cache.
                session.invalidate();
                black_box(session.rank().unwrap().ranked.len())
            })
        });
    }
    group.finish();
}

fn bench_cold_vs_warm_what_if(c: &mut Criterion) {
    let f = Fixture::demo();
    let mut group = c.benchmark_group("cache");
    group.bench_function("what_if_disks_cold", |b| {
        b.iter(|| {
            let session = f.session();
            black_box(session.what_if_disks(64).unwrap())
        })
    });
    group.bench_function("what_if_disks_warm", |b| {
        let session = f.session();
        session.rank().unwrap();
        let _ = session.what_if_disks(64).unwrap(); // populate the variation's entries
        b.iter(|| black_box(session.what_if_disks(64).unwrap()))
    });
    group.finish();
}

/// The candidate-space sweep: point vs ranged, chunked-streaming vs
/// materialized. Before the timed runs, prints one allocation/peak-
/// memory line per variant — the streaming path's peak live bytes must
/// stay flat while the materialized path's grows with the space.
fn bench_candidate_space_sweep(c: &mut Criterion) {
    let f = Fixture::demo();
    const RANGES: &[u64] = &[2, 3, 5, 10];

    // One-shot allocation profile (not timed): enumerate the point and
    // ranged spaces materialized vs streamed.
    for (label, options) in [("point", &[][..]), ("ranged", RANGES)] {
        let (n_mat, allocs_mat, peak_mat) = allocation_profile(|| {
            warlock_fragment::enumerate_candidates_ranged(&f.schema, 4, options).len()
        });
        let (n_stream, allocs_stream, peak_stream) =
            allocation_profile(|| CandidateSource::ranged(&f.schema, 4, options).count());
        assert_eq!(n_mat, n_stream);
        println!(
            "space/alloc-profile {label:<6}: {n_mat:>6} candidates | \
             materialized {allocs_mat:>7} allocs, {peak_mat:>9} peak bytes | \
             streamed {allocs_stream:>7} allocs, {peak_stream:>9} peak bytes"
        );
    }

    // Timed: enumeration alone (materialize vs stream), point vs ranged.
    let mut group = c.benchmark_group("space");
    for (label, options) in [("point", &[][..]), ("ranged", RANGES)] {
        group.bench_function(BenchmarkId::new("materialize", label), |b| {
            b.iter(|| {
                black_box(
                    warlock_fragment::enumerate_candidates_ranged(black_box(&f.schema), 4, options)
                        .len(),
                )
            })
        });
        group.bench_function(BenchmarkId::new("stream", label), |b| {
            b.iter(|| black_box(CandidateSource::ranged(black_box(&f.schema), 4, options).count()))
        });
    }
    group.finish();

    // Timed: the full pipeline under different chunk sizes (identical
    // reports; the knob trades memory against batching).
    let mut group = c.benchmark_group("engine");
    for chunk in [1usize, 16, 256] {
        let mut session = f.session_with(AdvisorConfig {
            parallelism: 1,
            chunk_size: chunk,
            ..Default::default()
        });
        group.bench_function(BenchmarkId::new("run_chunk", chunk), |b| {
            b.iter(|| {
                session.invalidate();
                black_box(session.rank().unwrap().ranked.len())
            })
        });
    }
    group.finish();
}

/// Bounded-runtime criterion config (see `advisor.rs`).
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_worker_sweep, bench_cold_vs_warm_what_if, bench_candidate_space_sweep
}
criterion_main!(benches);
