//! Criterion: parallel candidate evaluation and the per-session
//! evaluation cache.
//!
//! `engine/run_workers_*` sweeps the `AdvisorConfig::parallelism` knob
//! over the full 168-candidate APB-1-like pipeline — the 4-worker point
//! is expected to finish in well under half the serial wall-clock on a
//! 4-way machine. `cache/*` contrasts a cold what-if variation (every
//! candidate re-costed) with a warm one (pure cache hits).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use warlock::AdvisorConfig;
use warlock_bench::Fixture;

fn bench_worker_sweep(c: &mut Criterion) {
    let f = Fixture::demo();
    let mut group = c.benchmark_group("engine");
    for workers in [1usize, 2, 4, 8] {
        let mut session = f.session_with(AdvisorConfig {
            parallelism: workers,
            ..Default::default()
        });
        group.bench_function(BenchmarkId::new("run_workers", workers), |b| {
            b.iter(|| {
                // Drop the memo so every iteration re-costs all 168
                // candidates — this measures evaluation, not the cache.
                session.invalidate();
                black_box(session.rank().unwrap().ranked.len())
            })
        });
    }
    group.finish();
}

fn bench_cold_vs_warm_what_if(c: &mut Criterion) {
    let f = Fixture::demo();
    let mut group = c.benchmark_group("cache");
    group.bench_function("what_if_disks_cold", |b| {
        b.iter(|| {
            let session = f.session();
            black_box(session.what_if_disks(64).unwrap())
        })
    });
    group.bench_function("what_if_disks_warm", |b| {
        let session = f.session();
        session.rank().unwrap();
        let _ = session.what_if_disks(64).unwrap(); // populate the variation's entries
        b.iter(|| black_box(session.what_if_disks(64).unwrap()))
    });
    group.finish();
}

/// Bounded-runtime criterion config (see `advisor.rs`).
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_worker_sweep, bench_cold_vs_warm_what_if
}
criterion_main!(benches);
