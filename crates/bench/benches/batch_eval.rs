//! Criterion: scalar vs batched candidate costing over one sweep of the
//! APB-1-like candidate space, plus the `CostTables` precompute itself.
//!
//! The bench binary installs the counting allocator and prints a
//! one-shot allocation profile (allocations per candidate, peak extra
//! live bytes) for both paths before the timed runs, so the steady-state
//! allocation story of the hot path is visible next to the throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use warlock_bench::alloc_probe::{self, CountingAlloc};
use warlock_bench::Fixture;
use warlock_cost::{evaluate_chunk_with, ChunkBatch, CostModel, CostTables, PerQueryDetail};
use warlock_fragment::{enumerate_candidates_ranged, FragmentLayout, Fragmentation, LayoutScratch};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Chunk width of the batched sweep — matches the engine's evaluation
/// group size.
const GROUP: usize = 64;

struct Sweep {
    fixture: Fixture,
    candidates: Vec<Fragmentation>,
}

fn sweep() -> Sweep {
    let fixture = Fixture::demo();
    let candidates = enumerate_candidates_ranged(&fixture.schema, 2, &[3])
        .into_iter()
        .filter(|f| f.num_fragments(&fixture.schema) <= u128::from(u64::MAX))
        .collect();
    Sweep {
        fixture,
        candidates,
    }
}

fn model_of(s: &Sweep) -> CostModel<'_> {
    CostModel::new(
        &s.fixture.schema,
        &s.fixture.system,
        &s.fixture.scheme,
        &s.fixture.mix,
    )
}

/// The pre-batching hot path: one `FragmentLayout` allocation and one
/// scalar `evaluate_layout` per candidate.
fn scalar_sweep(s: &Sweep, model: &CostModel<'_>) -> f64 {
    let mut sink = 0.0;
    for frag in &s.candidates {
        let layout = FragmentLayout::new(&s.fixture.schema, frag.clone(), model.fact_index());
        sink += model.evaluate_layout(&layout).io_cost_ms;
    }
    sink
}

/// The batched hot path: table-driven SoA costing in chunks of
/// [`GROUP`], layouts built in a reusable scratch arena.
fn batched_sweep(
    s: &Sweep,
    model: &CostModel<'_>,
    tables: &CostTables,
    scratch: &mut LayoutScratch,
    batch: &mut ChunkBatch,
) -> f64 {
    let mut sink = 0.0;
    for group in s.candidates.chunks(GROUP) {
        for frag in group {
            let layout = FragmentLayout::new_in(
                scratch,
                &s.fixture.schema,
                frag.clone(),
                model.fact_index(),
            );
            batch.push(layout, scratch);
        }
        for cost in evaluate_chunk_with(tables, batch, PerQueryDetail::Omit) {
            sink += cost.io_cost_ms;
        }
    }
    sink
}

fn report_allocations(s: &Sweep) {
    if !alloc_probe::probe_installed() {
        return;
    }
    let model = model_of(s);
    let n = s.candidates.len() as f64;
    let (_, allocs, peak) = alloc_probe::allocation_profile(|| black_box(scalar_sweep(s, &model)));
    eprintln!(
        "batch_eval: scalar sweep   {:.1} allocs/candidate, peak {} B",
        allocs as f64 / n,
        peak
    );
    let tables = CostTables::build(&model, &[3]);
    let mut scratch = LayoutScratch::new();
    let mut batch = ChunkBatch::new();
    // Warm the arenas and the Yao memo so the profile shows steady state.
    black_box(batched_sweep(s, &model, &tables, &mut scratch, &mut batch));
    let (_, allocs, peak) = alloc_probe::allocation_profile(|| {
        black_box(batched_sweep(s, &model, &tables, &mut scratch, &mut batch))
    });
    eprintln!(
        "batch_eval: batched sweep  {:.1} allocs/candidate, peak {} B",
        allocs as f64 / n,
        peak
    );
}

fn bench_sweeps(c: &mut Criterion) {
    let s = sweep();
    report_allocations(&s);

    let model = model_of(&s);
    c.bench_function("eval/scalar_sweep", |b| {
        b.iter(|| black_box(scalar_sweep(&s, &model)))
    });

    c.bench_function("eval/tables_build", |b| {
        b.iter(|| black_box(CostTables::build(&model, &[3])))
    });

    let tables = CostTables::build(&model, &[3]);
    let mut scratch = LayoutScratch::new();
    let mut batch = ChunkBatch::new();
    c.bench_function("eval/batched_sweep", |b| {
        b.iter(|| black_box(batched_sweep(&s, &model, &tables, &mut scratch, &mut batch)))
    });
}

/// Bounded-runtime criterion config: benchmark sweeps stay meaningful but
/// `cargo bench --workspace` completes in minutes, not hours.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_sweeps
}
criterion_main!(benches);
