//! Criterion: scalar vs batched candidate costing over one sweep of the
//! APB-1-like candidate space, plus the `CostTables` precompute itself.
//!
//! The bench binary installs the counting allocator and prints a
//! one-shot allocation profile (allocations per candidate, peak extra
//! live bytes) for both paths before the timed runs, so the steady-state
//! allocation story of the hot path is visible next to the throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use warlock_bench::alloc_probe::{self, CountingAlloc};
use warlock_bench::Fixture;
use warlock_cost::{
    evaluate_chunk_kernel, evaluate_chunk_with, AlignedF64Col, ChunkBatch, CostModel,
    CostPassInput, CostPassOutput, CostTables, KernelBackend, KernelChoice, PerQueryDetail, LANES,
};
use warlock_fragment::{enumerate_candidates_ranged, FragmentLayout, Fragmentation, LayoutScratch};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Chunk width of the batched sweep — matches the engine's evaluation
/// group size.
const GROUP: usize = 64;

struct Sweep {
    fixture: Fixture,
    candidates: Vec<Fragmentation>,
}

fn sweep() -> Sweep {
    let fixture = Fixture::demo();
    let candidates = enumerate_candidates_ranged(&fixture.schema, 2, &[3])
        .into_iter()
        .filter(|f| f.num_fragments(&fixture.schema) <= u128::from(u64::MAX))
        .collect();
    Sweep {
        fixture,
        candidates,
    }
}

fn model_of(s: &Sweep) -> CostModel<'_> {
    CostModel::new(
        &s.fixture.schema,
        &s.fixture.system,
        &s.fixture.scheme,
        &s.fixture.mix,
    )
}

/// The pre-batching hot path: one `FragmentLayout` allocation and one
/// scalar `evaluate_layout` per candidate.
fn scalar_sweep(s: &Sweep, model: &CostModel<'_>) -> f64 {
    let mut sink = 0.0;
    for frag in &s.candidates {
        let layout = FragmentLayout::new(&s.fixture.schema, frag.clone(), model.fact_index());
        sink += model.evaluate_layout(&layout).io_cost_ms;
    }
    sink
}

/// The batched hot path: table-driven SoA costing in chunks of
/// [`GROUP`], layouts built in a reusable scratch arena.
fn batched_sweep(
    s: &Sweep,
    model: &CostModel<'_>,
    tables: &CostTables,
    scratch: &mut LayoutScratch,
    batch: &mut ChunkBatch,
) -> f64 {
    let mut sink = 0.0;
    for group in s.candidates.chunks(GROUP) {
        for frag in group {
            let layout = FragmentLayout::new_in(
                scratch,
                &s.fixture.schema,
                frag.clone(),
                model.fact_index(),
            );
            batch.push(layout, scratch);
        }
        for cost in evaluate_chunk_with(tables, batch, PerQueryDetail::Omit) {
            sink += cost.io_cost_ms;
        }
    }
    sink
}

/// The batched sweep pinned to one costing kernel backend.
fn batched_sweep_kernel(
    s: &Sweep,
    model: &CostModel<'_>,
    tables: &CostTables,
    scratch: &mut LayoutScratch,
    batch: &mut ChunkBatch,
    backend: KernelBackend,
) -> f64 {
    let mut sink = 0.0;
    for group in s.candidates.chunks(GROUP) {
        for frag in group {
            let layout = FragmentLayout::new_in(
                scratch,
                &s.fixture.schema,
                frag.clone(),
                model.fact_index(),
            );
            batch.push(layout, scratch);
        }
        for cost in evaluate_chunk_kernel(tables, batch, PerQueryDetail::Omit, backend) {
            sink += cost.io_cost_ms;
        }
    }
    sink
}

/// The kernel backends worth timing on this machine: the scalar
/// reference, the portable lane path, and — where it resolves to
/// something distinct — the AVX2 backend.
fn backends() -> Vec<KernelBackend> {
    let mut v = vec![
        KernelBackend::resolve(KernelChoice::Scalar),
        KernelBackend::resolve(KernelChoice::Lanes),
    ];
    let avx2 = KernelBackend::resolve(KernelChoice::Avx2);
    if !v.contains(&avx2) {
        v.push(avx2);
    }
    v
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn uniform(state: &mut u64, lo: f64, hi: f64) -> f64 {
    let unit = (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64;
    lo + (hi - lo) * unit
}

/// Synthetic padded SoA columns exercising both branch outcomes of the
/// arithmetic pass (scan-vs-fetch, indexable-vs-not), plus one gathered
/// Yao miss block of matching size.
struct PassFixture {
    cols: Vec<AlignedF64Col>,
    out: Vec<AlignedF64Col>,
    miss_rows: Vec<u64>,
    miss_pages: Vec<u64>,
    miss_k: Vec<f64>,
    miss_hits: Vec<f64>,
}

/// Candidates per synthetic arithmetic pass — a few engine chunks'
/// worth, small enough to stay cache-resident like the real columns.
const PASS_N: usize = 4096;

fn pass_fixture() -> PassFixture {
    assert!(PASS_N.is_multiple_of(LANES));
    let mut state = 0x5eed_cafe_f00d_0001u64;
    let mut cols = Vec::new();
    for c in 0..10 {
        let mut col = AlignedF64Col::new();
        for _ in 0..PASS_N {
            col.push(match c {
                0 => uniform(&mut state, 1.0, 4096.0).floor(), // fragments
                1 => uniform(&mut state, 0.0, 900.0),          // touched
                2 => f64::from(u8::from(!splitmix(&mut state).is_multiple_of(4))), // indexable
                _ => uniform(&mut state, 0.01, 2000.0),
            });
        }
        cols.push(col);
    }
    let mut out = Vec::new();
    for _ in 0..11 {
        let mut col = AlignedF64Col::new();
        col.resize(PASS_N, 0.0);
        out.push(col);
    }
    let mut miss_rows = Vec::new();
    let mut miss_pages = Vec::new();
    let mut miss_k = Vec::new();
    for _ in 0..PASS_N {
        let rows = 1 + splitmix(&mut state) % 1_000_000;
        // Mix the exact-Yao regime (rows divisible by pages) with the
        // Cardenas fallback, like real fragment geometry does.
        let pages = 1 + splitmix(&mut state) % 4096;
        miss_rows.push(rows);
        miss_pages.push(pages);
        miss_k.push(uniform(&mut state, 0.0, rows as f64));
    }
    PassFixture {
        cols,
        out,
        miss_rows,
        miss_pages,
        miss_k,
        miss_hits: vec![0.0; PASS_N],
    }
}

/// One arithmetic (`cost_pass`) run over the synthetic columns.
fn cost_pass_once(f: &mut PassFixture, backend: KernelBackend) -> f64 {
    let kernel = backend.kernel();
    let inp = CostPassInput {
        fragments: &f.cols[0],
        touched: &f.cols[1],
        indexable: &f.cols[2],
        scan_ms: &f.cols[3],
        scan_ios: &f.cols[4],
        fragment_pages: &f.cols[5],
        vector_ms: &f.cols[6],
        vector_ios: &f.cols[7],
        vector_pages: &f.cols[8],
        bitmap_vectors: &f.cols[9],
        random_page_ms: 8.9,
        disks: 16.0,
        processors: 4.0,
        overhead: 1.04,
        share: 0.25,
    };
    let [o0, o1, o2, o3, o4, o5, o6, a0, a1, a2, a3] = &mut f.out[..] else {
        unreachable!("11 output columns");
    };
    let mut out = CostPassOutput {
        out_use_scan: o0,
        out_per_fragment_ms: o1,
        out_busy_ms: o2,
        out_response_ms: o3,
        out_fact_pages: o4,
        out_bitmap_pages: o5,
        out_total_ios: o6,
        acc_io_ms: a0,
        acc_response_ms: a1,
        acc_ios: a2,
        acc_pages: a3,
    };
    kernel.cost_pass(&inp, &mut out);
    out.acc_io_ms[0] + out.out_response_ms[PASS_N - 1]
}

/// One lane-batched Yao miss-block run.
fn yao_pass_once(f: &mut PassFixture, backend: KernelBackend) -> f64 {
    backend
        .kernel()
        .yao_pass(&f.miss_rows, &f.miss_pages, &f.miss_k, &mut f.miss_hits);
    f.miss_hits[0] + f.miss_hits[PASS_N - 1]
}

fn report_allocations(s: &Sweep) {
    if !alloc_probe::probe_installed() {
        return;
    }
    let model = model_of(s);
    let n = s.candidates.len() as f64;
    let (_, allocs, peak) = alloc_probe::allocation_profile(|| black_box(scalar_sweep(s, &model)));
    eprintln!(
        "batch_eval: scalar sweep   {:.1} allocs/candidate, peak {} B",
        allocs as f64 / n,
        peak
    );
    let tables = CostTables::build(&model, &[3]);
    let mut scratch = LayoutScratch::new();
    let mut batch = ChunkBatch::new();
    // Warm the arenas and the Yao memo so the profile shows steady state.
    black_box(batched_sweep(s, &model, &tables, &mut scratch, &mut batch));
    let (_, allocs, peak) = alloc_probe::allocation_profile(|| {
        black_box(batched_sweep(s, &model, &tables, &mut scratch, &mut batch))
    });
    eprintln!(
        "batch_eval: batched sweep  {:.1} allocs/candidate, peak {} B",
        allocs as f64 / n,
        peak
    );
}

fn bench_sweeps(c: &mut Criterion) {
    let s = sweep();
    report_allocations(&s);

    let model = model_of(&s);
    c.bench_function("eval/scalar_sweep", |b| {
        b.iter(|| black_box(scalar_sweep(&s, &model)))
    });

    c.bench_function("eval/tables_build", |b| {
        b.iter(|| black_box(CostTables::build(&model, &[3])))
    });

    let tables = CostTables::build(&model, &[3]);
    let mut scratch = LayoutScratch::new();
    let mut batch = ChunkBatch::new();
    c.bench_function("eval/batched_sweep", |b| {
        b.iter(|| black_box(batched_sweep(&s, &model, &tables, &mut scratch, &mut batch)))
    });

    // Per-backend axes: the full demo sweep pinned to each kernel, and
    // the isolated arithmetic / Yao passes where the backends actually
    // differ (matching and gather stages are backend-independent).
    for backend in backends() {
        c.bench_function(format!("eval/batched_sweep/{}", backend.name()), |b| {
            b.iter(|| {
                black_box(batched_sweep_kernel(
                    &s,
                    &model,
                    &tables,
                    &mut scratch,
                    &mut batch,
                    backend,
                ))
            })
        });
    }
    let mut pass = pass_fixture();
    for backend in backends() {
        c.bench_function(format!("kernel/cost_pass/{}", backend.name()), |b| {
            b.iter(|| black_box(cost_pass_once(&mut pass, backend)))
        });
        c.bench_function(format!("kernel/yao_pass/{}", backend.name()), |b| {
            b.iter(|| black_box(yao_pass_once(&mut pass, backend)))
        });
    }
}

/// Bounded-runtime criterion config: benchmark sweeps stay meaningful but
/// `cargo bench --workspace` completes in minutes, not hours.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_sweeps
}
criterion_main!(benches);
