//! Criterion: analytical cost-model primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use warlock_bench::Fixture;
use warlock_cost::access::estimate_query;
use warlock_cost::{cardenas_page_hits, yao_page_hits};
use warlock_fragment::{FragmentLayout, Fragmentation, QueryMatch};

fn bench_yao(c: &mut Criterion) {
    c.bench_function("cost/yao_exact_5000_pages", |b| {
        b.iter(|| {
            black_box(yao_page_hits(
                black_box(730_000),
                black_box(5000),
                black_box(8100.0),
            ))
        })
    });
    c.bench_function("cost/cardenas_5000_pages", |b| {
        b.iter(|| black_box(cardenas_page_hits(black_box(5000), black_box(8100.0))))
    });
}

fn bench_query_estimate(c: &mut Criterion) {
    let f = Fixture::demo();
    let layout = FragmentLayout::new(
        &f.schema,
        Fragmentation::from_pairs(&[(0, 1), (2, 2)]).unwrap(),
        0,
    );
    let class = f.mix.classes()[2].class.clone(); // q03_quarter_group
    c.bench_function("cost/estimate_one_query", |b| {
        b.iter(|| {
            black_box(estimate_query(
                &f.schema,
                &layout,
                &f.scheme,
                &f.system,
                black_box(&class),
                0,
            ))
        })
    });
}

fn bench_matching(c: &mut Criterion) {
    let f = Fixture::demo();
    let frag = Fragmentation::from_pairs(&[(0, 4), (2, 2)]).unwrap();
    let class = f.mix.classes()[0].class.clone();
    c.bench_function("cost/query_match_evaluate", |b| {
        b.iter(|| {
            black_box(QueryMatch::evaluate(
                &f.schema,
                black_box(&frag),
                black_box(&class),
            ))
        })
    });
}

/// Bounded-runtime criterion config: benchmark sweeps stay meaningful but
/// `cargo bench --workspace` completes in minutes, not hours.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_yao, bench_query_estimate, bench_matching
}
criterion_main!(benches);
