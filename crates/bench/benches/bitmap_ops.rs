//! Criterion: bitmap substrate throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use warlock_bitmap::{BitVec, EncodedBitmapIndex, RleBitmap, StandardBitmapIndex};
use warlock_schema::{Dimension, LevelId};

const BITS: usize = 1 << 20;

fn sparse_vec(stride: usize) -> BitVec {
    BitVec::from_indices(BITS, (0..BITS).step_by(stride))
}

fn bench_bitvec_ops(c: &mut Criterion) {
    let a = sparse_vec(3);
    let b = sparse_vec(7);
    let mut g = c.benchmark_group("bitvec");
    g.throughput(Throughput::Bytes((BITS / 8) as u64));
    g.bench_function("and_1m_bits", |bch| {
        bch.iter(|| black_box(black_box(&a).and(black_box(&b))))
    });
    g.bench_function("or_1m_bits", |bch| {
        bch.iter(|| black_box(black_box(&a).or(black_box(&b))))
    });
    g.bench_function("count_ones_1m_bits", |bch| {
        bch.iter(|| black_box(black_box(&a).count_ones()))
    });
    g.bench_function("iter_ones_1m_bits_stride3", |bch| {
        bch.iter(|| black_box(black_box(&a).iter_ones().sum::<usize>()))
    });
    g.finish();
}

fn bench_rle(c: &mut Criterion) {
    let sparse = sparse_vec(1000);
    let compressed = RleBitmap::compress(&sparse);
    let other = RleBitmap::compress(&sparse_vec(777));
    let mut g = c.benchmark_group("rle");
    g.throughput(Throughput::Bytes((BITS / 8) as u64));
    g.bench_function("compress_sparse_1m_bits", |bch| {
        bch.iter(|| black_box(RleBitmap::compress(black_box(&sparse))))
    });
    g.bench_function("decompress_1m_bits", |bch| {
        bch.iter(|| black_box(black_box(&compressed).decompress()))
    });
    g.bench_function("and_merge_1m_bits", |bch| {
        bch.iter(|| black_box(black_box(&compressed).and(black_box(&other))))
    });
    g.finish();
}

fn column(rows: usize, card: u64) -> Vec<u64> {
    let mut state = 0x9e3779b97f4a7c15u64;
    (0..rows)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % card
        })
        .collect()
}

fn bench_indexes(c: &mut Criterion) {
    let dim = Dimension::builder("product")
        .level("division", 5)
        .level("line", 15)
        .level("family", 75)
        .level("group", 300)
        .level("class", 900)
        .level("code", 9000)
        .build()
        .unwrap();
    let rows = 100_000;
    let col = column(rows, 9000);
    let class_col: Vec<u64> = col.iter().map(|&v| v / 10).collect();

    let mut g = c.benchmark_group("index");
    g.bench_function("standard_build_900values_100k_rows", |bch| {
        bch.iter(|| black_box(StandardBitmapIndex::build(900, black_box(&class_col))))
    });
    g.bench_function("encoded_build_16slices_100k_rows", |bch| {
        bch.iter(|| black_box(EncodedBitmapIndex::build(&dim, black_box(&col))))
    });

    let standard = StandardBitmapIndex::build(900, &class_col);
    let encoded = EncodedBitmapIndex::build(&dim, &col);
    g.bench_function("standard_point_query", |bch| {
        bch.iter(|| black_box(standard.query(black_box(&[450]))))
    });
    g.bench_function("encoded_point_query_class_level", |bch| {
        bch.iter(|| black_box(encoded.query_level(LevelId(4), black_box(450))))
    });
    g.bench_function("encoded_point_query_division_level", |bch| {
        bch.iter(|| black_box(encoded.query_level(LevelId(0), black_box(3))))
    });
    g.finish();
}

/// Bounded-runtime criterion config: benchmark sweeps stay meaningful but
/// `cargo bench --workspace` completes in minutes, not hours.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_bitvec_ops, bench_rle, bench_indexes
}
criterion_main!(benches);
