//! Criterion: allocation schemes at scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use warlock_alloc::{greedy_by_size, round_robin, DiskAccessProfile};

fn sizes(n: usize) -> Vec<u64> {
    // Zipf-flavoured sizes, deterministic.
    (0..n).map(|i| 1_000_000 / (i as u64 + 1) + 512).collect()
}

fn bench_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocation");
    for n in [1_000usize, 10_000, 100_000] {
        let input = sizes(n);
        g.bench_with_input(BenchmarkId::new("round_robin", n), &input, |b, input| {
            b.iter(|| black_box(round_robin(input.clone(), 64)))
        });
        g.bench_with_input(BenchmarkId::new("greedy_by_size", n), &input, |b, input| {
            b.iter(|| black_box(greedy_by_size(input.clone(), 64)))
        });
    }
    g.finish();
}

fn bench_profiles(c: &mut Criterion) {
    let allocation = round_robin(sizes(100_000), 64);
    let accessed: Vec<usize> = (0..100_000).step_by(3).collect();
    c.bench_function("allocation/profile_33k_accesses", |b| {
        b.iter(|| {
            black_box(DiskAccessProfile::build(
                black_box(&allocation),
                black_box(&accessed),
                5.0,
            ))
        })
    });
}

fn bench_occupancy(c: &mut Criterion) {
    let allocation = greedy_by_size(sizes(100_000), 64);
    c.bench_function("allocation/occupancy_stats_100k", |b| {
        b.iter(|| black_box(allocation.occupancy_stats()))
    });
}

/// Bounded-runtime criterion config: benchmark sweeps stay meaningful but
/// `cargo bench --workspace` completes in minutes, not hours.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_schemes, bench_profiles, bench_occupancy
}
criterion_main!(benches);
