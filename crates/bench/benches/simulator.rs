//! Criterion: event-driven simulator throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use warlock_bench::SmallFixture;
use warlock_fragment::{FragmentLayout, Fragmentation, SkewModelExt};
use warlock_sim::{run_closed, DiskSimulator, SyntheticFact};

fn bench_open_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    let requests_per_query = 16usize;
    let queries = 1000usize;
    g.throughput(Throughput::Elements((requests_per_query * queries) as u64));
    g.bench_function("open_16k_requests", |b| {
        b.iter(|| {
            let mut sim = DiskSimulator::new(16);
            for q in 0..queries {
                let reqs: Vec<(u32, f64)> = (0..requests_per_query)
                    .map(|i| (((q + i) % 16) as u32, 5.0))
                    .collect();
                sim.submit(q as f64 * 2.0, reqs);
            }
            black_box(sim.run())
        })
    });
    g.finish();
}

fn bench_closed_simulation(c: &mut Criterion) {
    let streams: Vec<Vec<Vec<(u32, f64)>>> = (0..8)
        .map(|s| {
            (0..50)
                .map(|q| (0..12).map(|i| (((s + q + i) % 16) as u32, 4.0)).collect())
                .collect()
        })
        .collect();
    c.bench_function("sim/closed_8x50_queries", |b| {
        b.iter(|| black_box(run_closed(16, black_box(&streams))))
    });
}

fn bench_datagen_and_routing(c: &mut Criterion) {
    let f = SmallFixture::new();
    let skew = f.schema.uniform_skew_model();
    c.bench_function("sim/generate_100k_rows", |b| {
        b.iter(|| black_box(SyntheticFact::generate(&f.schema, &skew, 100_000, 3)))
    });
    let data = SyntheticFact::generate(&f.schema, &skew, 100_000, 3);
    let layout = FragmentLayout::new(
        &f.schema,
        Fragmentation::from_pairs(&[(0, 1), (1, 1)]).unwrap(),
        0,
    );
    c.bench_function("sim/route_100k_rows_384_fragments", |b| {
        b.iter(|| {
            black_box(warlock_sim::MaterializedWarehouse::build(
                &f.schema,
                &layout,
                black_box(&data),
            ))
        })
    });
}

/// Bounded-runtime criterion config: benchmark sweeps stay meaningful but
/// `cargo bench --workspace` completes in minutes, not hours.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_open_simulation, bench_closed_simulation, bench_datagen_and_routing
}
criterion_main!(benches);
