//! Criterion: fragmentation enumeration and layout math.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use warlock_bench::Fixture;
use warlock_fragment::{
    enumerate_candidates, FragmentLayout, Fragmentation, SkewModelExt, ThresholdContext, Thresholds,
};
use warlock_skew::DimensionSkew;

fn bench_enumeration(c: &mut Criterion) {
    let f = Fixture::demo();
    c.bench_function("fragment/enumerate_168_candidates", |b| {
        b.iter(|| black_box(enumerate_candidates(black_box(&f.schema), 4)))
    });
}

fn bench_layout(c: &mut Criterion) {
    let f = Fixture::demo();
    let frag = Fragmentation::from_pairs(&[(0, 3), (2, 2)]).unwrap(); // 7200 frags
    c.bench_function("fragment/layout_build_7200", |b| {
        b.iter(|| black_box(FragmentLayout::new(&f.schema, black_box(frag.clone()), 0)))
    });
    let layout = FragmentLayout::new(&f.schema, frag, 0);
    c.bench_function("fragment/coords_roundtrip", |b| {
        b.iter(|| {
            let coords = layout.coords_of(black_box(4321));
            black_box(layout.index_of(&coords))
        })
    });
}

fn bench_skewed_sizes(c: &mut Criterion) {
    let f = Fixture::demo();
    let skew = f.schema.skew_model(&[
        DimensionSkew::zipf(1.0),
        DimensionSkew::zipf(0.5),
        DimensionSkew::UNIFORM,
        DimensionSkew::UNIFORM,
    ]);
    let layout = FragmentLayout::new(
        &f.schema,
        Fragmentation::from_pairs(&[(0, 3), (2, 2)]).unwrap(),
        0,
    );
    c.bench_function("fragment/skewed_weights_7200", |b| {
        b.iter(|| black_box(layout.fragment_weights(&f.schema, black_box(&skew))))
    });
    c.bench_function("fragment/apportion_7200", |b| {
        let weights = layout.fragment_weights(&f.schema, &skew);
        b.iter(|| black_box(warlock_fragment::apportion(17_496_000, black_box(&weights))))
    });
}

fn bench_thresholds(c: &mut Criterion) {
    let f = Fixture::demo();
    let thresholds = Thresholds::default();
    let ctx = ThresholdContext {
        rows_per_page: 146,
        prefetch_pages: 8,
        num_disks: 16,
    };
    let layouts: Vec<FragmentLayout> = enumerate_candidates(&f.schema, 4)
        .into_iter()
        .filter(|frag| frag.num_fragments(&f.schema) <= 1 << 20)
        .map(|frag| FragmentLayout::new(&f.schema, frag, 0))
        .collect();
    c.bench_function("fragment/threshold_check_all", |b| {
        b.iter(|| {
            let mut kept = 0;
            for layout in &layouts {
                if thresholds.check(black_box(layout), ctx).is_ok() {
                    kept += 1;
                }
            }
            black_box(kept)
        })
    });
}

/// Bounded-runtime criterion config: benchmark sweeps stay meaningful but
/// `cargo bench --workspace` completes in minutes, not hours.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_enumeration, bench_layout, bench_skewed_sizes, bench_thresholds
}
criterion_main!(benches);
