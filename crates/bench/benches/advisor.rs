//! Criterion: the full advisor pipeline and its pieces.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use warlock::AdvisorConfig;
use warlock_bench::Fixture;
use warlock_fragment::Fragmentation;

fn bench_full_pipeline(c: &mut Criterion) {
    let f = Fixture::demo();
    c.bench_function("advisor/full_run_168_candidates", |b| {
        let advisor = f.session();
        b.iter(|| black_box(advisor.run().unwrap()))
    });
}

fn bench_single_candidate(c: &mut Criterion) {
    let f = Fixture::demo();
    let advisor = f.session();
    let frag = Fragmentation::from_pairs(&[(0, 1), (2, 2)]).unwrap();
    c.bench_function("advisor/evaluate_one_candidate", |b| {
        b.iter(|| black_box(advisor.evaluate(black_box(&frag)).unwrap()))
    });
}

fn bench_analysis_and_plan(c: &mut Criterion) {
    let f = Fixture::demo();
    let advisor = f.session();
    let frag = Fragmentation::from_pairs(&[(0, 1), (2, 2)]).unwrap();
    c.bench_function("advisor/analyze_candidate", |b| {
        b.iter(|| black_box(advisor.analyze_candidate(black_box(&frag)).unwrap()))
    });
    c.bench_function("advisor/plan_allocation_360_fragments", |b| {
        b.iter(|| black_box(advisor.plan_candidate(black_box(&frag)).unwrap()))
    });
}

fn bench_shallow_run(c: &mut Criterion) {
    let f = Fixture::demo();
    c.bench_function("advisor/run_1d_only_13_candidates", |b| {
        let config = AdvisorConfig {
            max_dimensionality: 1,
            ..Default::default()
        };
        let advisor = f.session_with(config);
        b.iter(|| black_box(advisor.run().unwrap()))
    });
}

/// Bounded-runtime criterion config: benchmark sweeps stay meaningful but
/// `cargo bench --workspace` completes in minutes, not hours.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_full_pipeline, bench_single_candidate, bench_analysis_and_plan, bench_shallow_run
}
criterion_main!(benches);
