//! End-to-end smoke test of the `warlockd` binary over stdio: start the
//! server on the demo configuration, drive a `rank` →
//! `what_if_disks` → `cache_stats` → `shutdown` round-trip, and assert
//! a clean exit. The CI smoke lane runs this same conversation from a
//! shell script; this test keeps it pinned under plain `cargo test`.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

use warlock::config_file::{demo_config, render_config};
use warlock::json::Json;

fn parse_ok(line: &str) -> Json {
    let json = warlock::json::parse(line).unwrap_or_else(|e| panic!("bad response `{line}`: {e}"));
    assert_eq!(
        json.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {line}"
    );
    json
}

#[test]
fn warlockd_stdio_round_trip() {
    let config_path = std::env::temp_dir().join(format!(
        "warlockd-smoke-{}-{:?}.cfg",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&config_path, render_config(&demo_config())).unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_warlockd"))
        .arg(&config_path)
        .arg("--stdio")
        .args(["-j", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("warlockd spawns");

    {
        let mut stdin = child.stdin.take().unwrap();
        writeln!(stdin, r#"{{"v":1,"id":0,"op":"ping"}}"#).unwrap();
        writeln!(stdin, r#"{{"v":1,"id":1,"op":"rank"}}"#).unwrap();
        writeln!(
            stdin,
            r#"{{"v":1,"id":2,"op":"what_if_disks","params":{{"disks":64}}}}"#
        )
        .unwrap();
        writeln!(stdin, r#"{{"v":1,"id":3,"op":"cache_stats"}}"#).unwrap();
        writeln!(stdin, r#"{{"v":1,"id":4,"op":"ping"}}"#).unwrap();
        writeln!(stdin, r#"{{"v":1,"id":5,"op":"shutdown"}}"#).unwrap();
        // Dropping stdin closes the pipe; the server must already have
        // stopped at the shutdown request either way.
    }

    let lines: Vec<String> = BufReader::new(child.stdout.take().unwrap())
        .lines()
        .map(|l| l.unwrap())
        .collect();
    let status = child.wait().unwrap();
    let _ = std::fs::remove_file(&config_path);

    assert!(status.success(), "warlockd exited with {status}");
    assert_eq!(lines.len(), 6, "one response per request: {lines:#?}");

    // Cold ping: protocol + exact space size, no ranking yet, cold cache.
    let pong = parse_ok(&lines[0]);
    let health = pong.get("result").unwrap();
    assert_eq!(health.get("protocol").and_then(Json::as_i64), Some(1));
    assert_eq!(health.get("space_size").and_then(Json::as_u64), Some(168));
    assert_eq!(health.get("enumerated"), Some(&Json::Null));
    assert_eq!(
        health
            .get("cache_stats")
            .and_then(|s| s.get("entries"))
            .and_then(Json::as_u64),
        Some(0)
    );

    let rank = parse_ok(&lines[1]);
    assert_eq!(rank.get("id").and_then(Json::as_i64), Some(1));
    let ranking = rank
        .get("result")
        .and_then(|r| r.get("ranking"))
        .and_then(Json::as_array)
        .expect("rank returns a ranking");
    assert!(!ranking.is_empty());

    let what_if = parse_ok(&lines[2]);
    let delta = what_if
        .get("result")
        .and_then(|r| r.get("delta"))
        .expect("what_if_disks returns a delta");
    assert_eq!(
        delta.get("variation").and_then(Json::as_str),
        Some("disks = 64")
    );

    let stats = parse_ok(&lines[3]);
    let entries = stats
        .get("result")
        .and_then(|r| r.get("entries"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(entries > 0, "the shared cache must be warm after two runs");

    // Warm ping: the baseline ranking's enumeration count and warm
    // cache stats appear — no extra rank round-trip needed.
    let pong = parse_ok(&lines[4]);
    let health = pong.get("result").unwrap();
    assert_eq!(health.get("enumerated").and_then(Json::as_u64), Some(168));
    assert_eq!(
        health
            .get("cache_stats")
            .and_then(|s| s.get("entries"))
            .and_then(Json::as_u64),
        Some(entries)
    );

    let bye = parse_ok(&lines[5]);
    assert_eq!(
        bye.get("result")
            .and_then(|r| r.get("stopping"))
            .and_then(Json::as_bool),
        Some(true)
    );
}

#[test]
fn warlockd_reports_bad_usage() {
    let status = Command::new(env!("CARGO_BIN_EXE_warlockd"))
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert_eq!(
        status.code(),
        Some(2),
        "missing config file is a usage error"
    );

    let status = Command::new(env!("CARGO_BIN_EXE_warlockd"))
        .arg("/definitely/not/a/file.cfg")
        .arg("--stdio")
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert_eq!(
        status.code(),
        Some(1),
        "unreadable config is a startup failure"
    );
}
