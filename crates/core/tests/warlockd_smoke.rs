//! End-to-end smoke tests of the `warlockd` binary: the stdio line
//! protocol, the TCP transport (concurrent clients, routed ops against
//! two warehouses, v1 compat, hot reload, deterministic shutdown), the
//! HTTP transport, request-size bounds, and usage-error exit codes. The
//! CI smoke lanes drive the same conversations from a shell script;
//! these tests keep them pinned under plain `cargo test`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use warlock::config_file::{demo_config, render_config};
use warlock::json::Json;

fn parse_ok(line: &str) -> Json {
    let json = warlock::json::parse(line).unwrap_or_else(|e| panic!("bad response `{line}`: {e}"));
    assert_eq!(
        json.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {line}"
    );
    json
}

/// Writes a demo configuration (with `disks` disks) to a temp file.
fn write_cfg(tag: &str, disks: u32) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "warlockd-smoke-{tag}-{}-{:?}.cfg",
        std::process::id(),
        std::thread::current().id()
    ));
    let cfg = render_config(&demo_config()).replace("disks = 16", &format!("disks = {disks}"));
    std::fs::write(&path, cfg).unwrap();
    path
}

/// Waits (bounded) for the child to exit and returns its status.
fn wait_with_timeout(child: &mut Child, timeout: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("warlockd did not exit within {timeout:?}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Reads `warlockd: <label> on ADDR` lines off stderr until `label` is
/// announced, returning the address.
fn announced_addr(stderr: &mut impl BufRead, label: &str) -> String {
    let needle = format!("{label} on ");
    let mut lines = String::new();
    loop {
        let mut line = String::new();
        if stderr.read_line(&mut line).unwrap() == 0 {
            panic!("warlockd never announced `{label}`; stderr so far:\n{lines}");
        }
        lines.push_str(&line);
        if let Some(idx) = line.find(&needle) {
            return line[idx + needle.len()..].trim().to_owned();
        }
    }
}

/// One request/response round-trip over an established line-protocol
/// stream.
fn round_trip(stream: &mut TcpStream, request: &str) -> String {
    writeln!(stream, "{request}").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line.trim().to_owned()
}

#[test]
fn warlockd_stdio_round_trip() {
    let config_path = write_cfg("stdio", 16);

    let mut child = Command::new(env!("CARGO_BIN_EXE_warlockd"))
        .arg(&config_path)
        .arg("--stdio")
        .args(["-j", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("warlockd spawns");

    {
        let mut stdin = child.stdin.take().unwrap();
        writeln!(stdin, r#"{{"v":2,"id":0,"op":"ping"}}"#).unwrap();
        writeln!(stdin, r#"{{"v":2,"id":1,"op":"rank"}}"#).unwrap();
        writeln!(
            stdin,
            r#"{{"v":2,"id":2,"op":"what_if_disks","params":{{"disks":64}}}}"#
        )
        .unwrap();
        writeln!(stdin, r#"{{"v":2,"id":3,"op":"cache_stats"}}"#).unwrap();
        writeln!(stdin, r#"{{"v":2,"id":4,"op":"ping"}}"#).unwrap();
        writeln!(stdin, r#"{{"v":2,"id":5,"op":"shutdown"}}"#).unwrap();
        // Dropping stdin closes the pipe; the server must already have
        // stopped at the shutdown request either way.
    }

    let lines: Vec<String> = BufReader::new(child.stdout.take().unwrap())
        .lines()
        .map(|l| l.unwrap())
        .collect();
    let status = child.wait().unwrap();
    let _ = std::fs::remove_file(&config_path);

    assert!(status.success(), "warlockd exited with {status}");
    assert_eq!(lines.len(), 6, "one response per request: {lines:#?}");

    // Cold ping: protocol + warehouse + exact space size, no ranking
    // yet, cold cache.
    let pong = parse_ok(&lines[0]);
    let health = pong.get("result").unwrap();
    assert_eq!(health.get("protocol").and_then(Json::as_i64), Some(2));
    assert_eq!(
        health.get("warehouse").and_then(Json::as_str),
        Some("default")
    );
    assert_eq!(health.get("space_size").and_then(Json::as_u64), Some(168));
    assert_eq!(health.get("enumerated"), Some(&Json::Null));
    assert_eq!(
        health
            .get("cache_stats")
            .and_then(|s| s.get("entries"))
            .and_then(Json::as_u64),
        Some(0)
    );

    let rank = parse_ok(&lines[1]);
    assert_eq!(rank.get("id").and_then(Json::as_i64), Some(1));
    let ranking = rank
        .get("result")
        .and_then(|r| r.get("ranking"))
        .and_then(Json::as_array)
        .expect("rank returns a ranking");
    assert!(!ranking.is_empty());

    let what_if = parse_ok(&lines[2]);
    let delta = what_if
        .get("result")
        .and_then(|r| r.get("delta"))
        .expect("what_if_disks returns a delta");
    assert_eq!(
        delta.get("variation").and_then(Json::as_str),
        Some("disks = 64")
    );

    let stats = parse_ok(&lines[3]);
    let entries = stats
        .get("result")
        .and_then(|r| r.get("entries"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(entries > 0, "the shared cache must be warm after two runs");

    // Warm ping: the baseline ranking's enumeration count and warm
    // cache stats appear — no extra rank round-trip needed.
    let pong = parse_ok(&lines[4]);
    let health = pong.get("result").unwrap();
    assert_eq!(health.get("enumerated").and_then(Json::as_u64), Some(168));
    assert_eq!(
        health
            .get("cache_stats")
            .and_then(|s| s.get("entries"))
            .and_then(Json::as_u64),
        Some(entries)
    );

    let bye = parse_ok(&lines[5]);
    assert_eq!(
        bye.get("result")
            .and_then(|r| r.get("stopping"))
            .and_then(Json::as_bool),
        Some(true)
    );
}

#[test]
fn warlockd_tcp_two_warehouses_reload_and_clean_shutdown() {
    let us_path = write_cfg("tcp-us", 16);
    let eu_path = write_cfg("tcp-eu", 64);

    let mut child = Command::new(env!("CARGO_BIN_EXE_warlockd"))
        .args(["--warehouse", &format!("us={}", us_path.display())])
        .args(["--warehouse", &format!("eu={}", eu_path.display())])
        .args(["--listen", "127.0.0.1:0"])
        .args(["-j", "1"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("warlockd spawns");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let addr = announced_addr(&mut stderr, "listening");

    // Two concurrent clients, one per warehouse: the routed ranks must
    // differ from each other and match what a v1 client (unrouted, so
    // default = first warehouse = `us`) sees.
    let threads: Vec<_> = ["us", "eu"]
        .into_iter()
        .map(|warehouse| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(&addr).unwrap();
                let line = round_trip(
                    &mut stream,
                    &format!(r#"{{"v":2,"op":"rank","warehouse":"{warehouse}"}}"#),
                );
                parse_ok(&line).get("result").unwrap().render()
            })
        })
        .collect();
    let ranks: Vec<String> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    assert_ne!(ranks[0], ranks[1], "warehouses must advise independently");

    let mut stream = TcpStream::connect(&addr).unwrap();
    let v1 = round_trip(&mut stream, r#"{"v":1,"op":"rank"}"#);
    let v1 = parse_ok(&v1);
    assert_eq!(
        v1.get("v").and_then(Json::as_i64),
        Some(1),
        "v1 clients get v1 responses"
    );
    assert_eq!(
        v1.get("result").unwrap().render(),
        ranks[0],
        "unrouted v1 requests resolve to the default warehouse"
    );

    // list_warehouses sees both, sorted, with the default marked.
    let listed = parse_ok(&round_trip(
        &mut stream,
        r#"{"v":2,"op":"list_warehouses"}"#,
    ));
    let result = listed.get("result").unwrap();
    assert_eq!(result.get("default").and_then(Json::as_str), Some("us"));
    let names: Vec<&str> = result
        .get("warehouses")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|w| w.get("name").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(names, ["eu", "us"]);

    // Hot reload: rewrite `us` and reload it over the wire. Its advice
    // changes; `eu` keeps its cached baseline (enumerated stays set).
    let us_cfg = render_config(&demo_config()).replace("disks = 16", "disks = 32");
    std::fs::write(&us_path, us_cfg).unwrap();
    let reloaded = parse_ok(&round_trip(
        &mut stream,
        r#"{"v":2,"op":"reload","params":{"name":"us"}}"#,
    ));
    assert_eq!(
        reloaded
            .get("result")
            .and_then(|r| r.get("name"))
            .and_then(Json::as_str),
        Some("us")
    );
    let after = parse_ok(&round_trip(
        &mut stream,
        r#"{"v":2,"op":"rank","warehouse":"us"}"#,
    ));
    assert_ne!(after.get("result").unwrap().render(), ranks[0]);
    let eu_after = parse_ok(&round_trip(
        &mut stream,
        r#"{"v":2,"op":"rank","warehouse":"eu"}"#,
    ));
    assert_eq!(
        eu_after.get("result").unwrap().render(),
        ranks[1],
        "reloading `us` must not disturb `eu`"
    );

    // Shutdown over TCP: the accept loop must unblock without a next
    // connection and the process must exit 0 promptly.
    let bye = parse_ok(&round_trip(&mut stream, r#"{"v":2,"op":"shutdown"}"#));
    assert!(bye.render().contains("stopping"));
    let status = wait_with_timeout(&mut child, Duration::from_secs(10));
    assert_eq!(status.code(), Some(0), "clean shutdown must exit 0");

    let _ = std::fs::remove_file(us_path);
    let _ = std::fs::remove_file(eu_path);
}

#[test]
fn warlockd_http_round_trip_and_shutdown() {
    let us_path = write_cfg("http-us", 16);
    let eu_path = write_cfg("http-eu", 64);

    let mut child = Command::new(env!("CARGO_BIN_EXE_warlockd"))
        .args(["--warehouse", &format!("us={}", us_path.display())])
        .args(["--warehouse", &format!("eu={}", eu_path.display())])
        .args(["--http", "127.0.0.1:0"])
        .args(["-j", "1"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("warlockd spawns");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let addr = announced_addr(&mut stderr, "http");

    let post = |path: &str, body: &str| -> (u16, Json) {
        let mut stream = TcpStream::connect(&addr).unwrap();
        write!(
            stream,
            "POST {path} HTTP/1.1\r\nHost: warlockd\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status = response.split_whitespace().nth(1).unwrap().parse().unwrap();
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        (status, warlock::json::parse(body).unwrap())
    };

    let (status, pong) = post("/v2/ping", r#"{"warehouse":"eu"}"#);
    assert_eq!(status, 200);
    let result = pong.get("result").unwrap();
    assert_eq!(result.get("warehouse").and_then(Json::as_str), Some("eu"));
    assert_eq!(result.get("space_size").and_then(Json::as_u64), Some(168));

    let (status, us) = post("/v2/rank", "");
    assert_eq!(status, 200);
    let (_, eu) = post("/v2/rank", r#"{"warehouse":"eu"}"#);
    assert_ne!(
        us.get("result").unwrap().render(),
        eu.get("result").unwrap().render()
    );

    let (status, err) = post("/v2/rank", r#"{"warehouse":"mars"}"#);
    assert_eq!(status, 404);
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("unknown_warehouse")
    );

    let (status, bye) = post("/v2/shutdown", "");
    assert_eq!(status, 200);
    assert!(bye.render().contains("stopping"));
    let status = wait_with_timeout(&mut child, Duration::from_secs(10));
    assert_eq!(status.code(), Some(0));

    let _ = std::fs::remove_file(us_path);
    let _ = std::fs::remove_file(eu_path);
}

#[test]
fn warlockd_bounds_request_sizes_without_killing_the_connection() {
    let config_path = write_cfg("bound", 16);

    let mut child = Command::new(env!("CARGO_BIN_EXE_warlockd"))
        .arg(&config_path)
        .arg("--stdio")
        .args(["-j", "1"])
        .args(["--max-request-bytes", "1024"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("warlockd spawns");

    {
        let mut stdin = child.stdin.take().unwrap();
        // An over-limit request line (a 4 KiB id against a 1 KiB bound):
        // the server must answer with a typed error and keep serving.
        writeln!(
            stdin,
            r#"{{"v":2,"id":"{}","op":"ping"}}"#,
            "x".repeat(4096)
        )
        .unwrap();
        writeln!(stdin, r#"{{"v":2,"id":1,"op":"ping"}}"#).unwrap();
        writeln!(stdin, r#"{{"v":2,"id":2,"op":"shutdown"}}"#).unwrap();
    }

    let lines: Vec<String> = BufReader::new(child.stdout.take().unwrap())
        .lines()
        .map(|l| l.unwrap())
        .collect();
    let status = child.wait().unwrap();
    let _ = std::fs::remove_file(&config_path);

    assert!(status.success());
    assert_eq!(lines.len(), 3, "one response per request: {lines:#?}");
    let rejected = warlock::json::parse(&lines[0]).unwrap();
    assert_eq!(rejected.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        rejected
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("bad_request")
    );
    assert!(
        lines[0].contains("1024"),
        "the limit is named: {}",
        lines[0]
    );
    // The stream stays aligned: the next request is answered normally.
    let pong = parse_ok(&lines[1]);
    assert_eq!(pong.get("id").and_then(Json::as_i64), Some(1));
    parse_ok(&lines[2]);
}

#[test]
fn warlockd_reports_bad_usage() {
    let usage_error = |args: &[&str]| {
        let status = Command::new(env!("CARGO_BIN_EXE_warlockd"))
            .args(args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .unwrap();
        assert_eq!(status.code(), Some(2), "{args:?} must be a usage error");
    };
    usage_error(&[]); // no warehouse at all
    usage_error(&["a.cfg", "b.cfg"]); // stray positional
    usage_error(&["a.cfg", "--stdio", "--listen", "127.0.0.1:0"]);
    usage_error(&["a.cfg", "--stdio", "--http", "127.0.0.1:0"]);
    usage_error(&["--warehouse", "nopath"]); // not NAME=PATH
    usage_error(&["--warehouse", "=x.cfg"]); // empty name
    usage_error(&["--warehouse", "a=x.cfg", "--warehouse", "a=y.cfg"]); // dup
    usage_error(&["a.cfg", "--default-warehouse", "ghost"]); // unknown default
    usage_error(&["a.cfg", "--max-request-bytes", "none"]);
    usage_error(&["a.cfg", "--max-request-bytes", "0"]);
    usage_error(&["a.cfg", "--parallelism"]); // missing value
    usage_error(&["a.cfg", "--listen"]); // missing value

    let status = Command::new(env!("CARGO_BIN_EXE_warlockd"))
        .arg("/definitely/not/a/file.cfg")
        .arg("--stdio")
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert_eq!(
        status.code(),
        Some(1),
        "unreadable config is a startup failure"
    );
}
