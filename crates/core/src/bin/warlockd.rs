//! `warlockd` — the long-lived WARLOCK advisory server.
//!
//! Loads one or more warehouse descriptions at startup and serves the
//! versioned JSON protocol of [`warlock::service`] over stdio, TCP
//! and/or HTTP, dispatching every request to its named warehouse:
//!
//! ```text
//! warlockd <config-file> --stdio
//! warlockd --warehouse us=us.cfg --warehouse eu=eu.cfg \
//!          --listen 127.0.0.1:7341 --http 127.0.0.1:7342
//! ```
//!
//! - The positional `<config-file>` loads as a warehouse named
//!   `default`; `--warehouse NAME=PATH` (repeatable) loads more. The
//!   first loaded warehouse is the **default route** for unrouted and
//!   protocol-v1 requests unless `--default-warehouse NAME` picks
//!   another.
//! - `--stdio` reads requests from stdin and writes responses to
//!   stdout, one JSON object per line — scriptable from anything that
//!   can spawn a process. This is the default when no transport flag is
//!   given.
//! - `--listen ADDR` accepts any number of concurrent TCP connections,
//!   one thread per connection, speaking the same line protocol.
//! - `--http ADDR` serves the same op set as minimal HTTP/1.1
//!   (`POST /v2/<op>`, JSON body in/out — see [`warlock::http`]), and
//!   may be combined with `--listen`.
//! - `-j`/`--parallelism` overrides every warehouse's evaluation worker
//!   count (0 = auto, 1 = serial); `--max-candidates` and
//!   `--chunk-size` override the candidate-space budget (0 = unlimited)
//!   and the streaming evaluation chunk (0 = auto). A wire `reload`
//!   re-reads the warehouse's file as written — without these CLI
//!   overrides.
//! - `--max-request-bytes N` bounds each request line / HTTP body
//!   (default 16 MiB): over-limit requests are answered with a typed
//!   `bad_request` error instead of buffering without bound, and the
//!   connection stays usable.
//!
//! A `{"op":"shutdown"}` request over *any* transport stops the whole
//! server after the response is flushed (as does EOF on stdin in stdio
//! mode): the shared [`ShutdownSignal`] wakes every accept loop
//! deterministically via self-connect, so the process exits promptly
//! instead of blocking in `accept` until a next client arrives. Exit
//! codes: 0 on clean shutdown, 1 on startup failure, 2 on usage errors.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::panic::AssertUnwindSafe;
use std::process::ExitCode;
use std::sync::Arc;

use warlock::http::{serve_http, ShutdownSignal};
use warlock::registry::Registry;
use warlock::service::{Service, ServiceReply};
use warlock::Warlock;

const USAGE: &str = "usage: warlockd [<config-file>] [--warehouse NAME=PATH]... \
[--default-warehouse NAME] [--stdio | --listen ADDR] [--http ADDR] \
[-j N | --parallelism N] [--max-candidates N] [--chunk-size N] [--max-request-bytes N]";

/// The default per-request size bound: far above any real advisory
/// request, far below anything that could stress the server's memory.
const DEFAULT_MAX_REQUEST_BYTES: usize = 16 * 1024 * 1024;

struct Options {
    /// `(name, path)` per warehouse, in load order; a positional
    /// `<config-file>` is the warehouse named `default`.
    warehouses: Vec<(String, String)>,
    /// The default route; the first loaded warehouse when absent.
    default_warehouse: Option<String>,
    listen: Option<String>,
    http: Option<String>,
    stdio: bool,
    parallelism: Option<usize>,
    max_candidates: Option<u64>,
    chunk_size: Option<usize>,
    max_request_bytes: usize,
}

fn parse_args(mut args: Vec<String>) -> Result<Options, String> {
    /// The (already validated to exist) value of `flag`, parsed.
    fn value_of<T: std::str::FromStr>(
        args: &mut Vec<String>,
        flag: &str,
        what: &str,
    ) -> Result<T, String> {
        if args.is_empty() {
            return Err(format!("`{flag}` needs {what}"));
        }
        let value = args.remove(0);
        value
            .parse::<T>()
            .map_err(|_| format!("invalid {what} `{value}` for `{flag}`"))
    }
    let mut warehouses: Vec<(String, String)> = Vec::new();
    let mut default_warehouse = None;
    let mut listen = None;
    let mut http = None;
    let mut stdio = false;
    let mut parallelism = None;
    let mut max_candidates = None;
    let mut chunk_size = None;
    let mut max_request_bytes = DEFAULT_MAX_REQUEST_BYTES;
    let mut positional = Vec::new();
    while !args.is_empty() {
        let arg = args.remove(0);
        match arg.as_str() {
            "--stdio" => stdio = true,
            "--listen" => listen = Some(value_of::<String>(&mut args, &arg, "an address")?),
            "--http" => http = Some(value_of::<String>(&mut args, &arg, "an address")?),
            "--warehouse" => {
                let spec = value_of::<String>(&mut args, &arg, "a NAME=PATH pair")?;
                let (name, path) = spec
                    .split_once('=')
                    .filter(|(n, p)| !n.is_empty() && !p.is_empty())
                    .ok_or_else(|| format!("`--warehouse` wants NAME=PATH, got `{spec}`"))?;
                warehouses.push((name.to_owned(), path.to_owned()));
            }
            "--default-warehouse" => {
                default_warehouse = Some(value_of::<String>(&mut args, &arg, "a warehouse name")?);
            }
            "-j" | "--parallelism" => {
                parallelism = Some(value_of::<usize>(&mut args, &arg, "a worker count")?);
            }
            "--max-candidates" => {
                max_candidates = Some(value_of::<u64>(&mut args, &arg, "a candidate budget")?);
            }
            "--chunk-size" => {
                chunk_size = Some(value_of::<usize>(&mut args, &arg, "a chunk size")?);
            }
            "--max-request-bytes" => {
                max_request_bytes = value_of::<usize>(&mut args, &arg, "a byte count")?;
                if max_request_bytes == 0 {
                    return Err("`--max-request-bytes` must be positive".into());
                }
            }
            _ => positional.push(arg),
        }
    }
    if stdio && (listen.is_some() || http.is_some()) {
        return Err("`--stdio` and `--listen`/`--http` are mutually exclusive".into());
    }
    let mut positional = positional.into_iter();
    if let Some(config_path) = positional.next() {
        warehouses.insert(0, ("default".to_owned(), config_path));
    }
    if let Some(extra) = positional.next() {
        return Err(format!("unexpected argument `{extra}`"));
    }
    if warehouses.is_empty() {
        return Err("missing <config-file> (or --warehouse NAME=PATH)".into());
    }
    for (i, (name, _)) in warehouses.iter().enumerate() {
        if warehouses[..i].iter().any(|(n, _)| n == name) {
            return Err(format!("warehouse `{name}` is given twice"));
        }
    }
    if let Some(name) = &default_warehouse {
        if !warehouses.iter().any(|(n, _)| n == name) {
            return Err(format!(
                "`--default-warehouse {name}` names no loaded warehouse"
            ));
        }
    }
    Ok(Options {
        warehouses,
        default_warehouse,
        listen,
        http,
        stdio,
        parallelism,
        max_candidates,
        chunk_size,
        max_request_bytes,
    })
}

/// One bounded line read: a complete line (≤ limit bytes of content),
/// end of input, or an over-limit line (drained so the stream stays
/// aligned on the next request).
enum LineRead {
    Line(String),
    Eof,
    TooLong,
}

fn read_bounded_line<R: BufRead>(input: &mut R, limit: usize) -> std::io::Result<LineRead> {
    let mut buf = Vec::new();
    input
        .by_ref()
        .take(limit as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if buf.is_empty() {
        return Ok(LineRead::Eof);
    }
    if buf.last() != Some(&b'\n') && buf.len() > limit {
        // The cap cut the line off mid-way: discard the rest of it so
        // the next read starts on the next request, not on this line's
        // tail masquerading as one.
        drain_line(input)?;
        return Ok(LineRead::TooLong);
    }
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()))
}

/// Discards input until (and including) the next newline, in O(1)
/// memory.
fn drain_line<R: BufRead>(input: &mut R) -> std::io::Result<()> {
    loop {
        let available = input.fill_buf()?;
        if available.is_empty() {
            return Ok(());
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                input.consume(pos + 1);
                return Ok(());
            }
            None => {
                let len = available.len();
                input.consume(len);
            }
        }
    }
}

/// Serves one request stream: reads JSON lines from `input`, writes one
/// response line per request to `output`. Returns `true` when the peer
/// asked the whole server to shut down.
fn serve<R: BufRead, W: Write>(
    service: &Service,
    mut input: R,
    mut output: W,
    max_request_bytes: usize,
) -> bool {
    loop {
        let reply = match read_bounded_line(&mut input, max_request_bytes) {
            Err(_) => return false, // peer vanished mid-line
            Ok(LineRead::Eof) => return false,
            Ok(LineRead::TooLong) => ServiceReply::error(
                "bad_request",
                &format!("request line exceeds the {max_request_bytes}-byte limit"),
            ),
            Ok(LineRead::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                // A panicking request (a bug) must not take the server
                // down: degrade to an internal-error response for this
                // client, in the envelope version the request spoke.
                std::panic::catch_unwind(AssertUnwindSafe(|| service.handle_line(&line)))
                    .unwrap_or_else(|_| {
                        ServiceReply::error_for_version(
                            ServiceReply::request_version(&line),
                            "internal",
                            "request handler panicked",
                        )
                    })
            }
        };
        if writeln!(output, "{}", reply.line)
            .and_then(|_| output.flush())
            .is_err()
        {
            return false;
        }
        if reply.shutdown {
            return true;
        }
    }
}

/// The TCP accept loop for the line protocol. Exits deterministically
/// once `shutdown` trips — a shutdown request from any connection (or
/// any other transport) wakes the loop via self-connect instead of
/// leaving it blocked in `accept`.
fn serve_tcp(
    service: &Arc<Service>,
    listener: TcpListener,
    max_request_bytes: usize,
    shutdown: &Arc<ShutdownSignal>,
) {
    if let Ok(addr) = listener.local_addr() {
        shutdown.register(addr);
    }
    eprintln!(
        "warlockd: listening on {}",
        listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into())
    );
    for stream in listener.incoming() {
        if shutdown.is_stopped() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let service = Arc::clone(service);
        let shutdown = Arc::clone(shutdown);
        std::thread::spawn(move || {
            let reader = match stream.try_clone() {
                Ok(s) => BufReader::new(s),
                Err(_) => return,
            };
            if serve(&service, reader, stream, max_request_bytes) {
                // A clean shutdown request: the response is flushed;
                // stop every transport and let main exit 0.
                shutdown.trigger();
            }
        });
    }
}

fn main() -> ExitCode {
    let options = match parse_args(std::env::args().skip(1).collect()) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("warlockd: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let default = options
        .default_warehouse
        .clone()
        .unwrap_or_else(|| options.warehouses[0].0.clone());
    let registry = Arc::new(Registry::new(default));
    for (name, path) in &options.warehouses {
        let mut session = match Warlock::from_config_path(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("warlockd: {e}");
                return ExitCode::FAILURE;
            }
        };
        if options.parallelism.is_some()
            || options.max_candidates.is_some()
            || options.chunk_size.is_some()
        {
            let mut config = session.config().clone();
            if let Some(workers) = options.parallelism {
                config.parallelism = workers;
            }
            if let Some(budget) = options.max_candidates {
                config.max_candidates = budget;
            }
            if let Some(chunk) = options.chunk_size {
                config.chunk_size = chunk;
            }
            if let Err(e) = session.set_config(config) {
                eprintln!("warlockd: {e}");
                return ExitCode::FAILURE;
            }
        }
        if let Err(e) = registry.insert(name.clone(), Some(path.clone()), session) {
            eprintln!("warlockd: {e}");
            return ExitCode::FAILURE;
        }
    }
    let service = Arc::new(Service::with_registry(registry));

    if options.stdio || (options.listen.is_none() && options.http.is_none()) {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        serve(
            &service,
            stdin.lock(),
            stdout.lock(),
            options.max_request_bytes,
        );
        return ExitCode::SUCCESS;
    }

    // Bind every requested transport before serving on any, so address
    // conflicts fail the whole startup instead of half of it.
    let bind = |addr: &str| match TcpListener::bind(addr) {
        Ok(listener) => Ok(listener),
        Err(e) => {
            eprintln!("warlockd: cannot listen on {addr}: {e}");
            Err(ExitCode::FAILURE)
        }
    };
    let tcp = match options.listen.as_deref().map(bind).transpose() {
        Ok(l) => l,
        Err(code) => return code,
    };
    let http = match options.http.as_deref().map(bind).transpose() {
        Ok(l) => l,
        Err(code) => return code,
    };

    let shutdown = Arc::new(ShutdownSignal::new());
    let mut http_thread = None;
    if let Some(listener) = http {
        eprintln!(
            "warlockd: http on {}",
            listener
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<unknown>".into())
        );
        let service = Arc::clone(&service);
        let shutdown = Arc::clone(&shutdown);
        let max = options.max_request_bytes;
        if tcp.is_some() {
            http_thread = Some(std::thread::spawn(move || {
                serve_http(service, listener, max, shutdown)
            }));
        } else {
            serve_http(service, listener, max, shutdown);
        }
    }
    if let Some(listener) = tcp {
        serve_tcp(&service, listener, options.max_request_bytes, &shutdown);
    }
    if let Some(thread) = http_thread {
        let _ = thread.join();
    }
    ExitCode::SUCCESS
}
