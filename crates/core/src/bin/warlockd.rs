//! `warlockd` — the long-lived WARLOCK advisory server.
//!
//! Loads one warehouse description at startup and then serves the
//! newline-delimited JSON protocol of [`warlock::service`] over stdio
//! or TCP, with one shared session answering every connection:
//!
//! ```text
//! warlockd <config-file> --stdio
//! warlockd <config-file> --listen 127.0.0.1:7341 [-j N] [--max-candidates N] [--chunk-size N]
//! ```
//!
//! - `--stdio` reads requests from stdin and writes responses to
//!   stdout, one JSON object per line — scriptable from anything that
//!   can spawn a process, and what the CI smoke lane drives.
//! - `--listen ADDR` accepts any number of concurrent TCP connections,
//!   one thread per connection. All connections share the session:
//!   what-ifs priced for one client are warm for the rest, and
//!   `set_mix` re-points everyone at the new workload.
//! - `-j`/`--parallelism` overrides the configuration file's evaluation
//!   worker count (0 = auto, 1 = serial); `--max-candidates` and
//!   `--chunk-size` override the candidate-space budget (0 = unlimited)
//!   and the streaming evaluation chunk (0 = auto).
//!
//! A `{"op":"shutdown"}` request stops the server after the response is
//! flushed (as does EOF on stdin in stdio mode). Exit codes: 0 on clean
//! shutdown, 1 on startup failure, 2 on usage errors.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::process::ExitCode;
use std::sync::Arc;

use warlock::service::Service;
use warlock::Warlock;

const USAGE: &str = "usage: warlockd <config-file> [--stdio | --listen ADDR] [-j N | --parallelism N] [--max-candidates N] [--chunk-size N]";

struct Options {
    config_path: String,
    listen: Option<String>,
    stdio: bool,
    parallelism: Option<usize>,
    max_candidates: Option<u64>,
    chunk_size: Option<usize>,
}

fn parse_args(mut args: Vec<String>) -> Result<Options, String> {
    fn value_of<T: std::str::FromStr>(
        args: &mut Vec<String>,
        flag: &str,
        what: &str,
    ) -> Result<T, String> {
        if args.is_empty() {
            return Err(format!("`{flag}` needs {what}"));
        }
        let value = args.remove(0);
        value
            .parse::<T>()
            .map_err(|_| format!("invalid {what} `{value}` for `{flag}`"))
    }
    let mut listen = None;
    let mut stdio = false;
    let mut parallelism = None;
    let mut max_candidates = None;
    let mut chunk_size = None;
    let mut positional = Vec::new();
    while !args.is_empty() {
        let arg = args.remove(0);
        match arg.as_str() {
            "--stdio" => stdio = true,
            "--listen" => {
                if args.is_empty() {
                    return Err("`--listen` needs an address".into());
                }
                listen = Some(args.remove(0));
            }
            "-j" | "--parallelism" => {
                parallelism = Some(value_of::<usize>(&mut args, &arg, "a worker count")?);
            }
            "--max-candidates" => {
                max_candidates = Some(value_of::<u64>(&mut args, &arg, "a candidate budget")?);
            }
            "--chunk-size" => {
                chunk_size = Some(value_of::<usize>(&mut args, &arg, "a chunk size")?);
            }
            _ => positional.push(arg),
        }
    }
    if stdio && listen.is_some() {
        return Err("`--stdio` and `--listen` are mutually exclusive".into());
    }
    let mut positional = positional.into_iter();
    let config_path = positional.next().ok_or("missing <config-file>")?;
    if let Some(extra) = positional.next() {
        return Err(format!("unexpected argument `{extra}`"));
    }
    Ok(Options {
        config_path,
        listen,
        stdio,
        parallelism,
        max_candidates,
        chunk_size,
    })
}

/// Serves one request stream: reads JSON lines from `input`, writes one
/// response line per request to `output`. Returns `true` when the peer
/// asked the whole server to shut down.
fn serve<R: BufRead, W: Write>(service: &Service, input: R, mut output: W) -> bool {
    for line in input.lines() {
        let Ok(line) = line else {
            return false; // peer vanished mid-line
        };
        if line.trim().is_empty() {
            continue;
        }
        // A panicking request (a bug) must not take the server down:
        // degrade to an internal-error response for this client.
        let reply = std::panic::catch_unwind(AssertUnwindSafe(|| service.handle_line(&line)))
            .unwrap_or_else(|_| warlock::service::ServiceReply {
                line: format!(
                    r#"{{"v":{},"id":null,"ok":false,"error":{{"kind":"internal","message":"request handler panicked"}}}}"#,
                    warlock::service::PROTOCOL_VERSION
                ),
                shutdown: false,
            });
        if writeln!(output, "{}", reply.line)
            .and_then(|_| output.flush())
            .is_err()
        {
            return false;
        }
        if reply.shutdown {
            return true;
        }
    }
    false
}

fn serve_tcp(service: Arc<Service>, listener: TcpListener) -> ExitCode {
    eprintln!(
        "warlockd: listening on {}",
        listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into())
    );
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            let reader = match stream.try_clone() {
                Ok(s) => BufReader::new(s),
                Err(_) => return,
            };
            if handle_tcp_connection(&service, reader, stream) {
                // A clean shutdown request: the response is flushed,
                // stop the whole process.
                std::process::exit(0);
            }
        });
    }
    ExitCode::SUCCESS
}

fn handle_tcp_connection(
    service: &Service,
    reader: BufReader<TcpStream>,
    stream: TcpStream,
) -> bool {
    serve(service, reader, stream)
}

fn main() -> ExitCode {
    let options = match parse_args(std::env::args().skip(1).collect()) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("warlockd: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut session = match Warlock::from_config_path(&options.config_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("warlockd: {e}");
            return ExitCode::FAILURE;
        }
    };
    if options.parallelism.is_some()
        || options.max_candidates.is_some()
        || options.chunk_size.is_some()
    {
        let mut config = session.config().clone();
        if let Some(workers) = options.parallelism {
            config.parallelism = workers;
        }
        if let Some(budget) = options.max_candidates {
            config.max_candidates = budget;
        }
        if let Some(chunk) = options.chunk_size {
            config.chunk_size = chunk;
        }
        if let Err(e) = session.set_config(config) {
            eprintln!("warlockd: {e}");
            return ExitCode::FAILURE;
        }
    }
    let service = Arc::new(Service::new(session));

    if options.stdio || options.listen.is_none() {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        serve(&service, stdin.lock(), stdout.lock());
        return ExitCode::SUCCESS;
    }

    let addr = options.listen.expect("checked above");
    match TcpListener::bind(&addr) {
        Ok(listener) => serve_tcp(service, listener),
        Err(e) => {
            eprintln!("warlockd: cannot listen on {addr}: {e}");
            ExitCode::FAILURE
        }
    }
}
