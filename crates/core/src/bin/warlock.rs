//! The `warlock` command-line tool.
//!
//! A text-mode counterpart of the original GUI: reads a warehouse
//! description (see [`warlock::config_file`] for the format), runs the
//! advisor, and prints the requested outputs.
//!
//! ```text
//! warlock <config-file> [command]
//!
//! commands:
//!   rank              ranked fragmentation candidates (default)
//!   analyze [RANK]    detailed query statistic of a ranked candidate (default 1)
//!   allocate [RANK]   physical allocation scheme of a ranked candidate (default 1)
//!   excluded          threshold-excluded candidates with reasons
//!   csv               ranking as CSV (for plotting)
//! ```

use std::env;
use std::process::ExitCode;

use warlock::config_file::{demo_config, parse_config, render_config};
use warlock::report::{ranking_csv, render_allocation, render_analysis, render_ranking};
use warlock::Advisor;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    // `warlock init` emits the APB-1-like starter configuration.
    if args.first().map(String::as_str) == Some("init") {
        print!("{}", render_config(&demo_config()));
        return ExitCode::SUCCESS;
    }
    let Some(path) = args.first() else {
        eprintln!(
            "usage: warlock <config-file> [rank|analyze [N]|allocate [N]|excluded|csv]\n       warlock init   (print a starter configuration)"
        );
        return ExitCode::from(2);
    };
    let input = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("warlock: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parsed = match parse_config(&input) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("warlock: {e}");
            return ExitCode::FAILURE;
        }
    };
    let advisor = match Advisor::new(
        &parsed.schema,
        &parsed.system,
        &parsed.mix,
        parsed.advisor.clone(),
    ) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("warlock: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = advisor.run();

    let command = args.get(1).map(String::as_str).unwrap_or("rank");
    let rank_arg = args
        .get(2)
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(1);

    match command {
        "rank" => print!("{}", render_ranking(&report)),
        "csv" => print!("{}", ranking_csv(&report)),
        "excluded" => {
            for e in &report.excluded {
                println!("{:<52} {}", e.label, e.reason);
            }
            println!("({} candidates excluded)", report.excluded.len());
        }
        "analyze" | "allocate" => {
            let Some(candidate) = report.ranked.get(rank_arg.saturating_sub(1)) else {
                eprintln!(
                    "warlock: rank {rank_arg} out of range (1..={})",
                    report.ranked.len()
                );
                return ExitCode::FAILURE;
            };
            if command == "analyze" {
                print!("{}", render_analysis(&advisor.analyze(&candidate.cost.fragmentation)));
            } else {
                print!(
                    "{}",
                    render_allocation(&advisor.plan_allocation(&candidate.cost.fragmentation))
                );
            }
        }
        other => {
            eprintln!("warlock: unknown command `{other}`");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}
