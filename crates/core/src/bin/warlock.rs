//! The `warlock` command-line tool.
//!
//! A text-mode counterpart of the original GUI: reads a warehouse
//! description (see [`warlock::config_file`] for the format), runs the
//! advisor session, and prints the requested outputs.
//!
//! ```text
//! warlock [-j N | --parallelism N] [--max-candidates N] [--chunk-size N] [--kernel NAME] <config-file> [command]
//!
//! commands:
//!   rank              ranked fragmentation candidates (default)
//!   analyze [RANK]    detailed query statistic of a ranked candidate (default 1)
//!   allocate [RANK]   physical allocation scheme of a ranked candidate (default 1)
//!   recommend         judge allocation policies head-to-head in the disk simulator
//!   excluded          threshold-excluded candidates with reasons
//!   csv               ranking as CSV (for plotting)
//!   json              complete advisory as JSON (ranking + analysis + allocation)
//!
//! `-j`/`--parallelism` overrides the configuration file's evaluation
//! worker count (0 = auto, 1 = serial); `--chunk-size` overrides the
//! streaming evaluation chunk (0 = auto); `--kernel` pins the costing
//! kernel backend (`auto`, `scalar`, `lanes` or `avx2`); any value of
//! these yields identical advice. `--max-candidates` overrides the
//! candidate-space budget (0 = unlimited): runs whose exact predicted
//! space exceeds it fail up front instead of grinding.
//! ```
//!
//! Exit codes: 0 on success (including an empty ranking — `rank`,
//! `csv`, `json` and `excluded` report whatever survived), 1 on runtime
//! failures (unreadable or invalid input, `analyze`/`allocate` rank out
//! of range), 2 on usage errors (unknown command, malformed rank
//! argument).

use std::env;
use std::process::ExitCode;

use warlock::config_file::{demo_config, render_config};
use warlock::json::ToJson;
use warlock::report::{
    ranking_csv, render_allocation, render_analysis, render_ranking, render_recommendation,
};
use warlock::Warlock;

const USAGE: &str = "usage: warlock [-j N | --parallelism N] [--max-candidates N] [--chunk-size N] [--kernel NAME] <config-file> [rank|analyze [N]|allocate [N]|recommend|excluded|csv|json]\n       warlock init   (print a starter configuration)";

/// Extracts every occurrence of a `--flag VALUE` pair from `args`,
/// returning the last parsed value. `Ok(None)` when the flag is absent;
/// `Err` (with a message already printed) on a missing or malformed
/// value.
fn take_flag<T: std::str::FromStr>(
    args: &mut Vec<String>,
    names: &[&str],
    what: &str,
) -> Result<Option<T>, ()> {
    let mut found = None;
    while let Some(pos) = args.iter().position(|a| names.contains(&a.as_str())) {
        let flag = args.remove(pos);
        if pos >= args.len() {
            eprintln!("warlock: `{flag}` needs {what}\n{USAGE}");
            return Err(());
        }
        let value = args.remove(pos);
        match value.parse::<T>() {
            Ok(n) => found = Some(n),
            Err(_) => {
                eprintln!("warlock: invalid {what} `{value}` for `{flag}`");
                return Err(());
            }
        }
    }
    Ok(found)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = env::args().skip(1).collect();
    // Extract the option flags wherever they appear; the remaining
    // arguments stay positional.
    let Ok(parallelism) = take_flag::<usize>(&mut args, &["-j", "--parallelism"], "a worker count")
    else {
        return ExitCode::from(2);
    };
    let Ok(max_candidates) =
        take_flag::<u64>(&mut args, &["--max-candidates"], "a candidate budget")
    else {
        return ExitCode::from(2);
    };
    let Ok(chunk_size) = take_flag::<usize>(&mut args, &["--chunk-size"], "a chunk size") else {
        return ExitCode::from(2);
    };
    let Ok(kernel) = take_flag::<warlock::KernelChoice>(
        &mut args,
        &["--kernel"],
        "a kernel backend (auto, scalar, lanes or avx2)",
    ) else {
        return ExitCode::from(2);
    };
    // `warlock init` emits the APB-1-like starter configuration.
    if args.first().map(String::as_str) == Some("init") {
        print!("{}", render_config(&demo_config()));
        return ExitCode::SUCCESS;
    }
    let Some(path) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let command = args.get(1).map(String::as_str).unwrap_or("rank");
    // Parse the rank argument up front: a malformed value is a usage
    // error (exit 2), not a silent fall-back to rank 1.
    let rank_arg = match args.get(2) {
        None => 1,
        Some(s) => match s.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("warlock: invalid rank argument `{s}` (expected a positive integer)");
                return ExitCode::from(2);
            }
        },
    };
    if !matches!(command, "analyze" | "allocate") && args.get(2).is_some() {
        eprintln!("warlock: `{command}` takes no rank argument\n{USAGE}");
        return ExitCode::from(2);
    }

    let mut session = match Warlock::from_config_path(path) {
        Ok(s) => s,
        Err(e) => {
            // `from_config_path` errors already name the offending file.
            eprintln!("warlock: {e}");
            return ExitCode::FAILURE;
        }
    };
    if parallelism.is_some() || max_candidates.is_some() || chunk_size.is_some() || kernel.is_some()
    {
        let mut config = session.config().clone();
        if let Some(workers) = parallelism {
            config.parallelism = workers;
        }
        if let Some(budget) = max_candidates {
            config.max_candidates = budget;
        }
        if let Some(chunk) = chunk_size {
            config.chunk_size = chunk;
        }
        if let Some(choice) = kernel {
            config.kernel = choice;
        }
        if let Err(e) = session.set_config(config) {
            eprintln!("warlock: {e}");
            return ExitCode::FAILURE;
        }
    }

    let outcome = match command {
        "rank" => session.rank().map(|r| print!("{}", render_ranking(r))),
        "csv" => session.rank().map(|r| print!("{}", ranking_csv(r))),
        "json" => session
            .session_report()
            .map(|r| println!("{}", r.to_json().pretty())),
        "excluded" => session
            .rank()
            .map(|report| print!("{}", warlock::report::render_excluded(report))),
        "analyze" => session
            .analyze(rank_arg)
            .map(|analysis| print!("{}", render_analysis(&analysis))),
        "allocate" => session
            .plan_allocation(rank_arg)
            .map(|plan| print!("{}", render_allocation(&plan))),
        "recommend" => session
            .recommend_policy()
            .map(|rec| print!("{}", render_recommendation(&rec))),
        other => {
            eprintln!("warlock: unknown command `{other}`\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("warlock: {e}");
            ExitCode::FAILURE
        }
    }
}
