//! Interactive what-if tuning.
//!
//! "WARLOCK provides several options to facilitate interactive fine
//! tuning. Disk parameters, query load specifics and bitmap configurations
//! can be interactively adapted to examine the performance variations they
//! imply." (§3.3)
//!
//! A [`TuningSession`] owns copies of the advisor inputs so each variation
//! can be applied and re-evaluated without touching the originals, and
//! reports the deltas against the baseline run.

use warlock_schema::{DimensionId, StarSchema};
use warlock_storage::{PrefetchPolicy, SystemConfig};
use warlock_workload::QueryMix;

use crate::advisor::{Advisor, AdvisorError, AdvisorReport};
use crate::config::AdvisorConfig;

/// Summary of one what-if variation against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningDelta {
    /// What was varied (human-readable).
    pub variation: String,
    /// Baseline top candidate label.
    pub baseline_top: String,
    /// Variation top candidate label.
    pub variation_top: String,
    /// Baseline weighted response of the top candidate (ms).
    pub baseline_response_ms: f64,
    /// Variation weighted response of the top candidate (ms).
    pub variation_response_ms: f64,
    /// Whether the recommended fragmentation changed.
    pub recommendation_changed: bool,
}

/// An interactive tuning session over owned copies of the inputs.
#[derive(Debug, Clone)]
pub struct TuningSession {
    schema: StarSchema,
    system: SystemConfig,
    mix: QueryMix,
    config: AdvisorConfig,
    baseline: AdvisorReport,
}

impl TuningSession {
    /// Starts a session: runs the baseline advisor once.
    pub fn new(
        schema: StarSchema,
        system: SystemConfig,
        mix: QueryMix,
        config: AdvisorConfig,
    ) -> Result<Self, AdvisorError> {
        let baseline = Advisor::new(&schema, &system, &mix, config.clone())?.run();
        Ok(Self {
            schema,
            system,
            mix,
            config,
            baseline,
        })
    }

    /// The baseline report.
    #[inline]
    pub fn baseline(&self) -> &AdvisorReport {
        &self.baseline
    }

    fn delta(&self, variation: String, report: &AdvisorReport) -> TuningDelta {
        let b = self.baseline.top();
        let v = report.top();
        TuningDelta {
            variation,
            baseline_top: b.map(|r| r.label.clone()).unwrap_or_default(),
            variation_top: v.map(|r| r.label.clone()).unwrap_or_default(),
            baseline_response_ms: b.map(|r| r.cost.response_ms).unwrap_or(0.0),
            variation_response_ms: v.map(|r| r.cost.response_ms).unwrap_or(0.0),
            recommendation_changed: match (b, v) {
                (Some(b), Some(v)) => b.cost.fragmentation != v.cost.fragmentation,
                _ => true,
            },
        }
    }

    /// What if the system had `num_disks` disks?
    pub fn with_disks(&self, num_disks: u32) -> (AdvisorReport, TuningDelta) {
        let mut system = self.system;
        system.num_disks = num_disks.max(1);
        let report = Advisor::new(&self.schema, &system, &self.mix, self.config.clone())
            .expect("baseline inputs validated")
            .run();
        let delta = self.delta(format!("disks = {num_disks}"), &report);
        (report, delta)
    }

    /// What if prefetching were fixed at `pages` for both fact tables and
    /// bitmaps?
    pub fn with_fixed_prefetch(&self, pages: u32) -> (AdvisorReport, TuningDelta) {
        let mut system = self.system;
        system.fact_prefetch = PrefetchPolicy::Fixed(pages.max(1));
        system.bitmap_prefetch = PrefetchPolicy::Fixed(pages.max(1));
        let report = Advisor::new(&self.schema, &system, &self.mix, self.config.clone())
            .expect("baseline inputs validated")
            .run();
        let delta = self.delta(format!("prefetch = {pages} pages"), &report);
        (report, delta)
    }

    /// What if the bitmap indexes of `dimension` were dropped (space
    /// limiting)?
    pub fn without_bitmap_dimension(
        &self,
        dimension: DimensionId,
    ) -> (AdvisorReport, TuningDelta) {
        let advisor = Advisor::new(&self.schema, &self.system, &self.mix, self.config.clone())
            .expect("baseline inputs validated");
        let scheme = advisor.scheme().without_dimension(dimension);
        let report = advisor.with_scheme(scheme).run();
        let delta = self.delta(format!("no bitmaps on dimension {dimension}"), &report);
        (report, delta)
    }

    /// What if query class `name` vanished from the workload?
    ///
    /// Returns `None` if removing the class would empty the mix or the
    /// name is unknown.
    pub fn without_class(&self, name: &str) -> Option<(AdvisorReport, TuningDelta)> {
        let mix = self.mix.without_class(name)?;
        let report = Advisor::new(&self.schema, &self.system, &mix, self.config.clone())
            .expect("baseline inputs validated")
            .run();
        let delta = self.delta(format!("without class {name}"), &report);
        Some((report, delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_schema::{apb1_like_schema, Apb1Config};
    use warlock_workload::apb1_like_mix;

    fn session() -> TuningSession {
        TuningSession::new(
            apb1_like_schema(Apb1Config::default()).unwrap(),
            SystemConfig::default_2001(16),
            apb1_like_mix().unwrap(),
            AdvisorConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn more_disks_cut_response() {
        let s = session();
        let (_, delta) = s.with_disks(64);
        assert!(delta.variation_response_ms < delta.baseline_response_ms);
        assert!(delta.variation.contains("64"));
    }

    #[test]
    fn fewer_disks_hurt() {
        let s = session();
        let (_, delta) = s.with_disks(2);
        assert!(delta.variation_response_ms > delta.baseline_response_ms);
    }

    #[test]
    fn tiny_fixed_prefetch_hurts() {
        let s = session();
        let (_, delta) = s.with_fixed_prefetch(1);
        assert!(
            delta.variation_response_ms > delta.baseline_response_ms,
            "1-page granule {} should be worse than auto {}",
            delta.variation_response_ms,
            delta.baseline_response_ms
        );
    }

    #[test]
    fn dropping_bitmaps_never_helps() {
        let s = session();
        let (_, delta) = s.without_bitmap_dimension(DimensionId(0));
        assert!(delta.variation_response_ms >= delta.baseline_response_ms * 0.999);
    }

    #[test]
    fn removing_a_class_reweights() {
        let s = session();
        let (report, delta) = s.without_class("q01_month_store_code").unwrap();
        assert!(!report.ranked.is_empty());
        assert!(delta.variation.contains("q01"));
        assert!(s.without_class("nonexistent").is_none());
    }

    #[test]
    fn baseline_is_stable() {
        let s = session();
        assert!(s.baseline().top().is_some());
        let (_, delta) = s.with_disks(16);
        // Same system → same recommendation.
        assert!(!delta.recommendation_changed);
        assert!((delta.variation_response_ms - delta.baseline_response_ms).abs() < 1e-9);
    }
}
