//! Interactive what-if tuning.
//!
//! "WARLOCK provides several options to facilitate interactive fine
//! tuning. Disk parameters, query load specifics and bitmap configurations
//! can be interactively adapted to examine the performance variations they
//! imply." (§3.3)
//!
//! A [`TuningSession`] owns copies of the advisor inputs so each variation
//! can be applied and re-evaluated without touching the originals, and
//! reports the deltas against the baseline run. Clones share the
//! evaluation memo and worker pool, like [`crate::Warlock`] clones.

use std::sync::Arc;

use warlock_bitmap::BitmapScheme;
use warlock_schema::{DimensionId, StarSchema};
use warlock_storage::SystemConfig;
use warlock_workload::QueryMix;

use crate::advisor::AdvisorReport;
use crate::config::AdvisorConfig;
use crate::engine;
use crate::error::WarlockError;
use crate::session::Shared;

/// Summary of one what-if variation against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningDelta {
    /// What was varied (human-readable).
    pub variation: String,
    /// Baseline top candidate label.
    pub baseline_top: String,
    /// Variation top candidate label.
    pub variation_top: String,
    /// Baseline weighted response of the top candidate (ms).
    pub baseline_response_ms: f64,
    /// Variation weighted response of the top candidate (ms).
    pub variation_response_ms: f64,
    /// Whether the recommended fragmentation changed.
    pub recommendation_changed: bool,
}

impl TuningDelta {
    /// Summarizes `variation`'s report against `baseline`'s.
    pub fn between(variation: String, baseline: &AdvisorReport, report: &AdvisorReport) -> Self {
        let b = baseline.top();
        let v = report.top();
        Self {
            variation,
            baseline_top: b.map(|r| r.label.clone()).unwrap_or_default(),
            variation_top: v.map(|r| r.label.clone()).unwrap_or_default(),
            baseline_response_ms: b.map(|r| r.cost.response_ms).unwrap_or(0.0),
            variation_response_ms: v.map(|r| r.cost.response_ms).unwrap_or(0.0),
            recommendation_changed: match (b, v) {
                (Some(b), Some(v)) => b.cost.fragmentation != v.cost.fragmentation,
                _ => true,
            },
        }
    }
}

/// An interactive tuning session over owned copies of the inputs.
///
/// [`crate::Warlock`] exposes the same variations as `what_if_*`
/// methods; this standalone type remains for callers that want a
/// dedicated tuning handle with a pinned baseline.
#[derive(Debug, Clone)]
pub struct TuningSession {
    schema: StarSchema,
    system: SystemConfig,
    mix: QueryMix,
    config: AdvisorConfig,
    scheme: BitmapScheme,
    baseline: AdvisorReport,
    /// Memoized candidate evaluations across variations plus the
    /// persistent worker pool (same semantics as on [`crate::Warlock`];
    /// clones share both).
    shared: Arc<Shared>,
}

impl TuningSession {
    /// Starts a session: runs the baseline advisor once.
    pub fn new(
        schema: StarSchema,
        system: SystemConfig,
        mix: QueryMix,
        config: AdvisorConfig,
    ) -> Result<Self, WarlockError> {
        let (scheme, _skew) = engine::validate(&schema, &system, &mix, &config)?;
        let shared = Arc::new(Shared::default());
        let baseline = engine::run(&schema, &system, &mix, &config, &scheme, shared.env())?;
        Ok(Self {
            schema,
            system,
            mix,
            config,
            scheme,
            baseline,
            shared,
        })
    }

    /// The baseline report.
    #[inline]
    pub fn baseline(&self) -> &AdvisorReport {
        &self.baseline
    }

    fn with_delta(
        &self,
        (variation, report): (String, AdvisorReport),
    ) -> (AdvisorReport, TuningDelta) {
        let delta = TuningDelta::between(variation, &self.baseline, &report);
        (report, delta)
    }

    /// What if the system had `num_disks` disks?
    pub fn with_disks(&self, num_disks: u32) -> Result<(AdvisorReport, TuningDelta), WarlockError> {
        Ok(self.with_delta(engine::vary_disks(
            &self.schema,
            &self.system,
            &self.mix,
            &self.config,
            &self.scheme,
            num_disks,
            self.shared.env(),
        )?))
    }

    /// What if prefetching were fixed at `pages` for both fact tables and
    /// bitmaps?
    pub fn with_fixed_prefetch(
        &self,
        pages: u32,
    ) -> Result<(AdvisorReport, TuningDelta), WarlockError> {
        Ok(self.with_delta(engine::vary_fixed_prefetch(
            &self.schema,
            &self.system,
            &self.mix,
            &self.config,
            &self.scheme,
            pages,
            self.shared.env(),
        )?))
    }

    /// What if the bitmap indexes of `dimension` were dropped (space
    /// limiting)?
    pub fn without_bitmap_dimension(
        &self,
        dimension: DimensionId,
    ) -> Result<(AdvisorReport, TuningDelta), WarlockError> {
        Ok(self.with_delta(engine::vary_without_bitmap_dimension(
            &self.schema,
            &self.system,
            &self.mix,
            &self.config,
            &self.scheme,
            dimension,
            self.shared.env(),
        )?))
    }

    /// What if query class `name` vanished from the workload?
    ///
    /// # Errors
    ///
    /// [`WarlockError::UnknownClass`] when the name is unknown or
    /// removing the class would empty the mix.
    pub fn without_class(&self, name: &str) -> Result<(AdvisorReport, TuningDelta), WarlockError> {
        Ok(self.with_delta(engine::vary_without_class(
            &self.schema,
            &self.system,
            &self.mix,
            &self.config,
            name,
            self.shared.env(),
        )?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_schema::{apb1_like_schema, Apb1Config};
    use warlock_workload::apb1_like_mix;

    fn session() -> TuningSession {
        TuningSession::new(
            apb1_like_schema(Apb1Config::default()).unwrap(),
            SystemConfig::default_2001(16),
            apb1_like_mix().unwrap(),
            AdvisorConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn more_disks_cut_response() {
        let s = session();
        let (_, delta) = s.with_disks(64).unwrap();
        assert!(delta.variation_response_ms < delta.baseline_response_ms);
        assert!(delta.variation.contains("64"));
    }

    #[test]
    fn fewer_disks_hurt() {
        let s = session();
        let (_, delta) = s.with_disks(2).unwrap();
        assert!(delta.variation_response_ms > delta.baseline_response_ms);
    }

    #[test]
    fn tiny_fixed_prefetch_hurts() {
        let s = session();
        let (_, delta) = s.with_fixed_prefetch(1).unwrap();
        assert!(
            delta.variation_response_ms > delta.baseline_response_ms,
            "1-page granule {} should be worse than auto {}",
            delta.variation_response_ms,
            delta.baseline_response_ms
        );
    }

    #[test]
    fn dropping_bitmaps_never_helps() {
        let s = session();
        let (_, delta) = s.without_bitmap_dimension(DimensionId(0)).unwrap();
        assert!(delta.variation_response_ms >= delta.baseline_response_ms * 0.999);
    }

    #[test]
    fn removing_a_class_reweights() {
        let s = session();
        let (report, delta) = s.without_class("q01_month_store_code").unwrap();
        assert!(!report.ranked.is_empty());
        assert!(delta.variation.contains("q01"));
        assert!(matches!(
            s.without_class("nonexistent"),
            Err(WarlockError::UnknownClass { .. })
        ));
    }

    #[test]
    fn zero_disks_label_reports_the_effective_value() {
        // `0` disks is clamped to 1 — the label used to claim "disks = 0"
        // while the run actually modeled one disk.
        let s = session();
        let (_, delta) = s.with_disks(0).unwrap();
        assert!(
            delta.variation.contains("disks = 1"),
            "label `{}` must report the effective disk count",
            delta.variation
        );
        assert!(
            delta.variation.contains("requested 0"),
            "label `{}` must expose the clamp",
            delta.variation
        );
        // The clamped run is exactly the 1-disk run.
        let (one_disk, _) = s.with_disks(1).unwrap();
        let (zero_disk, _) = s.with_disks(0).unwrap();
        assert_eq!(zero_disk, one_disk);
    }

    #[test]
    fn zero_prefetch_label_reports_the_effective_value() {
        let s = session();
        let (report_zero, delta) = s.with_fixed_prefetch(0).unwrap();
        assert!(
            delta.variation.contains("prefetch = 1 pages")
                && delta.variation.contains("requested 0"),
            "label `{}` hides the clamp",
            delta.variation
        );
        let (report_one, one) = s.with_fixed_prefetch(1).unwrap();
        assert!(
            one.variation.contains("prefetch = 1 pages") && !one.variation.contains("requested")
        );
        assert_eq!(report_zero, report_one);
    }

    #[test]
    fn baseline_is_stable() {
        let s = session();
        assert!(s.baseline().top().is_some());
        let (_, delta) = s.with_disks(16).unwrap();
        // Same system → same recommendation.
        assert!(!delta.recommendation_changed);
        assert!((delta.variation_response_ms - delta.baseline_response_ms).abs() < 1e-9);
    }

    #[test]
    fn clones_share_the_warm_cache() {
        let s1 = session();
        let (r1, _) = s1.with_disks(64).unwrap();
        let misses = {
            let stats = s1.shared.cache.stats();
            stats.misses
        };
        let s2 = s1.clone();
        let (r2, _) = s2.with_disks(64).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(s2.shared.cache.stats().misses, misses);
    }
}
