//! A concurrent registry of **named** advisory sessions — the
//! multi-warehouse heart of `warlockd`.
//!
//! The paper frames WARLOCK as a tool a DBA points at *one* warehouse;
//! a placement service carries many. [`Registry`] holds any number of
//! independently configured [`Warehouse`]s, each wrapping its own
//! [`Warlock`] session (own `Arc`'d snapshot, own shared evaluation
//! cache and worker pool), keyed by name:
//!
//! - [`Registry::load`] reads a configuration file into a new named
//!   warehouse; [`Registry::unload`] removes one.
//! - [`Registry::reload`] atomically re-reads a warehouse's file
//!   (copy-on-write: the new inputs are parsed and validated in full
//!   before the swap; in-flight readers finish on the old snapshot, and
//!   on any error the warehouse keeps serving the old configuration).
//!   The warehouse's evaluation cache survives the swap — entries are
//!   fingerprint-keyed, so reverting a configuration change is warm —
//!   and sibling warehouses are never touched.
//! - [`Registry::list`] and [`Registry::stats`] observe per-warehouse
//!   health (source path, exact candidate-space size, cached baseline,
//!   cache counters) without evaluating anything.
//!
//! One warehouse name is the **default**: requests that do not route
//! explicitly (protocol v1 clients, v2 requests without a `warehouse`
//! field) resolve to it. The `warlock::service` layer is a thin
//! dispatcher over this type.

use std::collections::HashMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::cache::EvalCacheStats;
use crate::error::WarlockError;
use crate::session::Warlock;

/// One named warehouse: a [`Warlock`] session plus the configuration
/// file it was loaded from (if any). Shared via `Arc` between the
/// registry and in-flight requests, so [`Registry::unload`] never tears
/// a session out from under a running evaluation.
#[derive(Debug)]
pub struct Warehouse {
    name: String,
    /// The configuration file backing this warehouse; `None` for
    /// sessions registered programmatically (those cannot `reload`).
    path: Option<String>,
    session: RwLock<Warlock>,
}

impl Warehouse {
    fn new(name: String, path: Option<String>, session: Warlock) -> Self {
        Self {
            name,
            path,
            session: RwLock::new(session),
        }
    }

    /// The warehouse's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configuration file this warehouse (re)loads from, if any.
    pub fn path(&self) -> Option<&str> {
        self.path.as_deref()
    }

    /// A clone of the warehouse's session: snapshot, cache and pool are
    /// shared with it, so work done on the clone warms the warehouse.
    ///
    /// Lock poisoning is deliberately ignored here and in the write
    /// path: writers only assign an already-validated session at the
    /// very end of their critical section, so a panic under the lock
    /// cannot leave a torn value — and a long-lived server must keep
    /// answering after one bad request.
    pub fn session(&self) -> Warlock {
        self.read_session().clone()
    }

    fn read_session(&self) -> RwLockReadGuard<'_, Warlock> {
        self.session
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Write access to the shared session, for mutating ops (`set_mix`,
    /// `set_budget`, reload). The swap under the lock is a cheap
    /// copy-on-write snapshot assignment; in-flight readers that cloned
    /// earlier keep their old snapshot.
    pub(crate) fn write_session(&self) -> RwLockWriteGuard<'_, Warlock> {
        self.session
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Health counters of this warehouse, computed without evaluating a
    /// single candidate (the space size comes from the exact predictor,
    /// `enumerated` only reflects an already-cached baseline ranking).
    pub fn stats(&self) -> WarehouseStats {
        let session = self.session();
        WarehouseStats {
            name: self.name.clone(),
            path: self.path.clone(),
            space_size: session.candidate_space_size(),
            enumerated: session.ranking().map(|r| r.enumerated as u64),
            cache: session.cache_stats(),
        }
    }
}

/// A point-in-time health summary of one [`Warehouse`], as reported by
/// [`Registry::stats`] and the `list_warehouses` wire op (serialized in
/// [`crate::serial`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarehouseStats {
    /// The warehouse's registry name.
    pub name: String,
    /// The configuration file it (re)loads from, if any.
    pub path: Option<String>,
    /// Exact candidate-space size of the current snapshot.
    pub space_size: u128,
    /// Candidates enumerated by the cached baseline ranking, or `None`
    /// until one was computed.
    pub enumerated: Option<u64>,
    /// The warehouse's shared evaluation-cache counters.
    pub cache: EvalCacheStats,
}

/// A concurrent map of named [`Warehouse`]s with one configurable
/// default. See the [module docs](self).
#[derive(Debug)]
pub struct Registry {
    default: String,
    warehouses: RwLock<HashMap<String, Arc<Warehouse>>>,
}

impl Registry {
    /// An empty registry whose unrouted requests will resolve to
    /// `default` (once a warehouse of that name is loaded).
    pub fn new(default: impl Into<String>) -> Self {
        Self {
            default: default.into(),
            warehouses: RwLock::new(HashMap::new()),
        }
    }

    /// A registry holding one programmatic session under `name`, which
    /// is also the default — the single-warehouse service shape.
    pub fn single(name: impl Into<String>, session: Warlock) -> Self {
        let name = name.into();
        let registry = Self::new(name.clone());
        registry
            .insert(name, None, session)
            .expect("empty registry cannot hold a duplicate");
        registry
    }

    /// The name unrouted requests resolve to.
    pub fn default_name(&self) -> &str {
        &self.default
    }

    fn lock(&self) -> RwLockWriteGuard<'_, HashMap<String, Arc<Warehouse>>> {
        // Poisoning is ignored for the same reason as on sessions: all
        // writes are single `HashMap` operations on validated values.
        self.warehouses
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn read(&self) -> RwLockReadGuard<'_, HashMap<String, Arc<Warehouse>>> {
        self.warehouses
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Registers an already-built session under `name`. With a `path`,
    /// later [`Registry::reload`]s re-read that file.
    ///
    /// # Errors
    ///
    /// [`WarlockError::DuplicateWarehouse`] when the name is taken.
    pub fn insert(
        &self,
        name: impl Into<String>,
        path: Option<String>,
        session: Warlock,
    ) -> Result<(), WarlockError> {
        let name = name.into();
        let mut warehouses = self.lock();
        if warehouses.contains_key(&name) {
            return Err(WarlockError::DuplicateWarehouse { name });
        }
        let warehouse = Arc::new(Warehouse::new(name.clone(), path, session));
        warehouses.insert(name, warehouse);
        Ok(())
    }

    /// Loads the configuration file at `path` as a new warehouse named
    /// `name`. The file is read, parsed and validated **before** the
    /// registry is touched, so a bad file never registers anything.
    ///
    /// # Errors
    ///
    /// [`WarlockError::DuplicateWarehouse`] when the name is taken, or
    /// any [`WarlockError::AtPath`]-wrapped load failure.
    pub fn load(
        &self,
        name: impl Into<String>,
        path: impl Into<String>,
    ) -> Result<(), WarlockError> {
        let name = name.into();
        let path = path.into();
        // Cheap pre-check so a duplicate name fails before the
        // expensive load; the insert below re-checks under the lock.
        if self.read().contains_key(&name) {
            return Err(WarlockError::DuplicateWarehouse { name });
        }
        let session = Warlock::from_config_path(&path)?;
        self.insert(name, Some(path), session)
    }

    /// Removes the warehouse named `name`. In-flight requests holding
    /// its `Arc` finish undisturbed; new lookups fail.
    ///
    /// # Errors
    ///
    /// [`WarlockError::UnknownWarehouse`] when no such warehouse is
    /// loaded, and [`WarlockError::Config`] for the default warehouse —
    /// removing it would strand every unrouted and protocol-v1 request
    /// with no way to re-point the default at runtime.
    pub fn unload(&self, name: &str) -> Result<(), WarlockError> {
        if name == self.default {
            return Err(WarlockError::Config(format!(
                "cannot unload the default warehouse `{name}`"
            )));
        }
        match self.lock().remove(name) {
            Some(_) => Ok(()),
            None => Err(WarlockError::UnknownWarehouse { name: name.into() }),
        }
    }

    /// Atomically re-reads the configuration file of the warehouse
    /// named `name` (see [`Warlock::reload_from_parsed`] for the
    /// copy-on-write semantics). The file is read and parsed before the
    /// warehouse's session lock is taken; on any failure the warehouse
    /// keeps serving its previous snapshot, and sibling warehouses —
    /// including their caches — are never touched.
    ///
    /// # Errors
    ///
    /// [`WarlockError::UnknownWarehouse`] for an unknown name;
    /// [`WarlockError::ReloadFailed`] (naming the warehouse, wrapping
    /// the cause) when the warehouse has no backing file or the re-read
    /// fails.
    pub fn reload(&self, name: &str) -> Result<(), WarlockError> {
        let warehouse = self.get(name)?;
        let failed = |source: WarlockError| WarlockError::ReloadFailed {
            name: name.into(),
            source: Box::new(source),
        };
        let path = warehouse.path().ok_or_else(|| {
            failed(WarlockError::Config(
                "warehouse has no configuration file to reload from".into(),
            ))
        })?;
        let parsed = crate::config_file::parse_config_path(path).map_err(failed)?;
        let result = warehouse
            .write_session()
            .reload_from_parsed(parsed)
            .map_err(failed);
        result
    }

    /// The warehouse named `name`.
    ///
    /// # Errors
    ///
    /// [`WarlockError::UnknownWarehouse`] when no such warehouse is
    /// loaded.
    pub fn get(&self, name: &str) -> Result<Arc<Warehouse>, WarlockError> {
        self.read()
            .get(name)
            .cloned()
            .ok_or_else(|| WarlockError::UnknownWarehouse { name: name.into() })
    }

    /// Resolves a request's routing field: an explicit name, or the
    /// registry default when the request did not route.
    pub fn resolve(&self, name: Option<&str>) -> Result<Arc<Warehouse>, WarlockError> {
        self.get(name.unwrap_or(&self.default))
    }

    /// Health summaries of every loaded warehouse, sorted by name.
    pub fn list(&self) -> Vec<WarehouseStats> {
        let mut stats: Vec<WarehouseStats> = {
            let warehouses = self.read();
            // Collect the Arcs first: `stats()` prices nothing, but it
            // does take each warehouse's session lock, and holding the
            // map lock across that would serialize against loads.
            warehouses.values().cloned().collect::<Vec<_>>()
        }
        .iter()
        .map(|w| w.stats())
        .collect();
        stats.sort_by(|a, b| a.name.cmp(&b.name));
        stats
    }

    /// Health counters of the warehouse named `name`.
    ///
    /// # Errors
    ///
    /// [`WarlockError::UnknownWarehouse`] when no such warehouse is
    /// loaded.
    pub fn stats(&self, name: &str) -> Result<WarehouseStats, WarlockError> {
        Ok(self.get(name)?.stats())
    }

    /// How many warehouses are loaded.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// Whether no warehouse is loaded.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config_file::{demo_config, render_config};

    fn write_cfg(tag: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(format!(
            "warlock-registry-{tag}-{}-{:?}.cfg",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, contents).unwrap();
        path.display().to_string()
    }

    fn demo_cfg_text() -> String {
        render_config(&demo_config())
    }

    #[test]
    fn load_list_unload_round_trip() {
        let registry = Registry::new("us");
        assert!(registry.is_empty());
        let us = write_cfg("us", &demo_cfg_text());
        let eu = write_cfg("eu", &demo_cfg_text().replace("disks = 16", "disks = 64"));
        registry.load("us", &us).unwrap();
        registry.load("eu", &eu).unwrap();
        assert_eq!(registry.len(), 2);

        let listed = registry.list();
        assert_eq!(
            listed.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            ["eu", "us"],
            "listing is sorted by name"
        );
        assert!(listed.iter().all(|s| s.space_size == 168));
        assert!(listed.iter().all(|s| s.enumerated.is_none()));
        assert_eq!(listed[1].path.as_deref(), Some(us.as_str()));

        // Routing: explicit names and the default.
        assert_eq!(registry.resolve(Some("eu")).unwrap().name(), "eu");
        assert_eq!(registry.resolve(None).unwrap().name(), "us");
        assert_eq!(
            registry.resolve(Some("mars")).unwrap_err(),
            WarlockError::UnknownWarehouse {
                name: "mars".into()
            }
        );

        // The two warehouses advise independently.
        let us_report = registry
            .get("us")
            .unwrap()
            .session()
            .rank()
            .unwrap()
            .clone();
        let eu_report = registry
            .get("eu")
            .unwrap()
            .session()
            .rank()
            .unwrap()
            .clone();
        assert!(
            eu_report.top().unwrap().cost.response_ms < us_report.top().unwrap().cost.response_ms,
            "64-disk warehouse must respond faster"
        );
        assert_eq!(registry.stats("us").unwrap().enumerated, Some(168));

        registry.unload("eu").unwrap();
        assert_eq!(registry.len(), 1);
        assert_eq!(
            registry.unload("eu").unwrap_err(),
            WarlockError::UnknownWarehouse { name: "eu".into() }
        );
        // The default warehouse cannot be unloaded: without it every
        // unrouted and v1 request would dead-end.
        let e = registry.unload("us").unwrap_err();
        assert_eq!(e.kind(), "config");
        assert!(e.to_string().contains("default"));
        assert_eq!(registry.len(), 1);
        let _ = std::fs::remove_file(us);
        let _ = std::fs::remove_file(eu);
    }

    #[test]
    fn duplicate_and_missing_loads_are_typed_and_atomic() {
        let registry = Registry::new("main");
        let cfg = write_cfg("dup", &demo_cfg_text());
        registry.load("main", &cfg).unwrap();
        assert_eq!(
            registry.load("main", &cfg).unwrap_err(),
            WarlockError::DuplicateWarehouse {
                name: "main".into()
            }
        );
        let e = registry
            .load("ghost", "/definitely/not/a/file.cfg")
            .unwrap_err();
        assert_eq!(e.kind(), "io");
        assert_eq!(registry.len(), 1, "failed load must register nothing");
        let _ = std::fs::remove_file(cfg);
    }

    #[test]
    fn reload_swaps_one_warehouse_without_disturbing_the_other() {
        let registry = Registry::new("us");
        let us = write_cfg("reload-us", &demo_cfg_text());
        let eu = write_cfg("reload-eu", &demo_cfg_text());
        registry.load("us", &us).unwrap();
        registry.load("eu", &eu).unwrap();
        let us_baseline = registry
            .get("us")
            .unwrap()
            .session()
            .rank()
            .unwrap()
            .clone();
        registry.get("eu").unwrap().session().rank().unwrap();
        let eu_cache_before = registry.stats("eu").unwrap().cache;

        // An in-flight reader on the old snapshot…
        let reader = registry.get("us").unwrap().session();

        std::fs::write(&us, demo_cfg_text().replace("disks = 16", "disks = 64")).unwrap();
        registry.reload("us").unwrap();

        // …finishes on it, while new sessions see the new configuration.
        assert_eq!(reader.system().num_disks, 16);
        assert_eq!(reader.rank().unwrap(), &us_baseline);
        let swapped = registry.get("us").unwrap().session();
        assert_eq!(swapped.system().num_disks, 64);
        assert!(
            swapped.rank().unwrap().top().unwrap().cost.response_ms
                < us_baseline.top().unwrap().cost.response_ms
        );
        // The sibling warehouse — snapshot and cache — is untouched.
        assert_eq!(registry.get("eu").unwrap().session().system().num_disks, 16);
        assert_eq!(registry.stats("eu").unwrap().cache, eu_cache_before);

        let _ = std::fs::remove_file(us);
        let _ = std::fs::remove_file(eu);
    }

    #[test]
    fn failed_reloads_are_typed_and_keep_the_old_snapshot() {
        let registry = Registry::new("main");
        let cfg = write_cfg("reload-bad", &demo_cfg_text());
        registry.load("main", &cfg).unwrap();
        registry
            .insert("adhoc", None, registry.get("main").unwrap().session())
            .unwrap();

        assert_eq!(
            registry.reload("ghost").unwrap_err(),
            WarlockError::UnknownWarehouse {
                name: "ghost".into()
            }
        );
        // No backing file → reload_failed.
        let e = registry.reload("adhoc").unwrap_err();
        assert_eq!(e.kind(), "reload_failed");
        assert!(e.to_string().contains("`adhoc`"));

        // A file that no longer parses → reload_failed, old snapshot kept.
        std::fs::write(&cfg, "[dimension broken\n").unwrap();
        let e = registry.reload("main").unwrap_err();
        assert_eq!(e.kind(), "reload_failed");
        assert!(e.to_string().contains(&cfg));
        assert_eq!(
            registry.get("main").unwrap().session().system().num_disks,
            16
        );
        let _ = std::fs::remove_file(cfg);
    }

    #[test]
    fn single_wraps_one_session_as_the_default() {
        let registry = Registry::single("default", demo_session());
        assert_eq!(registry.default_name(), "default");
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.resolve(None).unwrap().name(), "default");
        assert_eq!(registry.get("default").unwrap().path(), None);
    }

    fn demo_session() -> Warlock {
        let parsed = demo_config();
        Warlock::builder()
            .schema(parsed.schema)
            .system(parsed.system)
            .mix(parsed.mix)
            .config(parsed.advisor)
            .parallelism(1)
            .build()
            .unwrap()
    }
}
