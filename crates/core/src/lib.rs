//! # WARLOCK — a data allocation advisor for parallel data warehouses
//!
//! A Rust reproduction of *"WARLOCK: A Data Allocation Tool for Parallel
//! Warehouses"* (Stöhr & Rahm, VLDB 2001). Given a star schema, a disk
//! subsystem and a weighted star-query mix, the advisor recommends how to
//! fragment the fact table over the dimension hierarchies (MDHF), which
//! bitmap join indexes to keep, and how to place all fragments on disk —
//! minimizing both total I/O work and query response times.
//!
//! ## Pipeline (paper Fig. 1)
//!
//! ```text
//! input      star schema ── DBS & disk parameters ── weighted query mix
//! prediction generation of fragmentations & bitmaps
//!            exclusion of fragmentations by thresholds
//!            calculation of performance metrics   ←── I/O cost model
//!            ranking of "top" fragmentations
//! analysis   fragmentation candidates ── query analysis ── allocation
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use warlock::{Advisor, AdvisorConfig};
//! use warlock_schema::{apb1_like_schema, Apb1Config};
//! use warlock_storage::SystemConfig;
//! use warlock_workload::apb1_like_mix;
//!
//! let schema = apb1_like_schema(Apb1Config::default()).unwrap();
//! let mix = apb1_like_mix().unwrap();
//! let system = SystemConfig::default_2001(16);
//! let advisor = Advisor::new(&schema, &system, &mix, AdvisorConfig::default()).unwrap();
//! let report = advisor.run();
//! let best = report.top().expect("candidates survive thresholds");
//! println!("best fragmentation: {}", best.label);
//! assert!(report.ranked.len() > 1);
//! ```
//!
//! The heavy lifting lives in the substrate crates re-exported below;
//! this crate contributes the advisor pipeline ([`Advisor`]), the twofold
//! ranking ([`ranking`]), the Fig.-2-style analyses ([`analysis`]), the
//! physical allocation plan ([`allocation_plan`]), what-if tuning
//! ([`tuning`]) and plain-text/CSV report rendering ([`report`]).

#![warn(missing_docs)]

pub mod advisor;
pub mod analysis;
pub mod allocation_plan;
pub mod config;
pub mod config_file;
pub mod ranking;
pub mod report;
pub mod tuning;

pub use advisor::{Advisor, AdvisorReport, ExcludedCandidate, RankedCandidate};
pub use allocation_plan::{AllocationPlan, ClassDiskProfile};
pub use analysis::{ClassAnalysis, FragmentationAnalysis};
pub use config::AdvisorConfig;
pub use ranking::twofold_rank;
pub use tuning::TuningSession;

// Substrate re-exports so downstream users need only one dependency.
pub use warlock_alloc as alloc;
pub use warlock_bitmap as bitmap;
pub use warlock_cost as cost;
pub use warlock_fragment as fragment;
pub use warlock_schema as schema;
pub use warlock_skew as skew;
pub use warlock_storage as storage;
pub use warlock_workload as workload;
