//! # WARLOCK — a data allocation advisor for parallel data warehouses
//!
//! A Rust reproduction of *"WARLOCK: A Data Allocation Tool for Parallel
//! Warehouses"* (Stöhr & Rahm, VLDB 2001). Given a star schema, a disk
//! subsystem and a weighted star-query mix, the advisor recommends how to
//! fragment the fact table over the dimension hierarchies (MDHF), which
//! bitmap join indexes to keep, and how to place all fragments on disk —
//! minimizing both total I/O work and query response times.
//!
//! ## Pipeline (paper Fig. 1)
//!
//! ```text
//! input      star schema ── DBS & disk parameters ── weighted query mix
//! prediction generation of fragmentations & bitmaps
//!            exclusion of fragmentations by thresholds
//!            calculation of performance metrics   ←── I/O cost model
//!            ranking of "top" fragmentations
//! analysis   fragmentation candidates ── query analysis ── allocation
//! ```
//!
//! ## Quickstart
//!
//! The public API is the owned, session-oriented [`Warlock`] facade:
//! build it once from owned inputs, then ask it for rankings, analyses,
//! allocation plans and what-if variations. Every fallible call returns
//! the unified [`WarlockError`], and every report is renderable as
//! text/CSV ([`report`]) and serializable to JSON ([`serial`]).
//!
//! ```
//! use warlock::prelude::*;
//!
//! let session = Warlock::builder()
//!     .schema(apb1_like_schema(Apb1Config::default())?)
//!     .system(SystemConfig::default_2001(16))
//!     .mix(apb1_like_mix()?)
//!     .config(AdvisorConfig::default())
//!     .build()?;
//!
//! // Prediction layer: enumerate, exclude, cost, twofold-rank (cached).
//! let best = session.rank()?.top().expect("candidates survive").clone();
//! println!("best fragmentation: {}", best.label);
//!
//! // Analysis layer: detailed statistic and placement of any rank.
//! let analysis = session.analyze(1)?;
//! let plan = session.plan_allocation(1)?;
//! assert_eq!(analysis.label, plan.label);
//!
//! // What-if tuning (§3.3) against the cached baseline — `&self`, so
//! // clones explore variations concurrently and share the warm cache.
//! let explorer = session.clone();
//! let (_report, delta) = explorer.what_if_disks(64)?;
//! assert!(delta.variation_response_ms < delta.baseline_response_ms);
//!
//! // Machine-readable service output: JSON that round-trips.
//! let json_text = session.session_report()?.to_json().pretty();
//! let parsed = SessionReport::from_json_str(&json_text)?;
//! assert_eq!(parsed.ranking.len(), session.rank()?.ranked.len());
//! # Ok::<(), warlock::WarlockError>(())
//! ```
//!
//! [`Warlock`] is `Clone`: clones share an immutable, `Arc`-backed
//! [`session::Snapshot`] plus the evaluation cache and the persistent
//! worker pool, while mutators (`set_system`/`set_mix`/`set_config`)
//! are copy-on-write snapshot swaps — see [`session`]. The [`registry`]
//! module holds any number of **named** sessions (load/unload/
//! hot-reload), and the [`service`] module (with the `warlockd` binary)
//! dispatches a versioned JSON protocol over it — newline-delimited
//! lines on stdio/TCP, or `POST /v2/<op>` via the std-only [`http`]
//! transport.
//!
//! The heavy lifting lives in the substrate crates re-exported below;
//! this crate contributes the session facade ([`Warlock`]), the advisor
//! pipeline, the twofold ranking ([`ranking`]), the Fig.-2-style
//! analyses ([`analysis`]), the physical allocation plan
//! ([`allocation_plan`]), what-if tuning ([`tuning`]), the service
//! layer ([`service`]) and report rendering/serialization ([`report`],
//! [`serial`]).

#![warn(missing_docs)]

pub mod advisor;
pub mod allocation_plan;
pub mod analysis;
pub mod cache;
pub mod config;
pub mod config_file;
mod engine;
pub mod error;
pub mod http;
pub mod optimizer;
pub mod policy_judge;
pub mod prelude;
pub mod ranking;
pub mod registry;
pub mod report;
pub mod serial;
pub mod service;
pub mod session;
pub mod tuning;

pub use advisor::{
    AdvisorReport, ExcludedCandidate, ExcludedSummary, ExclusionGroup, RankedCandidate,
};
pub use allocation_plan::{AllocationPlan, ClassDiskProfile};
pub use analysis::{ClassAnalysis, FragmentationAnalysis};
pub use cache::EvalCacheStats;
pub use config::AdvisorConfig;
pub use error::WarlockError;
pub use http::ShutdownSignal;
pub use optimizer::{AdviceEvent, DriftStatus};
pub use policy_judge::{PolicyRecommendation, PolicyVerdict};
pub use ranking::{twofold_rank, StreamingRank};
pub use registry::{Registry, Warehouse, WarehouseStats};
pub use serial::SessionReport;
pub use service::{Service, ServiceReply, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
pub use session::{Snapshot, Warlock, WarlockBuilder};
pub use tuning::{TuningDelta, TuningSession};
pub use warlock_cost::{KernelBackend, KernelChoice};
pub use warlock_workload::{ClassObservation, DriftState};

// Substrate re-exports so downstream users need only one dependency.
pub use warlock_alloc as alloc;
pub use warlock_bitmap as bitmap;
pub use warlock_cost as cost;
pub use warlock_fragment as fragment;
pub use warlock_json as json;
pub use warlock_schema as schema;
pub use warlock_skew as skew;
pub use warlock_storage as storage;
pub use warlock_workload as workload;
