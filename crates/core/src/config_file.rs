//! Plain-text configuration files for the `warlock` command-line tool.
//!
//! The original tool's input layer is a GUI where "a star schema with its
//! attributes, hierarchy cardinalities, row sizes and fact table volumes
//! has to be defined" along with disk parameters and the weighted query
//! mix. This module provides the same input layer as a small INI-style
//! text format (no external parser dependencies):
//!
//! ```text
//! [dimension product]
//! levels = division:5, line:15, family:75, group:300, class:900, code:9000
//! skew = 0.5                      # optional zipf theta at the bottom level
//! skew_shuffle = 42               # optional: disperse heavy members
//!                                 # deterministically (hot-spot profiles)
//!
//! [dimension time]
//! levels = year:2, quarter:8, month:24
//!
//! [fact sales]
//! measures = unit_sales:8, dollar_sales:8
//! density = 0.01                  # or: rows = 17496000
//!
//! [query reports]
//! weight = 15
//! predicates = product.class:1, time.month:1    # dim.level : #values
//!
//! [system]
//! disks = 16
//! page_bytes = 8192
//! seek_ms = 5.0
//! rotational_ms = 3.0
//! transfer_mb_s = 20.0
//! capacity_gb = 18
//! architecture = shared_everything    # or: shared_disk
//! processors = 16                     # SE total / SD per node
//! nodes = 4                           # SD only
//! prefetch = auto                     # or a page count
//!
//! [advisor]
//! max_dimensionality = 4
//! top_x_percent = 10
//! top_n = 10
//! max_fragments = 1048576
//! allocation_policy = auto            # or auto:<cv> | greedy | round_robin | graph
//! graph_seed = 0                      # graph policy tie-break seed (optional)
//! parallelism = auto                  # evaluation workers; 1 = serial
//! max_candidates = unlimited          # or a candidate-space budget
//! chunk_size = auto                   # streaming evaluation chunk
//! kernel = auto                       # costing backend: scalar | lanes | avx2
//! range_options = 2, 3, 5             # extra MDHF range sizes (optional)
//! auto_advise = off                   # resident optimizer: on | off
//! drift_enter = 0.25                  # drift score entering `Drifting`
//! drift_exit = 0.10                   # drift score returning to `Stable`
//! stats_half_life = 1000              # stats window half-life, in queries
//! ```
//!
//! Unknown keys are rejected (typos should fail loudly, not silently
//! change the advice).

use std::fmt;

use warlock_schema::{Dimension, FactTable, StarSchema};
use warlock_skew::DimensionSkew;
use warlock_storage::{Architecture, DiskParams, PageConfig, PrefetchPolicy, SystemConfig};
use warlock_workload::{DimensionPredicate, QueryClass, QueryMix};

use crate::AdvisorConfig;

/// A fully parsed configuration file.
#[derive(Debug, Clone)]
pub struct ParsedConfig {
    /// The star schema.
    pub schema: StarSchema,
    /// The weighted query mix.
    pub mix: QueryMix,
    /// The system configuration.
    pub system: SystemConfig,
    /// The advisor configuration (including per-dimension skew).
    pub advisor: AdvisorConfig,
}

/// Parse errors with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigFileError {
    /// 1-based line of the offending input (0 for whole-file errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl ConfigFileError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "config: {}", self.message)
        } else {
            write!(f, "config line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ConfigFileError {}

#[derive(Debug, Default)]
struct DimensionSection {
    name: String,
    levels: Vec<(String, u64)>,
    skew: Option<f64>,
    skew_shuffle: Option<u64>,
    line: usize,
}

#[derive(Debug, Default)]
struct FactSection {
    name: String,
    measures: Vec<(String, u32)>,
    rows: Option<u64>,
    density: Option<f64>,
    line: usize,
}

#[derive(Debug, Default)]
struct QuerySection {
    name: String,
    weight: f64,
    /// `(dimension name, level name, values)`.
    predicates: Vec<(String, String, u64)>,
    line: usize,
}

#[derive(Debug)]
struct SystemSection {
    disks: u32,
    page_bytes: u32,
    seek_ms: f64,
    rotational_ms: f64,
    transfer_mb_s: f64,
    capacity_gb: f64,
    architecture: String,
    processors: u32,
    nodes: u32,
    prefetch: String,
}

impl Default for SystemSection {
    fn default() -> Self {
        let d = DiskParams::ca_2001();
        Self {
            disks: 16,
            page_bytes: 8192,
            seek_ms: d.avg_seek_ms,
            rotational_ms: d.avg_rotational_ms,
            transfer_mb_s: d.transfer_mb_per_s,
            capacity_gb: 18.0,
            architecture: "shared_everything".into(),
            processors: 16,
            nodes: 1,
            prefetch: "auto".into(),
        }
    }
}

/// Parses a configuration file's contents.
pub fn parse_config(input: &str) -> Result<ParsedConfig, ConfigFileError> {
    enum Section {
        None,
        Dimension(usize),
        Fact(usize),
        Query(usize),
        System,
        Advisor,
    }

    let mut dimensions: Vec<DimensionSection> = Vec::new();
    let mut facts: Vec<FactSection> = Vec::new();
    let mut queries: Vec<QuerySection> = Vec::new();
    let mut system = SystemSection::default();
    let mut advisor = AdvisorConfig::default();
    // `graph_seed` composes with `allocation_policy = graph` but may
    // appear on either side of it; applied after the scan.
    let mut graph_seed: Option<(u64, usize)> = None;
    let mut current = Section::None;

    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| ConfigFileError::at(lineno, "unterminated section header"))?
                .trim();
            let mut parts = header.splitn(2, char::is_whitespace);
            let kind = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("").trim();
            current = match kind {
                "dimension" => {
                    if name.is_empty() {
                        return Err(ConfigFileError::at(lineno, "dimension needs a name"));
                    }
                    dimensions.push(DimensionSection {
                        name: name.to_owned(),
                        line: lineno,
                        ..Default::default()
                    });
                    Section::Dimension(dimensions.len() - 1)
                }
                "fact" => {
                    if name.is_empty() {
                        return Err(ConfigFileError::at(lineno, "fact needs a name"));
                    }
                    facts.push(FactSection {
                        name: name.to_owned(),
                        line: lineno,
                        ..Default::default()
                    });
                    Section::Fact(facts.len() - 1)
                }
                "query" => {
                    if name.is_empty() {
                        return Err(ConfigFileError::at(lineno, "query needs a name"));
                    }
                    queries.push(QuerySection {
                        name: name.to_owned(),
                        weight: 1.0,
                        line: lineno,
                        ..Default::default()
                    });
                    Section::Query(queries.len() - 1)
                }
                "system" => Section::System,
                "advisor" => Section::Advisor,
                other => {
                    return Err(ConfigFileError::at(
                        lineno,
                        format!("unknown section kind `{other}`"),
                    ))
                }
            };
            continue;
        }

        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| ConfigFileError::at(lineno, "expected `key = value`"))?;
        let key = key.trim();
        let value = value.trim();

        match current {
            Section::None => return Err(ConfigFileError::at(lineno, "key outside of any section")),
            Section::Dimension(i) => match key {
                "levels" => {
                    dimensions[i].levels =
                        parse_pairs(value, lineno, "level", |s| s.parse::<u64>().ok())?;
                }
                "skew" => {
                    dimensions[i].skew = Some(parse_num::<f64>(value, lineno, "skew theta")?);
                }
                "skew_shuffle" => {
                    dimensions[i].skew_shuffle =
                        Some(parse_num::<u64>(value, lineno, "skew_shuffle seed")?);
                }
                other => {
                    return Err(ConfigFileError::at(
                        lineno,
                        format!("unknown dimension key `{other}`"),
                    ))
                }
            },
            Section::Fact(i) => match key {
                "measures" => {
                    facts[i].measures =
                        parse_pairs(value, lineno, "measure", |s| s.parse::<u32>().ok())?;
                }
                "rows" => facts[i].rows = Some(parse_num::<u64>(value, lineno, "rows")?),
                "density" => facts[i].density = Some(parse_num::<f64>(value, lineno, "density")?),
                other => {
                    return Err(ConfigFileError::at(
                        lineno,
                        format!("unknown fact key `{other}`"),
                    ))
                }
            },
            Section::Query(i) => match key {
                "weight" => queries[i].weight = parse_num::<f64>(value, lineno, "weight")?,
                "predicates" => {
                    for item in value.split(',') {
                        let item = item.trim();
                        if item.is_empty() {
                            continue;
                        }
                        let (attr, count) = item.split_once(':').ok_or_else(|| {
                            ConfigFileError::at(
                                lineno,
                                format!("predicate `{item}` must be `dim.level:values`"),
                            )
                        })?;
                        let (dim, level) = attr.trim().split_once('.').ok_or_else(|| {
                            ConfigFileError::at(
                                lineno,
                                format!("predicate attribute `{attr}` must be `dim.level`"),
                            )
                        })?;
                        let values = parse_num::<u64>(count.trim(), lineno, "predicate values")?;
                        queries[i].predicates.push((
                            dim.trim().to_owned(),
                            level.trim().to_owned(),
                            values,
                        ));
                    }
                }
                other => {
                    return Err(ConfigFileError::at(
                        lineno,
                        format!("unknown query key `{other}`"),
                    ))
                }
            },
            Section::System => match key {
                "disks" => system.disks = parse_num(value, lineno, "disks")?,
                "page_bytes" => system.page_bytes = parse_num(value, lineno, "page_bytes")?,
                "seek_ms" => system.seek_ms = parse_num(value, lineno, "seek_ms")?,
                "rotational_ms" => {
                    system.rotational_ms = parse_num(value, lineno, "rotational_ms")?
                }
                "transfer_mb_s" => {
                    system.transfer_mb_s = parse_num(value, lineno, "transfer_mb_s")?
                }
                "capacity_gb" => system.capacity_gb = parse_num(value, lineno, "capacity_gb")?,
                "architecture" => system.architecture = value.to_owned(),
                "processors" => system.processors = parse_num(value, lineno, "processors")?,
                "nodes" => system.nodes = parse_num(value, lineno, "nodes")?,
                "prefetch" => system.prefetch = value.to_owned(),
                other => {
                    return Err(ConfigFileError::at(
                        lineno,
                        format!("unknown system key `{other}`"),
                    ))
                }
            },
            Section::Advisor => match key {
                "max_dimensionality" => {
                    advisor.max_dimensionality = parse_num(value, lineno, "max_dimensionality")?
                }
                "top_x_percent" => {
                    advisor.top_x_percent = parse_num(value, lineno, "top_x_percent")?
                }
                "top_n" => advisor.top_n = parse_num(value, lineno, "top_n")?,
                "min_keep" => advisor.min_keep = parse_num(value, lineno, "min_keep")?,
                "max_fragments" => {
                    advisor.thresholds.max_fragments = parse_num(value, lineno, "max_fragments")?
                }
                "parallelism" => {
                    advisor.parallelism = match value {
                        "auto" => 0,
                        n => parse_num(n, lineno, "parallelism")?,
                    }
                }
                "max_candidates" => {
                    advisor.max_candidates = match value {
                        "unlimited" => 0,
                        n => parse_num(n, lineno, "max_candidates")?,
                    }
                }
                "chunk_size" => {
                    advisor.chunk_size = match value {
                        "auto" => 0,
                        n => parse_num(n, lineno, "chunk_size")?,
                    }
                }
                "kernel" => {
                    advisor.kernel = value
                        .parse()
                        .map_err(|e: String| ConfigFileError::at(lineno, e))?;
                }
                "allocation_policy" => {
                    advisor.allocation_policy = parse_allocation_policy(value, lineno)?;
                }
                "graph_seed" => {
                    graph_seed = Some((parse_num(value, lineno, "graph_seed")?, lineno));
                }
                "range_options" => {
                    let mut options = Vec::new();
                    for item in value.split(',') {
                        let item = item.trim();
                        if item.is_empty() {
                            continue;
                        }
                        options.push(parse_num(item, lineno, "range_options")?);
                    }
                    advisor.range_options = options;
                }
                "auto_advise" => {
                    advisor.auto_advise = match value {
                        "on" => true,
                        "off" => false,
                        other => {
                            return Err(ConfigFileError::at(
                                lineno,
                                format!("auto_advise must be `on` or `off`, got `{other}`"),
                            ))
                        }
                    }
                }
                "drift_enter" => advisor.drift_enter = parse_num(value, lineno, "drift_enter")?,
                "drift_exit" => advisor.drift_exit = parse_num(value, lineno, "drift_exit")?,
                "stats_half_life" => {
                    advisor.stats_half_life = parse_num(value, lineno, "stats_half_life")?
                }
                other => {
                    return Err(ConfigFileError::at(
                        lineno,
                        format!("unknown advisor key `{other}`"),
                    ))
                }
            },
        }
    }

    if let Some((seed, line)) = graph_seed {
        match advisor.allocation_policy {
            warlock_alloc::AllocationPolicy::GraphPartition { .. } => {
                advisor.allocation_policy =
                    warlock_alloc::AllocationPolicy::GraphPartition { seed };
            }
            _ => {
                return Err(ConfigFileError::at(
                    line,
                    "graph_seed requires allocation_policy = graph",
                ))
            }
        }
    }

    assemble(dimensions, facts, queries, system, advisor)
}

/// Parses the `allocation_policy` advisor key: `auto` (default 10 %
/// size-CV threshold), `auto:<cv>` (explicit threshold), `greedy`,
/// `round_robin`, or `graph` (co-access graph partitioning; pair with
/// the optional `graph_seed` key for tie-break seeding).
fn parse_allocation_policy(
    value: &str,
    line: usize,
) -> Result<warlock_alloc::AllocationPolicy, ConfigFileError> {
    use warlock_alloc::AllocationPolicy;
    match value {
        "auto" => Ok(AllocationPolicy::default()),
        "greedy" => Ok(AllocationPolicy::GreedySize),
        "round_robin" => Ok(AllocationPolicy::RoundRobin),
        "graph" => Ok(AllocationPolicy::GraphPartition { seed: 0 }),
        other => {
            if let Some(cv) = other.strip_prefix("auto:") {
                let cv_threshold = parse_num::<f64>(cv.trim(), line, "allocation_policy cv")?;
                if !(cv_threshold.is_finite() && cv_threshold >= 0.0) {
                    return Err(ConfigFileError::at(
                        line,
                        format!("allocation_policy cv must be finite and >= 0, got {cv_threshold}"),
                    ));
                }
                return Ok(AllocationPolicy::Auto { cv_threshold });
            }
            Err(ConfigFileError::at(
                line,
                format!(
                    "unknown allocation_policy `{other}` \
                     (auto | auto:<cv> | greedy | round_robin | graph)"
                ),
            ))
        }
    }
}

fn parse_num<T: std::str::FromStr>(
    value: &str,
    line: usize,
    what: &str,
) -> Result<T, ConfigFileError> {
    value
        .parse::<T>()
        .map_err(|_| ConfigFileError::at(line, format!("invalid {what}: `{value}`")))
}

fn parse_pairs<T>(
    value: &str,
    line: usize,
    what: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<Vec<(String, T)>, ConfigFileError> {
    let mut out = Vec::new();
    for item in value.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let (name, num) = item.split_once(':').ok_or_else(|| {
            ConfigFileError::at(line, format!("{what} `{item}` must be `name:number`"))
        })?;
        let parsed = parse(num.trim()).ok_or_else(|| {
            ConfigFileError::at(line, format!("invalid {what} number in `{item}`"))
        })?;
        out.push((name.trim().to_owned(), parsed));
    }
    Ok(out)
}

fn assemble(
    dimensions: Vec<DimensionSection>,
    facts: Vec<FactSection>,
    queries: Vec<QuerySection>,
    system: SystemSection,
    mut advisor: AdvisorConfig,
) -> Result<ParsedConfig, ConfigFileError> {
    if dimensions.is_empty() {
        return Err(ConfigFileError::at(0, "no [dimension …] section"));
    }
    if facts.is_empty() {
        return Err(ConfigFileError::at(0, "no [fact …] section"));
    }
    if queries.is_empty() {
        return Err(ConfigFileError::at(0, "no [query …] section"));
    }

    // Schema.
    let mut builder = StarSchema::builder();
    let mut skews = Vec::with_capacity(dimensions.len());
    for d in &dimensions {
        if d.levels.is_empty() {
            return Err(ConfigFileError::at(
                d.line,
                format!("dimension `{}` declares no levels", d.name),
            ));
        }
        let mut db = Dimension::builder(&d.name);
        for (name, card) in &d.levels {
            db = db.level(name, *card);
        }
        let dim = db
            .build()
            .map_err(|e| ConfigFileError::at(d.line, e.to_string()))?;
        builder = builder.dimension(dim);
        skews.push(match (d.skew, d.skew_shuffle) {
            (Some(theta), None) => DimensionSkew::zipf(theta),
            (Some(theta), Some(seed)) => DimensionSkew::hot_spot(theta, seed),
            (None, Some(_)) => {
                return Err(ConfigFileError::at(
                    d.line,
                    format!(
                        "dimension `{}` sets skew_shuffle without skew \
                         (shuffling a uniform distribution has no effect)",
                        d.name
                    ),
                ))
            }
            (None, None) => DimensionSkew::UNIFORM,
        });
    }
    for f in &facts {
        let mut fb = FactTable::builder(&f.name);
        for (name, bytes) in &f.measures {
            fb = fb.measure(name, *bytes);
        }
        match (f.rows, f.density) {
            (Some(rows), None) => fb = fb.rows(rows),
            (None, Some(density)) => {
                if !(density > 0.0 && density <= 1.0) {
                    return Err(ConfigFileError::at(
                        f.line,
                        format!("density must be in (0,1], got {density}"),
                    ));
                }
                fb = fb.density(density);
            }
            (Some(_), Some(_)) => {
                return Err(ConfigFileError::at(
                    f.line,
                    "specify either rows or density, not both",
                ))
            }
            (None, None) => {
                return Err(ConfigFileError::at(
                    f.line,
                    format!("fact `{}` needs rows or density", f.name),
                ))
            }
        }
        builder = builder.fact(fb.build());
    }
    let schema = builder
        .build()
        .map_err(|e| ConfigFileError::at(0, e.to_string()))?;

    // Queries.
    let mut mix_builder = QueryMix::builder();
    for q in &queries {
        let mut class = QueryClass::new(&q.name);
        for (dim_name, level_name, values) in &q.predicates {
            let r = schema.level_ref(dim_name, level_name).ok_or_else(|| {
                ConfigFileError::at(
                    q.line,
                    format!(
                        "query `{}` references unknown attribute {dim_name}.{level_name}",
                        q.name
                    ),
                )
            })?;
            class = class.with(r.dimension.0, DimensionPredicate::range(r.level.0, *values));
        }
        mix_builder = mix_builder.class(class, q.weight);
    }
    let mix = mix_builder
        .build()
        .map_err(|e| ConfigFileError::at(0, e.to_string()))?;
    mix.validate(&schema)
        .map_err(|e| ConfigFileError::at(0, e.to_string()))?;

    // System.
    let architecture = match system.architecture.as_str() {
        "shared_everything" => Architecture::SharedEverything {
            processors: system.processors,
        },
        "shared_disk" => Architecture::shared_disk(system.nodes, system.processors),
        other => {
            return Err(ConfigFileError::at(
                0,
                format!("unknown architecture `{other}` (shared_everything | shared_disk)"),
            ))
        }
    };
    let prefetch = match system.prefetch.as_str() {
        "auto" => PrefetchPolicy::Auto { max_pages: 256 },
        n => PrefetchPolicy::Fixed(
            n.parse::<u32>()
                .map_err(|_| ConfigFileError::at(0, format!("invalid prefetch `{n}`")))?,
        ),
    };
    if !(system.page_bytes.is_power_of_two() && system.page_bytes >= 512) {
        return Err(ConfigFileError::at(
            0,
            format!(
                "page_bytes must be a power of two >= 512, got {}",
                system.page_bytes
            ),
        ));
    }
    let system_config = SystemConfig {
        num_disks: system.disks,
        disk: DiskParams {
            avg_seek_ms: system.seek_ms,
            avg_rotational_ms: system.rotational_ms,
            transfer_mb_per_s: system.transfer_mb_s,
            capacity_bytes: (system.capacity_gb * (1u64 << 30) as f64) as u64,
        },
        page: PageConfig::new(system.page_bytes),
        fact_prefetch: prefetch,
        bitmap_prefetch: prefetch,
        architecture,
    };
    system_config
        .validate()
        .map_err(|e| ConfigFileError::at(0, e))?;

    if skews.iter().any(|s| !s.is_uniform()) {
        advisor.skew = Some(skews);
    }
    advisor.validate().map_err(|e| ConfigFileError::at(0, e))?;

    Ok(ParsedConfig {
        schema,
        mix,
        system: system_config,
        advisor,
    })
}

/// Renders a configuration back into the text format, such that
/// `parse_config(render_config(..))` reproduces the inputs. Used by the
/// CLI's `init` command to emit starter files.
pub fn render_config(parsed: &ParsedConfig) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let skews = parsed
        .advisor
        .skew
        .clone()
        .unwrap_or_else(|| vec![DimensionSkew::UNIFORM; parsed.schema.num_dimensions()]);
    for (dim, skew) in parsed.schema.dimensions().iter().zip(&skews) {
        let _ = writeln!(out, "[dimension {}]", dim.name());
        let levels: Vec<String> = dim
            .levels()
            .iter()
            .map(|l| format!("{}:{}", l.name(), l.cardinality()))
            .collect();
        let _ = writeln!(out, "levels = {}", levels.join(", "));
        if !skew.is_uniform() {
            let _ = writeln!(out, "skew = {}", skew.theta);
            if let Some(seed) = skew.shuffle_seed {
                let _ = writeln!(out, "skew_shuffle = {seed}");
            }
        }
        let _ = writeln!(out);
    }
    for (i, fact) in parsed.schema.facts().iter().enumerate() {
        let _ = writeln!(out, "[fact {}]", fact.name());
        if !fact.measures().is_empty() {
            let measures: Vec<String> = fact
                .measures()
                .iter()
                .map(|m| format!("{}:{}", m.name(), m.bytes()))
                .collect();
            let _ = writeln!(out, "measures = {}", measures.join(", "));
        }
        match fact.density() {
            Some(d) => {
                let _ = writeln!(out, "density = {d}");
            }
            None => {
                let _ = writeln!(out, "rows = {}", parsed.schema.fact_rows(i));
            }
        }
        let _ = writeln!(out);
    }
    for w in parsed.mix.classes() {
        let _ = writeln!(out, "[query {}]", w.class.name());
        let _ = writeln!(out, "weight = {}", w.share);
        let preds: Vec<String> = w
            .class
            .predicates()
            .iter()
            .map(|(&dim, pred)| {
                let d = parsed.schema.dimension(dim).expect("validated");
                let l = d.level(pred.level).expect("validated");
                format!("{}.{}:{}", d.name(), l.name(), pred.values)
            })
            .collect();
        let _ = writeln!(out, "predicates = {}", preds.join(", "));
        let _ = writeln!(out);
    }
    let sys = &parsed.system;
    let _ = writeln!(out, "[system]");
    let _ = writeln!(out, "disks = {}", sys.num_disks);
    let _ = writeln!(out, "page_bytes = {}", sys.page.page_bytes);
    let _ = writeln!(out, "seek_ms = {}", sys.disk.avg_seek_ms);
    let _ = writeln!(out, "rotational_ms = {}", sys.disk.avg_rotational_ms);
    let _ = writeln!(out, "transfer_mb_s = {}", sys.disk.transfer_mb_per_s);
    let _ = writeln!(
        out,
        "capacity_gb = {}",
        sys.disk.capacity_bytes as f64 / (1u64 << 30) as f64
    );
    match sys.architecture {
        Architecture::SharedEverything { processors } => {
            let _ = writeln!(out, "architecture = shared_everything");
            let _ = writeln!(out, "processors = {processors}");
        }
        Architecture::SharedDisk {
            nodes,
            processors_per_node,
            ..
        } => {
            let _ = writeln!(out, "architecture = shared_disk");
            let _ = writeln!(out, "nodes = {nodes}");
            let _ = writeln!(out, "processors = {processors_per_node}");
        }
    }
    match sys.fact_prefetch {
        PrefetchPolicy::Auto { .. } => {
            let _ = writeln!(out, "prefetch = auto");
        }
        PrefetchPolicy::Fixed(p) => {
            let _ = writeln!(out, "prefetch = {p}");
        }
    }
    let adv = &parsed.advisor;
    let _ = writeln!(out, "\n[advisor]");
    let _ = writeln!(out, "max_dimensionality = {}", adv.max_dimensionality);
    let _ = writeln!(out, "top_x_percent = {}", adv.top_x_percent);
    let _ = writeln!(out, "top_n = {}", adv.top_n);
    let _ = writeln!(out, "min_keep = {}", adv.min_keep);
    let _ = writeln!(out, "max_fragments = {}", adv.thresholds.max_fragments);
    match adv.allocation_policy {
        warlock_alloc::AllocationPolicy::Auto { cv_threshold } => {
            if adv.allocation_policy == warlock_alloc::AllocationPolicy::default() {
                let _ = writeln!(out, "allocation_policy = auto");
            } else {
                let _ = writeln!(out, "allocation_policy = auto:{cv_threshold}");
            }
        }
        warlock_alloc::AllocationPolicy::GreedySize => {
            let _ = writeln!(out, "allocation_policy = greedy");
        }
        warlock_alloc::AllocationPolicy::RoundRobin => {
            let _ = writeln!(out, "allocation_policy = round_robin");
        }
        warlock_alloc::AllocationPolicy::GraphPartition { seed } => {
            let _ = writeln!(out, "allocation_policy = graph");
            if seed != 0 {
                let _ = writeln!(out, "graph_seed = {seed}");
            }
        }
    }
    match adv.parallelism {
        0 => {
            let _ = writeln!(out, "parallelism = auto");
        }
        n => {
            let _ = writeln!(out, "parallelism = {n}");
        }
    }
    match adv.max_candidates {
        0 => {
            let _ = writeln!(out, "max_candidates = unlimited");
        }
        n => {
            let _ = writeln!(out, "max_candidates = {n}");
        }
    }
    match adv.chunk_size {
        0 => {
            let _ = writeln!(out, "chunk_size = auto");
        }
        n => {
            let _ = writeln!(out, "chunk_size = {n}");
        }
    }
    // Rendered only when pinned: the default (`auto`) stays implicit so
    // configs rendered before the knob existed — and the scenario-fleet
    // fingerprint hashed over them — stay byte-identical.
    if adv.kernel != warlock_cost::KernelChoice::Auto {
        let _ = writeln!(out, "kernel = {}", adv.kernel);
    }
    if !adv.range_options.is_empty() {
        let rendered: Vec<String> = adv.range_options.iter().map(u64::to_string).collect();
        let _ = writeln!(out, "range_options = {}", rendered.join(", "));
    }
    let defaults = crate::AdvisorConfig::default();
    if adv.auto_advise {
        let _ = writeln!(out, "auto_advise = on");
    }
    if adv.drift_enter != defaults.drift_enter {
        let _ = writeln!(out, "drift_enter = {}", adv.drift_enter);
    }
    if adv.drift_exit != defaults.drift_exit {
        let _ = writeln!(out, "drift_exit = {}", adv.drift_exit);
    }
    if adv.stats_half_life != defaults.stats_half_life {
        let _ = writeln!(out, "stats_half_life = {}", adv.stats_half_life);
    }
    out
}

/// Reads and parses a configuration file on disk.
///
/// Every failure — unreadable file or parse error — is wrapped in
/// [`WarlockError::AtPath`](crate::WarlockError::AtPath) so the message
/// names the offending file. This is the shared read path of
/// [`Warlock::from_config_path`](crate::Warlock::from_config_path) and
/// the registry's hot-reload.
pub fn parse_config_path(
    path: impl AsRef<std::path::Path>,
) -> Result<ParsedConfig, crate::WarlockError> {
    let path = path.as_ref();
    let wrap = |e: crate::WarlockError| e.at_path(path.display().to_string());
    let input =
        std::fs::read_to_string(path).map_err(|e| wrap(crate::WarlockError::Io(e.to_string())))?;
    parse_config(&input).map_err(|e| wrap(e.into()))
}

/// Builds the APB-1-like demonstration configuration as a [`ParsedConfig`]
/// — the CLI's `init` template.
pub fn demo_config() -> ParsedConfig {
    let schema = warlock_schema::apb1_like_schema(warlock_schema::Apb1Config::default())
        .expect("preset schema builds");
    let mix = warlock_workload::apb1_like_mix().expect("preset mix builds");
    let system = SystemConfig::default_2001(16);
    ParsedConfig {
        schema,
        mix,
        system,
        advisor: AdvisorConfig::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
# demo warehouse
[dimension product]
levels = division:5, line:15, code:9000
skew = 0.5

[dimension time]
levels = year:2, month:24

[fact sales]
measures = units:8, dollars:8
density = 0.01

[query monthly]
weight = 3
predicates = product.line:1, time.month:1

[query yearly]
weight = 1
predicates = time.year:1

[system]
disks = 8
processors = 8

[advisor]
top_n = 5
";

    #[test]
    fn parses_complete_config() {
        let parsed = parse_config(SAMPLE).unwrap();
        assert_eq!(parsed.schema.num_dimensions(), 2);
        assert_eq!(parsed.schema.fact().name(), "sales");
        assert_eq!(parsed.mix.len(), 2);
        assert_eq!(parsed.system.num_disks, 8);
        assert_eq!(parsed.advisor.top_n, 5);
        // Skew propagated to the advisor config.
        let skews = parsed.advisor.skew.as_ref().unwrap();
        assert!((skews[0].theta - 0.5).abs() < 1e-12);
        assert!(skews[1].is_uniform());
        // Weights normalized.
        let shares: Vec<f64> = parsed.mix.iter().map(|(_, s)| s).collect();
        assert!((shares[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn parsed_config_drives_the_advisor() {
        let parsed = parse_config(SAMPLE).unwrap();
        let report = crate::Warlock::builder()
            .schema(parsed.schema)
            .system(parsed.system)
            .mix(parsed.mix)
            .config(parsed.advisor)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(!report.ranked.is_empty());
        assert!(report.ranked.len() <= 5);
    }

    #[test]
    fn streaming_keys_parse_and_round_trip() {
        let with = SAMPLE.replace(
            "top_n = 5",
            "top_n = 5\nmax_candidates = 5000\nchunk_size = 64\nrange_options = 2, 3, 5",
        );
        let parsed = parse_config(&with).unwrap();
        assert_eq!(parsed.advisor.max_candidates, 5000);
        assert_eq!(parsed.advisor.chunk_size, 64);
        assert_eq!(parsed.advisor.range_options, vec![2, 3, 5]);
        let reparsed = parse_config(&render_config(&parsed)).unwrap();
        assert_eq!(reparsed.advisor.max_candidates, 5000);
        assert_eq!(reparsed.advisor.chunk_size, 64);
        assert_eq!(reparsed.advisor.range_options, vec![2, 3, 5]);

        let auto = SAMPLE.replace(
            "top_n = 5",
            "top_n = 5\nmax_candidates = unlimited\nchunk_size = auto",
        );
        let parsed = parse_config(&auto).unwrap();
        assert_eq!(parsed.advisor.max_candidates, 0);
        assert_eq!(parsed.advisor.chunk_size, 0);
        assert!(parsed.advisor.range_options.is_empty());
        let rendered = render_config(&parsed);
        assert!(rendered.contains("max_candidates = unlimited"));
        assert!(rendered.contains("chunk_size = auto"));
        assert!(!rendered.contains("range_options"));

        let bad = SAMPLE.replace("top_n = 5", "top_n = 5\nchunk_size = tiny");
        assert!(parse_config(&bad).is_err());
        let bad = SAMPLE.replace("top_n = 5", "top_n = 5\nrange_options = 2, x");
        assert!(parse_config(&bad).is_err());
    }

    #[test]
    fn kernel_key_parses_and_round_trips() {
        use warlock_cost::KernelChoice;
        // Default (absent key) is auto, left implicit on render so
        // pre-knob configs stay byte-identical.
        let parsed = parse_config(SAMPLE).unwrap();
        assert_eq!(parsed.advisor.kernel, KernelChoice::Auto);
        assert!(!render_config(&parsed).contains("kernel ="));
        for (spelled, choice) in [
            ("auto", KernelChoice::Auto),
            ("scalar", KernelChoice::Scalar),
            ("lanes", KernelChoice::Lanes),
            ("avx2", KernelChoice::Avx2),
        ] {
            let with = SAMPLE.replace("top_n = 5", &format!("top_n = 5\nkernel = {spelled}"));
            let parsed = parse_config(&with).unwrap();
            assert_eq!(parsed.advisor.kernel, choice);
            let reparsed = parse_config(&render_config(&parsed)).unwrap();
            assert_eq!(reparsed.advisor.kernel, choice);
        }
        let bad = SAMPLE.replace("top_n = 5", "top_n = 5\nkernel = sse9");
        let err = parse_config(&bad).unwrap_err().to_string();
        assert!(err.contains("sse9"), "unhelpful error: {err}");
    }

    #[test]
    fn drift_keys_parse_and_round_trip() {
        // Defaults (absent keys) stay implicit on render so pre-knob
        // configs — and fingerprints hashed over them — stay identical.
        let parsed = parse_config(SAMPLE).unwrap();
        assert!(!parsed.advisor.auto_advise);
        let rendered = render_config(&parsed);
        for key in [
            "auto_advise",
            "drift_enter",
            "drift_exit",
            "stats_half_life",
        ] {
            assert!(!rendered.contains(key), "default {key} leaked into render");
        }

        let with = SAMPLE.replace(
            "top_n = 5",
            "top_n = 5\nauto_advise = on\ndrift_enter = 0.3\ndrift_exit = 0.05\n\
             stats_half_life = 500",
        );
        let parsed = parse_config(&with).unwrap();
        assert!(parsed.advisor.auto_advise);
        assert_eq!(parsed.advisor.drift_enter, 0.3);
        assert_eq!(parsed.advisor.drift_exit, 0.05);
        assert_eq!(parsed.advisor.stats_half_life, 500.0);
        let reparsed = parse_config(&render_config(&parsed)).unwrap();
        assert_eq!(reparsed.advisor, parsed.advisor);

        let off = SAMPLE.replace("top_n = 5", "top_n = 5\nauto_advise = off");
        assert!(!parse_config(&off).unwrap().advisor.auto_advise);

        let bad = SAMPLE.replace("top_n = 5", "top_n = 5\nauto_advise = maybe");
        let err = parse_config(&bad).unwrap_err().to_string();
        assert!(err.contains("maybe"), "unhelpful error: {err}");
        let bad = SAMPLE.replace("top_n = 5", "top_n = 5\ndrift_enter = 0.05");
        let err = parse_config(&bad).unwrap_err().to_string();
        assert!(
            err.contains("drift"),
            "inverted thresholds not caught: {err}"
        );
    }

    #[test]
    fn parallelism_key_parses_and_round_trips() {
        let with = SAMPLE.replace("top_n = 5", "top_n = 5\nparallelism = 3");
        let parsed = parse_config(&with).unwrap();
        assert_eq!(parsed.advisor.parallelism, 3);
        let reparsed = parse_config(&render_config(&parsed)).unwrap();
        assert_eq!(reparsed.advisor.parallelism, 3);

        let auto = SAMPLE.replace("top_n = 5", "top_n = 5\nparallelism = auto");
        let parsed = parse_config(&auto).unwrap();
        assert_eq!(parsed.advisor.parallelism, 0);
        assert!(render_config(&parsed).contains("parallelism = auto"));

        let bad = SAMPLE.replace("top_n = 5", "top_n = 5\nparallelism = lots");
        assert!(parse_config(&bad)
            .unwrap_err()
            .message
            .contains("parallelism"));
    }

    #[test]
    fn skew_shuffle_parses_and_round_trips() {
        let with = SAMPLE.replace("skew = 0.5", "skew = 1.8\nskew_shuffle = 42");
        let parsed = parse_config(&with).unwrap();
        let skews = parsed.advisor.skew.as_ref().unwrap();
        assert_eq!(skews[0], DimensionSkew::hot_spot(1.8, 42));
        assert!(skews[1].is_uniform());
        let rendered = render_config(&parsed);
        assert!(rendered.contains("skew_shuffle = 42"));
        let reparsed = parse_config(&rendered).unwrap();
        assert_eq!(reparsed.advisor.skew, parsed.advisor.skew);

        // A shuffle without skew is a loud, typed error naming the
        // dimension, not a silently ignored key.
        let bad = SAMPLE.replace("skew = 0.5", "skew_shuffle = 42");
        let err = parse_config(&bad).unwrap_err();
        assert!(err.message.contains("skew_shuffle without skew"));
        assert!(err.message.contains("product"));

        let bad = SAMPLE.replace("skew = 0.5", "skew = 0.5\nskew_shuffle = soon");
        assert!(parse_config(&bad)
            .unwrap_err()
            .message
            .contains("skew_shuffle"));
    }

    #[test]
    fn allocation_policy_parses_and_round_trips() {
        use warlock_alloc::AllocationPolicy;
        for (text, policy) in [
            ("auto", AllocationPolicy::default()),
            ("auto:0.25", AllocationPolicy::Auto { cv_threshold: 0.25 }),
            ("greedy", AllocationPolicy::GreedySize),
            ("round_robin", AllocationPolicy::RoundRobin),
        ] {
            let with = SAMPLE.replace(
                "top_n = 5",
                &format!("top_n = 5\nallocation_policy = {text}"),
            );
            let parsed = parse_config(&with).unwrap();
            assert_eq!(parsed.advisor.allocation_policy, policy, "{text}");
            let reparsed = parse_config(&render_config(&parsed)).unwrap();
            assert_eq!(reparsed.advisor.allocation_policy, policy, "{text}");
        }

        let bad = SAMPLE.replace("top_n = 5", "top_n = 5\nallocation_policy = stripe");
        let err = parse_config(&bad).unwrap_err();
        assert!(err.message.contains("allocation_policy"));
        assert!(err.message.contains("stripe"));
        let bad = SAMPLE.replace("top_n = 5", "top_n = 5\nallocation_policy = auto:-1");
        assert!(parse_config(&bad).is_err());
        let bad = SAMPLE.replace("top_n = 5", "top_n = 5\nallocation_policy = auto:wide");
        assert!(parse_config(&bad).is_err());
    }

    #[test]
    fn graph_policy_parses_and_round_trips() {
        use warlock_alloc::AllocationPolicy;
        // Bare `graph` defaults to seed 0 and renders without a
        // graph_seed line.
        let with = SAMPLE.replace("top_n = 5", "top_n = 5\nallocation_policy = graph");
        let parsed = parse_config(&with).unwrap();
        assert_eq!(
            parsed.advisor.allocation_policy,
            AllocationPolicy::GraphPartition { seed: 0 }
        );
        let rendered = render_config(&parsed);
        assert!(rendered.contains("allocation_policy = graph"));
        assert!(!rendered.contains("graph_seed"));
        let reparsed = parse_config(&rendered).unwrap();
        assert_eq!(
            reparsed.advisor.allocation_policy,
            parsed.advisor.allocation_policy
        );

        // Explicit seed round-trips, on either side of the policy key.
        for lines in [
            "allocation_policy = graph\ngraph_seed = 41",
            "graph_seed = 41\nallocation_policy = graph",
        ] {
            let with = SAMPLE.replace("top_n = 5", &format!("top_n = 5\n{lines}"));
            let parsed = parse_config(&with).unwrap();
            assert_eq!(
                parsed.advisor.allocation_policy,
                AllocationPolicy::GraphPartition { seed: 41 }
            );
            let rendered = render_config(&parsed);
            assert!(rendered.contains("graph_seed = 41"));
            let reparsed = parse_config(&rendered).unwrap();
            assert_eq!(
                reparsed.advisor.allocation_policy,
                AllocationPolicy::GraphPartition { seed: 41 }
            );
        }

        // graph_seed without the graph policy is a loud error with the
        // offending line number.
        let bad = SAMPLE.replace("top_n = 5", "top_n = 5\ngraph_seed = 7");
        let err = parse_config(&bad).unwrap_err();
        assert!(err.message.contains("graph_seed requires"));
        let bad = SAMPLE.replace(
            "top_n = 5",
            "top_n = 5\nallocation_policy = greedy\ngraph_seed = 7",
        );
        assert!(parse_config(&bad).is_err());
        // Malformed seeds are rejected too.
        let bad = SAMPLE.replace(
            "top_n = 5",
            "top_n = 5\nallocation_policy = graph\ngraph_seed = deterministic",
        );
        assert!(parse_config(&bad).is_err());
    }

    #[test]
    fn rejects_unknown_keys_with_line_numbers() {
        let bad = "[system]\ndisks = 4\nwarp_factor = 9\n";
        let err = parse_config(bad).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("warp_factor"));
    }

    #[test]
    fn rejects_unknown_sections_and_attributes() {
        let err = parse_config("[starship enterprise]\n").unwrap_err();
        assert!(err.message.contains("starship"));

        let bad = SAMPLE.replace("time.month:1", "time.day:1");
        let err = parse_config(&bad).unwrap_err();
        assert!(err.message.contains("time.day"));
    }

    #[test]
    fn rejects_structural_mistakes() {
        assert!(parse_config("").unwrap_err().message.contains("dimension"));
        let no_fact = "[dimension d]\nlevels = a:4\n[query q]\npredicates = d.a:1\n";
        assert!(parse_config(no_fact).unwrap_err().message.contains("fact"));
        let both = SAMPLE.replace("density = 0.01", "density = 0.01\nrows = 5");
        assert!(parse_config(&both)
            .unwrap_err()
            .message
            .contains("not both"));
    }

    #[test]
    fn rejects_bad_values() {
        let bad = SAMPLE.replace("disks = 8", "disks = lots");
        let err = parse_config(&bad).unwrap_err();
        assert!(err.message.contains("invalid disks"));

        let bad = SAMPLE.replace("levels = year:2, month:24", "levels = year:2, month:25");
        assert!(parse_config(&bad).is_err()); // ragged fan-out

        let bad = SAMPLE.replace("density = 0.01", "density = 7.0");
        assert!(parse_config(&bad).unwrap_err().message.contains("density"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let with_noise = format!("# leading comment\n\n{SAMPLE}\n# trailing");
        assert!(parse_config(&with_noise).is_ok());
    }

    #[test]
    fn shared_disk_architecture() {
        let sd = SAMPLE.replace(
            "[system]\ndisks = 8\nprocessors = 8",
            "[system]\ndisks = 8\narchitecture = shared_disk\nnodes = 2\nprocessors = 4",
        );
        let parsed = parse_config(&sd).unwrap();
        assert_eq!(parsed.system.architecture.total_processors(), 8);
        assert!(parsed.system.architecture.overhead_factor() > 1.0);
    }

    #[test]
    fn fixed_prefetch() {
        let fixed = SAMPLE.replace("processors = 8", "processors = 8\nprefetch = 32");
        let parsed = parse_config(&fixed).unwrap();
        assert_eq!(parsed.system.fact_prefetch, PrefetchPolicy::Fixed(32));
    }

    #[test]
    fn parse_config_path_names_the_file() {
        let e = parse_config_path("/definitely/not/a/file.cfg").unwrap_err();
        assert_eq!(e.kind(), "io");
        assert!(e.to_string().contains("/definitely/not/a/file.cfg"));

        let path = std::env::temp_dir().join(format!("warlock-cfgpath-{}.cfg", std::process::id()));
        std::fs::write(&path, SAMPLE).unwrap();
        let parsed = parse_config_path(&path).unwrap();
        assert_eq!(parsed.system.num_disks, 8);
        std::fs::write(&path, "[dimension broken\n").unwrap();
        let e = parse_config_path(&path).unwrap_err();
        assert_eq!(e.kind(), "config_file");
        assert!(e.to_string().contains(&path.display().to_string()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn error_display() {
        let e = ConfigFileError::at(7, "boom");
        assert_eq!(e.to_string(), "config line 7: boom");
        let e = ConfigFileError::at(0, "boom");
        assert_eq!(e.to_string(), "config: boom");
    }

    #[test]
    fn render_round_trips() {
        let original = parse_config(SAMPLE).unwrap();
        let rendered = render_config(&original);
        let reparsed = parse_config(&rendered)
            .unwrap_or_else(|e| panic!("rendered config does not parse: {e}\n{rendered}"));
        assert_eq!(reparsed.schema, original.schema);
        assert_eq!(reparsed.system, original.system);
        assert_eq!(reparsed.mix.len(), original.mix.len());
        for (a, b) in reparsed.mix.classes().iter().zip(original.mix.classes()) {
            assert_eq!(a.class, b.class);
            assert!((a.share - b.share).abs() < 1e-9);
        }
        assert_eq!(
            reparsed.advisor.thresholds.max_fragments,
            original.advisor.thresholds.max_fragments
        );
        assert_eq!(reparsed.advisor.skew, original.advisor.skew);
    }

    #[test]
    fn demo_config_round_trips_and_advises() {
        let demo = demo_config();
        let rendered = render_config(&demo);
        let reparsed = parse_config(&rendered).unwrap();
        assert_eq!(reparsed.schema, demo.schema);
        assert_eq!(reparsed.mix.len(), 10);
        let session = crate::Warlock::builder()
            .schema(reparsed.schema)
            .system(reparsed.system)
            .mix(reparsed.mix)
            .config(reparsed.advisor)
            .build()
            .unwrap();
        assert!(!session.run().unwrap().ranked.is_empty());
    }

    #[test]
    fn render_shared_disk_and_fixed_prefetch() {
        let mut demo = demo_config();
        demo.system.architecture = Architecture::shared_disk(4, 4);
        demo.system.fact_prefetch = PrefetchPolicy::Fixed(64);
        demo.system.bitmap_prefetch = PrefetchPolicy::Fixed(64);
        let reparsed = parse_config(&render_config(&demo)).unwrap();
        assert_eq!(reparsed.system.architecture.total_processors(), 16);
        assert_eq!(reparsed.system.fact_prefetch, PrefetchPolicy::Fixed(64));
    }
}
