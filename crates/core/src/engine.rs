//! The prediction pipeline internals: validate → generate → exclude →
//! cost → rank.
//!
//! Both the owned [`crate::Warlock`] session facade and the deprecated
//! borrowing [`crate::Advisor`] shim delegate here, so the pipeline has
//! exactly one implementation.

use warlock_bitmap::BitmapScheme;
use warlock_cost::{CandidateCost, CostModel};
use warlock_fragment::{
    enumerate_candidates, Exclusion, FragmentLayout, Fragmentation, SkewModelExt, ThresholdContext,
};
use warlock_schema::StarSchema;
use warlock_skew::SkewModel;
use warlock_storage::SystemConfig;
use warlock_workload::QueryMix;

use crate::advisor::{AdvisorReport, ExcludedCandidate, RankedCandidate};
use crate::allocation_plan::AllocationPlan;
use crate::analysis::FragmentationAnalysis;
use crate::config::AdvisorConfig;
use crate::error::WarlockError;
use crate::ranking::twofold_rank;

/// Validates all advisor inputs and derives the bitmap scheme and skew
/// model the pipeline runs with.
pub(crate) fn validate(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
) -> Result<(BitmapScheme, SkewModel), WarlockError> {
    config.validate().map_err(WarlockError::Config)?;
    system.validate().map_err(WarlockError::System)?;
    mix.validate(schema)?;
    if config.fact_index >= schema.facts().len() {
        return Err(WarlockError::Config(format!(
            "fact index {} out of range",
            config.fact_index
        )));
    }
    let skew = match &config.skew {
        None => schema.uniform_skew_model(),
        Some(configs) => {
            if configs.len() != schema.num_dimensions() {
                return Err(WarlockError::Skew(format!(
                    "{} skew configs for {} dimensions",
                    configs.len(),
                    schema.num_dimensions()
                )));
            }
            schema.skew_model(configs)
        }
    };
    let scheme = BitmapScheme::derive(schema, mix, config.scheme);
    Ok((scheme, skew))
}

/// The threshold context derived from the system configuration.
///
/// For fixed prefetch policies the sub-granule exclusion uses the fixed
/// value; for automatic policies it uses a floor of 8 pages — the
/// smallest sequential run for which positioning amortization is
/// meaningful on the modeled disks.
pub(crate) fn threshold_context(
    schema: &StarSchema,
    system: &SystemConfig,
    config: &AdvisorConfig,
) -> ThresholdContext {
    let row_bytes = schema.fact_row_bytes(config.fact_index);
    ThresholdContext {
        rows_per_page: system.page.rows_per_page(row_bytes),
        prefetch_pages: system.fact_prefetch.fixed().unwrap_or(8),
        num_disks: system.num_disks,
    }
}

/// Runs the full prediction pipeline.
pub(crate) fn run(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    scheme: &BitmapScheme,
) -> AdvisorReport {
    let candidates = enumerate_candidates(schema, config.max_dimensionality);
    let enumerated = candidates.len();
    let ctx = threshold_context(schema, system, config);

    let model = CostModel::new(schema, system, scheme, mix).with_fact_index(config.fact_index);

    let mut excluded = Vec::new();
    let mut costs: Vec<CandidateCost> = Vec::with_capacity(candidates.len());
    for fragmentation in candidates {
        // Cheap overflow pre-check before materializing a layout.
        let raw_count = fragmentation.num_fragments(schema);
        if raw_count > u128::from(config.thresholds.max_fragments) {
            excluded.push(ExcludedCandidate {
                label: fragmentation.label(schema),
                reason: Exclusion::TooManyFragments {
                    fragments: raw_count.min(u128::from(u64::MAX)) as u64,
                    limit: config.thresholds.max_fragments,
                },
                fragmentation,
            });
            continue;
        }
        let layout = FragmentLayout::new(schema, fragmentation, config.fact_index);
        match config.thresholds.check(&layout, ctx) {
            Err(reason) => excluded.push(ExcludedCandidate {
                label: layout.fragmentation().label(schema),
                fragmentation: layout.fragmentation().clone(),
                reason,
            }),
            Ok(()) => costs.push(model.evaluate_layout(&layout)),
        }
    }

    let evaluated = costs.len();
    let mut ranked_costs = twofold_rank(costs, config.top_x_percent, config.min_keep);
    ranked_costs.truncate(config.top_n);
    let ranked = ranked_costs
        .into_iter()
        .enumerate()
        .map(|(i, cost)| RankedCandidate {
            rank: i + 1,
            label: cost.fragmentation.label(schema),
            cost,
        })
        .collect();

    AdvisorReport {
        ranked,
        excluded,
        evaluated,
        enumerated,
        scheme: scheme.clone(),
    }
}

/// What-if variation: `num_disks` disks. Returns the variation label and
/// the re-run report; shared by [`crate::Warlock::what_if_disks`] and
/// [`crate::TuningSession::with_disks`].
pub(crate) fn vary_disks(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    scheme: &BitmapScheme,
    num_disks: u32,
) -> (String, AdvisorReport) {
    let mut system = *system;
    system.num_disks = num_disks.max(1);
    let report = run(schema, &system, mix, config, scheme);
    (format!("disks = {num_disks}"), report)
}

/// What-if variation: prefetch fixed at `pages` for fact tables and
/// bitmaps alike.
pub(crate) fn vary_fixed_prefetch(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    scheme: &BitmapScheme,
    pages: u32,
) -> (String, AdvisorReport) {
    use warlock_storage::PrefetchPolicy;
    let mut system = *system;
    system.fact_prefetch = PrefetchPolicy::Fixed(pages.max(1));
    system.bitmap_prefetch = PrefetchPolicy::Fixed(pages.max(1));
    let report = run(schema, &system, mix, config, scheme);
    (format!("prefetch = {pages} pages"), report)
}

/// What-if variation: the bitmap indexes of `dimension` dropped.
pub(crate) fn vary_without_bitmap_dimension(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    scheme: &BitmapScheme,
    dimension: warlock_schema::DimensionId,
) -> (String, AdvisorReport) {
    let scheme = scheme.without_dimension(dimension);
    let report = run(schema, system, mix, config, &scheme);
    (format!("no bitmaps on dimension {dimension}"), report)
}

/// What-if variation: query class `name` removed from the workload.
/// The bitmap scheme is derived from the mix, so it is re-derived for
/// the reduced workload (as the original advisor did). `None` when the
/// class is unknown or removing it would empty the mix.
pub(crate) fn vary_without_class(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    name: &str,
) -> Option<(String, AdvisorReport)> {
    let mix = mix.without_class(name)?;
    let scheme = BitmapScheme::derive(schema, &mix, config.scheme);
    let report = run(schema, system, &mix, config, &scheme);
    Some((format!("without class {name}"), report))
}

/// Evaluates a single candidate outside the ranking pipeline.
pub(crate) fn evaluate(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    scheme: &BitmapScheme,
    fragmentation: &Fragmentation,
) -> CandidateCost {
    CostModel::new(schema, system, scheme, mix)
        .with_fact_index(config.fact_index)
        .evaluate(fragmentation)
}

/// Produces the detailed Fig.-2-style statistic for one candidate.
pub(crate) fn analyze(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    scheme: &BitmapScheme,
    fragmentation: &Fragmentation,
) -> FragmentationAnalysis {
    FragmentationAnalysis::build(
        schema,
        system,
        scheme,
        mix,
        fragmentation,
        config.fact_index,
    )
}

/// Computes the physical allocation plan for one candidate.
#[allow(clippy::too_many_arguments)]
pub(crate) fn plan_allocation(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    scheme: &BitmapScheme,
    skew: &SkewModel,
    fragmentation: &Fragmentation,
) -> AllocationPlan {
    AllocationPlan::build(
        schema,
        system,
        scheme,
        mix,
        skew,
        fragmentation,
        config.allocation_policy,
        config.fact_index,
    )
}
