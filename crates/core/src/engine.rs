//! The prediction pipeline internals: validate → generate → exclude →
//! cost → rank.
//!
//! The owned [`crate::Warlock`] session facade, [`crate::TuningSession`]
//! and the `warlockd` service all delegate here, so the pipeline has
//! exactly one implementation. Candidate evaluation fans out over a
//! persistent [`exec::WorkerPool`]; per-candidate outcomes are memoized
//! in an [`EvalCache`] keyed by a fingerprint of every input the outcome
//! depends on. Internal invariant failures surface as
//! [`WarlockError::Internal`] instead of panicking, so a worker bug in a
//! long-lived service degrades to a failed request.

use warlock_bitmap::BitmapScheme;
use warlock_cost::{CandidateCost, CostModel};
use warlock_fragment::{
    enumerate_candidates, Exclusion, FragmentLayout, Fragmentation, SkewModelExt, ThresholdContext,
};
use warlock_schema::StarSchema;
use warlock_skew::SkewModel;
use warlock_storage::SystemConfig;
use warlock_workload::QueryMix;

use crate::advisor::{AdvisorReport, ExcludedCandidate, RankedCandidate};
use crate::allocation_plan::AllocationPlan;
use crate::analysis::FragmentationAnalysis;
use crate::cache::{CachedOutcome, EvalCache};
use crate::config::AdvisorConfig;
use crate::error::WarlockError;
use crate::ranking::twofold_rank;

pub(crate) mod exec;

/// The execution environment a pipeline run borrows from its session:
/// the shared evaluation memo and the persistent worker pool.
#[derive(Clone, Copy)]
pub(crate) struct EvalEnv<'a> {
    /// Per-candidate outcome memo; `None` disables memoization.
    pub cache: Option<&'a EvalCache>,
    /// The persistent evaluation pool work fans out over.
    pub pool: &'a exec::WorkerPool,
}

/// Validates all advisor inputs and derives the bitmap scheme and skew
/// model the pipeline runs with.
pub(crate) fn validate(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
) -> Result<(BitmapScheme, SkewModel), WarlockError> {
    config.validate().map_err(WarlockError::Config)?;
    system.validate().map_err(WarlockError::System)?;
    mix.validate(schema)?;
    if config.fact_index >= schema.facts().len() {
        return Err(WarlockError::Config(format!(
            "fact index {} out of range",
            config.fact_index
        )));
    }
    let skew = match &config.skew {
        None => schema.uniform_skew_model(),
        Some(configs) => {
            if configs.len() != schema.num_dimensions() {
                return Err(WarlockError::Skew(format!(
                    "{} skew configs for {} dimensions",
                    configs.len(),
                    schema.num_dimensions()
                )));
            }
            schema.skew_model(configs)
        }
    };
    let scheme = BitmapScheme::derive(schema, mix, config.scheme);
    Ok((scheme, skew))
}

/// The threshold context derived from the system configuration.
///
/// For fixed prefetch policies the sub-granule exclusion uses the fixed
/// value; for automatic policies it uses a floor of 8 pages — the
/// smallest sequential run for which positioning amortization is
/// meaningful on the modeled disks.
pub(crate) fn threshold_context(
    schema: &StarSchema,
    system: &SystemConfig,
    config: &AdvisorConfig,
) -> ThresholdContext {
    let row_bytes = schema.fact_row_bytes(config.fact_index);
    ThresholdContext {
        rows_per_page: system.page.rows_per_page(row_bytes),
        prefetch_pages: system.fact_prefetch.fixed().unwrap_or(8),
        num_disks: system.num_disks,
    }
}

/// Builds the cost model, mapping the (validated-at-build-time) fact
/// index failure to an internal-invariant error instead of panicking.
fn cost_model<'a>(
    schema: &'a StarSchema,
    system: &'a SystemConfig,
    scheme: &'a BitmapScheme,
    mix: &'a QueryMix,
    config: &AdvisorConfig,
) -> Result<CostModel<'a>, WarlockError> {
    CostModel::new(schema, system, scheme, mix)
        .with_fact_index(config.fact_index)
        .map_err(|e| WarlockError::internal(format!("validated fact index rejected: {e}")))
}

/// The fingerprint of every input that determines a candidate's
/// *pipeline* outcome (exclusion or cost): the cost model's inputs plus
/// the exclusion thresholds. Salted differently from
/// [`evaluate_fingerprint`] because a cached pipeline `Cost` also
/// implies "passed the thresholds", which a bare evaluation does not.
fn run_fingerprint(model: &CostModel<'_>, config: &AdvisorConfig) -> u128 {
    warlock_cost::fingerprint128(&(
        "run",
        model.fingerprint(),
        format!("{:?}", config.thresholds),
    ))
}

/// Fingerprint for threshold-free single-candidate evaluation
/// ([`evaluate`]); deliberately distinct from [`run_fingerprint`].
fn evaluate_fingerprint(model: &CostModel<'_>) -> u128 {
    warlock_cost::fingerprint128(&("evaluate", model.fingerprint()))
}

/// The full per-candidate pipeline step: overflow pre-check → layout →
/// thresholds → cost. Pure in its inputs, so it can run on any worker.
fn evaluate_candidate(
    schema: &StarSchema,
    config: &AdvisorConfig,
    ctx: ThresholdContext,
    model: &CostModel<'_>,
    fragmentation: &Fragmentation,
) -> CachedOutcome {
    // Cheap overflow pre-check before materializing a layout.
    let raw_count = fragmentation.num_fragments(schema);
    if raw_count > u128::from(config.thresholds.max_fragments) {
        return CachedOutcome::Excluded(Exclusion::TooManyFragments {
            fragments: raw_count.min(u128::from(u64::MAX)) as u64,
            limit: config.thresholds.max_fragments,
        });
    }
    let layout = FragmentLayout::new(schema, fragmentation.clone(), config.fact_index);
    match config.thresholds.check(&layout, ctx) {
        Err(reason) => CachedOutcome::Excluded(reason),
        Ok(()) => CachedOutcome::Cost(model.evaluate_layout(&layout)),
    }
}

/// Runs the full prediction pipeline.
///
/// Candidate evaluation fans out over the environment's persistent
/// worker pool, using up to `config.parallelism` workers (see [`exec`]);
/// results are merged in enumeration order, so the report is
/// bit-identical to the serial path. When the environment carries a
/// cache, per-candidate outcomes are memoized under the input
/// fingerprint and re-runs with unchanged inputs skip re-evaluation.
pub(crate) fn run(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    scheme: &BitmapScheme,
    env: EvalEnv<'_>,
) -> Result<AdvisorReport, WarlockError> {
    let candidates = enumerate_candidates(schema, config.max_dimensionality);
    let enumerated = candidates.len();
    let ctx = threshold_context(schema, system, config);
    let model = cost_model(schema, system, scheme, mix, config)?;

    // Resolve what is already memoized; everything else is fresh work.
    let fingerprint = env.cache.map(|_| run_fingerprint(&model, config));
    let mut outcomes: Vec<Option<CachedOutcome>> = vec![None; candidates.len()];
    let todo: Vec<usize> = match (env.cache, fingerprint) {
        (Some(cache), Some(fp)) => {
            let mut todo = Vec::new();
            for (i, fragmentation) in candidates.iter().enumerate() {
                match cache.lookup(fp, fragmentation) {
                    Some(outcome) => outcomes[i] = Some(outcome),
                    None => todo.push(i),
                }
            }
            todo
        }
        _ => (0..candidates.len()).collect(),
    };

    // Fan the uncached evaluations out over the pool; results come back
    // in `todo` order regardless of worker count or scheduling.
    let workers = exec::effective_parallelism(config.parallelism);
    let fresh = env.pool.map(workers, &todo, |&i| {
        evaluate_candidate(schema, config, ctx, &model, &candidates[i])
    });
    for (&i, outcome) in todo.iter().zip(fresh) {
        if let (Some(cache), Some(fp)) = (env.cache, fingerprint) {
            cache.insert(fp, candidates[i].clone(), outcome.clone());
        }
        outcomes[i] = Some(outcome);
    }

    // Merge in enumeration order, exactly like the original serial loop.
    let mut excluded = Vec::new();
    let mut costs: Vec<CandidateCost> = Vec::with_capacity(candidates.len());
    for (fragmentation, outcome) in candidates.into_iter().zip(outcomes) {
        let outcome = outcome
            .ok_or_else(|| WarlockError::internal("candidate evaluation left no outcome"))?;
        match outcome {
            CachedOutcome::Excluded(reason) => excluded.push(ExcludedCandidate {
                label: fragmentation.label(schema),
                fragmentation,
                reason,
            }),
            CachedOutcome::Cost(cost) => costs.push(cost),
        }
    }

    let evaluated = costs.len();
    let mut ranked_costs = twofold_rank(costs, config.top_x_percent, config.min_keep);
    ranked_costs.truncate(config.top_n);
    let ranked = ranked_costs
        .into_iter()
        .enumerate()
        .map(|(i, cost)| RankedCandidate {
            rank: i + 1,
            label: cost.fragmentation.label(schema),
            cost,
        })
        .collect();

    Ok(AdvisorReport {
        ranked,
        excluded,
        evaluated,
        enumerated,
        scheme: scheme.clone(),
    })
}

/// Labels a what-if knob, spelling out clamping instead of hiding it:
/// requesting `0` disks runs with 1 disk, and the label must say so.
fn clamped_label(what: &str, requested: u32, effective: u32, unit: &str) -> String {
    if requested == effective {
        format!("{what} = {requested}{unit}")
    } else {
        format!("{what} = {effective}{unit} (requested {requested}, clamped)")
    }
}

/// What-if variation: `num_disks` disks. Returns the variation label and
/// the re-run report; shared by [`crate::Warlock::what_if_disks`] and
/// [`crate::TuningSession::with_disks`].
pub(crate) fn vary_disks(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    scheme: &BitmapScheme,
    num_disks: u32,
    env: EvalEnv<'_>,
) -> Result<(String, AdvisorReport), WarlockError> {
    let effective = num_disks.max(1);
    let mut system = *system;
    system.num_disks = effective;
    let report = run(schema, &system, mix, config, scheme, env)?;
    Ok((clamped_label("disks", num_disks, effective, ""), report))
}

/// What-if variation: prefetch fixed at `pages` for fact tables and
/// bitmaps alike.
pub(crate) fn vary_fixed_prefetch(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    scheme: &BitmapScheme,
    pages: u32,
    env: EvalEnv<'_>,
) -> Result<(String, AdvisorReport), WarlockError> {
    use warlock_storage::PrefetchPolicy;
    let effective = pages.max(1);
    let mut system = *system;
    system.fact_prefetch = PrefetchPolicy::Fixed(effective);
    system.bitmap_prefetch = PrefetchPolicy::Fixed(effective);
    let report = run(schema, &system, mix, config, scheme, env)?;
    Ok((
        clamped_label("prefetch", pages, effective, " pages"),
        report,
    ))
}

/// What-if variation: the bitmap indexes of `dimension` dropped.
pub(crate) fn vary_without_bitmap_dimension(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    scheme: &BitmapScheme,
    dimension: warlock_schema::DimensionId,
    env: EvalEnv<'_>,
) -> Result<(String, AdvisorReport), WarlockError> {
    let scheme = scheme.without_dimension(dimension);
    let report = run(schema, system, mix, config, &scheme, env)?;
    Ok((format!("no bitmaps on dimension {dimension}"), report))
}

/// What-if variation: query class `name` removed from the workload.
/// The bitmap scheme is derived from the mix, so it is re-derived for
/// the reduced workload (as the original advisor did). Fails with
/// [`WarlockError::UnknownClass`] when the class is unknown or removing
/// it would empty the mix.
pub(crate) fn vary_without_class(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    name: &str,
    env: EvalEnv<'_>,
) -> Result<(String, AdvisorReport), WarlockError> {
    let mix = mix
        .without_class(name)
        .ok_or_else(|| WarlockError::UnknownClass { name: name.into() })?;
    let scheme = BitmapScheme::derive(schema, &mix, config.scheme);
    let report = run(schema, system, &mix, config, &scheme, env)?;
    Ok((format!("without class {name}"), report))
}

/// Evaluates a single candidate outside the ranking pipeline, memoizing
/// the cost when a session cache is given. Cached under a different
/// fingerprint than the pipeline because no thresholds are applied
/// here. `fp_memo` lets the session reuse its snapshot-scoped
/// fingerprint (computing one dumps every model input).
#[allow(clippy::too_many_arguments)]
pub(crate) fn evaluate(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    scheme: &BitmapScheme,
    fragmentation: &Fragmentation,
    cache: Option<&EvalCache>,
    fp_memo: Option<&std::sync::OnceLock<u128>>,
) -> Result<CandidateCost, WarlockError> {
    let model = cost_model(schema, system, scheme, mix, config)?;
    let Some(cache) = cache else {
        return Ok(model.evaluate(fragmentation));
    };
    let fp = match fp_memo {
        Some(memo) => *memo.get_or_init(|| evaluate_fingerprint(&model)),
        None => evaluate_fingerprint(&model),
    };
    if let Some(CachedOutcome::Cost(cost)) = cache.lookup(fp, fragmentation) {
        return Ok(cost);
    }
    let cost = model.evaluate(fragmentation);
    cache.insert(fp, fragmentation.clone(), CachedOutcome::Cost(cost.clone()));
    Ok(cost)
}

/// Produces the detailed Fig.-2-style statistic for one candidate.
pub(crate) fn analyze(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    scheme: &BitmapScheme,
    fragmentation: &Fragmentation,
) -> Result<FragmentationAnalysis, WarlockError> {
    FragmentationAnalysis::build(
        schema,
        system,
        scheme,
        mix,
        fragmentation,
        config.fact_index,
    )
}

/// Computes the physical allocation plan for one candidate.
#[allow(clippy::too_many_arguments)]
pub(crate) fn plan_allocation(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    scheme: &BitmapScheme,
    skew: &SkewModel,
    fragmentation: &Fragmentation,
) -> Result<AllocationPlan, WarlockError> {
    AllocationPlan::build(
        schema,
        system,
        scheme,
        mix,
        skew,
        fragmentation,
        config.allocation_policy,
        config.fact_index,
    )
}
