//! The prediction pipeline internals: validate → generate → exclude →
//! cost → rank, as a **bounded-memory streaming pipeline**.
//!
//! The owned [`crate::Warlock`] session facade, [`crate::TuningSession`]
//! and the `warlockd` service all delegate here, so the pipeline has
//! exactly one implementation. Candidates are pulled lazily from a
//! [`CandidateSource`] in fixed-size chunks (never materializing the
//! space): each chunk is resolved against the [`EvalCache`], cheap
//! structural pre-exclusion culls candidates whose fragment count
//! already disqualifies them before any layout or cost work, and the
//! rest fan out over a persistent [`exec::WorkerPool`]. Chunk results
//! merge in enumeration order into a
//! [`StreamingRank`](crate::ranking::StreamingRank) accumulator (which
//! retains only the phase-1 survivors) and a bounded
//! [`ExcludedSummary`], so the report is **bit-identical** to the
//! historical materialized pass at any worker count and chunk size
//! while peak memory is O(chunk + survivors).
//!
//! [`AdvisorConfig::max_candidates`] turns an over-broad run into a
//! typed [`WarlockError::CandidateBudget`] up front (the source
//! predicts the exact space size before generating anything). Internal
//! invariant failures surface as [`WarlockError::Internal`] instead of
//! panicking, so a worker bug in a long-lived service degrades to a
//! failed request.

use std::sync::Arc;

use warlock_bitmap::BitmapScheme;
use warlock_cost::{
    combine_class_costs, evaluate_chunk_kernel, evaluate_chunk_rows, CandidateCost, ChunkBatch,
    ClassCost, CostModel, CostTables, KernelBackend, PerQueryDetail,
};
use warlock_fragment::{
    CandidateError, CandidateSource, Exclusion, FragmentLayout, Fragmentation, LayoutScratch,
    SkewModelExt, ThresholdContext,
};
use warlock_schema::StarSchema;
use warlock_skew::SkewModel;
use warlock_storage::SystemConfig;
use warlock_workload::QueryMix;

use crate::advisor::{AdvisorReport, ExcludedCandidate, ExcludedSummary, RankedCandidate};
use crate::allocation_plan::AllocationPlan;
use crate::analysis::FragmentationAnalysis;
use crate::cache::{CachedOutcome, EvalCache};
use crate::config::AdvisorConfig;
use crate::error::WarlockError;
use crate::ranking::StreamingRank;

pub(crate) mod exec;

/// Environment variable overriding the automatic evaluation chunk size
/// (only consulted when [`AdvisorConfig::chunk_size`] is `0` = auto).
/// CI uses it to pin a `chunk_size = 1` determinism lane without
/// editing configurations.
pub(crate) const CHUNK_SIZE_ENV: &str = "WARLOCK_CHUNK_SIZE";

/// Default evaluation chunk size under `chunk_size = 0`: large enough
/// to keep every worker of a wide pool busy per round, small enough
/// that pipeline memory stays a rounding error next to the survivors.
const DEFAULT_CHUNK_SIZE: usize = 256;

/// Resolves the configured chunk-size knob: `n >= 1` is taken
/// literally; `0` means auto — the `WARLOCK_CHUNK_SIZE` environment
/// variable if set to a positive integer, otherwise
/// [`DEFAULT_CHUNK_SIZE`].
pub(crate) fn effective_chunk_size(requested: usize) -> usize {
    if requested >= 1 {
        return requested;
    }
    if let Ok(v) = std::env::var(CHUNK_SIZE_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    DEFAULT_CHUNK_SIZE
}

/// The execution environment a pipeline run borrows from its session:
/// the shared evaluation memo and the persistent worker pool.
#[derive(Clone, Copy)]
pub(crate) struct EvalEnv<'a> {
    /// Per-candidate outcome memo; `None` disables memoization.
    pub cache: Option<&'a EvalCache>,
    /// The persistent evaluation pool work fans out over.
    pub pool: &'a exec::WorkerPool,
}

/// Validates all advisor inputs and derives the bitmap scheme and skew
/// model the pipeline runs with.
pub(crate) fn validate(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
) -> Result<(BitmapScheme, SkewModel), WarlockError> {
    config.validate().map_err(WarlockError::Config)?;
    system.validate().map_err(WarlockError::System)?;
    mix.validate(schema)?;
    if config.fact_index >= schema.facts().len() {
        return Err(WarlockError::Config(format!(
            "fact index {} out of range",
            config.fact_index
        )));
    }
    let skew = match &config.skew {
        None => schema.uniform_skew_model(),
        Some(configs) => {
            if configs.len() != schema.num_dimensions() {
                return Err(WarlockError::Skew(format!(
                    "{} skew configs for {} dimensions",
                    configs.len(),
                    schema.num_dimensions()
                )));
            }
            schema.skew_model(configs)
        }
    };
    let scheme = BitmapScheme::derive(schema, mix, config.scheme);
    Ok((scheme, skew))
}

/// The threshold context derived from the system configuration.
///
/// For fixed prefetch policies the sub-granule exclusion uses the fixed
/// value; for automatic policies it uses a floor of 8 pages — the
/// smallest sequential run for which positioning amortization is
/// meaningful on the modeled disks.
pub(crate) fn threshold_context(
    schema: &StarSchema,
    system: &SystemConfig,
    config: &AdvisorConfig,
) -> ThresholdContext {
    let row_bytes = schema.fact_row_bytes(config.fact_index);
    ThresholdContext {
        rows_per_page: system.page.rows_per_page(row_bytes),
        prefetch_pages: system.fact_prefetch.fixed().unwrap_or(8),
        num_disks: system.num_disks,
    }
}

/// Builds the cost model, mapping the (validated-at-build-time) fact
/// index failure to an internal-invariant error instead of panicking.
fn cost_model<'a>(
    schema: &'a StarSchema,
    system: &'a SystemConfig,
    scheme: &'a BitmapScheme,
    mix: &'a QueryMix,
    config: &AdvisorConfig,
) -> Result<CostModel<'a>, WarlockError> {
    CostModel::new(schema, system, scheme, mix)
        .with_fact_index(config.fact_index)
        .map_err(|e| WarlockError::internal(format!("validated fact index rejected: {e}")))
}

/// The fingerprint of every input that determines a candidate's
/// *pipeline* outcome — an exclusion or the unweighted per-class cost
/// rows — plus the exclusion thresholds. Deliberately built on
/// [`CostModel::structure_fingerprint`] rather than the weighted
/// [`CostModel::fingerprint`]: exclusions and per-class rows are both
/// independent of the mix *weights* (weights enter only at
/// recombination), so a pure re-weight — the resident optimizer's
/// auto re-advise — stays warm and re-costs nothing. Salted
/// differently from [`evaluate_fingerprint`] because a cached pipeline
/// outcome also implies "passed the thresholds", which a bare
/// evaluation does not.
fn run_fingerprint(model: &CostModel<'_>, config: &AdvisorConfig) -> u128 {
    warlock_cost::fingerprint128(&(
        "run",
        model.structure_fingerprint(),
        format!("{:?}", config.thresholds),
    ))
}

/// Fingerprint for threshold-free single-candidate evaluation
/// ([`evaluate`]); deliberately distinct from [`run_fingerprint`].
fn evaluate_fingerprint(model: &CostModel<'_>) -> u128 {
    warlock_cost::fingerprint128(&("evaluate", model.fingerprint()))
}

/// Cheap structural pre-exclusion: decides from the fragment count
/// alone — no layout, no costing — whether a candidate is out. Runs on
/// the submitting thread before any pool work, so enormous candidates
/// (including those whose count does not even fit `u64`) never occupy
/// a worker. The exact `u128` count is reported, never a wrapped one.
fn pre_exclude(
    schema: &StarSchema,
    config: &AdvisorConfig,
    fragmentation: &Fragmentation,
) -> Option<Exclusion> {
    let raw_count = fragmentation.num_fragments(schema);
    if raw_count > u128::from(u64::MAX) {
        return Some(Exclusion::FragmentCountOverflow {
            fragments: raw_count,
        });
    }
    if raw_count > u128::from(config.thresholds.max_fragments) {
        return Some(Exclusion::TooManyFragments {
            fragments: raw_count as u64,
            limit: config.thresholds.max_fragments,
        });
    }
    None
}

/// Largest number of candidates one worker batches per costing call.
/// Bounds the SoA column memory of a group while staying wide enough
/// that the per-class table lookups amortize.
const MAX_GROUP_SIZE: usize = 64;

/// Per-worker reusable evaluation arenas: layout construction buffers,
/// the SoA chunk batch, and the staging map from batch position back to
/// group slot. Acquired once per pool thread via [`exec::with_scratch`],
/// so all three amortize to zero steady-state allocation.
#[derive(Debug, Default)]
struct EvalScratch {
    layout: LayoutScratch,
    batch: ChunkBatch,
    staged: Vec<usize>,
    class_rows: Vec<Vec<ClassCost>>,
}

/// One worker-side result: the weighted outcome the merge loop ranks
/// with, plus (when the run is memoizing) the ready-to-insert
/// weight-free [`CachedOutcome::Classes`] memo entry for the candidate.
struct GroupEval {
    outcome: CachedOutcome,
    memo: Option<CachedOutcome>,
}

/// The worker-side pipeline step for one group of candidates: layout →
/// thresholds per candidate (layouts built into the recycled scratch),
/// then a single batched costing pass over every survivor. Pure in its
/// inputs, so it can run on any worker; returns one outcome per group
/// entry, in group order. Callers must have passed every candidate
/// through [`pre_exclude`] first (the layout would panic on a
/// `u64`-overflowing fragment count otherwise).
#[allow(clippy::too_many_arguments)]
fn evaluate_group(
    schema: &StarSchema,
    config: &AdvisorConfig,
    ctx: ThresholdContext,
    tables: &CostTables,
    backend: KernelBackend,
    chunk: &[Fragmentation],
    group: &[usize],
    gather_classes: bool,
    scratch: &mut EvalScratch,
) -> Vec<Option<GroupEval>> {
    let mut outcomes: Vec<Option<GroupEval>> = Vec::with_capacity(group.len());
    outcomes.resize_with(group.len(), || None);
    scratch.staged.clear();
    for (slot, &i) in group.iter().enumerate() {
        let layout = FragmentLayout::new_in(
            &mut scratch.layout,
            schema,
            chunk[i].clone(),
            config.fact_index,
        );
        match config.thresholds.check(&layout, ctx) {
            Err(reason) => {
                let _ = layout.recycle(&mut scratch.layout);
                outcomes[slot] = Some(GroupEval {
                    outcome: CachedOutcome::Excluded(reason),
                    memo: None,
                });
            }
            Ok(()) => {
                scratch.batch.push(layout, &mut scratch.layout);
                scratch.staged.push(slot);
            }
        }
    }
    // Per-query detail is omitted on the hot path: ranking reads only
    // the aggregates, and the final report re-derives detail for the
    // ranked handful (see `run`). A memoizing run additionally gathers
    // the unweighted per-class rows: the merge loop still ranks the
    // kernel-accumulated weighted cost (bit-identical to before), while
    // the memo stores the rows so a re-weighted run can recombine them
    // without re-costing.
    let costs = if gather_classes {
        evaluate_chunk_rows(
            tables,
            &mut scratch.batch,
            PerQueryDetail::Omit,
            backend,
            &mut scratch.class_rows,
        )
    } else {
        evaluate_chunk_kernel(tables, &mut scratch.batch, PerQueryDetail::Omit, backend)
    };
    for (pos, (slot, cost)) in scratch.staged.drain(..).zip(costs).enumerate() {
        let memo = gather_classes.then(|| CachedOutcome::Classes {
            num_fragments: cost.num_fragments,
            rows: Arc::new(std::mem::take(&mut scratch.class_rows[pos])),
        });
        outcomes[slot] = Some(GroupEval {
            outcome: CachedOutcome::Cost(Arc::new(cost)),
            memo,
        });
    }
    outcomes
}

/// Runs the full prediction pipeline as a streaming pass.
///
/// Candidates are pulled lazily from the enumeration source in chunks
/// of [`AdvisorConfig::chunk_size`]; each chunk is resolved against the
/// memo, structurally pre-excluded, fanned out over the environment's
/// persistent worker pool (up to `config.parallelism` workers, see
/// [`exec`]) and merged **in enumeration order** into the streaming
/// rank accumulator and the bounded exclusion summary — so the report
/// is bit-identical at any worker count and chunk size, and pipeline
/// memory is O(chunk + phase-1 survivors), never O(candidate space).
/// When the environment carries a cache, per-candidate outcomes are
/// memoized under the input fingerprint and re-runs with unchanged
/// inputs skip re-evaluation.
///
/// # Errors
///
/// [`WarlockError::CandidateBudget`] when the exact predicted space
/// exceeds `config.max_candidates` (if set) — before any enumeration
/// or evaluation work is done.
pub(crate) fn run(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    scheme: &BitmapScheme,
    env: EvalEnv<'_>,
) -> Result<AdvisorReport, WarlockError> {
    let mut source =
        CandidateSource::ranged(schema, config.max_dimensionality, &config.range_options);
    let space = source.space_size();
    if config.max_candidates > 0 && space > u128::from(config.max_candidates) {
        return Err(WarlockError::CandidateBudget {
            space,
            budget: config.max_candidates,
        });
    }
    let ctx = threshold_context(schema, system, config);
    let model = cost_model(schema, system, scheme, mix, config)?;
    let fingerprint = env.cache.map(|_| run_fingerprint(&model, config));
    // Probe the memo per candidate only when this fingerprint already
    // holds outcomes. Enumeration never repeats a candidate, so a cold
    // run can never hit its own inserts — skipping the probes saves two
    // map walks per candidate; the skipped lookups are still accounted
    // as misses (`record_misses`) so the observable hit rate is
    // unchanged.
    let probe_cache = match (env.cache, fingerprint) {
        (Some(cache), Some(fp)) => cache.has_entries(fp),
        _ => false,
    };
    let workers = exec::effective_parallelism(config.parallelism);
    // Current mix shares, in mix order — the order the per-class memo
    // rows are gathered in, so a `Classes` hit recombines positionally.
    let shares: Vec<f64> = mix.iter().map(|(_, share)| share).collect();
    // Resolve the costing kernel backend once per run (resolution reads
    // the environment); every backend is bit-identical, so the choice
    // never participates in cache fingerprints.
    let backend = KernelBackend::resolve(config.kernel);
    // Precomputed cost tables for the batched evaluator, built lazily on
    // the first cache-miss candidate — a fully warm run never pays for
    // the build.
    let tables: std::cell::OnceCell<CostTables> = std::cell::OnceCell::new();
    // Clamp to the exact space so an absurd (possibly client-supplied)
    // chunk size cannot pre-allocate beyond what will ever be pulled.
    let chunk_size = effective_chunk_size(config.chunk_size)
        .min(usize::try_from(space).unwrap_or(usize::MAX))
        .max(1);

    let mut rank = StreamingRank::new(config.top_x_percent, config.min_keep);
    let mut excluded = ExcludedSummary::new();
    let mut enumerated = 0usize;
    let mut evaluated = 0usize;
    let mut chunk: Vec<Fragmentation> = Vec::with_capacity(chunk_size);
    let mut outcomes: Vec<Option<CachedOutcome>> = Vec::with_capacity(chunk_size);
    let mut todo: Vec<usize> = Vec::new();
    // Outcomes staged for one `insert_batch` per chunk (one lock
    // acquisition instead of one per candidate).
    let mut pending: Vec<(Fragmentation, CachedOutcome)> = Vec::new();

    loop {
        // Pull the next chunk from the lazy source.
        chunk.clear();
        while chunk.len() < chunk_size {
            match source.next() {
                Some(candidate) => chunk.push(candidate),
                None => break,
            }
        }
        if chunk.is_empty() {
            break;
        }
        enumerated += chunk.len();

        // Resolve each candidate: memo hit, structural pre-exclusion,
        // or fresh work for the pool.
        outcomes.clear();
        outcomes.resize(chunk.len(), None);
        todo.clear();
        if let Some(cache) = env.cache {
            if !probe_cache {
                cache.record_misses(chunk.len() as u64);
            }
        }
        for i in 0..chunk.len() {
            if probe_cache {
                if let (Some(cache), Some(fp)) = (env.cache, fingerprint) {
                    if let Some(outcome) = cache.lookup(fp, &chunk[i]) {
                        outcomes[i] = Some(outcome);
                        continue;
                    }
                }
            }
            match pre_exclude(schema, config, &chunk[i]) {
                Some(reason) => {
                    if fingerprint.is_some() {
                        // The merge loop reads the drained chunk slot
                        // only while the reason's sample list has room,
                        // so past that point the slot can be moved out
                        // as the memo key instead of cloned.
                        let key = if excluded.wants_sample(&reason) {
                            chunk[i].clone()
                        } else {
                            std::mem::replace(&mut chunk[i], Fragmentation::none())
                        };
                        pending.push((key, CachedOutcome::Excluded(reason)));
                    }
                    outcomes[i] = Some(CachedOutcome::Excluded(reason));
                }
                None => todo.push(i),
            }
        }

        // Fan the uncached evaluations out over the pool in contiguous
        // groups (one SoA batch per group, costed through the shared
        // tables); results come back in `todo` order regardless of
        // worker scheduling.
        if !todo.is_empty() {
            let tables = tables.get_or_init(|| CostTables::build(&model, &config.range_options));
            let group_size = todo.len().div_ceil(workers).clamp(1, MAX_GROUP_SIZE);
            let groups: Vec<&[usize]> = todo.chunks(group_size).collect();
            let fresh = env.pool.map(workers, &groups, |group| {
                exec::with_scratch(|scratch: &mut EvalScratch| {
                    evaluate_group(
                        schema,
                        config,
                        ctx,
                        tables,
                        backend,
                        &chunk,
                        group,
                        fingerprint.is_some(),
                        scratch,
                    )
                })
            });
            for (group, group_outcomes) in groups.iter().zip(fresh) {
                for (&i, eval) in group.iter().zip(group_outcomes) {
                    let GroupEval { outcome, memo } = eval.ok_or_else(|| {
                        WarlockError::internal("group evaluation left no outcome")
                    })?;
                    if fingerprint.is_some() {
                        // The merge loop reads the drained chunk slot
                        // only for exclusions still collecting sample
                        // records; a costed candidate carries its
                        // fragmentation in the cost itself. Everywhere
                        // else the slot is moved out as the memo key
                        // instead of cloned.
                        let key = match &outcome {
                            CachedOutcome::Cost(_) | CachedOutcome::Classes { .. } => {
                                std::mem::replace(&mut chunk[i], Fragmentation::none())
                            }
                            CachedOutcome::Excluded(reason) if !excluded.wants_sample(reason) => {
                                std::mem::replace(&mut chunk[i], Fragmentation::none())
                            }
                            CachedOutcome::Excluded(_) => chunk[i].clone(),
                        };
                        // Costed candidates are memoized as their
                        // weight-free class rows; exclusions memoize
                        // as themselves.
                        pending.push((key, memo.unwrap_or_else(|| outcome.clone())));
                    }
                    outcomes[i] = Some(outcome);
                }
            }
        }
        if let (Some(cache), Some(fp)) = (env.cache, fingerprint) {
            if !pending.is_empty() {
                cache.insert_batch(fp, pending.drain(..));
            }
        }

        // Merge in enumeration order. The rank accumulator's horizon is
        // every candidate not yet merged (the rest of this chunk plus
        // whatever the source still holds) — an upper bound on future
        // costs, which keeps the streaming ranking exact.
        let after_chunk = source.remaining();
        let chunk_len = chunk.len();
        for (i, (fragmentation, outcome)) in chunk.drain(..).zip(outcomes.drain(..)).enumerate() {
            let outcome = outcome
                .ok_or_else(|| WarlockError::internal("candidate evaluation left no outcome"))?;
            match outcome {
                CachedOutcome::Excluded(reason) => {
                    excluded.record(reason, || ExcludedCandidate {
                        label: fragmentation.label(schema),
                        fragmentation,
                        reason,
                    });
                }
                CachedOutcome::Cost(cost) => {
                    evaluated += 1;
                    let remaining = after_chunk + (chunk_len - 1 - i) as u128;
                    rank.push_shared(cost, remaining);
                }
                // A memo hit from an earlier run of the same structure:
                // recombine the unweighted rows under the current
                // shares. Bit-identical to a fresh evaluation at this
                // mix (the kernels accumulate exactly
                // `share * row` per class, in the same order).
                CachedOutcome::Classes {
                    num_fragments,
                    rows,
                } => {
                    evaluated += 1;
                    let cost = combine_class_costs(fragmentation, num_fragments, &rows, &shares);
                    let remaining = after_chunk + (chunk_len - 1 - i) as u128;
                    rank.push_shared(Arc::new(cost), remaining);
                }
            }
        }
    }

    let mut ranked_costs = rank.finish();
    ranked_costs.truncate(config.top_n);
    // The hot path costs candidates without per-query detail; re-derive
    // it for the ranked handful through the scalar model, whose
    // aggregates are bit-identical to the batched evaluator's.
    for cost in &mut ranked_costs {
        if cost.per_query.is_empty() {
            *cost = model.evaluate(&cost.fragmentation);
        }
    }
    let ranked = ranked_costs
        .into_iter()
        .enumerate()
        .map(|(i, cost)| RankedCandidate {
            rank: i + 1,
            label: cost.fragmentation.label(schema),
            cost,
        })
        .collect();

    Ok(AdvisorReport {
        ranked,
        excluded,
        evaluated,
        enumerated,
        scheme: scheme.clone(),
    })
}

/// Labels a what-if knob, spelling out clamping instead of hiding it:
/// requesting `0` disks runs with 1 disk, and the label must say so.
fn clamped_label(what: &str, requested: u32, effective: u32, unit: &str) -> String {
    if requested == effective {
        format!("{what} = {requested}{unit}")
    } else {
        format!("{what} = {effective}{unit} (requested {requested}, clamped)")
    }
}

/// What-if variation: `num_disks` disks. Returns the variation label and
/// the re-run report; shared by [`crate::Warlock::what_if_disks`] and
/// [`crate::TuningSession::with_disks`].
pub(crate) fn vary_disks(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    scheme: &BitmapScheme,
    num_disks: u32,
    env: EvalEnv<'_>,
) -> Result<(String, AdvisorReport), WarlockError> {
    let effective = num_disks.max(1);
    let mut system = *system;
    system.num_disks = effective;
    let report = run(schema, &system, mix, config, scheme, env)?;
    Ok((clamped_label("disks", num_disks, effective, ""), report))
}

/// What-if variation: prefetch fixed at `pages` for fact tables and
/// bitmaps alike.
pub(crate) fn vary_fixed_prefetch(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    scheme: &BitmapScheme,
    pages: u32,
    env: EvalEnv<'_>,
) -> Result<(String, AdvisorReport), WarlockError> {
    use warlock_storage::PrefetchPolicy;
    let effective = pages.max(1);
    let mut system = *system;
    system.fact_prefetch = PrefetchPolicy::Fixed(effective);
    system.bitmap_prefetch = PrefetchPolicy::Fixed(effective);
    let report = run(schema, &system, mix, config, scheme, env)?;
    Ok((
        clamped_label("prefetch", pages, effective, " pages"),
        report,
    ))
}

/// What-if variation: the bitmap indexes of `dimension` dropped.
pub(crate) fn vary_without_bitmap_dimension(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    scheme: &BitmapScheme,
    dimension: warlock_schema::DimensionId,
    env: EvalEnv<'_>,
) -> Result<(String, AdvisorReport), WarlockError> {
    let scheme = scheme.without_dimension(dimension);
    let report = run(schema, system, mix, config, &scheme, env)?;
    Ok((format!("no bitmaps on dimension {dimension}"), report))
}

/// What-if variation: query class `name` removed from the workload.
/// The bitmap scheme is derived from the mix, so it is re-derived for
/// the reduced workload (as the original advisor did). Fails with
/// [`WarlockError::UnknownClass`] when the class is unknown or removing
/// it would empty the mix.
pub(crate) fn vary_without_class(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    name: &str,
    env: EvalEnv<'_>,
) -> Result<(String, AdvisorReport), WarlockError> {
    let mix = mix
        .without_class(name)
        .ok_or_else(|| WarlockError::UnknownClass { name: name.into() })?;
    let scheme = BitmapScheme::derive(schema, &mix, config.scheme);
    let report = run(schema, system, &mix, config, &scheme, env)?;
    Ok((format!("without class {name}"), report))
}

/// Guards every single-candidate entry point: the fragmentation must
/// validate against the schema, and its fragment count must fit `u64` —
/// otherwise the layout construction would panic on data-dependent
/// input. Returns the typed [`CandidateError::FragmentOverflow`] with
/// the exact `u128` count instead of wrapping or asserting.
fn check_candidate(schema: &StarSchema, fragmentation: &Fragmentation) -> Result<(), WarlockError> {
    fragmentation.validate(schema)?;
    let raw_count = fragmentation.num_fragments(schema);
    if raw_count > u128::from(u64::MAX) {
        return Err(WarlockError::Candidate(CandidateError::FragmentOverflow {
            fragments: raw_count,
        }));
    }
    Ok(())
}

/// Evaluates a single candidate outside the ranking pipeline, memoizing
/// the cost when a session cache is given. Cached under a different
/// fingerprint than the pipeline because no thresholds are applied
/// here. `fp_memo` lets the session reuse its snapshot-scoped
/// fingerprint (computing one dumps every model input).
#[allow(clippy::too_many_arguments)]
pub(crate) fn evaluate(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    scheme: &BitmapScheme,
    fragmentation: &Fragmentation,
    cache: Option<&EvalCache>,
    fp_memo: Option<&std::sync::OnceLock<u128>>,
) -> Result<CandidateCost, WarlockError> {
    check_candidate(schema, fragmentation)?;
    let model = cost_model(schema, system, scheme, mix, config)?;
    let Some(cache) = cache else {
        return Ok(model.evaluate(fragmentation));
    };
    let fp = match fp_memo {
        Some(memo) => *memo.get_or_init(|| evaluate_fingerprint(&model)),
        None => evaluate_fingerprint(&model),
    };
    if let Some(CachedOutcome::Cost(cost)) = cache.lookup(fp, fragmentation) {
        return Ok(Arc::try_unwrap(cost).unwrap_or_else(|shared| (*shared).clone()));
    }
    let cost = model.evaluate(fragmentation);
    cache.insert(
        fp,
        fragmentation.clone(),
        CachedOutcome::Cost(Arc::new(cost.clone())),
    );
    Ok(cost)
}

/// Produces the detailed Fig.-2-style statistic for one candidate.
pub(crate) fn analyze(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    scheme: &BitmapScheme,
    fragmentation: &Fragmentation,
) -> Result<FragmentationAnalysis, WarlockError> {
    check_candidate(schema, fragmentation)?;
    FragmentationAnalysis::build(
        schema,
        system,
        scheme,
        mix,
        fragmentation,
        config.fact_index,
    )
}

/// Computes the physical allocation plan for one candidate.
#[allow(clippy::too_many_arguments)]
pub(crate) fn plan_allocation(
    schema: &StarSchema,
    system: &SystemConfig,
    mix: &QueryMix,
    config: &AdvisorConfig,
    scheme: &BitmapScheme,
    skew: &SkewModel,
    fragmentation: &Fragmentation,
) -> Result<AllocationPlan, WarlockError> {
    check_candidate(schema, fragmentation)?;
    AllocationPlan::build(
        schema,
        system,
        scheme,
        mix,
        skew,
        fragmentation,
        config.allocation_policy,
        config.fact_index,
    )
}
