//! Serializable (JSON) views of the advisor's reports.
//!
//! Every report the facade produces is renderable as text/CSV (see
//! [`crate::report`]) **and** serializable to JSON, so the advisor can
//! back a machine-readable service. The wire types in this module are
//! plain data: [`SessionReport`] round-trips losslessly through
//! [`warlock_json`] (`to_json` → render → parse → `from_json` compares
//! equal), which the `warlock <cfg> json` CLI command and the
//! integration tests rely on.

use warlock_cost::AccessPath;
use warlock_fragment::Fragmentation;
use warlock_json::{FromJson, Json, JsonError, ToJson};

use crate::advisor::{AdvisorReport, RankedCandidate};
use crate::allocation_plan::AllocationPlan;
use crate::analysis::FragmentationAnalysis;
use crate::error::WarlockError;
use crate::tuning::TuningDelta;

fn path_str(p: AccessPath) -> &'static str {
    match p {
        AccessPath::FullScan => "scan",
        AccessPath::BitmapFetch => "bitmap",
    }
}

fn f64_field(value: &Json, key: &str) -> Result<f64, JsonError> {
    value
        .req(key)?
        .as_f64()
        .ok_or_else(|| JsonError::shape(format!("`{key}` is not a number")))
}

fn u64_field(value: &Json, key: &str) -> Result<u64, JsonError> {
    value
        .req(key)?
        .as_u64()
        .ok_or_else(|| JsonError::shape(format!("`{key}` is not an unsigned integer")))
}

fn u16_field(value: &Json, key: &str) -> Result<u16, JsonError> {
    u16::try_from(u64_field(value, key)?)
        .map_err(|_| JsonError::shape(format!("`{key}` out of range for u16")))
}

fn u32_field(value: &Json, key: &str) -> Result<u32, JsonError> {
    u32::try_from(u64_field(value, key)?)
        .map_err(|_| JsonError::shape(format!("`{key}` out of range for u32")))
}

fn usize_field(value: &Json, key: &str) -> Result<usize, JsonError> {
    value
        .req(key)?
        .as_usize()
        .ok_or_else(|| JsonError::shape(format!("`{key}` is not an unsigned integer")))
}

fn str_field(value: &Json, key: &str) -> Result<String, JsonError> {
    Ok(value
        .req(key)?
        .as_str()
        .ok_or_else(|| JsonError::shape(format!("`{key}` is not a string")))?
        .to_owned())
}

fn array_field<'a>(value: &'a Json, key: &str) -> Result<&'a [Json], JsonError> {
    value
        .req(key)?
        .as_array()
        .ok_or_else(|| JsonError::shape(format!("`{key}` is not an array")))
}

/// One fragmentation attribute on the wire: dimension, level, range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentationAttr {
    /// The fragmented dimension's index.
    pub dimension: u16,
    /// The fragmentation attribute (hierarchy level) within it.
    pub level: u16,
    /// The attribute range size (1 = point fragmentation).
    pub range: u64,
}

impl FragmentationAttr {
    /// The wire form of `fragmentation`.
    pub fn from_fragmentation(fragmentation: &Fragmentation) -> Vec<Self> {
        fragmentation
            .attributes()
            .iter()
            .zip(fragmentation.ranges())
            .map(|(attr, &range)| Self {
                dimension: attr.dimension.0,
                level: attr.level.0,
                range,
            })
            .collect()
    }

    /// Rebuilds the [`Fragmentation`] these attributes describe.
    pub fn to_fragmentation(attrs: &[Self]) -> Result<Fragmentation, WarlockError> {
        let pairs: Vec<(u16, u16, u64)> = attrs
            .iter()
            .map(|a| (a.dimension, a.level, a.range))
            .collect();
        Ok(Fragmentation::from_ranged_pairs(&pairs)?)
    }
}

impl ToJson for FragmentationAttr {
    fn to_json(&self) -> Json {
        Json::object([
            ("dimension", self.dimension.to_json()),
            ("level", self.level.to_json()),
            ("range", self.range.to_json()),
        ])
    }
}

impl FromJson for FragmentationAttr {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            dimension: u16_field(value, "dimension")?,
            level: u16_field(value, "level")?,
            range: u64_field(value, "range")?,
        })
    }
}

/// One ranked candidate on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct RankingRow {
    /// Position in the final ranking (1-based).
    pub rank: usize,
    /// Human-readable label, e.g. `product.class × time.month`.
    pub label: String,
    /// The candidate's fragmentation attributes.
    pub fragmentation: Vec<FragmentationAttr>,
    /// Number of fragments.
    pub num_fragments: u64,
    /// Workload-weighted I/O cost per query (ms).
    pub io_cost_ms: f64,
    /// Workload-weighted response time per query (ms).
    pub response_ms: f64,
    /// Workload-weighted physical I/Os per query.
    pub total_ios: f64,
    /// Workload-weighted pages read per query.
    pub total_pages: f64,
}

impl From<&RankedCandidate> for RankingRow {
    fn from(r: &RankedCandidate) -> Self {
        Self {
            rank: r.rank,
            label: r.label.clone(),
            fragmentation: FragmentationAttr::from_fragmentation(&r.cost.fragmentation),
            num_fragments: r.cost.num_fragments,
            io_cost_ms: r.cost.io_cost_ms,
            response_ms: r.cost.response_ms,
            total_ios: r.cost.total_ios,
            total_pages: r.cost.total_pages,
        }
    }
}

impl ToJson for RankingRow {
    fn to_json(&self) -> Json {
        Json::object([
            ("rank", self.rank.to_json()),
            ("label", self.label.to_json()),
            ("fragmentation", self.fragmentation.to_json()),
            ("num_fragments", self.num_fragments.to_json()),
            ("io_cost_ms", self.io_cost_ms.to_json()),
            ("response_ms", self.response_ms.to_json()),
            ("total_ios", self.total_ios.to_json()),
            ("total_pages", self.total_pages.to_json()),
        ])
    }
}

impl FromJson for RankingRow {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            rank: usize_field(value, "rank")?,
            label: str_field(value, "label")?,
            fragmentation: array_field(value, "fragmentation")?
                .iter()
                .map(FragmentationAttr::from_json)
                .collect::<Result<_, _>>()?,
            num_fragments: u64_field(value, "num_fragments")?,
            io_cost_ms: f64_field(value, "io_cost_ms")?,
            response_ms: f64_field(value, "response_ms")?,
            total_ios: f64_field(value, "total_ios")?,
            total_pages: f64_field(value, "total_pages")?,
        })
    }
}

/// One excluded sample candidate on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExclusionRow {
    /// Human-readable candidate label.
    pub label: String,
    /// Why it was excluded (rendered reason).
    pub reason: String,
}

impl ToJson for ExclusionRow {
    fn to_json(&self) -> Json {
        Json::object([
            ("label", self.label.to_json()),
            ("reason", self.reason.to_json()),
        ])
    }
}

impl FromJson for ExclusionRow {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            label: str_field(value, "label")?,
            reason: str_field(value, "reason")?,
        })
    }
}

/// One exclusion-reason group on the wire: the machine-readable reason
/// tag, the exact count, and the capped sample candidates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExclusionGroupRow {
    /// Machine-readable reason tag (`Exclusion::kind`).
    pub kind: String,
    /// Exact number of candidates excluded for this reason.
    pub count: usize,
    /// The first few excluded candidates, in enumeration order.
    pub samples: Vec<ExclusionRow>,
}

impl ToJson for ExclusionGroupRow {
    fn to_json(&self) -> Json {
        Json::object([
            ("kind", self.kind.to_json()),
            ("count", self.count.to_json()),
            ("samples", self.samples.to_json()),
        ])
    }
}

impl FromJson for ExclusionGroupRow {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            kind: str_field(value, "kind")?,
            count: usize_field(value, "count")?,
            samples: array_field(value, "samples")?
                .iter()
                .map(ExclusionRow::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// The bounded exclusion summary on the wire: exact total, per-reason
/// groups with capped samples.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExcludedSummaryRow {
    /// Exact number of excluded candidates.
    pub total: usize,
    /// Per-reason groups in first-seen enumeration order.
    pub groups: Vec<ExclusionGroupRow>,
}

impl From<&crate::advisor::ExcludedSummary> for ExcludedSummaryRow {
    fn from(summary: &crate::advisor::ExcludedSummary) -> Self {
        Self {
            total: summary.total(),
            groups: summary
                .groups()
                .iter()
                .map(|g| ExclusionGroupRow {
                    kind: g.kind.to_owned(),
                    count: g.count,
                    samples: g
                        .samples
                        .iter()
                        .map(|e| ExclusionRow {
                            label: e.label.clone(),
                            reason: e.reason.to_string(),
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

impl ToJson for ExcludedSummaryRow {
    fn to_json(&self) -> Json {
        Json::object([
            ("total", self.total.to_json()),
            ("groups", self.groups.to_json()),
        ])
    }
}

impl FromJson for ExcludedSummaryRow {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            total: usize_field(value, "total")?,
            groups: array_field(value, "groups")?
                .iter()
                .map(ExclusionGroupRow::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl ToJson for AdvisorReport {
    /// The ranking view: counters plus ranked and excluded candidates.
    fn to_json(&self) -> Json {
        Json::object([
            ("enumerated", self.enumerated.to_json()),
            ("evaluated", self.evaluated.to_json()),
            (
                "ranking",
                self.ranked
                    .iter()
                    .map(|r| RankingRow::from(r).to_json())
                    .collect::<Vec<_>>()
                    .to_json(),
            ),
            (
                "excluded",
                ExcludedSummaryRow::from(&self.excluded).to_json(),
            ),
        ])
    }
}

/// One per-class analysis line on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassRow {
    /// Query class name.
    pub name: String,
    /// Share of the mix (0..1).
    pub share: f64,
    /// Expected fragments accessed.
    pub accessed_fragments: f64,
    /// Expected fact pages read.
    pub fact_pages: f64,
    /// Expected bitmap pages read.
    pub bitmap_pages: f64,
    /// Expected physical I/Os.
    pub ios: f64,
    /// Device busy time (ms).
    pub busy_ms: f64,
    /// Response time (ms).
    pub response_ms: f64,
    /// Chosen access path (`"scan"` or `"bitmap"`).
    pub path: String,
}

impl ToJson for ClassRow {
    fn to_json(&self) -> Json {
        Json::object([
            ("name", self.name.to_json()),
            ("share", self.share.to_json()),
            ("accessed_fragments", self.accessed_fragments.to_json()),
            ("fact_pages", self.fact_pages.to_json()),
            ("bitmap_pages", self.bitmap_pages.to_json()),
            ("ios", self.ios.to_json()),
            ("busy_ms", self.busy_ms.to_json()),
            ("response_ms", self.response_ms.to_json()),
            ("path", self.path.to_json()),
        ])
    }
}

impl FromJson for ClassRow {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            name: str_field(value, "name")?,
            share: f64_field(value, "share")?,
            accessed_fragments: f64_field(value, "accessed_fragments")?,
            fact_pages: f64_field(value, "fact_pages")?,
            bitmap_pages: f64_field(value, "bitmap_pages")?,
            ios: f64_field(value, "ios")?,
            busy_ms: f64_field(value, "busy_ms")?,
            response_ms: f64_field(value, "response_ms")?,
            path: str_field(value, "path")?,
        })
    }
}

/// The Fig.-2-style per-fragmentation statistic on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// Candidate label.
    pub label: String,
    /// Number of fragments.
    pub num_fragments: u64,
    /// Rows per fragment.
    pub fragment_rows: u64,
    /// Pages per fragment.
    pub fragment_pages: u64,
    /// Total fact pages.
    pub total_fact_pages: u64,
    /// Stored bitmap pages.
    pub bitmap_stored_pages: u64,
    /// Suggested fact prefetch granule (pages).
    pub fact_prefetch: u32,
    /// Suggested bitmap prefetch granule (pages).
    pub bitmap_prefetch: u32,
    /// Workload-weighted busy time (ms).
    pub weighted_busy_ms: f64,
    /// Workload-weighted response time (ms).
    pub weighted_response_ms: f64,
    /// Per-class details, in mix order.
    pub per_class: Vec<ClassRow>,
}

impl From<&FragmentationAnalysis> for AnalysisReport {
    fn from(a: &FragmentationAnalysis) -> Self {
        Self {
            label: a.label.clone(),
            num_fragments: a.num_fragments,
            fragment_rows: a.fragment_rows,
            fragment_pages: a.fragment_pages,
            total_fact_pages: a.total_fact_pages,
            bitmap_stored_pages: a.bitmap_stored_pages,
            fact_prefetch: a.fact_prefetch,
            bitmap_prefetch: a.bitmap_prefetch,
            weighted_busy_ms: a.weighted_busy_ms,
            weighted_response_ms: a.weighted_response_ms,
            per_class: a
                .per_class
                .iter()
                .map(|c| ClassRow {
                    name: c.name.clone(),
                    share: c.share,
                    accessed_fragments: c.accessed_fragments,
                    fact_pages: c.fact_pages,
                    bitmap_pages: c.bitmap_pages,
                    ios: c.ios,
                    busy_ms: c.busy_ms,
                    response_ms: c.response_ms,
                    path: path_str(c.path).to_owned(),
                })
                .collect(),
        }
    }
}

impl ToJson for AnalysisReport {
    fn to_json(&self) -> Json {
        Json::object([
            ("label", self.label.to_json()),
            ("num_fragments", self.num_fragments.to_json()),
            ("fragment_rows", self.fragment_rows.to_json()),
            ("fragment_pages", self.fragment_pages.to_json()),
            ("total_fact_pages", self.total_fact_pages.to_json()),
            ("bitmap_stored_pages", self.bitmap_stored_pages.to_json()),
            ("fact_prefetch", self.fact_prefetch.to_json()),
            ("bitmap_prefetch", self.bitmap_prefetch.to_json()),
            ("weighted_busy_ms", self.weighted_busy_ms.to_json()),
            ("weighted_response_ms", self.weighted_response_ms.to_json()),
            ("per_class", self.per_class.to_json()),
        ])
    }
}

impl FromJson for AnalysisReport {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            label: str_field(value, "label")?,
            num_fragments: u64_field(value, "num_fragments")?,
            fragment_rows: u64_field(value, "fragment_rows")?,
            fragment_pages: u64_field(value, "fragment_pages")?,
            total_fact_pages: u64_field(value, "total_fact_pages")?,
            bitmap_stored_pages: u64_field(value, "bitmap_stored_pages")?,
            fact_prefetch: u32_field(value, "fact_prefetch")?,
            bitmap_prefetch: u32_field(value, "bitmap_prefetch")?,
            weighted_busy_ms: f64_field(value, "weighted_busy_ms")?,
            weighted_response_ms: f64_field(value, "weighted_response_ms")?,
            per_class: array_field(value, "per_class")?
                .iter()
                .map(ClassRow::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl ToJson for FragmentationAnalysis {
    fn to_json(&self) -> Json {
        AnalysisReport::from(self).to_json()
    }
}

/// One disk's occupancy on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskRow {
    /// Bytes resident on the disk.
    pub bytes: u64,
    /// Fragments resident on the disk.
    pub fragments: u32,
}

impl ToJson for DiskRow {
    fn to_json(&self) -> Json {
        Json::object([
            ("bytes", self.bytes.to_json()),
            ("fragments", self.fragments.to_json()),
        ])
    }
}

impl FromJson for DiskRow {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            bytes: u64_field(value, "bytes")?,
            fragments: u32_field(value, "fragments")?,
        })
    }
}

/// One class's disk access profile on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassProfileRow {
    /// Query class name.
    pub name: String,
    /// Number of distinct disks hit.
    pub disks_hit: u32,
    /// Busy time of the hottest disk (ms).
    pub max_ms: f64,
    /// Response time (ms).
    pub response_ms: f64,
}

impl ToJson for ClassProfileRow {
    fn to_json(&self) -> Json {
        Json::object([
            ("name", self.name.to_json()),
            ("disks_hit", self.disks_hit.to_json()),
            ("max_ms", self.max_ms.to_json()),
            ("response_ms", self.response_ms.to_json()),
        ])
    }
}

impl FromJson for ClassProfileRow {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            name: str_field(value, "name")?,
            disks_hit: u32_field(value, "disks_hit")?,
            max_ms: f64_field(value, "max_ms")?,
            response_ms: f64_field(value, "response_ms")?,
        })
    }
}

/// The physical allocation plan on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationReport {
    /// Candidate label.
    pub label: String,
    /// Allocation scheme (`"greedy-by-size"` or `"round-robin"`).
    pub scheme: String,
    /// Total fact bytes placed.
    pub fact_bytes: u64,
    /// Total bitmap bytes placed.
    pub bitmap_bytes: u64,
    /// `max / mean` occupancy — 1.0 is perfectly balanced.
    pub imbalance: f64,
    /// Coefficient of variation of per-disk bytes.
    pub cv: f64,
    /// Per-disk occupancy, disk 0 first.
    pub disks: Vec<DiskRow>,
    /// Representative per-class disk access profiles.
    pub per_class: Vec<ClassProfileRow>,
}

impl From<&AllocationPlan> for AllocationReport {
    fn from(plan: &AllocationPlan) -> Self {
        let occupancy = plan.allocation.occupancy();
        let counts = plan.allocation.fragment_counts();
        Self {
            label: plan.label.clone(),
            scheme: crate::policy_judge::scheme_name(plan.allocation.scheme()).to_owned(),
            fact_bytes: plan.fact_bytes,
            bitmap_bytes: plan.bitmap_bytes,
            imbalance: plan.occupancy.imbalance,
            cv: plan.occupancy.cv,
            disks: occupancy
                .into_iter()
                .zip(counts)
                .map(|(bytes, fragments)| DiskRow { bytes, fragments })
                .collect(),
            per_class: plan
                .per_class
                .iter()
                .map(|c| ClassProfileRow {
                    name: c.name.clone(),
                    disks_hit: c.profile.disks_hit(),
                    max_ms: c.profile.max_ms(),
                    response_ms: c.response_ms,
                })
                .collect(),
        }
    }
}

impl ToJson for AllocationReport {
    fn to_json(&self) -> Json {
        Json::object([
            ("label", self.label.to_json()),
            ("scheme", self.scheme.to_json()),
            ("fact_bytes", self.fact_bytes.to_json()),
            ("bitmap_bytes", self.bitmap_bytes.to_json()),
            ("imbalance", self.imbalance.to_json()),
            ("cv", self.cv.to_json()),
            ("disks", self.disks.to_json()),
            ("per_class", self.per_class.to_json()),
        ])
    }
}

impl FromJson for AllocationReport {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            label: str_field(value, "label")?,
            scheme: str_field(value, "scheme")?,
            fact_bytes: u64_field(value, "fact_bytes")?,
            bitmap_bytes: u64_field(value, "bitmap_bytes")?,
            imbalance: f64_field(value, "imbalance")?,
            cv: f64_field(value, "cv")?,
            disks: array_field(value, "disks")?
                .iter()
                .map(DiskRow::from_json)
                .collect::<Result<_, _>>()?,
            per_class: array_field(value, "per_class")?
                .iter()
                .map(ClassProfileRow::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl ToJson for AllocationPlan {
    fn to_json(&self) -> Json {
        AllocationReport::from(self).to_json()
    }
}

impl ToJson for TuningDelta {
    fn to_json(&self) -> Json {
        Json::object([
            ("variation", self.variation.to_json()),
            ("baseline_top", self.baseline_top.to_json()),
            ("variation_top", self.variation_top.to_json()),
            ("baseline_response_ms", self.baseline_response_ms.to_json()),
            (
                "variation_response_ms",
                self.variation_response_ms.to_json(),
            ),
            (
                "recommendation_changed",
                self.recommendation_changed.to_json(),
            ),
        ])
    }
}

/// Serializes a `u128` counter: an exact `Int` when it fits `i64`,
/// otherwise an approximate `Num` (astronomical candidate spaces lose
/// precision on the wire but never wrap). Shared by the service layer.
pub(crate) fn u128_json(value: u128) -> Json {
    match i64::try_from(value) {
        Ok(exact) => Json::Int(exact),
        Err(_) => Json::Num(value as f64),
    }
}

impl ToJson for crate::cache::EvalCacheStats {
    fn to_json(&self) -> Json {
        Json::object([
            ("entries", self.entries.to_json()),
            ("hits", self.hits.to_json()),
            ("misses", self.misses.to_json()),
        ])
    }
}

impl FromJson for crate::cache::EvalCacheStats {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            entries: usize_field(value, "entries")?,
            hits: u64_field(value, "hits")?,
            misses: u64_field(value, "misses")?,
        })
    }
}

impl ToJson for crate::registry::WarehouseStats {
    fn to_json(&self) -> Json {
        Json::object([
            ("name", self.name.to_json()),
            (
                "path",
                match &self.path {
                    Some(p) => p.to_json(),
                    None => Json::Null,
                },
            ),
            ("space_size", u128_json(self.space_size)),
            (
                "enumerated",
                match self.enumerated {
                    Some(n) => n.to_json(),
                    None => Json::Null,
                },
            ),
            ("cache_stats", self.cache.to_json()),
        ])
    }
}

impl FromJson for crate::registry::WarehouseStats {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let space = value.req("space_size")?;
        let space_size = match space.as_u64() {
            Some(exact) => u128::from(exact),
            // Astronomical spaces arrive as an approximate float.
            None => space
                .as_f64()
                .filter(|n| *n >= 0.0)
                .map(|n| n as u128)
                .ok_or_else(|| JsonError::shape("`space_size` is not a non-negative number"))?,
        };
        Ok(Self {
            name: str_field(value, "name")?,
            path: match value.req("path")? {
                Json::Null => None,
                p => Some(
                    p.as_str()
                        .ok_or_else(|| JsonError::shape("`path` is not a string"))?
                        .to_owned(),
                ),
            },
            space_size,
            enumerated: match value.req("enumerated")? {
                Json::Null => None,
                n => {
                    Some(n.as_u64().ok_or_else(|| {
                        JsonError::shape("`enumerated` is not an unsigned integer")
                    })?)
                }
            },
            cache: crate::cache::EvalCacheStats::from_json(value.req("cache_stats")?)?,
        })
    }
}

/// One judged allocation policy (wire row of
/// [`crate::policy_judge::PolicyVerdict`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyVerdictRow {
    /// Policy name (`round_robin` | `greedy` | `graph`).
    pub policy: String,
    /// Scheme the policy actually produced.
    pub scheme: String,
    /// Simulated replay makespan (the ranking key).
    pub makespan_ms: f64,
    /// Max/mean simulated disk busy time.
    pub busy_imbalance: f64,
    /// Max/mean mix-weighted access heat per disk.
    pub heat_imbalance: f64,
    /// Max/mean byte occupancy per disk.
    pub occupancy_imbalance: f64,
    /// Mean simulated query response time.
    pub mean_response_ms: f64,
}

impl From<&crate::policy_judge::PolicyVerdict> for PolicyVerdictRow {
    fn from(v: &crate::policy_judge::PolicyVerdict) -> Self {
        Self {
            policy: v.policy.clone(),
            scheme: v.scheme.clone(),
            makespan_ms: v.makespan_ms,
            busy_imbalance: v.busy_imbalance,
            heat_imbalance: v.heat_imbalance,
            occupancy_imbalance: v.occupancy_imbalance,
            mean_response_ms: v.mean_response_ms,
        }
    }
}

impl ToJson for PolicyVerdictRow {
    fn to_json(&self) -> Json {
        Json::object([
            ("policy", self.policy.to_json()),
            ("scheme", self.scheme.to_json()),
            ("makespan_ms", self.makespan_ms.to_json()),
            ("busy_imbalance", self.busy_imbalance.to_json()),
            ("heat_imbalance", self.heat_imbalance.to_json()),
            ("occupancy_imbalance", self.occupancy_imbalance.to_json()),
            ("mean_response_ms", self.mean_response_ms.to_json()),
        ])
    }
}

impl FromJson for PolicyVerdictRow {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            policy: str_field(value, "policy")?,
            scheme: str_field(value, "scheme")?,
            makespan_ms: f64_field(value, "makespan_ms")?,
            busy_imbalance: f64_field(value, "busy_imbalance")?,
            heat_imbalance: f64_field(value, "heat_imbalance")?,
            occupancy_imbalance: f64_field(value, "occupancy_imbalance")?,
            mean_response_ms: f64_field(value, "mean_response_ms")?,
        })
    }
}

/// The advisor's per-workload allocation-policy recommendation (wire
/// form of [`crate::policy_judge::PolicyRecommendation`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRecommendationRow {
    /// Judged candidate label.
    pub label: String,
    /// The winning policy.
    pub recommended: String,
    /// All verdicts, best first.
    pub verdicts: Vec<PolicyVerdictRow>,
}

impl From<&crate::policy_judge::PolicyRecommendation> for PolicyRecommendationRow {
    fn from(rec: &crate::policy_judge::PolicyRecommendation) -> Self {
        Self {
            label: rec.label.clone(),
            recommended: rec.recommended.clone(),
            verdicts: rec.verdicts.iter().map(PolicyVerdictRow::from).collect(),
        }
    }
}

impl ToJson for PolicyRecommendationRow {
    fn to_json(&self) -> Json {
        Json::object([
            ("label", self.label.to_json()),
            ("recommended", self.recommended.to_json()),
            ("verdicts", self.verdicts.to_json()),
        ])
    }
}

impl FromJson for PolicyRecommendationRow {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            label: str_field(value, "label")?,
            recommended: str_field(value, "recommended")?,
            verdicts: array_field(value, "verdicts")?
                .iter()
                .map(PolicyVerdictRow::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl ToJson for crate::policy_judge::PolicyRecommendation {
    fn to_json(&self) -> Json {
        PolicyRecommendationRow::from(self).to_json()
    }
}

/// Serializes one observed-class record ([`crate::ClassObservation`]
/// is foreign to this crate, so these are free functions rather than
/// trait impls).
pub fn observation_to_json(obs: &crate::workload::ClassObservation) -> Json {
    Json::object([
        ("class", obs.class.to_json()),
        ("count", obs.count.to_json()),
        (
            "mean_latency_ms",
            match obs.mean_latency_ms {
                Some(ms) => ms.to_json(),
                None => Json::Null,
            },
        ),
    ])
}

/// Parses one observed-class record. `mean_latency_ms` is optional on
/// the wire: absent and null both mean "not measured".
pub fn observation_from_json(value: &Json) -> Result<crate::workload::ClassObservation, JsonError> {
    let latency = match value.get("mean_latency_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_f64()
                .ok_or_else(|| JsonError::shape("`mean_latency_ms` is not a number"))?,
        ),
    };
    let obs = crate::workload::ClassObservation::new(
        str_field(value, "class")?,
        u64_field(value, "count")?,
    );
    Ok(match latency {
        Some(ms) => obs.with_latency_ms(ms),
        None => obs,
    })
}

fn drift_state_str(state: crate::DriftState) -> &'static str {
    match state {
        crate::DriftState::Stable => "stable",
        crate::DriftState::Drifting => "drifting",
    }
}

impl ToJson for crate::optimizer::DriftStatus {
    fn to_json(&self) -> Json {
        Json::object([
            ("state", drift_state_str(self.state).to_json()),
            ("score", self.score.to_json()),
            ("drift_enter", self.drift_enter.to_json()),
            ("drift_exit", self.drift_exit.to_json()),
            ("observed_queries", self.observed_queries.to_json()),
            ("tracked_classes", self.tracked_classes.to_json()),
            ("auto_advise", self.auto_advise.to_json()),
            ("events_emitted", self.events_emitted.to_json()),
        ])
    }
}

impl FromJson for crate::optimizer::DriftStatus {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let state = match str_field(value, "state")?.as_str() {
            "stable" => crate::DriftState::Stable,
            "drifting" => crate::DriftState::Drifting,
            other => {
                return Err(JsonError::shape(format!(
                    "`state` must be `stable` or `drifting`, got `{other}`"
                )))
            }
        };
        let auto_advise = value
            .req("auto_advise")?
            .as_bool()
            .ok_or_else(|| JsonError::shape("`auto_advise` is not a boolean"))?;
        Ok(Self {
            state,
            score: f64_field(value, "score")?,
            drift_enter: f64_field(value, "drift_enter")?,
            drift_exit: f64_field(value, "drift_exit")?,
            observed_queries: u64_field(value, "observed_queries")?,
            tracked_classes: usize_field(value, "tracked_classes")?,
            auto_advise,
            events_emitted: u64_field(value, "events_emitted")?,
        })
    }
}

impl ToJson for crate::optimizer::AdviceEvent {
    fn to_json(&self) -> Json {
        match self {
            crate::optimizer::AdviceEvent::RecommendationChanged {
                seq,
                old,
                new,
                drift_score,
                observed_queries,
            } => Json::object([
                ("event", "recommendation_changed".to_json()),
                ("seq", seq.to_json()),
                (
                    "old",
                    match old {
                        Some(label) => label.to_json(),
                        None => Json::Null,
                    },
                ),
                ("new", new.to_json()),
                ("drift_score", drift_score.to_json()),
                ("observed_queries", observed_queries.to_json()),
            ]),
        }
    }
}

impl FromJson for crate::optimizer::AdviceEvent {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match str_field(value, "event")?.as_str() {
            "recommendation_changed" => Ok(Self::RecommendationChanged {
                seq: u64_field(value, "seq")?,
                old: match value.req("old")? {
                    Json::Null => None,
                    label => Some(
                        label
                            .as_str()
                            .ok_or_else(|| JsonError::shape("`old` is not a string"))?
                            .to_owned(),
                    ),
                },
                new: str_field(value, "new")?,
                drift_score: f64_field(value, "drift_score")?,
                observed_queries: u64_field(value, "observed_queries")?,
            }),
            other => Err(JsonError::shape(format!("unknown advice event `{other}`"))),
        }
    }
}

/// The complete machine-readable advisory: ranking plus the detailed
/// analysis and allocation plan of the winner. This is what
/// `warlock <cfg> json` emits.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Candidates enumerated in total.
    pub enumerated: usize,
    /// Candidates that were fully costed.
    pub evaluated: usize,
    /// Ranked candidates, best first.
    pub ranking: Vec<RankingRow>,
    /// Bounded summary of the threshold-excluded candidates: exact
    /// per-reason counts plus capped samples with rendered reasons.
    pub excluded: ExcludedSummaryRow,
    /// Detailed statistic of the top candidate (absent when nothing
    /// survived the thresholds).
    pub analysis: Option<AnalysisReport>,
    /// Allocation plan of the top candidate.
    pub allocation: Option<AllocationReport>,
    /// Head-to-head judged allocation-policy recommendation for the
    /// top candidate. Absent when nothing survived the thresholds;
    /// also absent in documents written before the judge existed
    /// (parsing tolerates the missing key).
    pub recommendation: Option<PolicyRecommendationRow>,
}

impl SessionReport {
    /// Assembles the wire report from the pipeline outputs.
    pub fn new(
        report: &AdvisorReport,
        analysis: Option<&FragmentationAnalysis>,
        allocation: Option<&AllocationPlan>,
        recommendation: Option<&crate::policy_judge::PolicyRecommendation>,
    ) -> Self {
        Self {
            enumerated: report.enumerated,
            evaluated: report.evaluated,
            ranking: report.ranked.iter().map(RankingRow::from).collect(),
            excluded: ExcludedSummaryRow::from(&report.excluded),
            analysis: analysis.map(AnalysisReport::from),
            allocation: allocation.map(AllocationReport::from),
            recommendation: recommendation.map(PolicyRecommendationRow::from),
        }
    }

    /// Parses a report from its JSON text.
    pub fn from_json_str(input: &str) -> Result<Self, WarlockError> {
        Ok(Self::from_json(&warlock_json::parse(input)?)?)
    }
}

impl ToJson for SessionReport {
    fn to_json(&self) -> Json {
        Json::object([
            ("enumerated", self.enumerated.to_json()),
            ("evaluated", self.evaluated.to_json()),
            ("ranking", self.ranking.to_json()),
            ("excluded", self.excluded.to_json()),
            ("analysis", self.analysis.to_json()),
            ("allocation", self.allocation.to_json()),
            ("recommendation", self.recommendation.to_json()),
        ])
    }
}

impl FromJson for SessionReport {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let optional = |key: &str| -> Result<Option<&Json>, JsonError> {
            match value.req(key)? {
                Json::Null => Ok(None),
                v => Ok(Some(v)),
            }
        };
        // Unlike `optional`, a *missing* key is fine here: documents
        // written before the policy judge existed have no
        // `recommendation` at all and must keep parsing.
        let compat = |key: &str| -> Option<&Json> {
            match value.get(key) {
                None | Some(Json::Null) => None,
                Some(v) => Some(v),
            }
        };
        Ok(Self {
            enumerated: usize_field(value, "enumerated")?,
            evaluated: usize_field(value, "evaluated")?,
            ranking: array_field(value, "ranking")?
                .iter()
                .map(RankingRow::from_json)
                .collect::<Result<_, _>>()?,
            excluded: ExcludedSummaryRow::from_json(value.req("excluded")?)?,
            analysis: optional("analysis")?
                .map(AnalysisReport::from_json)
                .transpose()?,
            allocation: optional("allocation")?
                .map(AllocationReport::from_json)
                .transpose()?,
            recommendation: compat("recommendation")
                .map(PolicyRecommendationRow::from_json)
                .transpose()?,
        })
    }
}

impl crate::Warlock {
    /// The complete machine-readable advisory for the current inputs:
    /// the ranking plus the top candidate's analysis, allocation plan
    /// and judged allocation-policy recommendation. Ranks first if
    /// necessary.
    pub fn session_report(&self) -> Result<SessionReport, WarlockError> {
        let top = self.rank()?.top().map(|r| r.cost.fragmentation.clone());
        let analysis = top
            .as_ref()
            .map(|f| self.analyze_candidate(f))
            .transpose()?;
        let allocation = top.as_ref().map(|f| self.plan_candidate(f)).transpose()?;
        let recommendation = top
            .as_ref()
            .map(|f| self.recommend_policy_for(f))
            .transpose()?;
        Ok(SessionReport::new(
            self.rank()?,
            analysis.as_ref(),
            allocation.as_ref(),
            recommendation.as_ref(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Warlock;
    use warlock_schema::{apb1_like_schema, Apb1Config};
    use warlock_storage::SystemConfig;
    use warlock_workload::apb1_like_mix;

    fn session() -> Warlock {
        Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .mix(apb1_like_mix().unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn session_report_round_trips_through_json() {
        let report = session().session_report().unwrap();
        assert!(!report.ranking.is_empty());
        assert!(report.analysis.is_some());
        assert!(report.allocation.is_some());

        let text = report.to_json().pretty();
        let back = SessionReport::from_json_str(&text).unwrap();
        assert_eq!(back, report);

        // Compact form round-trips too.
        let compact = report.to_json().render();
        assert_eq!(SessionReport::from_json_str(&compact).unwrap(), report);
    }

    #[test]
    fn session_report_carries_the_policy_recommendation() {
        let report = session().session_report().unwrap();
        let rec = report.recommendation.as_ref().expect("recommendation");
        assert_eq!(rec.verdicts.len(), 3);
        assert_eq!(rec.recommended, rec.verdicts[0].policy);
        assert!(rec.verdicts.iter().all(|v| v.makespan_ms > 0.0));
        // …and it round-trips inside the report.
        let back = SessionReport::from_json_str(&report.to_json().render()).unwrap();
        assert_eq!(back.recommendation, report.recommendation);
    }

    #[test]
    fn pre_judge_session_documents_still_parse() {
        // A document written before the policy judge existed has no
        // `recommendation` key at all; parsing must tolerate that.
        let report = session().session_report().unwrap();
        let json = report.to_json();
        let Json::Obj(pairs) = &json else {
            panic!("session report is an object")
        };
        let stripped = Json::Obj(
            pairs
                .iter()
                .filter(|(k, _)| k != "recommendation")
                .cloned()
                .collect(),
        );
        let back = SessionReport::from_json_str(&stripped.render()).unwrap();
        assert_eq!(back.recommendation, None);
        assert_eq!(back.ranking, report.ranking);
    }

    #[test]
    fn fragmentation_attrs_rebuild_the_candidate() {
        let s = session();
        let top = s.rank().unwrap().top().unwrap().cost.fragmentation.clone();
        let attrs = FragmentationAttr::from_fragmentation(&top);
        let rebuilt = FragmentationAttr::to_fragmentation(&attrs).unwrap();
        assert_eq!(rebuilt, top);
    }

    #[test]
    fn advisor_report_serializes_rankings() {
        let s = session();
        let json = s.rank().unwrap().to_json();
        let ranking = json.get("ranking").unwrap().as_array().unwrap();
        assert_eq!(ranking.len(), s.rank().unwrap().ranked.len());
        assert_eq!(
            json.get("enumerated").unwrap().as_usize().unwrap(),
            s.rank().unwrap().enumerated
        );
        // The exclusion summary carries exact counts and sampled
        // candidates with rendered reasons.
        let excluded = json.get("excluded").unwrap();
        let total = excluded.get("total").unwrap().as_usize().unwrap();
        assert!(total > 0);
        let groups = excluded.get("groups").unwrap().as_array().unwrap();
        assert!(!groups.is_empty());
        let counted: usize = groups
            .iter()
            .map(|g| g.get("count").unwrap().as_usize().unwrap())
            .sum();
        assert_eq!(counted, total);
        let samples = groups[0].get("samples").unwrap().as_array().unwrap();
        assert!(!samples.is_empty());
        assert!(samples[0].get("reason").unwrap().as_str().is_some());
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(SessionReport::from_json_str("{}").is_err());
        assert!(SessionReport::from_json_str("not json").is_err());
        let wrong_type = r#"{"enumerated":"x","evaluated":0,"ranking":[],"excluded":[],"analysis":null,"allocation":null}"#;
        assert!(SessionReport::from_json_str(wrong_type).is_err());
    }

    #[test]
    fn warehouse_stats_round_trip_through_json() {
        let stats = crate::registry::WarehouseStats {
            name: "eu".into(),
            path: Some("/etc/warlock/eu.cfg".into()),
            space_size: 168,
            enumerated: Some(168),
            cache: crate::cache::EvalCacheStats {
                entries: 65,
                hits: 10,
                misses: 65,
            },
        };
        let back = crate::registry::WarehouseStats::from_json(
            &warlock_json::parse(&stats.to_json().render()).unwrap(),
        )
        .unwrap();
        assert_eq!(back, stats);

        // Cold, pathless warehouses serialize nulls and round-trip too.
        let cold = crate::registry::WarehouseStats {
            name: "adhoc".into(),
            path: None,
            space_size: u128::MAX,
            enumerated: None,
            cache: Default::default(),
        };
        let json = cold.to_json();
        assert!(json.get("path").unwrap().is_null());
        assert!(json.get("enumerated").unwrap().is_null());
        let back = crate::registry::WarehouseStats::from_json(
            &warlock_json::parse(&json.render()).unwrap(),
        )
        .unwrap();
        assert_eq!(back.name, cold.name);
        assert_eq!(back.enumerated, None);
        // Astronomical spaces survive approximately, never wrap.
        assert!(back.space_size > u128::MAX / 2);
    }

    #[test]
    fn drift_wire_types_round_trip_through_json() {
        use crate::optimizer::{AdviceEvent, DriftStatus};
        use crate::workload::ClassObservation;
        use crate::DriftState;

        let obs = ClassObservation::new("q03_quarter_group", 120).with_latency_ms(8.5);
        let back = observation_from_json(
            &warlock_json::parse(&observation_to_json(&obs).render()).unwrap(),
        )
        .unwrap();
        assert_eq!(back, obs);
        // Latency is optional on the wire: both null and absent parse.
        let bare = ClassObservation::new("q01", 7);
        let json = observation_to_json(&bare);
        assert!(json.get("mean_latency_ms").unwrap().is_null());
        let back = observation_from_json(&warlock_json::parse(&json.render()).unwrap()).unwrap();
        assert_eq!(back, bare);
        let absent = warlock_json::parse(r#"{"class":"q01","count":7}"#).unwrap();
        assert_eq!(observation_from_json(&absent).unwrap(), bare);

        let status = DriftStatus {
            state: DriftState::Drifting,
            score: 0.31,
            drift_enter: 0.25,
            drift_exit: 0.10,
            observed_queries: 4200,
            tracked_classes: 10,
            auto_advise: true,
            events_emitted: 2,
        };
        let back =
            DriftStatus::from_json(&warlock_json::parse(&status.to_json().render()).unwrap())
                .unwrap();
        assert_eq!(back, status);

        let event = AdviceEvent::RecommendationChanged {
            seq: 2,
            old: Some("product.class × time.month".into()),
            new: "time.month".into(),
            drift_score: 0.31,
            observed_queries: 4200,
        };
        let back = AdviceEvent::from_json(&warlock_json::parse(&event.to_json().render()).unwrap())
            .unwrap();
        assert_eq!(back, event);
        // A first-ever event has no previous recommendation.
        let first = AdviceEvent::RecommendationChanged {
            seq: 1,
            old: None,
            new: "time.month".into(),
            drift_score: 0.4,
            observed_queries: 100,
        };
        let json = first.to_json();
        assert!(json.get("old").unwrap().is_null());
        assert_eq!(
            AdviceEvent::from_json(&warlock_json::parse(&json.render()).unwrap()).unwrap(),
            first
        );

        let unknown = warlock_json::parse(r#"{"event":"mix_shifted","seq":1}"#).unwrap();
        assert!(AdviceEvent::from_json(&unknown).is_err());
    }

    #[test]
    fn out_of_range_integers_are_shape_errors_not_truncated() {
        // Regression: `{"dimension": 65536}` must not wrap to dimension 0
        // and silently answer about a different fragmentation.
        let overflow =
            warlock_json::parse(r#"{"dimension": 65536, "level": 0, "range": 1}"#).unwrap();
        let e = FragmentationAttr::from_json(&overflow).unwrap_err();
        assert!(e.to_string().contains("out of range"), "{e}");

        let ok = warlock_json::parse(r#"{"dimension": 3, "level": 2, "range": 1}"#).unwrap();
        assert_eq!(
            FragmentationAttr::from_json(&ok).unwrap(),
            FragmentationAttr {
                dimension: 3,
                level: 2,
                range: 1
            }
        );
    }
}
