//! Resident-optimizer state: observed-workload statistics, drift
//! detection and the bounded advice-event log.
//!
//! The original WARLOCK is an offline advisor: the administrator feeds
//! it a configured query mix and reads a ranking. A *resident*
//! optimizer instead watches the traffic the warehouse actually serves
//! ([`Warlock::observe`](crate::Warlock::observe)), scores how far the
//! observed mix has drifted from the configured one
//! ([`mix_divergence`](warlock_workload::mix_divergence)), and — in
//! `auto_advise` mode — adopts the observed mix and re-ranks the moment
//! the drift score crosses the hysteresis threshold, emitting a typed
//! [`AdviceEvent`] into a bounded per-session log.
//!
//! The re-rank is *incremental*: the ranking pipeline memoizes
//! per-candidate outcomes under a weight-free structure fingerprint
//! (see `CostModel::structure_fingerprint`), so adopting a re-weighted
//! mix recombines the memoized per-class cost rows under the new
//! shares instead of re-costing a single candidate — and the result is
//! bit-identical to a cold run at the same mix.

use std::collections::VecDeque;

use warlock_workload::{DriftDetector, DriftState, StatsWindow};

use crate::config::AdvisorConfig;

/// Upper bound on retained [`AdviceEvent`]s per session family; older
/// events are dropped first. The sequence number keeps dropped events
/// observable.
pub(crate) const MAX_ADVICE_EVENTS: usize = 64;

/// One entry of the resident optimizer's advice-event log.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AdviceEvent {
    /// Drift crossed the enter threshold while `auto_advise` was on:
    /// the session adopted the observed mix and re-ranked.
    RecommendationChanged {
        /// Monotonic 1-based sequence number of this event within the
        /// session family (survives log truncation).
        seq: u64,
        /// Label of the previously recommended top candidate, when the
        /// old mix had been ranked before the drift fired.
        old: Option<String>,
        /// Label of the top candidate under the adopted observed mix.
        new: String,
        /// The drift score (against the *previous* configured mix)
        /// that triggered the re-advise.
        drift_score: f64,
        /// Total queries observed when the event fired.
        observed_queries: u64,
    },
}

impl AdviceEvent {
    /// The event's monotonic sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            AdviceEvent::RecommendationChanged { seq, .. } => *seq,
        }
    }
}

/// A point-in-time report of the resident optimizer, returned by
/// [`Warlock::observe`](crate::Warlock::observe) and
/// [`Warlock::drift_status`](crate::Warlock::drift_status).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftStatus {
    /// The detector's current state.
    pub state: DriftState,
    /// The current drift score in `[0, 1]` — normalized L1 distance
    /// between the observed and configured mix shares (`0.0` when no
    /// traffic has been observed).
    pub score: f64,
    /// The configured enter threshold.
    pub drift_enter: f64,
    /// The configured exit threshold.
    pub drift_exit: f64,
    /// Total queries ingested since the session family was built.
    pub observed_queries: u64,
    /// Distinct query classes the statistics window tracks.
    pub tracked_classes: usize,
    /// Whether crossing the enter threshold triggers auto re-advising.
    pub auto_advise: bool,
    /// Total advice events ever emitted (the latest event's `seq`).
    pub events_emitted: u64,
}

/// The mutable resident-optimizer state of one session family, held in
/// [`Shared`](crate::session) behind a mutex: the statistics window,
/// the hysteresis detector, and the bounded event log. Built lazily on
/// the first `observe` from the then-current advisor configuration.
#[derive(Debug)]
pub(crate) struct OptimizerState {
    pub(crate) window: StatsWindow,
    pub(crate) detector: DriftDetector,
    pub(crate) events: VecDeque<AdviceEvent>,
    /// Total events ever emitted; event `seq`s are 1-based.
    pub(crate) seq: u64,
}

impl OptimizerState {
    /// Fresh state from a validated configuration.
    ///
    /// The window and detector knobs are fixed at first observation;
    /// later `set_config` swaps do not rebuild them (the window's
    /// history would be lost), they only change `auto_advise` behavior
    /// going forward.
    pub(crate) fn new(config: &AdvisorConfig) -> Self {
        Self {
            window: StatsWindow::new(config.stats_half_life),
            detector: DriftDetector::new(config.drift_enter, config.drift_exit),
            events: VecDeque::new(),
            seq: 0,
        }
    }

    /// Appends an event, dropping the oldest past the retention bound.
    pub(crate) fn push_event(&mut self, event: AdviceEvent) {
        if self.events.len() >= MAX_ADVICE_EVENTS {
            self.events.pop_front();
        }
        self.events.push_back(event);
    }
}
