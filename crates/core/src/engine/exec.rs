//! Deterministic fan-out of independent per-candidate work over a
//! persistent worker pool.
//!
//! The prediction pipeline evaluates every enumerated fragmentation
//! against the full query mix — an embarrassingly parallel workload
//! (paper §3.2 ranks hundreds of independent candidates). Earlier
//! revisions spawned fresh [`std::thread::scope`] workers per run, which
//! is measurable overhead on sub-millisecond warm pipelines and hostile
//! to a long-lived service. [`WorkerPool`] keeps the workers alive
//! instead, with **no external dependencies**:
//!
//! - Work items are claimed dynamically (an atomic cursor per job), so
//!   expensive candidate clusters spread over whichever workers are
//!   free; results are written into per-index slots and returned in
//!   input order, so the output is **bit-identical to the serial path**
//!   regardless of worker count or scheduling.
//! - The pool accepts jobs from many threads at once: concurrent
//!   sessions (e.g. `warlockd` connections running simultaneous
//!   what-ifs) enqueue independent jobs and idle workers drain whichever
//!   job has work left. A submitter participates in its own job, so
//!   progress never depends on pool threads being available.
//! - Threads are spawned lazily up to the largest requested worker
//!   count and parked on a condvar between jobs; `workers <= 1` (or
//!   tiny inputs) runs inline without touching the pool at all, which
//!   keeps the pinned `WARLOCK_PARALLELISM=1` lane strictly serial.

use std::any::{Any, TypeId};
use std::cell::{RefCell, UnsafeCell};
use std::collections::{HashMap, VecDeque};
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

thread_local! {
    /// Per-thread scratch arenas, keyed by type. Pool threads persist
    /// across jobs, so an arena acquired here lives for the worker's
    /// lifetime and its buffers amortize to zero steady-state allocation.
    static SCRATCH: RefCell<HashMap<TypeId, Box<dyn Any>>> = RefCell::new(HashMap::new());
}

/// Runs `f` with this thread's scratch arena of type `S`, creating it on
/// first use and returning it to the thread-local store afterwards (with
/// whatever capacity it grew). The arena is *removed* from the store for
/// the duration of the call, so re-entrant use of the same type sees a
/// fresh default instead of aliasing — and a panicking `f` simply drops
/// the arena rather than leaving it in a torn state.
pub(crate) fn with_scratch<S: Default + 'static, R>(f: impl FnOnce(&mut S) -> R) -> R {
    SCRATCH.with(|cell| {
        let mut boxed: Box<dyn Any> = cell
            .borrow_mut()
            .remove(&TypeId::of::<S>())
            .unwrap_or_else(|| Box::new(S::default()));
        let scratch = boxed
            .downcast_mut::<S>()
            .expect("scratch store keyed by TypeId");
        let result = f(scratch);
        cell.borrow_mut().insert(TypeId::of::<S>(), boxed);
        result
    })
}

/// Environment variable overriding the automatic worker count (only
/// consulted when [`crate::AdvisorConfig::parallelism`] is `0` = auto).
/// CI uses it to pin a serial lane without editing configurations.
pub(crate) const PARALLELISM_ENV: &str = "WARLOCK_PARALLELISM";

/// Resolves a configured parallelism knob to a concrete worker count:
/// `n >= 1` is taken literally; `0` means auto — the `WARLOCK_PARALLELISM`
/// environment variable if set to a positive integer, otherwise
/// [`std::thread::available_parallelism`].
pub(crate) fn effective_parallelism(requested: usize) -> usize {
    if requested >= 1 {
        return requested;
    }
    if let Ok(v) = std::env::var(PARALLELISM_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A lifetime-erased pointer to a job's per-index task. Only
/// dereferenced while the submitting [`WorkerPool::map`] frame is alive
/// (see the safety argument there).
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared-callable from any thread), and
// `map` guarantees it outlives every dereference.
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

#[derive(Default)]
struct Progress {
    /// Indices whose task call has returned (or unwound).
    finished: usize,
    /// First panic payload raised by any task, re-raised by the submitter.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// One `map` call in flight: a task, an index cursor, and completion
/// tracking. Workers claim indices until the cursor passes `count`.
struct Job {
    task: TaskPtr,
    count: usize,
    /// Most threads allowed to execute this job, counting the
    /// submitter — the `workers` cap the caller configured. A pool
    /// grown to 8 threads by one session must still run a
    /// `parallelism = 2` job on at most 2 of them.
    limit: usize,
    /// Threads currently registered as executors of this job.
    executors: AtomicUsize,
    next: AtomicUsize,
    progress: Mutex<Progress>,
    done_cv: Condvar,
}

impl Job {
    /// Claims the next unprocessed index, if any remain.
    fn claim(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.count).then_some(i)
    }

    /// Whether every index has been handed out (not necessarily finished).
    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.count
    }

    /// Registers the calling thread as an executor, refusing once the
    /// configured worker cap is reached. Registrations are never given
    /// back — an executor only stops when the job has no claims left.
    fn register(&self) -> bool {
        let mut current = self.executors.load(Ordering::Relaxed);
        loop {
            if current >= self.limit {
                return false;
            }
            match self.executors.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => current = seen,
            }
        }
    }

    /// Runs claimed indices until none remain, recording completion (and
    /// any panic) per index so the submitter can wait for the last one.
    fn run_claims(&self) {
        while let Some(i) = self.claim() {
            // SAFETY: the submitter blocks in `map` until `finished`
            // reaches `count`, and `finished` is bumped only after this
            // call returns — the task cannot dangle while running.
            let task = unsafe { &*self.task.0 };
            let result = catch_unwind(AssertUnwindSafe(|| task(i)));
            let mut progress = self.progress.lock().expect("job progress poisoned");
            if let Err(payload) = result {
                progress.panic.get_or_insert(payload);
            }
            progress.finished += 1;
            if progress.finished == self.count {
                self.done_cv.notify_all();
            }
        }
    }
}

#[derive(Default)]
struct Queue {
    jobs: VecDeque<Arc<Job>>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<Queue>,
    work_cv: Condvar,
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if q.shutdown {
                    return;
                }
                // Drop fully-claimed jobs from the front (completion is
                // tracked on the job itself, the queue is only for
                // discovery), then pick the oldest job with work left
                // that still has an executor slot under its worker cap.
                while q.jobs.front().is_some_and(|j| j.exhausted()) {
                    q.jobs.pop_front();
                }
                if let Some(job) = q.jobs.iter().find(|j| !j.exhausted() && j.register()) {
                    break job.clone();
                }
                q = shared.work_cv.wait(q).expect("pool queue poisoned");
            }
        };
        job.run_claims();
    }
}

/// A per-index result slot, written by exactly one worker and read by
/// the submitter after the job completes.
struct Slot<U>(UnsafeCell<Option<U>>);

// SAFETY: each index is claimed exactly once (atomic cursor), so each
// slot has a single writer; the submitter reads only after every index
// finished.
unsafe impl<U: Send> Sync for Slot<U> {}

/// A persistent, multi-submitter evaluation pool. See the [module
/// docs](self). Owned by the shared state of a [`crate::Warlock`]
/// session (all clones reuse it) and by each [`crate::TuningSession`].
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let threads = self.threads.lock().map(|t| t.len()).unwrap_or(0);
        f.debug_struct("WorkerPool")
            .field("threads", &threads)
            .finish()
    }
}

impl WorkerPool {
    /// An empty pool; threads are spawned on first parallel use.
    pub(crate) fn new() -> Self {
        Self {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(Queue::default()),
                work_cv: Condvar::new(),
            }),
            threads: Mutex::new(Vec::new()),
        }
    }

    /// Number of live pool threads (the submitter itself is always an
    /// additional worker).
    #[cfg(test)]
    pub(crate) fn threads(&self) -> usize {
        self.threads.lock().expect("pool threads poisoned").len()
    }

    /// Grows the pool to at least `target` parked threads.
    fn ensure_threads(&self, target: usize) {
        let mut threads = self.threads.lock().expect("pool threads poisoned");
        while threads.len() < target {
            let shared = self.shared.clone();
            let handle = std::thread::Builder::new()
                .name("warlock-eval".into())
                .spawn(move || worker_loop(shared))
                .expect("spawn evaluation worker");
            threads.push(handle);
        }
    }

    /// Applies `f` to every item and returns the results **in input
    /// order**, using up to `workers` threads (the calling thread plus
    /// pool workers). `workers <= 1` (or tiny inputs) runs inline
    /// without touching the pool. A panic in any worker propagates to
    /// the caller after the job fully drains.
    pub(crate) fn map<T, U, F>(&self, workers: usize, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let count = items.len();
        let workers = workers.clamp(1, count.max(1));
        if workers == 1 || count <= 1 {
            return items.iter().map(f).collect();
        }
        self.ensure_threads(workers - 1);

        let slots: Vec<Slot<U>> = (0..count).map(|_| Slot(UnsafeCell::new(None))).collect();
        let task = |i: usize| {
            let value = f(&items[i]);
            // SAFETY: index `i` is claimed exactly once; no other thread
            // touches this slot until the job completes.
            unsafe { *slots[i].0.get() = Some(value) };
        };
        let task: &(dyn Fn(usize) + Sync) = &task;
        // SAFETY: the 'static lifetime is a lie the blocking below makes
        // true — this frame does not return until `finished == count`,
        // and `finished` reaches `count` only after every task call has
        // returned (or unwound), so no worker can observe a dangling
        // `task`, `items`, `f` or `slots`.
        let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
        let job = Arc::new(Job {
            task: TaskPtr(task as *const _),
            count,
            limit: workers,
            // The submitter below is executor #1.
            executors: AtomicUsize::new(1),
            next: AtomicUsize::new(0),
            progress: Mutex::new(Progress::default()),
            done_cv: Condvar::new(),
        });
        {
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            q.jobs.push_back(job.clone());
        }
        self.shared.work_cv.notify_all();

        // The submitting thread is a worker too: help until claims run
        // dry, then wait for stragglers still executing their last item.
        job.run_claims();
        let mut progress = job.progress.lock().expect("job progress poisoned");
        while progress.finished < job.count {
            progress = job.done_cv.wait(progress).expect("job progress poisoned");
        }
        if let Some(payload) = progress.panic.take() {
            drop(progress);
            std::panic::resume_unwind(payload);
        }
        drop(progress);

        slots
            .into_iter()
            .map(|s| s.0.into_inner().expect("claimed index left no result"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            q.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        let threads = std::mem::take(&mut *self.threads.lock().expect("pool threads poisoned"));
        for handle in threads {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_any_worker_count() {
        let pool = WorkerPool::new();
        let items: Vec<u64> = (0..101).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 4, 7, 16, 101, 500] {
            assert_eq!(
                pool.map(workers, &items, |&x| x * x),
                expected,
                "W={workers}"
            );
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let pool = WorkerPool::new();
        assert_eq!(pool.map(8, &Vec::<u32>::new(), |&x| x), Vec::<u32>::new());
        assert_eq!(pool.map(8, &[42], |&x| x + 1), vec![43]);
        // Neither touched the pool.
        assert_eq!(pool.threads(), 0);
    }

    #[test]
    fn threads_persist_across_jobs() {
        let pool = WorkerPool::new();
        let items: Vec<u32> = (0..64).collect();
        let expected: Vec<u32> = items.iter().map(|x| x + 1).collect();
        for _ in 0..5 {
            assert_eq!(pool.map(4, &items, |&x| x + 1), expected);
        }
        // 4 workers = 3 pool threads + the submitter; runs reuse them.
        assert_eq!(pool.threads(), 3);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        let pool = WorkerPool::new();
        let seen = Mutex::new(HashSet::new());
        // Enough items that a sleeping submitter cannot drain them alone.
        let items: Vec<u32> = (0..64).collect();
        pool.map(4, &items, |&x| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            seen.lock().unwrap().insert(std::thread::current().id());
            x
        });
        assert!(seen.lock().unwrap().len() > 1, "work never left one thread");
    }

    #[test]
    fn worker_cap_holds_on_an_oversized_pool() {
        use std::collections::HashSet;
        let pool = WorkerPool::new();
        let items: Vec<u32> = (0..64).collect();
        // Grow the pool well past the later request.
        pool.map(8, &items, |&x| x);
        assert_eq!(pool.threads(), 7);
        // A 2-worker job on the 7-thread pool must execute on at most
        // 2 threads (the submitter plus one pool worker).
        let seen = Mutex::new(HashSet::new());
        pool.map(2, &items, |&x| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            seen.lock().unwrap().insert(std::thread::current().id());
            x
        });
        let executors = seen.lock().unwrap().len();
        assert!(executors <= 2, "2-worker job ran on {executors} threads");
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let pool = WorkerPool::new();
        let items: Vec<u64> = (0..200).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let pool = &pool;
                    let items = &items;
                    scope.spawn(move || pool.map(3, items, |&x| x * 3))
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), expected);
            }
        });
    }

    #[test]
    fn effective_parallelism_resolution() {
        assert_eq!(effective_parallelism(1), 1);
        assert_eq!(effective_parallelism(6), 6);
        assert!(effective_parallelism(0) >= 1);
    }

    #[test]
    fn scratch_persists_per_thread_and_nests_fresh() {
        #[derive(Default)]
        struct Counter(u64);

        // Same thread, same type: state persists between calls.
        with_scratch(|c: &mut Counter| c.0 += 1);
        let seen = with_scratch(|c: &mut Counter| {
            c.0 += 1;
            c.0
        });
        assert_eq!(seen, 2);
        // Re-entrant use of the same type gets a fresh default, not an
        // alias of the outer arena.
        let (outer, inner) = with_scratch(|c: &mut Counter| {
            c.0 += 1;
            let inner = with_scratch(|nested: &mut Counter| {
                nested.0 += 10;
                nested.0
            });
            (c.0, inner)
        });
        assert_eq!((outer, inner), (3, 10));
    }

    #[test]
    fn scratch_arenas_are_per_worker_thread() {
        #[derive(Default)]
        struct Tag(Option<std::thread::ThreadId>);

        let pool = WorkerPool::new();
        let items: Vec<u32> = (0..64).collect();
        // Every claimed item must observe a scratch bound to its own
        // thread — an arena created on one worker never migrates.
        pool.map(4, &items, |&x| {
            with_scratch(|t: &mut Tag| {
                let me = std::thread::current().id();
                match t.0 {
                    None => t.0 = Some(me),
                    Some(owner) => assert_eq!(owner, me, "scratch crossed threads"),
                }
            });
            x
        });
    }

    #[test]
    fn worker_panics_propagate_and_pool_survives() {
        let pool = WorkerPool::new();
        let items: Vec<u32> = (0..16).collect();
        let boom = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map(4, &items, |&x| {
                if x == 9 {
                    panic!("worker boom");
                }
                x
            })
        }));
        let payload = boom.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "worker boom");
        // The pool is still usable after a panicked job.
        assert_eq!(
            pool.map(4, &items, |&x| x + 1),
            items.iter().map(|x| x + 1).collect::<Vec<_>>()
        );
    }
}
