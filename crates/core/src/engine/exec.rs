//! Deterministic fan-out of independent per-candidate work.
//!
//! The prediction pipeline evaluates every enumerated fragmentation
//! against the full query mix — an embarrassingly parallel workload
//! (paper §3.2 ranks hundreds of independent candidates). This module
//! fans that work out over [`std::thread::scope`] workers with **no
//! external dependencies**: worker `w` of `W` takes the index slice
//! `w, w+W, w+2W, …` (round-robin striding spreads expensive candidate
//! clusters across workers), and the per-worker results are merged back
//! in enumeration order, so the output is bit-identical to the serial
//! path regardless of worker count or scheduling.

use std::num::NonZeroUsize;

/// Environment variable overriding the automatic worker count (only
/// consulted when [`crate::AdvisorConfig::parallelism`] is `0` = auto).
/// CI uses it to pin a serial lane without editing configurations.
pub(crate) const PARALLELISM_ENV: &str = "WARLOCK_PARALLELISM";

/// Resolves a configured parallelism knob to a concrete worker count:
/// `n >= 1` is taken literally; `0` means auto — the `WARLOCK_PARALLELISM`
/// environment variable if set to a positive integer, otherwise
/// [`std::thread::available_parallelism`].
pub(crate) fn effective_parallelism(requested: usize) -> usize {
    if requested >= 1 {
        return requested;
    }
    if let Ok(v) = std::env::var(PARALLELISM_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item and returns the results **in input order**,
/// using up to `workers` scoped threads. `workers <= 1` (or tiny inputs)
/// runs inline without spawning. A panic in any worker propagates.
pub(crate) fn map<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    let per_worker: Vec<Vec<U>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| scope.spawn(move || items.iter().skip(w).step_by(workers).map(f).collect()))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });
    // Interleave the strided slices back into enumeration order.
    let mut iters: Vec<_> = per_worker.into_iter().map(Vec::into_iter).collect();
    (0..items.len())
        .map(|i| iters[i % workers].next().expect("strided arithmetic"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_any_worker_count() {
        let items: Vec<u64> = (0..101).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 4, 7, 16, 101, 500] {
            assert_eq!(map(workers, &items, |&x| x * x), expected, "W={workers}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(map(8, &Vec::<u32>::new(), |&x| x), Vec::<u32>::new());
        assert_eq!(map(8, &[42], |&x| x + 1), vec![43]);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        map(4, &items, |&x| {
            seen.lock().unwrap().insert(std::thread::current().id());
            x
        });
        assert!(seen.lock().unwrap().len() > 1, "work never left one thread");
    }

    #[test]
    fn effective_parallelism_resolution() {
        assert_eq!(effective_parallelism(1), 1);
        assert_eq!(effective_parallelism(6), 6);
        assert!(effective_parallelism(0) >= 1);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..16).collect();
        let _ = map(4, &items, |&x| {
            if x == 9 {
                panic!("worker boom");
            }
            x
        });
    }
}
