//! A minimal, std-only HTTP/1.1 transport for the v2 service protocol.
//!
//! `warlockd --http ADDR` serves the exact op set of
//! [`crate::service`] as `POST /v2/<op>`: the JSON request body carries
//! the remaining request fields (`id`, `warehouse`, `params` — an empty
//! body means none), and the response body is the same JSON envelope
//! the line protocol writes. One request per connection
//! (`Connection: close`), one thread per connection — deliberately the
//! simplest thing that lets `curl`, load balancers and dashboards talk
//! to the advisor without a custom client:
//!
//! ```text
//! $ curl -s http://127.0.0.1:7342/v2/rank -d '{"warehouse":"eu"}'
//! {"v":2,"id":null,"ok":true,"result":{…}}
//! ```
//!
//! Error kinds map onto status codes (`bad_request`/
//! `unsupported_version` → 400, `unknown_op`/`unknown_warehouse` → 404,
//! over-limit bodies → 413, `internal` → 500, other advisory errors →
//! 422); the body always carries the full typed JSON error, so HTTP
//! clients see exactly what line-protocol clients see.
//!
//! The module also provides [`ShutdownSignal`], the cross-transport
//! stop flag: a `shutdown` op arriving over *any* transport trips it,
//! and every accept loop — HTTP here, the TCP line protocol in
//! `warlockd` — is woken deterministically by a self-connect instead of
//! blocking in `accept` until a next client happens to arrive.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use warlock_json::Json;

use crate::service::{Service, ServiceReply};

/// How many bytes of request line + headers an HTTP request may use.
/// Generous for hand-written clients, far below any memory concern.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A cross-transport shutdown flag with deterministic accept-loop
/// wakeup. Accept loops [`register`](ShutdownSignal::register) their
/// listening address and check [`is_stopped`](ShutdownSignal::is_stopped)
/// after every accepted connection; [`trigger`](ShutdownSignal::trigger)
/// sets the flag and then **self-connects** to every registered
/// listener, so a loop blocked in `accept` wakes immediately instead of
/// waiting for the next real client.
#[derive(Debug, Default)]
pub struct ShutdownSignal {
    stopped: AtomicBool,
    listeners: Mutex<Vec<SocketAddr>>,
}

impl ShutdownSignal {
    /// A fresh, untriggered signal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a listening address to be woken by
    /// [`trigger`](ShutdownSignal::trigger). A listener that registers
    /// *after* the signal already tripped is woken immediately, so a
    /// shutdown racing a transport's startup can never leave its accept
    /// loop blocked forever.
    pub fn register(&self, addr: SocketAddr) {
        self.listeners
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(addr);
        if self.is_stopped() {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
        }
    }

    /// Whether shutdown was requested.
    pub fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::SeqCst)
    }

    /// Requests shutdown and wakes every registered accept loop.
    pub fn trigger(&self) {
        self.stopped.store(true, Ordering::SeqCst);
        let listeners = self
            .listeners
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone();
        for addr in listeners {
            // The connection content is irrelevant — accepting it is
            // what unblocks the loop; it observes the flag and exits.
            let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
        }
    }
}

/// The pieces of one parsed HTTP request this transport cares about.
struct HttpRequest {
    method: String,
    path: String,
    body: Vec<u8>,
}

/// A transport-level failure to answer with a plain status + typed JSON
/// error body.
struct HttpError {
    status: u16,
    reply: ServiceReply,
}

impl HttpError {
    fn new(status: u16, kind: &'static str, message: &str) -> Self {
        Self {
            status,
            reply: ServiceReply::error(kind, message),
        }
    }
}

/// Serves the v2 protocol over HTTP until `shutdown` trips (from a
/// request on this transport or any other). One thread per connection;
/// request bodies above `max_request_bytes` are answered with `413` and
/// a typed `bad_request` JSON error instead of being read.
pub fn serve_http(
    service: Arc<Service>,
    listener: TcpListener,
    max_request_bytes: usize,
    shutdown: Arc<ShutdownSignal>,
) {
    if let Ok(addr) = listener.local_addr() {
        shutdown.register(addr);
    }
    for stream in listener.incoming() {
        if shutdown.is_stopped() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let service = Arc::clone(&service);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            if handle_connection(&service, stream, max_request_bytes) {
                shutdown.trigger();
            }
        });
    }
}

/// Handles one connection (one request); returns `true` when the client
/// asked the whole server to shut down.
fn handle_connection(service: &Service, mut stream: TcpStream, max_request_bytes: usize) -> bool {
    // A stuck or malicious client must not pin the thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    match read_request(&mut stream, max_request_bytes) {
        Err(e) => {
            write_response(&mut stream, e.status, &e.reply.line);
            false
        }
        Ok(request) => {
            let reply = dispatch(service, &request);
            let status = match reply {
                Err(ref e) => e.status,
                Ok(ref reply) => match reply.error_kind {
                    None => 200,
                    Some("bad_request") | Some("unsupported_version") => 400,
                    Some("unknown_op") | Some("unknown_warehouse") => 404,
                    Some("internal") => 500,
                    Some(_) => 422,
                },
            };
            let reply = match reply {
                Ok(reply) => reply,
                Err(e) => e.reply,
            };
            write_response(&mut stream, status, &reply.line);
            reply.shutdown
        }
    }
}

/// Routes `POST /v2/<op>` to the service's shared dispatch.
fn dispatch(service: &Service, request: &HttpRequest) -> Result<ServiceReply, HttpError> {
    if request.method != "POST" {
        return Err(HttpError::new(
            405,
            "bad_request",
            &format!("method {} not allowed (use POST /v2/<op>)", request.method),
        ));
    }
    let op = request
        .path
        .strip_prefix("/v2/")
        .filter(|op| !op.is_empty() && !op.contains('/'))
        .ok_or_else(|| {
            HttpError::new(
                404,
                "unknown_op",
                &format!("unknown path `{}` (use POST /v2/<op>)", request.path),
            )
        })?;
    let body = if request.body.is_empty() {
        Json::object([] as [(&str, Json); 0])
    } else {
        let text = std::str::from_utf8(&request.body)
            .map_err(|_| HttpError::new(400, "bad_request", "request body is not UTF-8"))?;
        warlock_json::parse(text).map_err(|e| {
            HttpError::new(
                400,
                "bad_request",
                &format!("request body is not valid JSON: {e}"),
            )
        })?
    };
    let Json::Obj(members) = body else {
        return Err(HttpError::new(
            400,
            "bad_request",
            "request body must be a JSON object",
        ));
    };
    // The path names the op and pins the protocol version; the body
    // carries everything else (`id`, `warehouse`, `params`).
    let mut request = vec![
        ("v".to_owned(), Json::Int(2)),
        ("op".to_owned(), Json::Str(op.to_owned())),
    ];
    request.extend(members.into_iter().filter(|(k, _)| k != "v" && k != "op"));
    let request = Json::Obj(request);
    // A panicking request (a bug) must not drop the connection without
    // a response: degrade to a typed 500, like the line transports do.
    Ok(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        service.handle_request(&request)
    }))
    .unwrap_or_else(|_| ServiceReply::error("internal", "request handler panicked")))
}

/// Reads one HTTP request: a bounded head, then a `Content-Length`
/// body bounded by `max_request_bytes`.
fn read_request(
    stream: &mut TcpStream,
    max_request_bytes: usize,
) -> Result<HttpRequest, HttpError> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    // Single-byte reads are fine here: heads are tiny and this keeps
    // the code free of buffered-reader lookahead bookkeeping before the
    // body starts.
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::new(431, "bad_request", "request head too large"));
        }
        match stream.read(&mut byte) {
            Ok(0) => {
                return Err(HttpError::new(
                    400,
                    "bad_request",
                    "connection closed mid-request",
                ))
            }
            Ok(_) => head.push(byte[0]),
            Err(e) => {
                return Err(HttpError::new(
                    400,
                    "bad_request",
                    &format!("read failed: {e}"),
                ))
            }
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_owned();
    let path = parts.next().unwrap_or("").to_owned();
    if method.is_empty() || path.is_empty() {
        return Err(HttpError::new(400, "bad_request", "malformed request line"));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    HttpError::new(
                        400,
                        "bad_request",
                        &format!("invalid Content-Length `{}`", value.trim()),
                    )
                })?;
            }
        }
    }
    if content_length > max_request_bytes {
        // Drain (bounded) before answering, so for modestly over-limit
        // bodies the rejection reaches the client instead of being lost
        // to a TCP reset when we close with unread data. The drain is
        // capped — a client declaring an astronomical Content-Length
        // must not pin this thread streaming bytes at us; past the cap
        // we answer and close, unread data or not.
        let drain = content_length.min(max_request_bytes.max(64 * 1024)) as u64;
        let _ = std::io::copy(&mut stream.take(drain), &mut std::io::sink());
        return Err(HttpError::new(
            413,
            "bad_request",
            &format!(
                "request body of {content_length} bytes exceeds the {max_request_bytes}-byte limit"
            ),
        ));
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| HttpError::new(400, "bad_request", &format!("short request body: {e}")))?;
    Ok(HttpRequest { method, path, body })
}

fn write_response(stream: &mut TcpStream, status: u16, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    };
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::session::Warlock;
    use warlock_schema::{apb1_like_schema, Apb1Config};
    use warlock_storage::SystemConfig;
    use warlock_workload::apb1_like_mix;

    fn demo_session(disks: u32) -> Warlock {
        Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(disks))
            .mix(apb1_like_mix().unwrap())
            .parallelism(1)
            .build()
            .unwrap()
    }

    struct Server {
        addr: SocketAddr,
        shutdown: Arc<ShutdownSignal>,
        thread: Option<std::thread::JoinHandle<()>>,
    }

    impl Server {
        fn start(max_request_bytes: usize) -> Self {
            let registry = Registry::new("us");
            registry.insert("us", None, demo_session(16)).unwrap();
            registry.insert("eu", None, demo_session(64)).unwrap();
            let service = Arc::new(Service::with_registry(Arc::new(registry)));
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let shutdown = Arc::new(ShutdownSignal::new());
            let thread = {
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || {
                    serve_http(service, listener, max_request_bytes, shutdown)
                })
            };
            Self {
                addr,
                shutdown,
                thread: Some(thread),
            }
        }

        /// Sends one raw HTTP request, returns (status, body).
        fn request(&self, raw: &str) -> (u16, Json) {
            let mut stream = TcpStream::connect(self.addr).unwrap();
            stream.write_all(raw.as_bytes()).unwrap();
            let mut response = String::new();
            stream.read_to_string(&mut response).unwrap();
            let status: u16 = response
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("malformed response: {response}"));
            let body = response
                .split("\r\n\r\n")
                .nth(1)
                .unwrap_or_else(|| panic!("no body: {response}"));
            (status, warlock_json::parse(body).unwrap())
        }

        fn post(&self, path: &str, body: &str) -> (u16, Json) {
            self.request(&format!(
                "POST {path} HTTP/1.1\r\nHost: warlockd\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ))
        }
    }

    impl Drop for Server {
        fn drop(&mut self) {
            self.shutdown.trigger();
            if let Some(thread) = self.thread.take() {
                thread.join().unwrap();
            }
        }
    }

    #[test]
    fn post_round_trip_with_routing() {
        let server = Server::start(1 << 20);
        let (status, pong) = server.post("/v2/ping", "");
        assert_eq!(status, 200);
        let result = pong.get("result").unwrap();
        assert_eq!(result.get("warehouse").and_then(Json::as_str), Some("us"));
        assert_eq!(result.get("space_size").and_then(Json::as_u64), Some(168));

        let (status, us) = server.post("/v2/rank", r#"{"id":7}"#);
        assert_eq!(status, 200);
        assert_eq!(us.get("id").and_then(Json::as_i64), Some(7));
        let (status, eu) = server.post("/v2/rank", r#"{"warehouse":"eu"}"#);
        assert_eq!(status, 200);
        assert_ne!(
            us.get("result").unwrap().render(),
            eu.get("result").unwrap().render(),
            "the two warehouses advise differently"
        );
        // Bit-identical to a standalone session on the same inputs.
        use warlock_json::ToJson;
        assert_eq!(
            eu.get("result").unwrap().render(),
            demo_session(64).rank().unwrap().to_json().render()
        );
    }

    #[test]
    fn error_kinds_map_to_status_codes() {
        let server = Server::start(1 << 20);
        let (status, body) = server.post("/v2/frobnicate", "");
        assert_eq!(status, 404);
        assert_eq!(
            body.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("unknown_op")
        );
        let (status, body) = server.post("/v2/rank", r#"{"warehouse":"mars"}"#);
        assert_eq!(status, 404);
        assert_eq!(
            body.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("unknown_warehouse")
        );
        let (status, _) = server.post("/v2/analyze", r#"{"params":{"rank":999}}"#);
        assert_eq!(status, 422);
        let (status, _) = server.post("/v2/rank", "not json");
        assert_eq!(status, 400);
        let (status, _) = server.post("/other/rank", "");
        assert_eq!(status, 404);
        let (status, _) = server.request("GET /v2/rank HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 405);
    }

    #[test]
    fn oversized_bodies_are_rejected_with_a_typed_reply() {
        let server = Server::start(256);
        let huge = format!(r#"{{"params":{{"pad":"{}"}}}}"#, "x".repeat(512));
        let (status, body) = server.post("/v2/ping", &huge);
        assert_eq!(status, 413);
        assert_eq!(
            body.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("bad_request")
        );
        assert!(body.render().contains("exceeds"));
        // The server survives and keeps answering.
        let (status, _) = server.post("/v2/ping", "");
        assert_eq!(status, 200);
    }

    #[test]
    fn shutdown_over_http_stops_the_accept_loop() {
        let mut server = Server::start(1 << 20);
        let (status, body) = server.post("/v2/shutdown", "");
        assert_eq!(status, 200);
        assert!(body.render().contains("stopping"));
        // The accept loop exits without any further client connecting.
        server.thread.take().unwrap().join().unwrap();
        assert!(server.shutdown.is_stopped());
    }
}
