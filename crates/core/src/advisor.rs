//! The advisor pipeline: generate → exclude → cost → rank.

use std::fmt;

use warlock_bitmap::BitmapScheme;
use warlock_cost::{CandidateCost, CostModel};
use warlock_fragment::{
    enumerate_candidates, Exclusion, FragmentLayout, Fragmentation, SkewModelExt,
    ThresholdContext,
};
use warlock_schema::StarSchema;
use warlock_skew::SkewModel;
use warlock_storage::SystemConfig;
use warlock_workload::{QueryMix, WorkloadError};

use crate::analysis::FragmentationAnalysis;
use crate::allocation_plan::AllocationPlan;
use crate::config::AdvisorConfig;
use crate::ranking::twofold_rank;

/// Errors raised when assembling an advisor.
#[derive(Debug, Clone, PartialEq)]
pub enum AdvisorError {
    /// The advisor configuration is inconsistent.
    Config(String),
    /// The system configuration is inconsistent.
    System(String),
    /// The query mix does not validate against the schema.
    Workload(WorkloadError),
    /// The skew configuration does not cover every dimension.
    Skew(String),
}

impl fmt::Display for AdvisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(msg) => write!(f, "advisor config: {msg}"),
            Self::System(msg) => write!(f, "system config: {msg}"),
            Self::Workload(e) => write!(f, "workload: {e}"),
            Self::Skew(msg) => write!(f, "skew config: {msg}"),
        }
    }
}

impl std::error::Error for AdvisorError {}

/// A candidate excluded by the thresholds, with its reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExcludedCandidate {
    /// The excluded fragmentation.
    pub fragmentation: Fragmentation,
    /// Human-readable candidate label.
    pub label: String,
    /// Why it was excluded.
    pub reason: Exclusion,
}

/// One recommended fragmentation with its evaluated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedCandidate {
    /// Position in the final ranking (1-based).
    pub rank: usize,
    /// Human-readable label, e.g. `product.class × time.month`.
    pub label: String,
    /// Full evaluated cost.
    pub cost: CandidateCost,
}

/// The advisor's output: the ranked candidate list plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct AdvisorReport {
    /// Top fragmentations after the twofold ranking, best first.
    pub ranked: Vec<RankedCandidate>,
    /// Threshold-excluded candidates with reasons.
    pub excluded: Vec<ExcludedCandidate>,
    /// Candidates that were fully costed (survived thresholds).
    pub evaluated: usize,
    /// Candidates enumerated in total.
    pub enumerated: usize,
    /// The bitmap scheme the evaluation used.
    pub scheme: BitmapScheme,
}

impl AdvisorReport {
    /// The best-ranked candidate, if any survived.
    pub fn top(&self) -> Option<&RankedCandidate> {
        self.ranked.first()
    }

    /// Finds a ranked candidate by its fragmentation.
    pub fn find(&self, fragmentation: &Fragmentation) -> Option<&RankedCandidate> {
        self.ranked
            .iter()
            .find(|r| &r.cost.fragmentation == fragmentation)
    }
}

/// The WARLOCK advisor: owns the derived bitmap scheme and skew model and
/// runs the prediction pipeline over borrowed inputs.
#[derive(Debug, Clone)]
pub struct Advisor<'a> {
    schema: &'a StarSchema,
    system: &'a SystemConfig,
    mix: &'a QueryMix,
    config: AdvisorConfig,
    scheme: BitmapScheme,
    skew: SkewModel,
}

impl<'a> Advisor<'a> {
    /// Assembles an advisor, validating every input.
    pub fn new(
        schema: &'a StarSchema,
        system: &'a SystemConfig,
        mix: &'a QueryMix,
        config: AdvisorConfig,
    ) -> Result<Self, AdvisorError> {
        config.validate().map_err(AdvisorError::Config)?;
        system.validate().map_err(AdvisorError::System)?;
        mix.validate(schema).map_err(AdvisorError::Workload)?;
        if config.fact_index >= schema.facts().len() {
            return Err(AdvisorError::Config(format!(
                "fact index {} out of range",
                config.fact_index
            )));
        }
        let skew = match &config.skew {
            None => schema.uniform_skew_model(),
            Some(configs) => {
                if configs.len() != schema.num_dimensions() {
                    return Err(AdvisorError::Skew(format!(
                        "{} skew configs for {} dimensions",
                        configs.len(),
                        schema.num_dimensions()
                    )));
                }
                schema.skew_model(configs)
            }
        };
        let scheme = BitmapScheme::derive(schema, mix, config.scheme);
        Ok(Self {
            schema,
            system,
            mix,
            config,
            scheme,
            skew,
        })
    }

    /// The schema under advisement.
    #[inline]
    pub fn schema(&self) -> &StarSchema {
        self.schema
    }

    /// The system configuration.
    #[inline]
    pub fn system(&self) -> &SystemConfig {
        self.system
    }

    /// The query mix.
    #[inline]
    pub fn mix(&self) -> &QueryMix {
        self.mix
    }

    /// The advisor configuration.
    #[inline]
    pub fn config(&self) -> &AdvisorConfig {
        &self.config
    }

    /// The derived bitmap scheme.
    #[inline]
    pub fn scheme(&self) -> &BitmapScheme {
        &self.scheme
    }

    /// Overrides the bitmap scheme (interactive tuning: "the user may
    /// decide to exclude some of the suggested bitmap indices").
    pub fn with_scheme(mut self, scheme: BitmapScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// The skew model in effect.
    #[inline]
    pub fn skew(&self) -> &SkewModel {
        &self.skew
    }

    /// The threshold context derived from the system configuration.
    ///
    /// For fixed prefetch policies the sub-granule exclusion uses the fixed
    /// value; for automatic policies it uses a floor of 8 pages — the
    /// smallest sequential run for which positioning amortization is
    /// meaningful on the modeled disks.
    pub fn threshold_context(&self) -> ThresholdContext {
        let row_bytes = self.schema.fact_row_bytes(self.config.fact_index);
        ThresholdContext {
            rows_per_page: self.system.page.rows_per_page(row_bytes),
            prefetch_pages: self.system.fact_prefetch.fixed().unwrap_or(8),
            num_disks: self.system.num_disks,
        }
    }

    /// Runs the full prediction pipeline.
    pub fn run(&self) -> AdvisorReport {
        let candidates =
            enumerate_candidates(self.schema, self.config.max_dimensionality);
        let enumerated = candidates.len();
        let ctx = self.threshold_context();

        let model = CostModel::new(self.schema, self.system, &self.scheme, self.mix)
            .with_fact_index(self.config.fact_index);

        let mut excluded = Vec::new();
        let mut costs: Vec<CandidateCost> = Vec::with_capacity(candidates.len());
        for fragmentation in candidates {
            // Cheap overflow pre-check before materializing a layout.
            let raw_count = fragmentation.num_fragments(self.schema);
            if raw_count > u128::from(self.config.thresholds.max_fragments) {
                excluded.push(ExcludedCandidate {
                    label: fragmentation.label(self.schema),
                    reason: Exclusion::TooManyFragments {
                        fragments: raw_count.min(u128::from(u64::MAX)) as u64,
                        limit: self.config.thresholds.max_fragments,
                    },
                    fragmentation,
                });
                continue;
            }
            let layout =
                FragmentLayout::new(self.schema, fragmentation, self.config.fact_index);
            match self.config.thresholds.check(&layout, ctx) {
                Err(reason) => excluded.push(ExcludedCandidate {
                    label: layout.fragmentation().label(self.schema),
                    fragmentation: layout.fragmentation().clone(),
                    reason,
                }),
                Ok(()) => costs.push(model.evaluate_layout(&layout)),
            }
        }

        let evaluated = costs.len();
        let mut ranked_costs =
            twofold_rank(costs, self.config.top_x_percent, self.config.min_keep);
        ranked_costs.truncate(self.config.top_n);
        let ranked = ranked_costs
            .into_iter()
            .enumerate()
            .map(|(i, cost)| RankedCandidate {
                rank: i + 1,
                label: cost.fragmentation.label(self.schema),
                cost,
            })
            .collect();

        AdvisorReport {
            ranked,
            excluded,
            evaluated,
            enumerated,
            scheme: self.scheme.clone(),
        }
    }

    /// Evaluates a single candidate outside the ranking pipeline.
    pub fn evaluate(&self, fragmentation: &Fragmentation) -> CandidateCost {
        let model = CostModel::new(self.schema, self.system, &self.scheme, self.mix)
            .with_fact_index(self.config.fact_index);
        model.evaluate(fragmentation)
    }

    /// Produces the detailed Fig.-2-style statistic for one candidate.
    pub fn analyze(&self, fragmentation: &Fragmentation) -> FragmentationAnalysis {
        FragmentationAnalysis::build(
            self.schema,
            self.system,
            &self.scheme,
            self.mix,
            fragmentation,
            self.config.fact_index,
        )
    }

    /// Computes the physical allocation plan for one candidate.
    pub fn plan_allocation(&self, fragmentation: &Fragmentation) -> AllocationPlan {
        AllocationPlan::build(
            self.schema,
            self.system,
            &self.scheme,
            self.mix,
            &self.skew,
            fragmentation,
            self.config.allocation_policy,
            self.config.fact_index,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_schema::{apb1_like_schema, Apb1Config};
    use warlock_workload::apb1_like_mix;

    fn fixture() -> (StarSchema, SystemConfig, QueryMix) {
        (
            apb1_like_schema(Apb1Config::default()).unwrap(),
            SystemConfig::default_2001(16),
            apb1_like_mix().unwrap(),
        )
    }

    #[test]
    fn full_run_produces_ranked_candidates() {
        let (schema, system, mix) = fixture();
        let advisor = Advisor::new(&schema, &system, &mix, AdvisorConfig::default()).unwrap();
        let report = advisor.run();
        assert_eq!(report.enumerated, 168);
        assert!(report.evaluated > 0);
        assert!(!report.ranked.is_empty());
        assert!(report.ranked.len() <= 10);
        assert_eq!(report.evaluated + report.excluded.len(), 168);
        // Ranks are 1-based and ordered by response time.
        for (i, r) in report.ranked.iter().enumerate() {
            assert_eq!(r.rank, i + 1);
        }
        for w in report.ranked.windows(2) {
            assert!(w[0].cost.response_ms <= w[1].cost.response_ms);
        }
    }

    #[test]
    fn top_candidate_beats_baseline() {
        let (schema, system, mix) = fixture();
        let advisor = Advisor::new(&schema, &system, &mix, AdvisorConfig::default()).unwrap();
        let report = advisor.run();
        let top = report.top().unwrap();
        let baseline = advisor.evaluate(&Fragmentation::none());
        assert!(top.cost.response_ms < baseline.response_ms);
        assert!(top.cost.io_cost_ms <= baseline.io_cost_ms * 1.01);
    }

    #[test]
    fn exclusions_carry_reasons() {
        let (schema, system, mix) = fixture();
        let advisor = Advisor::new(&schema, &system, &mix, AdvisorConfig::default()).unwrap();
        let report = advisor.run();
        assert!(!report.excluded.is_empty());
        // The full bottom-level cross product must be excluded as too many
        // fragments.
        assert!(report.excluded.iter().any(|e| matches!(
            e.reason,
            Exclusion::TooManyFragments { .. }
        )));
        for e in &report.excluded {
            assert!(!e.label.is_empty());
        }
    }

    #[test]
    fn validation_errors_surface() {
        let (schema, system, mix) = fixture();
        let bad = AdvisorConfig {
            top_n: 0,
            ..Default::default()
        };
        assert!(matches!(
            Advisor::new(&schema, &system, &mix, bad).unwrap_err(),
            AdvisorError::Config(_)
        ));

        let bad = AdvisorConfig {
            fact_index: 5,
            ..Default::default()
        };
        assert!(matches!(
            Advisor::new(&schema, &system, &mix, bad).unwrap_err(),
            AdvisorError::Config(_)
        ));

        let bad = AdvisorConfig {
            skew: Some(vec![warlock_skew::DimensionSkew::UNIFORM]),
            ..Default::default()
        };
        assert!(matches!(
            Advisor::new(&schema, &system, &mix, bad).unwrap_err(),
            AdvisorError::Skew(_)
        ));

        let mut bad_system = system;
        bad_system.disk.transfer_mb_per_s = 0.0;
        assert!(matches!(
            Advisor::new(&schema, &bad_system, &mix, AdvisorConfig::default()).unwrap_err(),
            AdvisorError::System(_)
        ));
    }

    #[test]
    fn report_lookup_by_fragmentation() {
        let (schema, system, mix) = fixture();
        let advisor = Advisor::new(&schema, &system, &mix, AdvisorConfig::default()).unwrap();
        let report = advisor.run();
        let top = report.top().unwrap();
        let found = report.find(&top.cost.fragmentation).unwrap();
        assert_eq!(found.rank, 1);
        assert!(report.find(&Fragmentation::from_pairs(&[(0, 5), (1, 1)]).unwrap()).is_none());
    }

    #[test]
    fn deterministic_runs() {
        let (schema, system, mix) = fixture();
        let advisor = Advisor::new(&schema, &system, &mix, AdvisorConfig::default()).unwrap();
        let a = advisor.run();
        let b = advisor.run();
        assert_eq!(a, b);
    }

    #[test]
    fn max_dimensionality_limits_enumeration() {
        let (schema, system, mix) = fixture();
        let config = AdvisorConfig {
            max_dimensionality: 1,
            ..Default::default()
        };
        let advisor = Advisor::new(&schema, &system, &mix, config).unwrap();
        let report = advisor.run();
        assert_eq!(report.enumerated, 13);
        for r in &report.ranked {
            assert!(r.cost.fragmentation.dimensionality() <= 1);
        }
    }
}
