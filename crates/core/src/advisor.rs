//! The legacy borrowing advisor handle and the pipeline's report types.
//!
//! [`Advisor`] predates the owned [`crate::Warlock`] session facade: it
//! borrows its inputs for a lifetime `'a` and therefore cannot back a
//! long-lived advisory service. It is kept for one release as a thin
//! deprecated shim over the same engine; new code should use
//! [`crate::Warlock`].

use std::fmt;

use warlock_bitmap::BitmapScheme;
use warlock_cost::{CandidateCost, CostModel};
use warlock_fragment::{Exclusion, Fragmentation, ThresholdContext};
use warlock_schema::StarSchema;
use warlock_skew::SkewModel;
use warlock_storage::SystemConfig;
use warlock_workload::{QueryMix, WorkloadError};

use crate::allocation_plan::AllocationPlan;
use crate::analysis::FragmentationAnalysis;
use crate::config::AdvisorConfig;
use crate::engine;

/// Errors raised when assembling a legacy [`Advisor`].
///
/// New code should match on [`crate::WarlockError`], which this enum
/// converts into via `From`.
#[derive(Debug, Clone, PartialEq)]
pub enum AdvisorError {
    /// The advisor configuration is inconsistent.
    Config(String),
    /// The system configuration is inconsistent.
    System(String),
    /// The query mix does not validate against the schema.
    Workload(WorkloadError),
    /// The skew configuration does not cover every dimension.
    Skew(String),
}

impl fmt::Display for AdvisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(msg) => write!(f, "advisor config: {msg}"),
            Self::System(msg) => write!(f, "system config: {msg}"),
            Self::Workload(e) => write!(f, "workload: {e}"),
            Self::Skew(msg) => write!(f, "skew config: {msg}"),
        }
    }
}

impl std::error::Error for AdvisorError {}

/// A candidate excluded by the thresholds, with its reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExcludedCandidate {
    /// The excluded fragmentation.
    pub fragmentation: Fragmentation,
    /// Human-readable candidate label.
    pub label: String,
    /// Why it was excluded.
    pub reason: Exclusion,
}

/// One recommended fragmentation with its evaluated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedCandidate {
    /// Position in the final ranking (1-based).
    pub rank: usize,
    /// Human-readable label, e.g. `product.class × time.month`.
    pub label: String,
    /// Full evaluated cost.
    pub cost: CandidateCost,
}

/// The advisor's output: the ranked candidate list plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct AdvisorReport {
    /// Top fragmentations after the twofold ranking, best first.
    pub ranked: Vec<RankedCandidate>,
    /// Threshold-excluded candidates with reasons.
    pub excluded: Vec<ExcludedCandidate>,
    /// Candidates that were fully costed (survived thresholds).
    pub evaluated: usize,
    /// Candidates enumerated in total.
    pub enumerated: usize,
    /// The bitmap scheme the evaluation used.
    pub scheme: BitmapScheme,
}

impl AdvisorReport {
    /// The best-ranked candidate, if any survived.
    pub fn top(&self) -> Option<&RankedCandidate> {
        self.ranked.first()
    }

    /// Finds a ranked candidate by its fragmentation.
    pub fn find(&self, fragmentation: &Fragmentation) -> Option<&RankedCandidate> {
        self.ranked
            .iter()
            .find(|r| &r.cost.fragmentation == fragmentation)
    }
}

/// The legacy borrowing advisor handle. Deprecated: use the owned
/// [`crate::Warlock`] session facade instead.
#[deprecated(
    since = "0.2.0",
    note = "use the owned `warlock::Warlock` session facade (`Warlock::builder()`)"
)]
#[derive(Debug, Clone)]
pub struct Advisor<'a> {
    schema: &'a StarSchema,
    system: &'a SystemConfig,
    mix: &'a QueryMix,
    config: AdvisorConfig,
    scheme: BitmapScheme,
    skew: SkewModel,
}

#[allow(deprecated)]
impl<'a> Advisor<'a> {
    /// Assembles an advisor, validating every input.
    pub fn new(
        schema: &'a StarSchema,
        system: &'a SystemConfig,
        mix: &'a QueryMix,
        config: AdvisorConfig,
    ) -> Result<Self, AdvisorError> {
        let (scheme, skew) = engine::validate(schema, system, mix, &config)
            .map_err(crate::WarlockError::into_advisor_error)?;
        Ok(Self {
            schema,
            system,
            mix,
            config,
            scheme,
            skew,
        })
    }

    /// The schema under advisement.
    #[inline]
    pub fn schema(&self) -> &StarSchema {
        self.schema
    }

    /// The system configuration.
    #[inline]
    pub fn system(&self) -> &SystemConfig {
        self.system
    }

    /// The query mix.
    #[inline]
    pub fn mix(&self) -> &QueryMix {
        self.mix
    }

    /// The advisor configuration.
    #[inline]
    pub fn config(&self) -> &AdvisorConfig {
        &self.config
    }

    /// The derived bitmap scheme.
    #[inline]
    pub fn scheme(&self) -> &BitmapScheme {
        &self.scheme
    }

    /// Overrides the bitmap scheme (interactive tuning: "the user may
    /// decide to exclude some of the suggested bitmap indices").
    pub fn with_scheme(mut self, scheme: BitmapScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// The skew model in effect.
    #[inline]
    pub fn skew(&self) -> &SkewModel {
        &self.skew
    }

    /// The threshold context derived from the system configuration.
    pub fn threshold_context(&self) -> ThresholdContext {
        engine::threshold_context(self.schema, self.system, &self.config)
    }

    /// Runs the full prediction pipeline.
    pub fn run(&self) -> AdvisorReport {
        engine::run(
            self.schema,
            self.system,
            self.mix,
            &self.config,
            &self.scheme,
            None,
        )
    }

    /// Evaluates a single candidate outside the ranking pipeline.
    pub fn evaluate(&self, fragmentation: &Fragmentation) -> CandidateCost {
        // Kept on the legacy handle for benches that evaluate thousands
        // of candidates: construct the model once per call, as before.
        CostModel::new(self.schema, self.system, &self.scheme, self.mix)
            .with_fact_index(self.config.fact_index)
            .expect("fact index validated when the advisor was built")
            .evaluate(fragmentation)
    }

    /// Produces the detailed Fig.-2-style statistic for one candidate.
    pub fn analyze(&self, fragmentation: &Fragmentation) -> FragmentationAnalysis {
        engine::analyze(
            self.schema,
            self.system,
            self.mix,
            &self.config,
            &self.scheme,
            fragmentation,
        )
    }

    /// Computes the physical allocation plan for one candidate.
    pub fn plan_allocation(&self, fragmentation: &Fragmentation) -> AllocationPlan {
        engine::plan_allocation(
            self.schema,
            self.system,
            self.mix,
            &self.config,
            &self.scheme,
            &self.skew,
            fragmentation,
        )
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use warlock_schema::{apb1_like_schema, Apb1Config};
    use warlock_workload::apb1_like_mix;

    fn fixture() -> (StarSchema, SystemConfig, QueryMix) {
        (
            apb1_like_schema(Apb1Config::default()).unwrap(),
            SystemConfig::default_2001(16),
            apb1_like_mix().unwrap(),
        )
    }

    #[test]
    fn full_run_produces_ranked_candidates() {
        let (schema, system, mix) = fixture();
        let advisor = Advisor::new(&schema, &system, &mix, AdvisorConfig::default()).unwrap();
        let report = advisor.run();
        assert_eq!(report.enumerated, 168);
        assert!(report.evaluated > 0);
        assert!(!report.ranked.is_empty());
        assert!(report.ranked.len() <= 10);
        assert_eq!(report.evaluated + report.excluded.len(), 168);
        // Ranks are 1-based and ordered by response time.
        for (i, r) in report.ranked.iter().enumerate() {
            assert_eq!(r.rank, i + 1);
        }
        for w in report.ranked.windows(2) {
            assert!(w[0].cost.response_ms <= w[1].cost.response_ms);
        }
    }

    #[test]
    fn top_candidate_beats_baseline() {
        let (schema, system, mix) = fixture();
        let advisor = Advisor::new(&schema, &system, &mix, AdvisorConfig::default()).unwrap();
        let report = advisor.run();
        let top = report.top().unwrap();
        let baseline = advisor.evaluate(&Fragmentation::none());
        assert!(top.cost.response_ms < baseline.response_ms);
        assert!(top.cost.io_cost_ms <= baseline.io_cost_ms * 1.01);
    }

    #[test]
    fn exclusions_carry_reasons() {
        let (schema, system, mix) = fixture();
        let advisor = Advisor::new(&schema, &system, &mix, AdvisorConfig::default()).unwrap();
        let report = advisor.run();
        assert!(!report.excluded.is_empty());
        // The full bottom-level cross product must be excluded as too many
        // fragments.
        assert!(report
            .excluded
            .iter()
            .any(|e| matches!(e.reason, Exclusion::TooManyFragments { .. })));
        for e in &report.excluded {
            assert!(!e.label.is_empty());
        }
    }

    #[test]
    fn validation_errors_surface() {
        let (schema, system, mix) = fixture();
        let bad = AdvisorConfig {
            top_n: 0,
            ..Default::default()
        };
        assert!(matches!(
            Advisor::new(&schema, &system, &mix, bad).unwrap_err(),
            AdvisorError::Config(_)
        ));

        let bad = AdvisorConfig {
            fact_index: 5,
            ..Default::default()
        };
        assert!(matches!(
            Advisor::new(&schema, &system, &mix, bad).unwrap_err(),
            AdvisorError::Config(_)
        ));

        let bad = AdvisorConfig {
            skew: Some(vec![warlock_skew::DimensionSkew::UNIFORM]),
            ..Default::default()
        };
        assert!(matches!(
            Advisor::new(&schema, &system, &mix, bad).unwrap_err(),
            AdvisorError::Skew(_)
        ));

        let mut bad_system = system;
        bad_system.disk.transfer_mb_per_s = 0.0;
        assert!(matches!(
            Advisor::new(&schema, &bad_system, &mix, AdvisorConfig::default()).unwrap_err(),
            AdvisorError::System(_)
        ));
    }

    #[test]
    fn report_lookup_by_fragmentation() {
        let (schema, system, mix) = fixture();
        let advisor = Advisor::new(&schema, &system, &mix, AdvisorConfig::default()).unwrap();
        let report = advisor.run();
        let top = report.top().unwrap();
        let found = report.find(&top.cost.fragmentation).unwrap();
        assert_eq!(found.rank, 1);
        assert!(report
            .find(&Fragmentation::from_pairs(&[(0, 5), (1, 1)]).unwrap())
            .is_none());
    }

    #[test]
    fn deterministic_runs() {
        let (schema, system, mix) = fixture();
        let advisor = Advisor::new(&schema, &system, &mix, AdvisorConfig::default()).unwrap();
        let a = advisor.run();
        let b = advisor.run();
        assert_eq!(a, b);
    }

    #[test]
    fn max_dimensionality_limits_enumeration() {
        let (schema, system, mix) = fixture();
        let config = AdvisorConfig {
            max_dimensionality: 1,
            ..Default::default()
        };
        let advisor = Advisor::new(&schema, &system, &mix, config).unwrap();
        let report = advisor.run();
        assert_eq!(report.enumerated, 13);
        for r in &report.ranked {
            assert!(r.cost.fragmentation.dimensionality() <= 1);
        }
    }
}
