//! The prediction pipeline's report types.
//!
//! An [`AdvisorReport`] is what one full pipeline run produces: the
//! twofold-ranked candidate list, a bounded per-reason summary of the
//! threshold-excluded candidates, and bookkeeping counters. The
//! deprecated borrowing `Advisor<'a>` handle that used to live here is
//! gone — the owned [`crate::Warlock`] session facade is the one way to
//! run the pipeline.
//!
//! Pre-streaming, the report kept **every** excluded candidate, so its
//! size was O(candidate space) — the summary keeps exact per-reason
//! counts plus a capped number of sample candidates per reason
//! ([`ExcludedSummary::SAMPLES_PER_REASON`]), in enumeration order, so
//! the report stays small and deterministic at any worker count and
//! chunk size.

use warlock_bitmap::BitmapScheme;
use warlock_cost::CandidateCost;
use warlock_fragment::{Exclusion, Fragmentation};

/// A candidate excluded by the thresholds, with its reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExcludedCandidate {
    /// The excluded fragmentation.
    pub fragmentation: Fragmentation,
    /// Human-readable candidate label.
    pub label: String,
    /// Why it was excluded.
    pub reason: Exclusion,
}

/// All exclusions sharing one reason kind: the exact count plus the
/// first few sample candidates (in enumeration order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExclusionGroup {
    /// The machine-readable reason tag ([`Exclusion::kind`]).
    pub kind: &'static str,
    /// How many candidates were excluded for this reason in total.
    pub count: usize,
    /// The first [`ExcludedSummary::SAMPLES_PER_REASON`] excluded
    /// candidates, in enumeration order.
    pub samples: Vec<ExcludedCandidate>,
}

/// The bounded exclusion record of one pipeline run: exact per-reason
/// counts plus capped samples, grouped in first-seen enumeration order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExcludedSummary {
    total: usize,
    groups: Vec<ExclusionGroup>,
}

impl ExcludedSummary {
    /// Samples retained per exclusion reason.
    pub const SAMPLES_PER_REASON: usize = 8;

    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one exclusion. `sample` is only invoked while the
    /// reason's sample list has room, so callers can defer building
    /// the (label-carrying) sample record.
    pub fn record(&mut self, reason: Exclusion, sample: impl FnOnce() -> ExcludedCandidate) {
        self.total += 1;
        let kind = reason.kind();
        let group = match self.groups.iter_mut().find(|g| g.kind == kind) {
            Some(group) => group,
            None => {
                self.groups.push(ExclusionGroup {
                    kind,
                    count: 0,
                    samples: Vec::new(),
                });
                self.groups.last_mut().expect("just pushed")
            }
        };
        group.count += 1;
        if group.samples.len() < Self::SAMPLES_PER_REASON {
            group.samples.push(sample());
        }
    }

    /// Whether [`record`](Self::record) would still invoke the sample
    /// closure for `reason`. Sample lists only grow, so once this
    /// returns `false` a caller staging data for the sample record may
    /// drop it early.
    pub fn wants_sample(&self, reason: &Exclusion) -> bool {
        let kind = reason.kind();
        match self.groups.iter().find(|g| g.kind == kind) {
            Some(group) => group.samples.len() < Self::SAMPLES_PER_REASON,
            None => true,
        }
    }

    /// Total number of excluded candidates (exact, not capped).
    #[inline]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Whether no candidate was excluded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The per-reason groups, in first-seen enumeration order.
    #[inline]
    pub fn groups(&self) -> &[ExclusionGroup] {
        &self.groups
    }

    /// Every retained sample across all reasons, in group order.
    pub fn samples(&self) -> impl Iterator<Item = &ExcludedCandidate> {
        self.groups.iter().flat_map(|g| g.samples.iter())
    }

    /// The count recorded for `kind` (0 when the reason never fired).
    pub fn count_of(&self, kind: &str) -> usize {
        self.groups
            .iter()
            .find(|g| g.kind == kind)
            .map_or(0, |g| g.count)
    }
}

/// One recommended fragmentation with its evaluated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedCandidate {
    /// Position in the final ranking (1-based).
    pub rank: usize,
    /// Human-readable label, e.g. `product.class × time.month`.
    pub label: String,
    /// Full evaluated cost.
    pub cost: CandidateCost,
}

/// The advisor's output: the ranked candidate list plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct AdvisorReport {
    /// Top fragmentations after the twofold ranking, best first.
    pub ranked: Vec<RankedCandidate>,
    /// Bounded per-reason summary of the threshold-excluded candidates.
    pub excluded: ExcludedSummary,
    /// Candidates that were fully costed (survived thresholds).
    pub evaluated: usize,
    /// Candidates enumerated in total.
    pub enumerated: usize,
    /// The bitmap scheme the evaluation used.
    pub scheme: BitmapScheme,
}

impl AdvisorReport {
    /// The best-ranked candidate, if any survived.
    pub fn top(&self) -> Option<&RankedCandidate> {
        self.ranked.first()
    }

    /// Finds a ranked candidate by its fragmentation.
    pub fn find(&self, fragmentation: &Fragmentation) -> Option<&RankedCandidate> {
        self.ranked
            .iter()
            .find(|r| &r.cost.fragmentation == fragmentation)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::AdvisorConfig;
    use crate::Warlock;
    use warlock_fragment::{Exclusion, Fragmentation};
    use warlock_schema::{apb1_like_schema, Apb1Config};
    use warlock_storage::SystemConfig;
    use warlock_workload::apb1_like_mix;

    fn session_with(config: AdvisorConfig) -> Warlock {
        Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .mix(apb1_like_mix().unwrap())
            .config(config)
            .build()
            .unwrap()
    }

    #[test]
    fn full_run_produces_ranked_candidates() {
        let report = session_with(AdvisorConfig::default()).run().unwrap();
        assert_eq!(report.enumerated, 168);
        assert!(report.evaluated > 0);
        assert!(!report.ranked.is_empty());
        assert!(report.ranked.len() <= 10);
        assert_eq!(report.evaluated + report.excluded.total(), 168);
        // Ranks are 1-based and ordered by response time.
        for (i, r) in report.ranked.iter().enumerate() {
            assert_eq!(r.rank, i + 1);
        }
        for w in report.ranked.windows(2) {
            assert!(w[0].cost.response_ms <= w[1].cost.response_ms);
        }
    }

    #[test]
    fn top_candidate_beats_baseline() {
        let session = session_with(AdvisorConfig::default());
        let report = session.run().unwrap();
        let top = report.top().unwrap();
        let baseline = session.evaluate(&Fragmentation::none()).unwrap();
        assert!(top.cost.response_ms < baseline.response_ms);
        assert!(top.cost.io_cost_ms <= baseline.io_cost_ms * 1.01);
    }

    #[test]
    fn exclusions_carry_reasons() {
        let report = session_with(AdvisorConfig::default()).run().unwrap();
        assert!(!report.excluded.is_empty());
        // The full bottom-level cross product must be excluded as too many
        // fragments.
        assert!(report.excluded.count_of("too_many_fragments") > 0);
        assert!(report
            .excluded
            .samples()
            .any(|e| matches!(e.reason, Exclusion::TooManyFragments { .. })));
        for e in report.excluded.samples() {
            assert!(!e.label.is_empty());
        }
        // Counts are exact while samples are capped per reason.
        for group in report.excluded.groups() {
            assert!(group.samples.len() <= crate::ExcludedSummary::SAMPLES_PER_REASON);
            assert!(group.count >= group.samples.len());
        }
        let summed: usize = report.excluded.groups().iter().map(|g| g.count).sum();
        assert_eq!(summed, report.excluded.total());
    }

    #[test]
    fn report_lookup_by_fragmentation() {
        let report = session_with(AdvisorConfig::default()).run().unwrap();
        let top = report.top().unwrap();
        let found = report.find(&top.cost.fragmentation).unwrap();
        assert_eq!(found.rank, 1);
        assert!(report
            .find(&Fragmentation::from_pairs(&[(0, 5), (1, 1)]).unwrap())
            .is_none());
    }

    #[test]
    fn deterministic_runs() {
        let session = session_with(AdvisorConfig::default());
        let a = session.run().unwrap();
        let b = session.run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn max_dimensionality_limits_enumeration() {
        let report = session_with(AdvisorConfig {
            max_dimensionality: 1,
            ..Default::default()
        })
        .run()
        .unwrap();
        assert_eq!(report.enumerated, 13);
        for r in &report.ranked {
            assert!(r.cost.fragmentation.dimensionality() <= 1);
        }
    }
}
