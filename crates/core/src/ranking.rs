//! The twofold candidate ranking.
//!
//! "WARLOCK uses a simple heuristic preferring fragmentations reducing
//! overall I/O requirements … it first determines the overall I/O access
//! cost for the considered query mix. Subsequently, the leading X%
//! fragmentations are ranked with respect to the overall I/O response time
//! they achieve." (§3.2)

use warlock_cost::CandidateCost;

/// Applies the twofold ranking to evaluated candidates.
///
/// Phase 1 sorts by `io_cost_ms` (total device work — the throughput
/// proxy) and keeps the leading `top_x_percent`, but never fewer than
/// `min_keep`. Phase 2 re-sorts the survivors by `response_ms`. Ties fall
/// back to the other metric, then to fewer fragments (less metadata),
/// keeping the order fully deterministic.
pub fn twofold_rank(
    mut costs: Vec<CandidateCost>,
    top_x_percent: f64,
    min_keep: usize,
) -> Vec<CandidateCost> {
    // Phase 1: throughput filter.
    costs.sort_by(|a, b| {
        a.io_cost_ms
            .total_cmp(&b.io_cost_ms)
            .then(a.response_ms.total_cmp(&b.response_ms))
            .then(a.num_fragments.cmp(&b.num_fragments))
    });
    let keep = ((costs.len() as f64 * top_x_percent / 100.0).ceil() as usize)
        .max(min_keep)
        .min(costs.len());
    costs.truncate(keep);

    // Phase 2: response-time ranking of the survivors.
    costs.sort_by(|a, b| {
        a.response_ms
            .total_cmp(&b.response_ms)
            .then(a.io_cost_ms.total_cmp(&b.io_cost_ms))
            .then(a.num_fragments.cmp(&b.num_fragments))
    });
    costs
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_fragment::Fragmentation;

    fn cost(io: f64, rt: f64, frags: u64) -> CandidateCost {
        CandidateCost {
            fragmentation: Fragmentation::none(),
            num_fragments: frags,
            io_cost_ms: io,
            response_ms: rt,
            total_ios: 0.0,
            total_pages: 0.0,
            per_query: Vec::new(),
        }
    }

    #[test]
    fn filters_by_io_then_ranks_by_response() {
        // 10 candidates; keep 20 % = 2 with the lowest I/O cost; of those
        // the better *response* wins even though its I/O cost is higher.
        let mut candidates = vec![
            cost(10.0, 50.0, 1), // low io, slow response
            cost(11.0, 20.0, 2), // slightly worse io, fast response
        ];
        for i in 0..8 {
            candidates.push(cost(100.0 + i as f64, 5.0, 3 + i));
        }
        let ranked = twofold_rank(candidates, 20.0, 1);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].response_ms, 20.0);
        assert_eq!(ranked[1].response_ms, 50.0);
        // The fast-response / high-io candidates were filtered in phase 1.
    }

    #[test]
    fn min_keep_overrides_small_percentages() {
        let candidates: Vec<_> = (0..10).map(|i| cost(i as f64, 0.0, i)).collect();
        let ranked = twofold_rank(candidates, 1.0, 5);
        assert_eq!(ranked.len(), 5);
    }

    #[test]
    fn hundred_percent_keeps_everything() {
        let candidates: Vec<_> = (0..7).map(|i| cost(i as f64, 10.0 - i as f64, i)).collect();
        let ranked = twofold_rank(candidates, 100.0, 1);
        assert_eq!(ranked.len(), 7);
        // Pure response ordering.
        for w in ranked.windows(2) {
            assert!(w[0].response_ms <= w[1].response_ms);
        }
    }

    #[test]
    fn deterministic_tie_breaking() {
        let candidates = vec![cost(1.0, 1.0, 5), cost(1.0, 1.0, 2), cost(1.0, 1.0, 9)];
        let ranked = twofold_rank(candidates, 100.0, 1);
        let frags: Vec<u64> = ranked.iter().map(|c| c.num_fragments).collect();
        assert_eq!(frags, vec![2, 5, 9]);
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(twofold_rank(Vec::new(), 10.0, 5).is_empty());
    }

    #[test]
    fn keep_never_exceeds_population() {
        let candidates = vec![cost(1.0, 1.0, 1), cost(2.0, 2.0, 2)];
        let ranked = twofold_rank(candidates, 10.0, 100);
        assert_eq!(ranked.len(), 2);
    }
}
