//! The twofold candidate ranking.
//!
//! "WARLOCK uses a simple heuristic preferring fragmentations reducing
//! overall I/O requirements … it first determines the overall I/O access
//! cost for the considered query mix. Subsequently, the leading X%
//! fragmentations are ranked with respect to the overall I/O response time
//! they achieve." (§3.2)
//!
//! Two implementations share the same semantics:
//!
//! * [`twofold_rank`] — the materialized reference: takes every cost at
//!   once, sorts twice. O(n) memory.
//! * [`StreamingRank`] — the bounded-memory accumulator the streaming
//!   pipeline uses: costs are pushed one at a time and only the
//!   phase-1 survivors are retained, so memory never holds the full
//!   cost vector. Its output is **bit-identical** to [`twofold_rank`]
//!   over the same push sequence.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use warlock_cost::CandidateCost;

/// Applies the twofold ranking to evaluated candidates.
///
/// Phase 1 sorts by `io_cost_ms` (total device work — the throughput
/// proxy) and keeps the leading `top_x_percent`, but never fewer than
/// `min_keep`. Phase 2 re-sorts the survivors by `response_ms`. Ties fall
/// back to the other metric, then to fewer fragments (less metadata),
/// keeping the order fully deterministic.
pub fn twofold_rank(
    mut costs: Vec<CandidateCost>,
    top_x_percent: f64,
    min_keep: usize,
) -> Vec<CandidateCost> {
    // Phase 1: throughput filter.
    costs.sort_by(|a, b| {
        a.io_cost_ms
            .total_cmp(&b.io_cost_ms)
            .then(a.response_ms.total_cmp(&b.response_ms))
            .then(a.num_fragments.cmp(&b.num_fragments))
    });
    let keep = ((costs.len() as f64 * top_x_percent / 100.0).ceil() as usize)
        .max(min_keep)
        .min(costs.len());
    costs.truncate(keep);

    // Phase 2: response-time ranking of the survivors.
    costs.sort_by(|a, b| {
        a.response_ms
            .total_cmp(&b.response_ms)
            .then(a.io_cost_ms.total_cmp(&b.io_cost_ms))
            .then(a.num_fragments.cmp(&b.num_fragments))
    });
    costs
}

/// One retained phase-1 survivor. The heap is a max-heap on the
/// phase-1 key (worst survivor on top, ready for eviction); `idx` is
/// the push order, reproducing the stable-sort tie-break of the
/// materialized reference. Costs are held shared so the streaming
/// pipeline can park the same allocation in the evaluation memo and
/// the heap without a deep copy.
#[derive(Debug, Clone)]
struct Survivor {
    cost: Arc<CandidateCost>,
    idx: usize,
}

impl Survivor {
    /// The phase-1 ordering: I/O cost, then response, then fragment
    /// count, then push order — a total order, so the "leading X%" set
    /// is uniquely determined.
    fn phase1_cmp(&self, other: &Self) -> Ordering {
        self.cost
            .io_cost_ms
            .total_cmp(&other.cost.io_cost_ms)
            .then(self.cost.response_ms.total_cmp(&other.cost.response_ms))
            .then(self.cost.num_fragments.cmp(&other.cost.num_fragments))
            .then(self.idx.cmp(&other.idx))
    }
}

impl PartialEq for Survivor {
    fn eq(&self, other: &Self) -> bool {
        self.phase1_cmp(other) == Ordering::Equal
    }
}
impl Eq for Survivor {}
impl PartialOrd for Survivor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Survivor {
    fn cmp(&self, other: &Self) -> Ordering {
        self.phase1_cmp(other)
    }
}

/// A bounded-memory accumulator reproducing [`twofold_rank`] exactly
/// over a stream of candidate costs.
///
/// Costs are [`push`](Self::push)ed in enumeration order together with
/// an upper bound on how many more *may* still arrive (the streaming
/// pipeline knows this exactly from
/// [`CandidateSource::remaining`](warlock_fragment::CandidateSource::remaining)).
/// The accumulator retains only candidates that could still make the
/// phase-1 cut: with `n` pushed and at most `r` to come, the final keep
/// count can never exceed `max(min_keep, ⌈(n + r)·X%⌉)`, so anything
/// ranked below that bound is discarded immediately. The retention
/// capacity therefore *shrinks* toward the exact `⌈seen·X%⌉` phase-1
/// survivor count as the stream drains, and peak memory is
/// `O(max(min_keep, ⌈bound·X%⌉))` — never the full cost vector.
///
/// Overestimating `remaining` is always safe (it only delays
/// evictions); underestimating it can evict a candidate the exact
/// ranking would have kept.
#[derive(Debug, Clone)]
pub struct StreamingRank {
    top_x_percent: f64,
    min_keep: usize,
    pushed: usize,
    heap: BinaryHeap<Survivor>,
}

impl StreamingRank {
    /// An empty accumulator with the twofold-ranking knobs of
    /// [`twofold_rank`].
    pub fn new(top_x_percent: f64, min_keep: usize) -> Self {
        Self {
            top_x_percent,
            min_keep,
            pushed: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// The phase-1 keep count for a population of `n`.
    fn keep_for(&self, n: usize) -> usize {
        ((n as f64 * self.top_x_percent / 100.0).ceil() as usize).max(self.min_keep)
    }

    /// Feeds the next evaluated candidate. `remaining` is an upper
    /// bound on how many more costs may still be pushed; `0` means this
    /// is definitely the last one.
    pub fn push(&mut self, cost: CandidateCost, remaining: u128) {
        self.push_shared(Arc::new(cost), remaining);
    }

    /// [`push`](Self::push) for a cost that is already shared (e.g.
    /// parked in an evaluation memo) — avoids the deep copy.
    pub fn push_shared(&mut self, cost: Arc<CandidateCost>, remaining: u128) {
        let idx = self.pushed;
        self.pushed += 1;
        self.heap.push(Survivor { cost, idx });
        // The largest population this stream can still reach. Saturates
        // for astronomically large bounds, which simply disables
        // eviction until the horizon shrinks into range.
        let bound = usize::try_from(u128::from(self.pushed as u64).saturating_add(remaining))
            .unwrap_or(usize::MAX);
        let capacity = self.keep_for(bound);
        while self.heap.len() > capacity {
            self.heap.pop();
        }
    }

    /// Costs pushed so far.
    #[inline]
    pub fn seen(&self) -> usize {
        self.pushed
    }

    /// Candidates currently retained (the phase-1 survivor bound).
    #[inline]
    pub fn retained(&self) -> usize {
        self.heap.len()
    }

    /// Finishes the stream: trims to the exact phase-1 keep count and
    /// returns the survivors in phase-2 order — bit-identical to
    /// [`twofold_rank`] over the same pushes.
    pub fn finish(mut self) -> Vec<CandidateCost> {
        let keep = self.keep_for(self.pushed).min(self.pushed);
        while self.heap.len() > keep {
            self.heap.pop();
        }
        let mut survivors: Vec<Survivor> = self.heap.into_vec();
        // Phase 2: response-time ranking; ties fall back to the other
        // metric, then fewer fragments, then enumeration order (the
        // stable-sort order of the materialized reference).
        survivors.sort_by(|a, b| {
            a.cost
                .response_ms
                .total_cmp(&b.cost.response_ms)
                .then(a.cost.io_cost_ms.total_cmp(&b.cost.io_cost_ms))
                .then(a.cost.num_fragments.cmp(&b.cost.num_fragments))
                .then(a.idx.cmp(&b.idx))
        });
        survivors
            .into_iter()
            .map(|s| Arc::try_unwrap(s.cost).unwrap_or_else(|shared| (*shared).clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_fragment::Fragmentation;

    fn cost(io: f64, rt: f64, frags: u64) -> CandidateCost {
        CandidateCost {
            fragmentation: Fragmentation::none(),
            num_fragments: frags,
            io_cost_ms: io,
            response_ms: rt,
            total_ios: 0.0,
            total_pages: 0.0,
            per_query: Vec::new(),
        }
    }

    #[test]
    fn filters_by_io_then_ranks_by_response() {
        // 10 candidates; keep 20 % = 2 with the lowest I/O cost; of those
        // the better *response* wins even though its I/O cost is higher.
        let mut candidates = vec![
            cost(10.0, 50.0, 1), // low io, slow response
            cost(11.0, 20.0, 2), // slightly worse io, fast response
        ];
        for i in 0..8 {
            candidates.push(cost(100.0 + i as f64, 5.0, 3 + i));
        }
        let ranked = twofold_rank(candidates, 20.0, 1);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].response_ms, 20.0);
        assert_eq!(ranked[1].response_ms, 50.0);
        // The fast-response / high-io candidates were filtered in phase 1.
    }

    #[test]
    fn min_keep_overrides_small_percentages() {
        let candidates: Vec<_> = (0..10).map(|i| cost(i as f64, 0.0, i)).collect();
        let ranked = twofold_rank(candidates, 1.0, 5);
        assert_eq!(ranked.len(), 5);
    }

    #[test]
    fn hundred_percent_keeps_everything() {
        let candidates: Vec<_> = (0..7).map(|i| cost(i as f64, 10.0 - i as f64, i)).collect();
        let ranked = twofold_rank(candidates, 100.0, 1);
        assert_eq!(ranked.len(), 7);
        // Pure response ordering.
        for w in ranked.windows(2) {
            assert!(w[0].response_ms <= w[1].response_ms);
        }
    }

    #[test]
    fn deterministic_tie_breaking() {
        let candidates = vec![cost(1.0, 1.0, 5), cost(1.0, 1.0, 2), cost(1.0, 1.0, 9)];
        let ranked = twofold_rank(candidates, 100.0, 1);
        let frags: Vec<u64> = ranked.iter().map(|c| c.num_fragments).collect();
        assert_eq!(frags, vec![2, 5, 9]);
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(twofold_rank(Vec::new(), 10.0, 5).is_empty());
    }

    #[test]
    fn keep_never_exceeds_population() {
        let candidates = vec![cost(1.0, 1.0, 1), cost(2.0, 2.0, 2)];
        let ranked = twofold_rank(candidates, 10.0, 100);
        assert_eq!(ranked.len(), 2);
    }

    /// A deterministic pseudo-random cost population with deliberate
    /// duplicates, exercising every tie-break level.
    fn synthetic_costs(n: usize, seed: u64) -> Vec<CandidateCost> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| {
                // Small value ranges force frequent exact ties.
                let io = (next() % 7) as f64;
                let rt = (next() % 5) as f64;
                let frags = next() % 4;
                cost(io, rt, frags)
            })
            .collect()
    }

    fn streamed(
        costs: &[CandidateCost],
        x: f64,
        min_keep: usize,
        slack: u128,
    ) -> Vec<CandidateCost> {
        let mut rank = StreamingRank::new(x, min_keep);
        for (i, c) in costs.iter().enumerate() {
            let remaining = (costs.len() - i - 1) as u128 + slack;
            rank.push(c.clone(), remaining);
        }
        rank.finish()
    }

    #[test]
    fn streaming_rank_matches_twofold_exactly() {
        for seed in 0..20u64 {
            for (x, min_keep) in [(10.0, 1), (10.0, 10), (1.0, 3), (100.0, 1), (37.5, 2)] {
                for n in [0usize, 1, 5, 50, 333] {
                    let costs = synthetic_costs(n, seed);
                    let reference = twofold_rank(costs.clone(), x, min_keep);
                    let stream = streamed(&costs, x, min_keep, 0);
                    assert_eq!(
                        stream, reference,
                        "seed={seed} x={x} min_keep={min_keep} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn overestimated_remaining_is_still_exact() {
        // The pipeline's remaining-hint counts candidates that will be
        // excluded before costing — an overestimate must never change
        // the result, only retention.
        for slack in [1u128, 10, 1_000_000, u128::MAX / 2] {
            let costs = synthetic_costs(200, 7);
            let reference = twofold_rank(costs.clone(), 10.0, 5);
            assert_eq!(streamed(&costs, 10.0, 5, slack), reference, "slack={slack}");
        }
    }

    #[test]
    fn retention_is_bounded_by_the_horizon() {
        // 1000 costs, X = 10 %, exact remaining: retention may never
        // exceed ⌈horizon·X%⌉ and ends at exactly the phase-1 keep.
        let costs = synthetic_costs(1000, 3);
        let mut rank = StreamingRank::new(10.0, 5);
        for (i, c) in costs.iter().enumerate() {
            rank.push(c.clone(), (costs.len() - i - 1) as u128);
            assert!(
                rank.retained() <= 100 + 1,
                "retained {} at {i}",
                rank.retained()
            );
        }
        assert_eq!(rank.seen(), 1000);
        assert_eq!(rank.retained(), 100);
        assert_eq!(rank.finish().len(), 100);
    }

    #[test]
    fn streaming_rank_empty_stream() {
        assert!(StreamingRank::new(10.0, 5).finish().is_empty());
    }
}
