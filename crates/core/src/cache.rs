//! Per-session memoization of candidate evaluations.
//!
//! What-if tuning (§3.3) re-runs the whole prediction pipeline against a
//! perturbed input set, and interactive sessions issue the same
//! variations repeatedly. Re-costing a candidate is only necessary when
//! an input that feeds the cost model actually changed, so [`EvalCache`]
//! memoizes per-candidate pipeline outcomes keyed by
//! `(fingerprint of system/mix/scheme/thresholds, fragmentation)`.
//!
//! The fingerprint (see `CostModel::fingerprint`) covers *every* input
//! the outcome depends on, so entries from different what-if variations
//! — and from different snapshots of the same session family — coexist
//! without invalidating one another: `what_if_disks(64)` twice re-costs
//! nothing the second time, returning to the baseline after a sweep is
//! free, and a what-if priced on one `Warlock` clone is warm on every
//! other clone. Mutating a session handle (`set_system`/`set_mix`/
//! `set_config`) swaps in a new snapshot with a new fingerprint and
//! leaves the shared cache untouched, so sibling clones stay warm;
//! `invalidate()` clears it explicitly, and the entry cap bounds memory
//! across long reconfiguration histories.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, Mutex};

use warlock_cost::{CandidateCost, ClassCost};
use warlock_fragment::{Exclusion, Fragmentation};

/// One memoized pipeline outcome for a candidate: the exclusion the
/// thresholds raised, an evaluated (weighted) cost, or the unweighted
/// per-class cost rows. Payloads are shared (`Arc`), so a cache hit —
/// and the insert right after a fresh evaluation — is a
/// reference-count bump, never a deep copy of the candidate's cost
/// breakdown.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CachedOutcome {
    /// The thresholds excluded the candidate.
    Excluded(Exclusion),
    /// The candidate survived and was costed under a specific mix
    /// weighting (the single-candidate `evaluate` path).
    Cost(Arc<CandidateCost>),
    /// The candidate survived; its per-class costs are memoized
    /// **unweighted** (classes in configured-mix order), so a pure
    /// re-weight of the mix recombines them under the new shares
    /// instead of re-costing — the ranking pipeline's memo under its
    /// weight-free structure fingerprint.
    Classes {
        /// The candidate's fragment count (not reconstructible from
        /// the rows alone).
        num_fragments: u64,
        /// Per-class unweighted cost rows, in configured-mix order.
        rows: Arc<Vec<ClassCost>>,
    },
}

/// FNV-1a. Candidate keys are a handful of bytes and probed twice per
/// cold evaluation, where SipHash's finalization dominates; FNV keeps
/// the probe cost proportional to the key size.
#[derive(Debug, Clone)]
struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

type FnvBuild = BuildHasherDefault<FnvHasher>;

/// Observable counters of an [`EvalCache`](crate::Warlock::cache_stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalCacheStats {
    /// Memoized candidate outcomes currently held.
    pub entries: usize,
    /// Lookups answered from the cache since the session was built (or
    /// the cache last cleared).
    pub hits: u64,
    /// Lookups that required a fresh evaluation.
    pub misses: u64,
}

#[derive(Debug, Clone, Default)]
struct Inner {
    /// Outcomes grouped by input fingerprint, then candidate — the
    /// two-level shape lets a probe borrow the candidate instead of
    /// cloning it into a tuple key.
    map: HashMap<u128, HashMap<Fragmentation, CachedOutcome, FnvBuild>, FnvBuild>,
    entries: usize,
    hits: u64,
    misses: u64,
}

/// The candidate-evaluation memo shared by every clone of a session.
/// Interior-mutable and lock-protected, so concurrent clones can serve
/// `&self` evaluations from several threads; the lock is held only for
/// individual probes/inserts, never across an evaluation.
#[derive(Debug, Default)]
pub(crate) struct EvalCache {
    inner: Mutex<Inner>,
}

/// Entry cap: a full APB-1-like run memoizes ~170 outcomes, so this
/// allows hundreds of distinct what-if variations before the cache
/// resets rather than growing without bound.
const MAX_ENTRIES: usize = 1 << 16;

impl EvalCache {
    /// Returns the memoized outcome for `(fingerprint, fragmentation)`,
    /// updating the hit/miss counters.
    pub(crate) fn lookup(
        &self,
        fingerprint: u128,
        fragmentation: &Fragmentation,
    ) -> Option<CachedOutcome> {
        let mut inner = self.inner.lock().expect("eval cache poisoned");
        let found = inner
            .map
            .get(&fingerprint)
            .and_then(|per_fp| per_fp.get(fragmentation))
            .cloned();
        match &found {
            Some(_) => inner.hits += 1,
            None => inner.misses += 1,
        }
        found
    }

    /// Memoizes `outcome`; resets the map first if it is at capacity.
    pub(crate) fn insert(
        &self,
        fingerprint: u128,
        fragmentation: Fragmentation,
        outcome: CachedOutcome,
    ) {
        self.insert_batch(fingerprint, std::iter::once((fragmentation, outcome)));
    }

    /// Memoizes a batch of outcomes under one lock acquisition — the
    /// streaming pipeline uses this once per evaluated chunk instead of
    /// locking per candidate.
    pub(crate) fn insert_batch(
        &self,
        fingerprint: u128,
        entries: impl Iterator<Item = (Fragmentation, CachedOutcome)>,
    ) {
        let mut inner = self.inner.lock().expect("eval cache poisoned");
        let expected = entries.size_hint().0;
        if expected > 1 {
            inner.map.entry(fingerprint).or_default().reserve(expected);
        }
        for (fragmentation, outcome) in entries {
            if inner.entries >= MAX_ENTRIES {
                inner.map.clear();
                inner.entries = 0;
            }
            if inner
                .map
                .entry(fingerprint)
                .or_default()
                .insert(fragmentation, outcome)
                .is_none()
            {
                inner.entries += 1;
            }
        }
    }

    /// Whether any outcome is memoized under `fingerprint`. A run whose
    /// fingerprint bucket is empty at the start can skip per-candidate
    /// probes entirely: enumeration never repeats a candidate, so its
    /// own inserts can never be hit within the same run. Lookups skipped
    /// this way are accounted through [`Self::record_misses`].
    pub(crate) fn has_entries(&self, fingerprint: u128) -> bool {
        let inner = self.inner.lock().expect("eval cache poisoned");
        inner.map.get(&fingerprint).is_some_and(|m| !m.is_empty())
    }

    /// Counts `n` cache misses without probing — the statistics
    /// complement of the skipped lookups described on
    /// [`Self::has_entries`].
    pub(crate) fn record_misses(&self, n: u64) {
        let mut inner = self.inner.lock().expect("eval cache poisoned");
        inner.misses += n;
    }

    /// Drops every entry and resets the counters.
    pub(crate) fn clear(&self) {
        let mut inner = self.inner.lock().expect("eval cache poisoned");
        *inner = Inner::default();
    }

    /// Current counters.
    pub(crate) fn stats(&self) -> EvalCacheStats {
        let inner = self.inner.lock().expect("eval cache poisoned");
        EvalCacheStats {
            entries: inner.entries,
            hits: inner.hits,
            misses: inner.misses,
        }
    }
}

impl Clone for EvalCache {
    fn clone(&self) -> Self {
        let inner = self.inner.lock().expect("eval cache poisoned").clone();
        Self {
            inner: Mutex::new(inner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frag(pairs: &[(u16, u16)]) -> Fragmentation {
        Fragmentation::from_pairs(pairs).unwrap()
    }

    #[test]
    fn lookup_miss_then_hit() {
        let cache = EvalCache::default();
        let f = frag(&[(0, 1)]);
        assert_eq!(cache.lookup(7, &f), None);
        cache.insert(
            7,
            f.clone(),
            CachedOutcome::Excluded(Exclusion::FewerFragmentsThanDisks {
                fragments: 1,
                disks: 2,
            }),
        );
        assert!(cache.lookup(7, &f).is_some());
        // Same candidate under a different fingerprint is a different entry.
        assert_eq!(cache.lookup(8, &f), None);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = EvalCache::default();
        let f = frag(&[]);
        cache.insert(
            1,
            f.clone(),
            CachedOutcome::Excluded(Exclusion::FewerFragmentsThanDisks {
                fragments: 1,
                disks: 2,
            }),
        );
        let _ = cache.lookup(1, &f);
        cache.clear();
        assert_eq!(cache.stats(), EvalCacheStats::default());
    }

    #[test]
    fn concurrent_probes_and_inserts_are_safe() {
        let cache = EvalCache::default();
        std::thread::scope(|scope| {
            for t in 0..4u16 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..50u16 {
                        let f = frag(&[(t, i % 4)]);
                        let _ = cache.lookup(u128::from(i % 7), &f);
                        cache.insert(
                            u128::from(i % 7),
                            f,
                            CachedOutcome::Excluded(Exclusion::FewerFragmentsThanDisks {
                                fragments: 1,
                                disks: 2,
                            }),
                        );
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 4 * 50);
        assert!(stats.entries > 0);
    }

    #[test]
    fn entries_count_distinct_outcomes_across_fingerprints() {
        let cache = EvalCache::default();
        let f = frag(&[(0, 0)]);
        let outcome = CachedOutcome::Excluded(Exclusion::FewerFragmentsThanDisks {
            fragments: 1,
            disks: 2,
        });
        cache.insert(1, f.clone(), outcome.clone());
        cache.insert(1, f.clone(), outcome.clone()); // overwrite, not a new entry
        cache.insert(2, f.clone(), outcome.clone());
        cache.insert(2, frag(&[(0, 1)]), outcome);
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn clone_is_a_deep_copy() {
        let cache = EvalCache::default();
        let f = frag(&[(0, 0)]);
        cache.insert(
            1,
            f.clone(),
            CachedOutcome::Excluded(Exclusion::FewerFragmentsThanDisks {
                fragments: 1,
                disks: 2,
            }),
        );
        let copy = cache.clone();
        cache.clear();
        assert_eq!(copy.stats().entries, 1);
        assert_eq!(cache.stats().entries, 0);
    }
}
