//! Per-session memoization of candidate evaluations.
//!
//! What-if tuning (§3.3) re-runs the whole prediction pipeline against a
//! perturbed input set, and interactive sessions issue the same
//! variations repeatedly. Re-costing a candidate is only necessary when
//! an input that feeds the cost model actually changed, so [`EvalCache`]
//! memoizes per-candidate pipeline outcomes keyed by
//! `(fingerprint of system/mix/scheme/thresholds, fragmentation)`.
//!
//! The fingerprint (see `CostModel::fingerprint`) covers *every* input
//! the outcome depends on, so entries from different what-if variations
//! — and from different snapshots of the same session family — coexist
//! without invalidating one another: `what_if_disks(64)` twice re-costs
//! nothing the second time, returning to the baseline after a sweep is
//! free, and a what-if priced on one `Warlock` clone is warm on every
//! other clone. Mutating a session handle (`set_system`/`set_mix`/
//! `set_config`) swaps in a new snapshot with a new fingerprint and
//! leaves the shared cache untouched, so sibling clones stay warm;
//! `invalidate()` clears it explicitly, and the entry cap bounds memory
//! across long reconfiguration histories.

use std::collections::HashMap;
use std::sync::Mutex;

use warlock_cost::CandidateCost;
use warlock_fragment::{Exclusion, Fragmentation};

/// One memoized pipeline outcome for a candidate: either the exclusion
/// the thresholds raised, or its evaluated cost.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CachedOutcome {
    /// The thresholds excluded the candidate.
    Excluded(Exclusion),
    /// The candidate survived and was costed.
    Cost(CandidateCost),
}

/// Observable counters of an [`EvalCache`](crate::Warlock::cache_stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalCacheStats {
    /// Memoized candidate outcomes currently held.
    pub entries: usize,
    /// Lookups answered from the cache since the session was built (or
    /// the cache last cleared).
    pub hits: u64,
    /// Lookups that required a fresh evaluation.
    pub misses: u64,
}

#[derive(Debug, Clone, Default)]
struct Inner {
    /// Outcomes grouped by input fingerprint, then candidate — the
    /// two-level shape lets a probe borrow the candidate instead of
    /// cloning it into a tuple key.
    map: HashMap<u128, HashMap<Fragmentation, CachedOutcome>>,
    entries: usize,
    hits: u64,
    misses: u64,
}

/// The candidate-evaluation memo shared by every clone of a session.
/// Interior-mutable and lock-protected, so concurrent clones can serve
/// `&self` evaluations from several threads; the lock is held only for
/// individual probes/inserts, never across an evaluation.
#[derive(Debug, Default)]
pub(crate) struct EvalCache {
    inner: Mutex<Inner>,
}

/// Entry cap: a full APB-1-like run memoizes ~170 outcomes, so this
/// allows hundreds of distinct what-if variations before the cache
/// resets rather than growing without bound.
const MAX_ENTRIES: usize = 1 << 16;

impl EvalCache {
    /// Returns the memoized outcome for `(fingerprint, fragmentation)`,
    /// updating the hit/miss counters.
    pub(crate) fn lookup(
        &self,
        fingerprint: u128,
        fragmentation: &Fragmentation,
    ) -> Option<CachedOutcome> {
        let mut inner = self.inner.lock().expect("eval cache poisoned");
        let found = inner
            .map
            .get(&fingerprint)
            .and_then(|per_fp| per_fp.get(fragmentation))
            .cloned();
        match &found {
            Some(_) => inner.hits += 1,
            None => inner.misses += 1,
        }
        found
    }

    /// Memoizes `outcome`; resets the map first if it is at capacity.
    pub(crate) fn insert(
        &self,
        fingerprint: u128,
        fragmentation: Fragmentation,
        outcome: CachedOutcome,
    ) {
        let mut inner = self.inner.lock().expect("eval cache poisoned");
        if inner.entries >= MAX_ENTRIES {
            inner.map.clear();
            inner.entries = 0;
        }
        if inner
            .map
            .entry(fingerprint)
            .or_default()
            .insert(fragmentation, outcome)
            .is_none()
        {
            inner.entries += 1;
        }
    }

    /// Drops every entry and resets the counters.
    pub(crate) fn clear(&self) {
        let mut inner = self.inner.lock().expect("eval cache poisoned");
        *inner = Inner::default();
    }

    /// Current counters.
    pub(crate) fn stats(&self) -> EvalCacheStats {
        let inner = self.inner.lock().expect("eval cache poisoned");
        EvalCacheStats {
            entries: inner.entries,
            hits: inner.hits,
            misses: inner.misses,
        }
    }
}

impl Clone for EvalCache {
    fn clone(&self) -> Self {
        let inner = self.inner.lock().expect("eval cache poisoned").clone();
        Self {
            inner: Mutex::new(inner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frag(pairs: &[(u16, u16)]) -> Fragmentation {
        Fragmentation::from_pairs(pairs).unwrap()
    }

    #[test]
    fn lookup_miss_then_hit() {
        let cache = EvalCache::default();
        let f = frag(&[(0, 1)]);
        assert_eq!(cache.lookup(7, &f), None);
        cache.insert(
            7,
            f.clone(),
            CachedOutcome::Excluded(Exclusion::FewerFragmentsThanDisks {
                fragments: 1,
                disks: 2,
            }),
        );
        assert!(cache.lookup(7, &f).is_some());
        // Same candidate under a different fingerprint is a different entry.
        assert_eq!(cache.lookup(8, &f), None);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = EvalCache::default();
        let f = frag(&[]);
        cache.insert(
            1,
            f.clone(),
            CachedOutcome::Excluded(Exclusion::FewerFragmentsThanDisks {
                fragments: 1,
                disks: 2,
            }),
        );
        let _ = cache.lookup(1, &f);
        cache.clear();
        assert_eq!(cache.stats(), EvalCacheStats::default());
    }

    #[test]
    fn concurrent_probes_and_inserts_are_safe() {
        let cache = EvalCache::default();
        std::thread::scope(|scope| {
            for t in 0..4u16 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..50u16 {
                        let f = frag(&[(t, i % 4)]);
                        let _ = cache.lookup(u128::from(i % 7), &f);
                        cache.insert(
                            u128::from(i % 7),
                            f,
                            CachedOutcome::Excluded(Exclusion::FewerFragmentsThanDisks {
                                fragments: 1,
                                disks: 2,
                            }),
                        );
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 4 * 50);
        assert!(stats.entries > 0);
    }

    #[test]
    fn entries_count_distinct_outcomes_across_fingerprints() {
        let cache = EvalCache::default();
        let f = frag(&[(0, 0)]);
        let outcome = CachedOutcome::Excluded(Exclusion::FewerFragmentsThanDisks {
            fragments: 1,
            disks: 2,
        });
        cache.insert(1, f.clone(), outcome.clone());
        cache.insert(1, f.clone(), outcome.clone()); // overwrite, not a new entry
        cache.insert(2, f.clone(), outcome.clone());
        cache.insert(2, frag(&[(0, 1)]), outcome);
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn clone_is_a_deep_copy() {
        let cache = EvalCache::default();
        let f = frag(&[(0, 0)]);
        cache.insert(
            1,
            f.clone(),
            CachedOutcome::Excluded(Exclusion::FewerFragmentsThanDisks {
                fragments: 1,
                disks: 2,
            }),
        );
        let copy = cache.clone();
        cache.clear();
        assert_eq!(copy.stats().entries, 1);
        assert_eq!(cache.stats().entries, 0);
    }
}
