//! Physical allocation planning (the tool's allocation output).
//!
//! "The physical allocation of a fragmentation specifies the distribution
//! of fact table and bitmap fragments down to single fragments as well as
//! the resulting disk occupancy and access distribution. Furthermore, a
//! disk access profile per query class is visualized." (§3.3)

use warlock_alloc::{
    allocate, partition_coaccess, profile_response_ms, Allocation, AllocationPolicy, CoAccessGraph,
    DiskAccessProfile, OccupancyStats,
};
use warlock_bitmap::{estimate, BitmapScheme};
use warlock_cost::CostModel;
use warlock_fragment::{FragmentLayout, Fragmentation};
use warlock_schema::StarSchema;
use warlock_skew::SkewModel;
use warlock_storage::SystemConfig;
use warlock_workload::{QueryClass, QueryMix};

use crate::error::WarlockError;

/// Disk access profile of one query class on the planned allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDiskProfile {
    /// Query class name.
    pub name: String,
    /// Per-disk busy time / fragment counts of a representative instance.
    pub profile: DiskAccessProfile,
    /// Exact response time on this allocation (ms).
    pub response_ms: f64,
}

/// The complete physical allocation plan of one fragmentation.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationPlan {
    /// Candidate label.
    pub label: String,
    /// The fragment → disk placement (sizes include bitmap fragments).
    pub allocation: Allocation,
    /// Disk occupancy balance statistics.
    pub occupancy: OccupancyStats,
    /// Total fact bytes placed.
    pub fact_bytes: u64,
    /// Total bitmap bytes placed.
    pub bitmap_bytes: u64,
    /// Whether fragment sizes were skewed enough for the policy to pick
    /// the greedy scheme.
    pub used_greedy: bool,
    /// Per-class disk access profiles on this allocation.
    pub per_class: Vec<ClassDiskProfile>,
}

impl AllocationPlan {
    /// Builds the plan: skew-aware fragment sizes (fact + bitmaps), the
    /// policy-selected placement, and per-class access profiles over a
    /// representative query instance (the first `n` member values of every
    /// predicate).
    ///
    /// # Errors
    ///
    /// [`WarlockError::Internal`] if the (already validated) fact index
    /// is rejected by the cost model.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        schema: &StarSchema,
        system: &SystemConfig,
        scheme: &BitmapScheme,
        mix: &QueryMix,
        skew: &SkewModel,
        fragmentation: &Fragmentation,
        policy: AllocationPolicy,
        fact_index: usize,
    ) -> Result<Self, WarlockError> {
        let layout = FragmentLayout::new(schema, fragmentation.clone(), fact_index);
        let row_bytes = u64::from(schema.fact_row_bytes(fact_index));
        let page = system.page;
        let vectors = scheme.total_vectors_stored();

        // Per-fragment bytes: fact pages + bitmap pages, both from the
        // fragment's (possibly skewed) row count.
        let rows = layout.fragment_rows(schema, skew);
        let mut fact_bytes = 0u64;
        let mut bitmap_bytes = 0u64;
        let sizes: Vec<u64> = rows
            .iter()
            .map(|&r| {
                let fact = page.bytes_for_pages(page.pages_for_rows(r, row_bytes as u32));
                let bitmap = page.bytes_for_pages(vectors * estimate::vector_pages(r, page));
                fact_bytes += fact;
                bitmap_bytes += bitmap;
                fact + bitmap
            })
            .collect();

        // The cost model and representative per-class fragment sets come
        // before placement: the graph-partition policy builds its
        // co-access graph from them, and the profiles reuse them after.
        let model = CostModel::new(schema, system, scheme, mix)
            .with_fact_index(fact_index)
            .map_err(|e| {
                WarlockError::internal(format!("validated fact index rejected in planning: {e}"))
            })?;
        let cost = model.evaluate_layout(&layout);
        let avg_rows = layout.uniform_rows_per_fragment().max(1.0);
        let processors = system.architecture.total_processors();
        let overhead = system.architecture.overhead_factor();

        // Per-class weighted fragment accesses of a representative bound
        // instance; each fragment's service time scales with its actual
        // (possibly skewed) size.
        let class_access: Vec<Vec<(usize, f64)>> = mix
            .iter()
            .zip(&cost.per_query)
            .map(|((class, _), qc)| {
                representative_fragments(schema, &layout, class)
                    .iter()
                    .map(|&f| {
                        let scale = rows[f as usize] as f64 / avg_rows;
                        (f as usize, qc.per_fragment_ms * scale)
                    })
                    .collect()
            })
            .collect();

        let allocation = match policy {
            AllocationPolicy::GraphPartition { seed } => {
                // Fragment co-access graph: one group per query class
                // (edge weight = the class's joint heat share × device
                // time), node heat = the class-weighted service time.
                let mut builder = CoAccessGraph::builder(sizes);
                for ((_, share), accessed) in mix.iter().zip(&class_access) {
                    let group: Vec<u32> = accessed.iter().map(|&(f, _)| f as u32).collect();
                    let joint: f64 = accessed.iter().map(|&(_, ms)| ms).sum();
                    builder.add_group(&group, share * joint);
                    for &(f, ms) in accessed {
                        builder.add_heat(f as u32, share * ms);
                    }
                }
                partition_coaccess(&builder.build(), system.num_disks, seed)
            }
            _ => allocate(sizes, system.num_disks, policy),
        };
        let occupancy = allocation.occupancy_stats();
        let used_greedy = allocation.scheme() == warlock_alloc::AllocationScheme::GreedySize;

        let per_class = mix
            .iter()
            .zip(&class_access)
            .map(|((class, _), weighted)| {
                let profile = DiskAccessProfile::build_weighted(&allocation, weighted);
                let response_ms = profile_response_ms(&profile, processors, overhead);
                ClassDiskProfile {
                    name: class.name().to_owned(),
                    profile,
                    response_ms,
                }
            })
            .collect();

        Ok(Self {
            label: fragmentation.label(schema),
            allocation,
            occupancy,
            fact_bytes,
            bitmap_bytes,
            used_greedy,
            per_class,
        })
    }
}

/// Deterministic representative instance of a query class: every predicate
/// selects its first `n` member values. Returns the accessed fragment
/// indices under `layout`.
pub fn representative_fragments(
    schema: &StarSchema,
    layout: &FragmentLayout,
    class: &QueryClass,
) -> Vec<u64> {
    let fragmentation = layout.fragmentation();
    let attrs = fragmentation.attributes();
    let mut per_dim: Vec<Vec<u64>> = Vec::with_capacity(attrs.len());
    for (i, &attr) in attrs.iter().enumerate() {
        let dim = schema.dimension(attr.dimension).expect("validated layout");
        let frag_card = fragmentation.effective_cardinality(schema, i);
        let matched = match class.predicate(attr.dimension) {
            None => (0..frag_card).collect(),
            Some(pred) => {
                let query_card = dim.cardinality(pred.level).expect("validated class");
                if query_card <= frag_card {
                    let per = frag_card / query_card;
                    (0..pred.values.min(query_card))
                        .flat_map(|v| v * per..(v + 1) * per)
                        .collect()
                } else {
                    let per = query_card / frag_card;
                    let mut out: Vec<u64> =
                        (0..pred.values.min(query_card)).map(|v| v / per).collect();
                    out.dedup();
                    out
                }
            }
        };
        per_dim.push(matched);
    }
    let mut fragments = Vec::new();
    let mut counters = vec![0usize; per_dim.len()];
    let mut coords = vec![0u64; per_dim.len()];
    loop {
        for (i, &c) in counters.iter().enumerate() {
            coords[i] = per_dim[i][c];
        }
        fragments.push(layout.index_of(&coords));
        let mut pos = counters.len();
        loop {
            if pos == 0 {
                fragments.sort_unstable();
                return fragments;
            }
            pos -= 1;
            counters[pos] += 1;
            if counters[pos] < per_dim[pos].len() {
                break;
            }
            counters[pos] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_bitmap::SchemeConfig;
    use warlock_fragment::SkewModelExt;
    use warlock_schema::{apb1_like_schema, Apb1Config};
    use warlock_skew::DimensionSkew;
    use warlock_workload::{apb1_like_mix, DimensionPredicate};

    struct Fx {
        schema: StarSchema,
        system: SystemConfig,
        scheme: BitmapScheme,
        mix: QueryMix,
    }

    fn fx() -> Fx {
        let schema = apb1_like_schema(Apb1Config::default()).unwrap();
        let mix = apb1_like_mix().unwrap();
        let scheme = BitmapScheme::derive(&schema, &mix, SchemeConfig::default());
        let system = SystemConfig::default_2001(16);
        Fx {
            schema,
            system,
            scheme,
            mix,
        }
    }

    #[test]
    fn uniform_plan_uses_round_robin_and_balances() {
        let f = fx();
        let skew = f.schema.uniform_skew_model();
        let plan = AllocationPlan::build(
            &f.schema,
            &f.system,
            &f.scheme,
            &f.mix,
            &skew,
            &Fragmentation::from_pairs(&[(2, 2), (3, 0)]).unwrap(),
            AllocationPolicy::default(),
            0,
        )
        .unwrap();
        assert!(!plan.used_greedy);
        // 216 fragments over 16 disks: 14 vs 13.5 mean → 1.037 inherent.
        assert!(plan.occupancy.imbalance < 1.05);
        assert_eq!(plan.allocation.num_fragments(), 216);
        assert!(plan.fact_bytes > 0 && plan.bitmap_bytes > 0);
        assert_eq!(plan.per_class.len(), 10);
    }

    #[test]
    fn skewed_plan_switches_to_greedy_and_stays_balanced() {
        let f = fx();
        let skew = f.schema.skew_model(&[
            DimensionSkew::zipf(1.0),
            DimensionSkew::UNIFORM,
            DimensionSkew::UNIFORM,
            DimensionSkew::UNIFORM,
        ]);
        let frag = Fragmentation::from_pairs(&[(0, 1), (2, 2)]).unwrap(); // line × month
        let plan = AllocationPlan::build(
            &f.schema,
            &f.system,
            &f.scheme,
            &f.mix,
            &skew,
            &frag,
            AllocationPolicy::default(),
            0,
        )
        .unwrap();
        assert!(plan.used_greedy);
        // Greedy keeps occupancy within a few percent even under zipf(1).
        assert!(
            plan.occupancy.imbalance < 1.1,
            "imbalance {}",
            plan.occupancy.imbalance
        );
    }

    #[test]
    fn round_robin_under_skew_is_worse() {
        let f = fx();
        let skew = f.schema.skew_model(&[
            DimensionSkew::zipf(1.0),
            DimensionSkew::UNIFORM,
            DimensionSkew::UNIFORM,
            DimensionSkew::UNIFORM,
        ]);
        let frag = Fragmentation::from_pairs(&[(0, 1), (2, 2)]).unwrap();
        let rr = AllocationPlan::build(
            &f.schema,
            &f.system,
            &f.scheme,
            &f.mix,
            &skew,
            &frag,
            AllocationPolicy::RoundRobin,
            0,
        )
        .unwrap();
        let greedy = AllocationPlan::build(
            &f.schema,
            &f.system,
            &f.scheme,
            &f.mix,
            &skew,
            &frag,
            AllocationPolicy::GreedySize,
            0,
        )
        .unwrap();
        assert!(greedy.occupancy.imbalance <= rr.occupancy.imbalance + 1e-12);
    }

    #[test]
    fn profiles_report_declustering() {
        let f = fx();
        let skew = f.schema.uniform_skew_model();
        let plan = AllocationPlan::build(
            &f.schema,
            &f.system,
            &f.scheme,
            &f.mix,
            &skew,
            &Fragmentation::from_pairs(&[(2, 2), (3, 0)]).unwrap(),
            AllocationPolicy::default(),
            0,
        )
        .unwrap();
        // q06 (channel+month) touches exactly 1 fragment; q04 (year+line)
        // spreads over many.
        let q06 = plan
            .per_class
            .iter()
            .find(|c| c.name == "q06_channel_month")
            .unwrap();
        assert_eq!(q06.profile.disks_hit(), 1);
        let q04 = plan
            .per_class
            .iter()
            .find(|c| c.name == "q04_year_line")
            .unwrap();
        assert!(q04.profile.disks_hit() > 4);
        for c in &plan.per_class {
            assert!(c.response_ms > 0.0);
        }
    }

    #[test]
    fn graph_policy_builds_a_partition_plan() {
        let f = fx();
        let skew = f.schema.uniform_skew_model();
        let frag = Fragmentation::from_pairs(&[(2, 2), (3, 0)]).unwrap();
        let plan = AllocationPlan::build(
            &f.schema,
            &f.system,
            &f.scheme,
            &f.mix,
            &skew,
            &frag,
            AllocationPolicy::GraphPartition { seed: 0 },
            0,
        )
        .unwrap();
        // The APB-1-like mix has plenty of co-access, so the plan comes
        // from the partitioner proper, covers every fragment once, and
        // stays balanced.
        assert_eq!(
            plan.allocation.scheme(),
            warlock_alloc::AllocationScheme::GraphPartition
        );
        assert!(!plan.used_greedy);
        assert_eq!(plan.allocation.num_fragments(), 216);
        assert_eq!(
            plan.allocation.fragment_counts().iter().sum::<u32>(),
            216,
            "every fragment placed exactly once"
        );
        assert!(
            plan.occupancy.imbalance < 1.25,
            "imbalance {}",
            plan.occupancy.imbalance
        );
        // Byte-identical across rebuilds (same inputs, same seed).
        let again = AllocationPlan::build(
            &f.schema,
            &f.system,
            &f.scheme,
            &f.mix,
            &skew,
            &frag,
            AllocationPolicy::GraphPartition { seed: 0 },
            0,
        )
        .unwrap();
        assert_eq!(plan, again);
    }

    #[test]
    fn representative_fragments_expand_and_collapse() {
        let f = fx();
        let layout =
            FragmentLayout::new(&f.schema, Fragmentation::from_pairs(&[(2, 2)]).unwrap(), 0);
        // Quarter query (coarser): 1 value → 3 months.
        let q = warlock_workload::QueryClass::new("q").with(2, DimensionPredicate::point(1));
        assert_eq!(
            representative_fragments(&f.schema, &layout, &q),
            vec![0, 1, 2]
        );
        // Unreferenced: all 24.
        let q = warlock_workload::QueryClass::new("q").with(3, DimensionPredicate::point(0));
        assert_eq!(representative_fragments(&f.schema, &layout, &q).len(), 24);
    }
}
