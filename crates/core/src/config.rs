//! Advisor configuration.

use warlock_alloc::AllocationPolicy;
use warlock_bitmap::SchemeConfig;
use warlock_cost::KernelChoice;
use warlock_fragment::Thresholds;
use warlock_skew::DimensionSkew;

/// All knobs of one advisor run.
#[derive(Debug, Clone, PartialEq)]
pub struct AdvisorConfig {
    /// Candidate exclusion thresholds (prediction layer).
    pub thresholds: Thresholds,
    /// Bitmap scheme selection rules.
    pub scheme: SchemeConfig,
    /// Largest number of fragmentation dimensions to enumerate.
    pub max_dimensionality: usize,
    /// The twofold ranking keeps the leading `top_x_percent` of candidates
    /// by I/O cost before re-ranking by response time.
    pub top_x_percent: f64,
    /// Lower bound on candidates surviving the I/O-cost filter, so small
    /// candidate sets still produce a meaningful response-time ranking.
    pub min_keep: usize,
    /// Number of top fragmentations presented to the user.
    pub top_n: usize,
    /// Physical allocation policy for the recommended candidates.
    pub allocation_policy: AllocationPolicy,
    /// Per-dimension data skew (`None` = uniform everywhere).
    pub skew: Option<Vec<DimensionSkew>>,
    /// Which fact table to advise on.
    pub fact_index: usize,
    /// Worker threads for candidate evaluation: `0` = auto (all available
    /// cores, overridable via the `WARLOCK_PARALLELISM` environment
    /// variable), `1` = strictly serial, `n` = exactly `n` workers. Any
    /// setting produces bit-identical reports; the knob only trades
    /// wall-clock time for threads.
    pub parallelism: usize,
    /// Hard budget on the candidate space a single pipeline run may
    /// enumerate: `0` = unlimited, `n` = runs whose exact predicted
    /// space exceeds `n` candidates fail up front with
    /// [`crate::WarlockError::CandidateBudget`] instead of grinding (or,
    /// pre-streaming, exhausting memory). The check uses the source's
    /// exact space predictor, so no work is wasted before failing.
    pub max_candidates: u64,
    /// Candidates pulled from the lazy enumeration per evaluation round:
    /// `0` = auto (the `WARLOCK_CHUNK_SIZE` environment variable if set,
    /// otherwise a built-in default), `n` = exactly `n`. Any setting
    /// produces bit-identical reports; the knob only trades pipeline
    /// memory against fan-out batching.
    pub chunk_size: usize,
    /// Costing kernel backend for the batched evaluator: `Auto`
    /// resolves via the `WARLOCK_KERNEL` environment variable and then
    /// CPU feature detection; explicit `Scalar`/`Lanes`/`Avx2` pin a
    /// backend (`Avx2` degrades cleanly to `Lanes` off AVX2 hardware).
    /// Every setting produces bit-identical reports; the knob only
    /// trades instruction throughput.
    pub kernel: KernelChoice,
    /// Extra MDHF attribute range sizes to enumerate alongside the
    /// point candidates (empty = the paper's point-only space). Each
    /// option is applied to every fragmentation attribute whose
    /// fan-out it divides (the full fan-out is skipped — it duplicates
    /// the parent level).
    pub range_options: Vec<u64>,
    /// Resident-optimizer mode: when `true`, crossing the drift-enter
    /// threshold during [`crate::Warlock::observe`] triggers an
    /// incremental re-advise (adopt the observed mix, re-rank warm
    /// through the evaluation cache) and emits an
    /// [`crate::AdviceEvent`]. When `false` (the default), observation
    /// only tracks and reports drift.
    pub auto_advise: bool,
    /// Drift score above which the detector enters the `Drifting`
    /// state (strictly above; see
    /// [`DriftDetector`](warlock_workload::DriftDetector)).
    pub drift_enter: f64,
    /// Drift score below which the detector returns to `Stable`
    /// (strictly below). Must satisfy `0 <= drift_exit <= drift_enter
    /// <= 1` — the gap is the hysteresis band that prevents flapping.
    pub drift_exit: f64,
    /// Half-life of the observed-workload statistics window, in
    /// observed queries (not wall-clock): the weight of past traffic
    /// halves every `stats_half_life` queries.
    pub stats_half_life: f64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        Self {
            thresholds: Thresholds::default(),
            scheme: SchemeConfig::default(),
            max_dimensionality: 4,
            top_x_percent: 10.0,
            min_keep: 10,
            top_n: 10,
            allocation_policy: AllocationPolicy::default(),
            skew: None,
            fact_index: 0,
            parallelism: 0,
            max_candidates: 0,
            chunk_size: 0,
            kernel: KernelChoice::Auto,
            range_options: Vec::new(),
            auto_advise: false,
            drift_enter: 0.25,
            drift_exit: 0.10,
            stats_half_life: 1000.0,
        }
    }
}

impl AdvisorConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.top_x_percent > 0.0 && self.top_x_percent <= 100.0) {
            return Err(format!(
                "top_x_percent must be in (0, 100], got {}",
                self.top_x_percent
            ));
        }
        if self.top_n == 0 {
            return Err("top_n must be at least 1".into());
        }
        if self.min_keep == 0 {
            return Err("min_keep must be at least 1".into());
        }
        if self.range_options.iter().any(|&r| r < 2) {
            return Err("range_options must all be at least 2".into());
        }
        for (i, &r) in self.range_options.iter().enumerate() {
            if self.range_options[..i].contains(&r) {
                return Err(format!(
                    "range_options contains {r} twice (duplicates would enumerate \
                     the same candidates repeatedly)"
                ));
            }
        }
        if !(self.drift_enter.is_finite()
            && self.drift_exit.is_finite()
            && 0.0 <= self.drift_exit
            && self.drift_exit <= self.drift_enter
            && self.drift_enter <= 1.0)
        {
            return Err(format!(
                "drift thresholds must satisfy 0 <= drift_exit <= drift_enter <= 1, \
                 got drift_enter {} / drift_exit {}",
                self.drift_enter, self.drift_exit
            ));
        }
        if !(self.stats_half_life.is_finite() && self.stats_half_life > 0.0) {
            return Err(format!(
                "stats_half_life must be a finite positive query count, got {}",
                self.stats_half_life
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(AdvisorConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_knobs() {
        let c = AdvisorConfig {
            top_x_percent: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = AdvisorConfig {
            top_x_percent: 150.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = AdvisorConfig {
            top_n: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = AdvisorConfig {
            min_keep: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = AdvisorConfig {
            range_options: vec![2, 1],
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = AdvisorConfig {
            range_options: vec![2, 3, 2],
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = AdvisorConfig {
            drift_enter: 0.1,
            drift_exit: 0.3,
            ..Default::default()
        };
        assert!(c.validate().is_err(), "inverted drift thresholds");
        let c = AdvisorConfig {
            drift_enter: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err(), "enter above 1");
        let c = AdvisorConfig {
            drift_exit: f64::NAN,
            ..Default::default()
        };
        assert!(c.validate().is_err(), "non-finite exit");
        let c = AdvisorConfig {
            stats_half_life: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err(), "zero half-life");
    }

    #[test]
    fn streaming_knobs_validate() {
        let c = AdvisorConfig {
            max_candidates: 5000,
            chunk_size: 64,
            range_options: vec![2, 3, 5],
            ..Default::default()
        };
        assert!(c.validate().is_ok());
    }
}
