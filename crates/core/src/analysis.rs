//! Detailed per-fragmentation query analysis (the tool's Fig. 2 statistic).
//!
//! "It comprises a database statistic (#pages, #fragments, fragment
//! sizes), I/O access statistic (#accessed fragments and pages, #I/Os),
//! I/O response times and a prefetch granule suggestion." (§3.3)

use warlock_bitmap::{estimate, BitmapScheme};
use warlock_cost::{AccessPath, CostModel};
use warlock_fragment::{FragmentLayout, Fragmentation};
use warlock_schema::StarSchema;
use warlock_storage::SystemConfig;
use warlock_workload::QueryMix;

use crate::error::WarlockError;

/// Per-query-class analysis rows of one fragmentation.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassAnalysis {
    /// Query class name.
    pub name: String,
    /// Workload share of the class.
    pub share: f64,
    /// Expected fragments accessed.
    pub accessed_fragments: f64,
    /// Fact pages read.
    pub fact_pages: f64,
    /// Bitmap pages read.
    pub bitmap_pages: f64,
    /// Physical I/Os issued.
    pub ios: f64,
    /// Device busy time in milliseconds.
    pub busy_ms: f64,
    /// Estimated response time in milliseconds.
    pub response_ms: f64,
    /// Chosen access path.
    pub path: AccessPath,
    /// Rows the class selects.
    pub selected_rows: f64,
}

/// The full database + I/O statistic of one fragmentation.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentationAnalysis {
    /// Human-readable candidate label.
    pub label: String,
    /// Number of fragments.
    pub num_fragments: u64,
    /// Average rows per fragment.
    pub fragment_rows: u64,
    /// Pages per (average) fragment.
    pub fragment_pages: u64,
    /// Total fact pages of the table under this fragmentation.
    pub total_fact_pages: u64,
    /// Total stored bitmap pages of the scheme under this fragmentation.
    pub bitmap_stored_pages: u64,
    /// Suggested prefetch granule for fact fragments (pages).
    pub fact_prefetch: u32,
    /// Suggested prefetch granule for bitmap vectors (pages).
    pub bitmap_prefetch: u32,
    /// Workload-weighted device busy time per query (ms).
    pub weighted_busy_ms: f64,
    /// Workload-weighted response time per query (ms).
    pub weighted_response_ms: f64,
    /// Per-class rows.
    pub per_class: Vec<ClassAnalysis>,
}

impl FragmentationAnalysis {
    /// Builds the analysis of `fragmentation` under the given inputs.
    ///
    /// # Errors
    ///
    /// [`WarlockError::Internal`] if `fact_index` — validated when the
    /// session was built — is rejected by the cost model; a bug in
    /// WARLOCK, surfaced as an error so services degrade per-request.
    pub fn build(
        schema: &StarSchema,
        system: &SystemConfig,
        scheme: &BitmapScheme,
        mix: &QueryMix,
        fragmentation: &Fragmentation,
        fact_index: usize,
    ) -> Result<Self, WarlockError> {
        let layout = FragmentLayout::new(schema, fragmentation.clone(), fact_index);
        let model = CostModel::new(schema, system, scheme, mix)
            .with_fact_index(fact_index)
            .map_err(|e| {
                WarlockError::internal(format!("validated fact index rejected in analysis: {e}"))
            })?;
        let cost = model.evaluate_layout(&layout);

        let row_bytes = schema.fact_row_bytes(fact_index);
        let fragment_rows = (layout.uniform_rows_per_fragment().round() as u64).max(1);
        let fragment_pages = system.page.pages_for_rows(fragment_rows, row_bytes).max(1);
        let total_fact_pages = fragment_pages * layout.num_fragments();
        let bitmap_stored_pages = estimate::scheme_stored_pages(
            fragment_rows,
            layout.num_fragments(),
            scheme.total_vectors_stored(),
            system.page,
        );

        // Prefetch suggestion: the granules the cost model actually chose
        // (identical across classes — they depend only on object sizes).
        let (fact_prefetch, bitmap_prefetch) = cost
            .per_query
            .first()
            .map(|q| (q.fact_prefetch, q.bitmap_prefetch))
            .unwrap_or((1, 1));

        let per_class = mix
            .iter()
            .zip(&cost.per_query)
            .map(|((class, share), qc)| ClassAnalysis {
                name: class.name().to_owned(),
                share,
                accessed_fragments: qc.fragments_accessed,
                fact_pages: qc.fact_pages,
                bitmap_pages: qc.bitmap_pages,
                ios: qc.total_ios,
                busy_ms: qc.busy_ms,
                response_ms: qc.response_ms,
                path: qc.path,
                selected_rows: qc.selected_rows,
            })
            .collect();

        Ok(Self {
            label: fragmentation.label(schema),
            num_fragments: layout.num_fragments(),
            fragment_rows,
            fragment_pages,
            total_fact_pages,
            bitmap_stored_pages,
            fact_prefetch,
            bitmap_prefetch,
            weighted_busy_ms: cost.io_cost_ms,
            weighted_response_ms: cost.response_ms,
            per_class,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_bitmap::SchemeConfig;
    use warlock_schema::{apb1_like_schema, Apb1Config};
    use warlock_workload::apb1_like_mix;

    fn analysis(pairs: &[(u16, u16)]) -> FragmentationAnalysis {
        let schema = apb1_like_schema(Apb1Config::default()).unwrap();
        let mix = apb1_like_mix().unwrap();
        let scheme = BitmapScheme::derive(&schema, &mix, SchemeConfig::default());
        let system = SystemConfig::default_2001(16);
        let frag = if pairs.is_empty() {
            Fragmentation::none()
        } else {
            Fragmentation::from_pairs(pairs).unwrap()
        };
        FragmentationAnalysis::build(&schema, &system, &scheme, &mix, &frag, 0).unwrap()
    }

    #[test]
    fn database_statistic_is_consistent() {
        let a = analysis(&[(2, 2)]); // by month
        assert_eq!(a.num_fragments, 24);
        assert_eq!(a.label, "time.month");
        // 17 496 000 rows / 24 fragments.
        assert_eq!(a.fragment_rows, 729_000);
        // 146 rows per 8 KiB page (56-byte rows).
        assert_eq!(a.fragment_pages, 729_000u64.div_ceil(146));
        assert_eq!(a.total_fact_pages, a.fragment_pages * 24);
        assert!(a.bitmap_stored_pages > 0);
    }

    #[test]
    fn per_class_rows_cover_the_mix() {
        let a = analysis(&[(2, 2)]);
        assert_eq!(a.per_class.len(), 10);
        let share_sum: f64 = a.per_class.iter().map(|c| c.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
        for c in &a.per_class {
            assert!(c.accessed_fragments >= 1.0);
            assert!(c.busy_ms > 0.0);
            assert!(c.response_ms > 0.0);
            assert!(c.response_ms <= c.busy_ms + 1e-9);
        }
    }

    #[test]
    fn weighted_totals_match_per_class() {
        let a = analysis(&[(2, 1), (3, 0)]);
        let busy: f64 = a.per_class.iter().map(|c| c.share * c.busy_ms).sum();
        let rt: f64 = a.per_class.iter().map(|c| c.share * c.response_ms).sum();
        assert!((busy - a.weighted_busy_ms).abs() < 1e-9);
        assert!((rt - a.weighted_response_ms).abs() < 1e-9);
    }

    #[test]
    fn prefetch_suggestion_adapts() {
        let coarse = analysis(&[(2, 0)]); // 2 huge fragments
        let fine = analysis(&[(0, 4), (2, 1)]); // 7200 small fragments
        assert!(coarse.fact_prefetch >= fine.fact_prefetch);
        assert!(coarse.fragment_pages > fine.fragment_pages);
    }

    #[test]
    fn baseline_analysis() {
        let a = analysis(&[]);
        assert_eq!(a.num_fragments, 1);
        assert_eq!(a.label, "(unfragmented)");
        assert_eq!(a.total_fact_pages, a.fragment_pages);
    }
}
