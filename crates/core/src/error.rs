//! The unified error surface of the WARLOCK facade.
//!
//! Every substrate crate keeps its own precise error enum
//! ([`SchemaError`], [`CandidateError`], [`WorkloadError`], plus the
//! config-file and JSON layers); this module folds them into one
//! [`WarlockError`] so applications driving the advisor programmatically
//! can use `?` against a single type.

use std::fmt;

use warlock_fragment::CandidateError;
use warlock_json::JsonError;
use warlock_schema::SchemaError;
use warlock_workload::WorkloadError;

use crate::config_file::ConfigFileError;

/// Any error the WARLOCK facade can raise.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WarlockError {
    /// A required builder input was never provided.
    MissingInput {
        /// Which input (`"schema"`, `"system"` or `"mix"`).
        what: &'static str,
    },
    /// The star schema failed to build or validate.
    Schema(SchemaError),
    /// A fragmentation candidate was malformed.
    Candidate(CandidateError),
    /// The query mix does not validate against the schema.
    Workload(WorkloadError),
    /// The advisor configuration is inconsistent.
    Config(String),
    /// The system configuration is inconsistent.
    System(String),
    /// The skew configuration does not cover every dimension.
    Skew(String),
    /// A configuration file failed to parse.
    ConfigFile(ConfigFileError),
    /// A JSON document failed to parse or had the wrong shape.
    Json(JsonError),
    /// The candidate space of a pipeline run exceeds the configured
    /// [`crate::AdvisorConfig::max_candidates`] budget. Raised up front
    /// from the enumeration source's exact space predictor, before any
    /// candidate is generated or costed.
    CandidateBudget {
        /// The exact candidate-space size of the run.
        space: u128,
        /// The configured budget it exceeds.
        budget: u64,
    },
    /// A requested rank is outside the ranked candidate list.
    RankOutOfRange {
        /// The requested 1-based rank.
        rank: usize,
        /// How many candidates the ranking holds.
        available: usize,
    },
    /// A named query class is unknown to the current mix, or removing it
    /// would leave the mix empty.
    UnknownClass {
        /// The offending class name.
        name: String,
    },
    /// A request named a warehouse the registry does not hold.
    UnknownWarehouse {
        /// The offending warehouse name.
        name: String,
    },
    /// A warehouse with the same name is already loaded.
    DuplicateWarehouse {
        /// The offending warehouse name.
        name: String,
    },
    /// A hot-reload of a warehouse's configuration file failed; the
    /// warehouse keeps serving its previous snapshot.
    ReloadFailed {
        /// The warehouse whose reload failed.
        name: String,
        /// What actually went wrong (unreadable file, parse error,
        /// validation error, or no file associated with the warehouse).
        source: Box<WarlockError>,
    },
    /// An I/O error, e.g. while reading a configuration file.
    Io(String),
    /// An error raised while loading a specific file, with the offending
    /// path attached. The underlying cause is in `source`.
    AtPath {
        /// The file the failing operation was reading.
        path: String,
        /// What actually went wrong.
        source: Box<WarlockError>,
    },
    /// An internal invariant was violated — a bug in WARLOCK itself, not
    /// in the caller's inputs. Surfaced as an error (rather than a
    /// panic) so long-lived services degrade per-request instead of
    /// dying.
    Internal {
        /// Which invariant broke.
        what: String,
    },
}

impl fmt::Display for WarlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingInput { what } => {
                write!(f, "builder is missing the required `{what}` input")
            }
            Self::Schema(e) => write!(f, "schema: {e}"),
            Self::Candidate(e) => write!(f, "candidate: {e}"),
            Self::Workload(e) => write!(f, "workload: {e}"),
            Self::Config(msg) => write!(f, "advisor config: {msg}"),
            Self::System(msg) => write!(f, "system config: {msg}"),
            Self::Skew(msg) => write!(f, "skew config: {msg}"),
            Self::ConfigFile(e) => write!(f, "config file: {e}"),
            Self::Json(e) => write!(f, "{e}"),
            Self::CandidateBudget { space, budget } => {
                write!(
                    f,
                    "candidate space of {space} exceeds the configured budget of {budget} \
                     (raise `max_candidates`, lower `max_dimensionality`, or trim `range_options`)"
                )
            }
            Self::RankOutOfRange { rank, available } => {
                write!(f, "rank {rank} out of range (1..={available})")
            }
            Self::UnknownClass { name } => {
                write!(
                    f,
                    "query class `{name}` is not in the mix (or is its only class)"
                )
            }
            Self::UnknownWarehouse { name } => {
                write!(f, "no warehouse named `{name}` is loaded")
            }
            Self::DuplicateWarehouse { name } => {
                write!(f, "a warehouse named `{name}` is already loaded")
            }
            Self::ReloadFailed { name, source } => {
                write!(
                    f,
                    "reload of warehouse `{name}` failed (still serving the previous \
                     configuration): {source}"
                )
            }
            Self::Io(msg) => write!(f, "io: {msg}"),
            Self::AtPath { path, source } => write!(f, "{path}: {source}"),
            Self::Internal { what } => {
                write!(f, "internal invariant violated: {what} (please report)")
            }
        }
    }
}

impl std::error::Error for WarlockError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::AtPath { source, .. } | Self::ReloadFailed { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<SchemaError> for WarlockError {
    fn from(e: SchemaError) -> Self {
        Self::Schema(e)
    }
}

impl From<CandidateError> for WarlockError {
    fn from(e: CandidateError) -> Self {
        Self::Candidate(e)
    }
}

impl From<WorkloadError> for WarlockError {
    fn from(e: WorkloadError) -> Self {
        Self::Workload(e)
    }
}

impl From<ConfigFileError> for WarlockError {
    fn from(e: ConfigFileError) -> Self {
        Self::ConfigFile(e)
    }
}

impl From<JsonError> for WarlockError {
    fn from(e: JsonError) -> Self {
        Self::Json(e)
    }
}

impl From<std::io::Error> for WarlockError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

impl WarlockError {
    /// Constructs an [`WarlockError::Internal`] invariant failure.
    pub(crate) fn internal(what: impl Into<String>) -> Self {
        Self::Internal { what: what.into() }
    }

    /// Wraps `self` with the path of the file being loaded when it was
    /// raised.
    pub(crate) fn at_path(self, path: impl Into<String>) -> Self {
        Self::AtPath {
            path: path.into(),
            source: Box::new(self),
        }
    }

    /// A short machine-readable tag for the error variant, used by the
    /// `warlockd` wire protocol. [`WarlockError::AtPath`] reports the
    /// tag of its underlying cause.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::MissingInput { .. } => "missing_input",
            Self::Schema(_) => "schema",
            Self::Candidate(_) => "candidate",
            Self::Workload(_) => "workload",
            Self::Config(_) => "config",
            Self::System(_) => "system",
            Self::Skew(_) => "skew",
            Self::ConfigFile(_) => "config_file",
            Self::Json(_) => "json",
            Self::CandidateBudget { .. } => "candidate_budget",
            Self::RankOutOfRange { .. } => "rank_out_of_range",
            Self::UnknownClass { .. } => "unknown_class",
            Self::UnknownWarehouse { .. } => "unknown_warehouse",
            Self::DuplicateWarehouse { .. } => "duplicate_warehouse",
            Self::ReloadFailed { .. } => "reload_failed",
            Self::Io(_) => "io",
            Self::AtPath { source, .. } => source.kind(),
            Self::Internal { .. } => "internal",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_prefixed() {
        let e = WarlockError::MissingInput { what: "schema" };
        assert!(e.to_string().contains("schema"));
        let e = WarlockError::RankOutOfRange {
            rank: 12,
            available: 3,
        };
        assert_eq!(e.to_string(), "rank 12 out of range (1..=3)");
        let e = WarlockError::internal("candidate left unresolved");
        assert!(e.to_string().contains("internal invariant"));
        assert!(e.to_string().contains("candidate left unresolved"));
    }

    #[test]
    fn at_path_prefixes_and_delegates_kind() {
        let e = WarlockError::Io("no such file".into()).at_path("/etc/warlock.cfg");
        assert_eq!(e.to_string(), "/etc/warlock.cfg: io: no such file");
        assert_eq!(e.kind(), "io");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn substrate_errors_convert() {
        fn takes_anything(e: impl Into<WarlockError>) -> WarlockError {
            e.into()
        }
        assert!(matches!(
            takes_anything(SchemaError::NoDimensions),
            WarlockError::Schema(_)
        ));
        assert!(matches!(
            takes_anything(WorkloadError::EmptyMix),
            WarlockError::Workload(_)
        ));
        assert!(matches!(
            takes_anything(std::io::Error::new(std::io::ErrorKind::NotFound, "gone")),
            WarlockError::Io(_)
        ));
    }

    #[test]
    fn kinds_are_stable_wire_tags() {
        assert_eq!(WarlockError::Config("x".into()).kind(), "config");
        assert_eq!(
            WarlockError::UnknownClass { name: "q".into() }.kind(),
            "unknown_class"
        );
        assert_eq!(WarlockError::internal("x").kind(), "internal");
        assert_eq!(
            WarlockError::UnknownWarehouse { name: "w".into() }.kind(),
            "unknown_warehouse"
        );
        assert_eq!(
            WarlockError::DuplicateWarehouse { name: "w".into() }.kind(),
            "duplicate_warehouse"
        );
    }

    #[test]
    fn reload_failed_names_warehouse_and_carries_the_cause() {
        let e = WarlockError::ReloadFailed {
            name: "eu".into(),
            source: Box::new(WarlockError::Io("no such file".into())),
        };
        assert_eq!(e.kind(), "reload_failed");
        assert!(e.to_string().contains("`eu`"));
        assert!(e.to_string().contains("no such file"));
        assert!(e.to_string().contains("previous configuration"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
