//! The unified error surface of the WARLOCK facade.
//!
//! Every substrate crate keeps its own precise error enum
//! ([`SchemaError`], [`CandidateError`], [`WorkloadError`], plus the
//! config-file and JSON layers); this module folds them into one
//! [`WarlockError`] so applications driving the advisor programmatically
//! can use `?` against a single type.

use std::fmt;

use warlock_fragment::CandidateError;
use warlock_json::JsonError;
use warlock_schema::SchemaError;
use warlock_workload::WorkloadError;

use crate::advisor::AdvisorError;
use crate::config_file::ConfigFileError;

/// Any error the WARLOCK facade can raise.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WarlockError {
    /// A required builder input was never provided.
    MissingInput {
        /// Which input (`"schema"`, `"system"` or `"mix"`).
        what: &'static str,
    },
    /// The star schema failed to build or validate.
    Schema(SchemaError),
    /// A fragmentation candidate was malformed.
    Candidate(CandidateError),
    /// The query mix does not validate against the schema.
    Workload(WorkloadError),
    /// The advisor configuration is inconsistent.
    Config(String),
    /// The system configuration is inconsistent.
    System(String),
    /// The skew configuration does not cover every dimension.
    Skew(String),
    /// A configuration file failed to parse.
    ConfigFile(ConfigFileError),
    /// A JSON document failed to parse or had the wrong shape.
    Json(JsonError),
    /// A requested rank is outside the ranked candidate list.
    RankOutOfRange {
        /// The requested 1-based rank.
        rank: usize,
        /// How many candidates the ranking holds.
        available: usize,
    },
    /// An I/O error, e.g. while reading a configuration file.
    Io(String),
}

impl fmt::Display for WarlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingInput { what } => {
                write!(f, "builder is missing the required `{what}` input")
            }
            Self::Schema(e) => write!(f, "schema: {e}"),
            Self::Candidate(e) => write!(f, "candidate: {e}"),
            Self::Workload(e) => write!(f, "workload: {e}"),
            Self::Config(msg) => write!(f, "advisor config: {msg}"),
            Self::System(msg) => write!(f, "system config: {msg}"),
            Self::Skew(msg) => write!(f, "skew config: {msg}"),
            Self::ConfigFile(e) => write!(f, "config file: {e}"),
            Self::Json(e) => write!(f, "{e}"),
            Self::RankOutOfRange { rank, available } => {
                write!(f, "rank {rank} out of range (1..={available})")
            }
            Self::Io(msg) => write!(f, "io: {msg}"),
        }
    }
}

impl std::error::Error for WarlockError {}

impl From<SchemaError> for WarlockError {
    fn from(e: SchemaError) -> Self {
        Self::Schema(e)
    }
}

impl From<CandidateError> for WarlockError {
    fn from(e: CandidateError) -> Self {
        Self::Candidate(e)
    }
}

impl From<WorkloadError> for WarlockError {
    fn from(e: WorkloadError) -> Self {
        Self::Workload(e)
    }
}

impl From<ConfigFileError> for WarlockError {
    fn from(e: ConfigFileError) -> Self {
        Self::ConfigFile(e)
    }
}

impl From<JsonError> for WarlockError {
    fn from(e: JsonError) -> Self {
        Self::Json(e)
    }
}

impl From<std::io::Error> for WarlockError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

impl From<AdvisorError> for WarlockError {
    fn from(e: AdvisorError) -> Self {
        match e {
            AdvisorError::Config(msg) => Self::Config(msg),
            AdvisorError::System(msg) => Self::System(msg),
            AdvisorError::Workload(w) => Self::Workload(w),
            AdvisorError::Skew(msg) => Self::Skew(msg),
        }
    }
}

impl WarlockError {
    /// Maps back onto the legacy [`AdvisorError`] for the deprecated
    /// [`crate::Advisor`] shim. Variants the old enum cannot express
    /// collapse into `AdvisorError::Config`.
    pub(crate) fn into_advisor_error(self) -> AdvisorError {
        match self {
            Self::Config(msg) => AdvisorError::Config(msg),
            Self::System(msg) => AdvisorError::System(msg),
            Self::Workload(w) => AdvisorError::Workload(w),
            Self::Skew(msg) => AdvisorError::Skew(msg),
            other => AdvisorError::Config(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_prefixed() {
        let e = WarlockError::MissingInput { what: "schema" };
        assert!(e.to_string().contains("schema"));
        let e = WarlockError::RankOutOfRange {
            rank: 12,
            available: 3,
        };
        assert_eq!(e.to_string(), "rank 12 out of range (1..=3)");
    }

    #[test]
    fn substrate_errors_convert() {
        fn takes_anything(e: impl Into<WarlockError>) -> WarlockError {
            e.into()
        }
        assert!(matches!(
            takes_anything(SchemaError::NoDimensions),
            WarlockError::Schema(_)
        ));
        assert!(matches!(
            takes_anything(WorkloadError::EmptyMix),
            WarlockError::Workload(_)
        ));
        assert!(matches!(
            takes_anything(AdvisorError::Skew("x".into())),
            WarlockError::Skew(_)
        ));
        assert!(matches!(
            takes_anything(std::io::Error::new(std::io::ErrorKind::NotFound, "gone")),
            WarlockError::Io(_)
        ));
    }
}
