//! Plain-text and CSV rendering of advisor outputs.
//!
//! The original tool is a GUI; this reproduction renders the same content
//! — ranked candidate lists, the per-fragmentation query statistic, the
//! physical allocation scheme and disk access profiles — as fixed-width
//! text tables (for terminals and EXPERIMENTS.md) and CSV (for plotting).

use std::fmt::Write as _;

use crate::advisor::AdvisorReport;
use crate::allocation_plan::AllocationPlan;
use crate::analysis::FragmentationAnalysis;
use warlock_cost::AccessPath;

fn path_str(p: AccessPath) -> &'static str {
    match p {
        AccessPath::FullScan => "scan",
        AccessPath::BitmapFetch => "bitmap",
    }
}

/// Renders the ranked candidate list as a fixed-width table.
pub fn render_ranking(report: &AdvisorReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>4}  {:<40} {:>12} {:>14} {:>14} {:>12}",
        "rank", "fragmentation", "#fragments", "io-cost [ms]", "response [ms]", "pages"
    );
    let _ = writeln!(out, "{}", "-".repeat(102));
    for r in &report.ranked {
        let _ = writeln!(
            out,
            "{:>4}  {:<40} {:>12} {:>14.1} {:>14.1} {:>12.0}",
            r.rank,
            truncate(&r.label, 40),
            r.cost.num_fragments,
            r.cost.io_cost_ms,
            r.cost.response_ms,
            r.cost.total_pages,
        );
    }
    let _ = writeln!(
        out,
        "({} enumerated, {} evaluated, {} excluded)",
        report.enumerated,
        report.evaluated,
        report.excluded.total()
    );
    out
}

/// Renders the bounded exclusion summary: per-reason counts plus the
/// retained sample candidates.
pub fn render_excluded(report: &AdvisorReport) -> String {
    let mut out = String::new();
    for group in report.excluded.groups() {
        let _ = writeln!(out, "{} ({} candidates):", group.kind, group.count);
        for sample in &group.samples {
            let _ = writeln!(
                out,
                "  {:<50} {}",
                truncate(&sample.label, 50),
                sample.reason
            );
        }
        let elided = group.count.saturating_sub(group.samples.len());
        if elided > 0 {
            let _ = writeln!(out, "  … and {elided} more");
        }
    }
    let _ = writeln!(out, "({} candidates excluded)", report.excluded.total());
    out
}

/// Renders the ranked candidate list as CSV.
pub fn ranking_csv(report: &AdvisorReport) -> String {
    let mut out = String::from("rank,fragmentation,fragments,io_cost_ms,response_ms,ios,pages\n");
    for r in &report.ranked {
        let _ = writeln!(
            out,
            "{},{},{},{:.3},{:.3},{:.1},{:.1}",
            r.rank,
            r.label.replace(',', ";"),
            r.cost.num_fragments,
            r.cost.io_cost_ms,
            r.cost.response_ms,
            r.cost.total_ios,
            r.cost.total_pages,
        );
    }
    out
}

/// Renders the Fig.-2-style per-fragmentation statistic.
pub fn render_analysis(a: &FragmentationAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "fragmentation: {}", a.label);
    let _ = writeln!(
        out,
        "  database statistic : {} fragments x {} rows ({} pages each, {} fact pages total)",
        a.num_fragments, a.fragment_rows, a.fragment_pages, a.total_fact_pages
    );
    let _ = writeln!(
        out,
        "  bitmap statistic   : {} stored bitmap pages",
        a.bitmap_stored_pages
    );
    let _ = writeln!(
        out,
        "  prefetch suggestion: {} pages (fact), {} pages (bitmap)",
        a.fact_prefetch, a.bitmap_prefetch
    );
    let _ = writeln!(
        out,
        "  weighted           : {:.1} ms io-cost, {:.1} ms response",
        a.weighted_busy_ms, a.weighted_response_ms
    );
    let _ = writeln!(
        out,
        "  {:<30} {:>6} {:>10} {:>12} {:>12} {:>10} {:>11} {:>12} {:>7}",
        "query class",
        "share",
        "#frags",
        "fact pages",
        "bmp pages",
        "#I/Os",
        "busy [ms]",
        "resp [ms]",
        "path"
    );
    let _ = writeln!(out, "  {}", "-".repeat(118));
    for c in &a.per_class {
        let _ = writeln!(
            out,
            "  {:<30} {:>5.0}% {:>10.1} {:>12.0} {:>12.0} {:>10.0} {:>11.1} {:>12.1} {:>7}",
            truncate(&c.name, 30),
            c.share * 100.0,
            c.accessed_fragments,
            c.fact_pages,
            c.bitmap_pages,
            c.ios,
            c.busy_ms,
            c.response_ms,
            path_str(c.path),
        );
    }
    out
}

/// Renders the per-class analysis as CSV.
pub fn analysis_csv(a: &FragmentationAnalysis) -> String {
    let mut out = String::from(
        "class,share,accessed_fragments,fact_pages,bitmap_pages,ios,busy_ms,response_ms,path\n",
    );
    for c in &a.per_class {
        let _ = writeln!(
            out,
            "{},{:.4},{:.2},{:.1},{:.1},{:.1},{:.3},{:.3},{}",
            c.name,
            c.share,
            c.accessed_fragments,
            c.fact_pages,
            c.bitmap_pages,
            c.ios,
            c.busy_ms,
            c.response_ms,
            path_str(c.path),
        );
    }
    out
}

/// Renders the physical allocation plan: occupancy and access profiles.
pub fn render_allocation(plan: &AllocationPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "allocation for: {}", plan.label);
    let _ = writeln!(
        out,
        "  scheme: {} | fact {:.1} MiB | bitmaps {:.1} MiB",
        crate::policy_judge::scheme_name(plan.allocation.scheme()),
        plan.fact_bytes as f64 / (1024.0 * 1024.0),
        plan.bitmap_bytes as f64 / (1024.0 * 1024.0),
    );
    let occ = plan.allocation.occupancy();
    let counts = plan.allocation.fragment_counts();
    let _ = writeln!(
        out,
        "  occupancy: imbalance {:.3}, cv {:.3}, max {:.1} MiB, min {:.1} MiB",
        plan.occupancy.imbalance,
        plan.occupancy.cv,
        plan.occupancy.max_bytes as f64 / (1024.0 * 1024.0),
        plan.occupancy.min_bytes as f64 / (1024.0 * 1024.0),
    );
    let _ = writeln!(out, "  {:<6} {:>12} {:>12}", "disk", "MiB", "#fragments");
    for (d, (&bytes, &count)) in occ.iter().zip(&counts).enumerate() {
        let _ = writeln!(
            out,
            "  {:<6} {:>12.1} {:>12}",
            d,
            bytes as f64 / (1024.0 * 1024.0),
            count
        );
    }
    let _ = writeln!(out, "  disk access profile (representative instances):");
    let _ = writeln!(
        out,
        "  {:<30} {:>10} {:>12} {:>12}",
        "query class", "disks hit", "max [ms]", "resp [ms]"
    );
    for c in &plan.per_class {
        let _ = writeln!(
            out,
            "  {:<30} {:>10} {:>12.1} {:>12.1}",
            truncate(&c.name, 30),
            c.profile.disks_hit(),
            c.profile.max_ms(),
            c.response_ms,
        );
    }
    out
}

/// Renders the head-to-head allocation-policy recommendation.
pub fn render_recommendation(rec: &crate::policy_judge::PolicyRecommendation) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "policy recommendation for: {}", rec.label);
    let _ = writeln!(out, "  recommended: {}", rec.recommended);
    let _ = writeln!(
        out,
        "  {:<12} {:<16} {:>12} {:>10} {:>10} {:>10} {:>12}",
        "policy", "scheme", "makespan", "busy imb", "heat imb", "occ imb", "resp [ms]"
    );
    for v in &rec.verdicts {
        let _ = writeln!(
            out,
            "  {:<12} {:<16} {:>12.1} {:>10.3} {:>10.3} {:>10.3} {:>12.1}",
            v.policy,
            v.scheme,
            v.makespan_ms,
            v.busy_imbalance,
            v.heat_imbalance,
            v.occupancy_imbalance,
            v.mean_response_ms,
        );
    }
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_owned()
    } else {
        format!(
            "{}…",
            &s[..s
                .char_indices()
                .take(n - 1)
                .last()
                .map(|(i, c)| i + c.len_utf8())
                .unwrap_or(0)]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Warlock;
    use warlock_schema::{apb1_like_schema, Apb1Config};
    use warlock_storage::SystemConfig;
    use warlock_workload::apb1_like_mix;

    fn report_and_advisor() -> (AdvisorReport, FragmentationAnalysis, AllocationPlan) {
        let session = Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .mix(apb1_like_mix().unwrap())
            .build()
            .unwrap();
        let report = session.rank().unwrap().clone();
        let analysis = session.analyze(1).unwrap();
        let plan = session.plan_allocation(1).unwrap();
        (report, analysis, plan)
    }

    #[test]
    fn ranking_renders_all_rows() {
        let (report, _, _) = report_and_advisor();
        let text = render_ranking(&report);
        for r in &report.ranked {
            // Labels longer than the column are truncated with an ellipsis.
            let shown = truncate(&r.label, 40);
            let probe = shown.trim_end_matches('…');
            assert!(text.contains(probe), "missing {}", r.label);
        }
        assert!(text.contains("rank"));
        assert!(text.contains("enumerated"));
    }

    #[test]
    fn ranking_csv_shape() {
        let (report, _, _) = report_and_advisor();
        let csv = ranking_csv(&report);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), report.ranked.len() + 1);
        assert!(lines[0].starts_with("rank,"));
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 7);
        }
    }

    #[test]
    fn analysis_renders_classes() {
        let (_, analysis, _) = report_and_advisor();
        let text = render_analysis(&analysis);
        assert!(text.contains("database statistic"));
        assert!(text.contains("prefetch suggestion"));
        for c in &analysis.per_class {
            assert!(text.contains(&truncate(&c.name, 30)));
        }
        let csv = analysis_csv(&analysis);
        assert_eq!(csv.lines().count(), analysis.per_class.len() + 1);
    }

    #[test]
    fn allocation_renders_disks() {
        let (_, _, plan) = report_and_advisor();
        let text = render_allocation(&plan);
        assert!(text.contains("occupancy"));
        assert!(text.contains("disk access profile"));
        // One line per disk.
        let disk_lines = text
            .lines()
            .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
            .count();
        assert!(disk_lines >= plan.allocation.num_disks() as usize);
    }

    #[test]
    fn recommendation_renders_every_verdict() {
        let session = Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .mix(apb1_like_mix().unwrap())
            .build()
            .unwrap();
        let rec = session.recommend_policy().unwrap();
        let text = render_recommendation(&rec);
        assert!(text.contains("recommended:"));
        for v in &rec.verdicts {
            assert!(text.contains(&v.policy), "missing {}", v.policy);
        }
    }

    #[test]
    fn truncate_handles_unicode() {
        assert_eq!(truncate("short", 10), "short");
        let t = truncate("product.class × time.month", 10);
        assert!(t.chars().count() <= 10);
        assert!(t.ends_with('…'));
    }
}
