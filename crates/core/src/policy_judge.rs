//! Per-workload allocation-policy recommendation.
//!
//! The paper's advisor recommends a *fragmentation*; this module lets
//! it also recommend an *allocation policy* for the workload at hand.
//! For a ranked candidate it builds the physical allocation under each
//! contending policy — round-robin, greedy-by-size, and the co-access
//! graph partitioner — and hands the resulting per-class disk profiles
//! to the head-to-head judge in `warlock-sim`, which replays the query
//! mix through the event-driven disk simulator and ranks the policies
//! by measured makespan.
//!
//! Ties keep the entrant order (round-robin, greedy, graph), so the
//! graph backend must *strictly* beat the paper's own schemes to be
//! recommended — on an uncorrelated mix it degrades to greedy's
//! placement and the simpler policy wins the tie.

use warlock_alloc::AllocationScheme;
use warlock_fragment::Fragmentation;
use warlock_sim::{judge_head_to_head, ClassLoad, PolicyEntrant};

use crate::allocation_plan::AllocationPlan;
use crate::engine;
use crate::error::WarlockError;
use crate::session::Warlock;

/// Closed streams the judge replays concurrently per policy.
const JUDGE_STREAMS: usize = 4;

/// Schedule rounds per stream (each round issues every class once,
/// frequency-weighted by mix share).
const JUDGE_ROUNDS: usize = 2;

/// The judged outcome of one allocation policy on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyVerdict {
    /// Policy name (`round_robin` | `greedy` | `graph`).
    pub policy: String,
    /// The scheme the policy actually produced (`graph` degrades to
    /// `greedy-by-size` when the mix has no co-access signal).
    pub scheme: String,
    /// Simulated time the last replay stream finished — the ranking key.
    pub makespan_ms: f64,
    /// Max over mean simulated disk busy time (1.0 = balanced).
    pub busy_imbalance: f64,
    /// Max over mean mix-weighted access heat per disk.
    pub heat_imbalance: f64,
    /// Max over mean byte occupancy per disk.
    pub occupancy_imbalance: f64,
    /// Mean simulated query response time.
    pub mean_response_ms: f64,
}

/// The advisor's per-workload policy recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRecommendation {
    /// Label of the judged fragmentation candidate.
    pub label: String,
    /// Name of the winning policy.
    pub recommended: String,
    /// All verdicts, ranked best (lowest makespan) first.
    pub verdicts: Vec<PolicyVerdict>,
}

/// Scheme names shared with [`crate::serial::AllocationReport`].
pub(crate) fn scheme_name(scheme: AllocationScheme) -> &'static str {
    match scheme {
        AllocationScheme::RoundRobin => "round-robin",
        AllocationScheme::GreedySize => "greedy-by-size",
        AllocationScheme::GreedyHeat => "greedy-by-heat",
        AllocationScheme::GraphPartition => "graph-partition",
    }
}

/// Mix-weighted access heat per disk of one plan: every class
/// contributes its share times its representative per-disk busy time.
fn heat_imbalance(plan: &AllocationPlan, shares: &[f64]) -> f64 {
    let disks = plan.allocation.num_disks() as usize;
    let mut heat = vec![0.0f64; disks];
    for (class, &share) in plan.per_class.iter().zip(shares) {
        for (d, &ms) in class.profile.per_disk_ms.iter().enumerate() {
            heat[d] += share * ms;
        }
    }
    let total: f64 = heat.iter().sum();
    if total <= 0.0 {
        return 1.0;
    }
    let max = heat.iter().copied().fold(0.0, f64::max);
    max / (total / disks as f64)
}

impl Warlock {
    /// Judges the contending allocation policies on the top-ranked
    /// candidate and recommends one for the configured workload.
    /// Ranks first if necessary.
    ///
    /// # Errors
    ///
    /// [`WarlockError::RankOutOfRange`] when nothing survived the
    /// thresholds, plus anything ranking itself can raise.
    pub fn recommend_policy(&self) -> Result<PolicyRecommendation, WarlockError> {
        let report = self.rank()?;
        let top = report.top().map(|r| r.cost.fragmentation.clone()).ok_or(
            WarlockError::RankOutOfRange {
                rank: 1,
                available: 0,
            },
        )?;
        self.recommend_policy_for(&top)
    }

    /// Judges the contending policies on an explicit candidate.
    pub fn recommend_policy_for(
        &self,
        fragmentation: &Fragmentation,
    ) -> Result<PolicyRecommendation, WarlockError> {
        use warlock_alloc::AllocationPolicy;
        let s = self.snapshot();
        // The graph entrant inherits the configured seed when the
        // session already runs the graph policy.
        let seed = match s.config().allocation_policy {
            AllocationPolicy::GraphPartition { seed } => seed,
            _ => 0,
        };
        let contenders: [(&str, AllocationPolicy); 3] = [
            ("round_robin", AllocationPolicy::RoundRobin),
            ("greedy", AllocationPolicy::GreedySize),
            ("graph", AllocationPolicy::GraphPartition { seed }),
        ];
        let shares: Vec<f64> = s.mix().iter().map(|(_, share)| share).collect();

        let mut plans = Vec::with_capacity(contenders.len());
        for (name, policy) in contenders {
            let mut config = s.config().clone();
            config.allocation_policy = policy;
            let plan = engine::plan_allocation(
                s.schema(),
                s.system(),
                s.mix(),
                &config,
                s.scheme(),
                s.skew(),
                fragmentation,
            )?;
            plans.push((name, plan));
        }

        let entrants: Vec<PolicyEntrant> = plans
            .iter()
            .map(|(name, plan)| PolicyEntrant {
                name: (*name).to_owned(),
                classes: plan
                    .per_class
                    .iter()
                    .zip(&shares)
                    .map(|(class, &share)| ClassLoad {
                        share,
                        per_disk_ms: class.profile.per_disk_ms.clone(),
                    })
                    .collect(),
            })
            .collect();
        let ranked =
            judge_head_to_head(s.system().num_disks, &entrants, JUDGE_STREAMS, JUDGE_ROUNDS);

        let verdicts: Vec<PolicyVerdict> = ranked
            .into_iter()
            .map(|v| {
                let (_, plan) = plans
                    .iter()
                    .find(|(name, _)| *name == v.name)
                    .expect("verdict name matches an entrant");
                PolicyVerdict {
                    policy: v.name,
                    scheme: scheme_name(plan.allocation.scheme()).to_owned(),
                    makespan_ms: v.makespan_ms,
                    busy_imbalance: v.busy_imbalance,
                    heat_imbalance: heat_imbalance(plan, &shares),
                    occupancy_imbalance: plan.occupancy.imbalance,
                    mean_response_ms: v.mean_response_ms,
                }
            })
            .collect();
        Ok(PolicyRecommendation {
            label: plans[0].1.label.clone(),
            recommended: verdicts
                .first()
                .map(|v| v.policy.clone())
                .unwrap_or_default(),
            verdicts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_schema::{apb1_like_schema, Apb1Config};
    use warlock_storage::SystemConfig;
    use warlock_workload::apb1_like_mix;

    fn session() -> Warlock {
        Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .mix(apb1_like_mix().unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn recommendation_judges_all_three_policies() {
        let rec = session().recommend_policy().unwrap();
        assert_eq!(rec.verdicts.len(), 3);
        let names: Vec<&str> = rec.verdicts.iter().map(|v| v.policy.as_str()).collect();
        for expected in ["round_robin", "greedy", "graph"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        assert_eq!(rec.recommended, rec.verdicts[0].policy);
        // Ranked ascending by makespan.
        for pair in rec.verdicts.windows(2) {
            assert!(pair[0].makespan_ms <= pair[1].makespan_ms);
        }
        for v in &rec.verdicts {
            assert!(v.makespan_ms > 0.0, "{} makespan", v.policy);
            assert!(v.busy_imbalance >= 1.0 - 1e-9);
            assert!(v.heat_imbalance >= 1.0 - 1e-9);
            assert!(v.occupancy_imbalance >= 1.0 - 1e-9);
        }
        assert!(!rec.label.is_empty());
    }

    #[test]
    fn recommendation_is_deterministic() {
        let a = session().recommend_policy().unwrap();
        let b = session().recommend_policy().unwrap();
        assert_eq!(a, b);
    }
}
