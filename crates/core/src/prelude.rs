//! The types most WARLOCK applications need in one import.
//!
//! ```
//! use warlock::prelude::*;
//! ```

pub use crate::config::AdvisorConfig;
pub use crate::error::WarlockError;
pub use crate::registry::{Registry, Warehouse, WarehouseStats};
pub use crate::serial::SessionReport;
pub use crate::service::Service;
pub use crate::session::{Snapshot, Warlock, WarlockBuilder};
pub use crate::tuning::{TuningDelta, TuningSession};
pub use crate::{AdvisorReport, AllocationPlan, FragmentationAnalysis, RankedCandidate};

pub use warlock_fragment::Fragmentation;
pub use warlock_json::{FromJson, Json, ToJson};
pub use warlock_schema::{apb1_like_schema, Apb1Config, Dimension, FactTable, StarSchema};
pub use warlock_skew::DimensionSkew;
pub use warlock_storage::{Architecture, PrefetchPolicy, SystemConfig};
pub use warlock_workload::{apb1_like_mix, DimensionPredicate, QueryClass, QueryMix};
