//! The owned, session-oriented WARLOCK facade.
//!
//! [`Warlock`] is the programmatic counterpart of the original tool's
//! interactive GUI session: it **owns** its inputs (schema, system,
//! weighted mix, configuration), validates them once at build time, and
//! then serves rankings, per-candidate analyses, allocation plans and
//! what-if variations from one long-lived handle. Construction goes
//! through [`Warlock::builder`]:
//!
//! ```
//! use warlock::prelude::*;
//!
//! let mut session = Warlock::builder()
//!     .schema(apb1_like_schema(Apb1Config::default())?)
//!     .system(SystemConfig::default_2001(16))
//!     .mix(apb1_like_mix()?)
//!     .build()?;
//! let best_label = session.rank().top().expect("candidates survive").label.clone();
//! let analysis = session.analyze(1)?;
//! assert_eq!(analysis.label, best_label);
//! # Ok::<(), warlock::WarlockError>(())
//! ```
//!
//! The ranking is computed lazily and cached on the session; mutating
//! the inputs (e.g. [`Warlock::set_system`]) invalidates the cache so a
//! drifting workload can be re-advised on the same handle.

use warlock_bitmap::BitmapScheme;
use warlock_cost::CandidateCost;
use warlock_fragment::Fragmentation;
use warlock_schema::StarSchema;
use warlock_skew::SkewModel;
use warlock_storage::SystemConfig;
use warlock_workload::QueryMix;

use crate::advisor::AdvisorReport;
use crate::allocation_plan::AllocationPlan;
use crate::analysis::FragmentationAnalysis;
use crate::cache::{EvalCache, EvalCacheStats};
use crate::config::AdvisorConfig;
use crate::config_file::parse_config;
use crate::engine;
use crate::error::WarlockError;
use crate::tuning::TuningDelta;
use warlock_schema::DimensionId;

/// An owned WARLOCK advisory session. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Warlock {
    schema: StarSchema,
    system: SystemConfig,
    mix: QueryMix,
    config: AdvisorConfig,
    scheme: BitmapScheme,
    skew: SkewModel,
    ranking: Option<AdvisorReport>,
    /// Per-session memo of candidate evaluations, shared by the pipeline,
    /// `evaluate` and every `what_if_*` variation. See [`crate::cache`].
    eval_cache: EvalCache,
}

/// Assembles a [`Warlock`] session from owned inputs.
///
/// `schema`, `system` and `mix` are required; `config` defaults to
/// [`AdvisorConfig::default`].
#[derive(Debug, Clone, Default)]
pub struct WarlockBuilder {
    schema: Option<StarSchema>,
    system: Option<SystemConfig>,
    mix: Option<QueryMix>,
    config: AdvisorConfig,
    parallelism: Option<usize>,
}

impl WarlockBuilder {
    /// Sets the star schema under advisement.
    pub fn schema(mut self, schema: StarSchema) -> Self {
        self.schema = Some(schema);
        self
    }

    /// Sets the disk subsystem and architecture parameters.
    pub fn system(mut self, system: SystemConfig) -> Self {
        self.system = Some(system);
        self
    }

    /// Sets the weighted star-query mix.
    pub fn mix(mut self, mix: QueryMix) -> Self {
        self.mix = Some(mix);
        self
    }

    /// Sets the advisor configuration (thresholds, ranking knobs, skew).
    pub fn config(mut self, config: AdvisorConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the candidate-evaluation worker count (`0` = auto, `1` =
    /// serial). Takes precedence over [`AdvisorConfig::parallelism`]
    /// regardless of the order it is combined with [`config`](Self::config).
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = Some(workers);
        self
    }

    /// Validates every input and builds the session.
    ///
    /// # Errors
    ///
    /// [`WarlockError::MissingInput`] when a required input was never
    /// provided; [`WarlockError::Config`] / [`WarlockError::System`] /
    /// [`WarlockError::Workload`] / [`WarlockError::Skew`] when an input
    /// fails validation.
    pub fn build(self) -> Result<Warlock, WarlockError> {
        let schema = self
            .schema
            .ok_or(WarlockError::MissingInput { what: "schema" })?;
        let system = self
            .system
            .ok_or(WarlockError::MissingInput { what: "system" })?;
        let mix = self.mix.ok_or(WarlockError::MissingInput { what: "mix" })?;
        let mut config = self.config;
        if let Some(workers) = self.parallelism {
            config.parallelism = workers;
        }
        let (scheme, skew) = engine::validate(&schema, &system, &mix, &config)?;
        Ok(Warlock {
            schema,
            system,
            mix,
            config,
            scheme,
            skew,
            ranking: None,
            eval_cache: EvalCache::default(),
        })
    }
}

impl Warlock {
    /// Starts assembling a session.
    pub fn builder() -> WarlockBuilder {
        WarlockBuilder::default()
    }

    /// Builds a session from a configuration-file string (the same
    /// INI-style format the `warlock` CLI reads; see
    /// [`crate::config_file`]).
    pub fn from_config_str(input: &str) -> Result<Self, WarlockError> {
        let parsed = parse_config(input)?;
        Self::builder()
            .schema(parsed.schema)
            .system(parsed.system)
            .mix(parsed.mix)
            .config(parsed.advisor)
            .build()
    }

    /// Builds a session from a configuration file on disk.
    pub fn from_config_path(path: impl AsRef<std::path::Path>) -> Result<Self, WarlockError> {
        let input = std::fs::read_to_string(path)?;
        Self::from_config_str(&input)
    }

    // ------------------------------------------------------------------
    // Accessors.

    /// The schema under advisement.
    #[inline]
    pub fn schema(&self) -> &StarSchema {
        &self.schema
    }

    /// The system configuration.
    #[inline]
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// The query mix.
    #[inline]
    pub fn mix(&self) -> &QueryMix {
        &self.mix
    }

    /// The advisor configuration.
    #[inline]
    pub fn config(&self) -> &AdvisorConfig {
        &self.config
    }

    /// The derived bitmap scheme.
    #[inline]
    pub fn scheme(&self) -> &BitmapScheme {
        &self.scheme
    }

    /// The skew model in effect.
    #[inline]
    pub fn skew(&self) -> &SkewModel {
        &self.skew
    }

    // ------------------------------------------------------------------
    // Input mutation (re-entrant service usage).

    /// Replaces the system configuration, revalidating and invalidating
    /// the cached ranking.
    pub fn set_system(&mut self, system: SystemConfig) -> Result<(), WarlockError> {
        system.validate().map_err(WarlockError::System)?;
        self.system = system;
        self.ranking = None;
        self.eval_cache.clear();
        Ok(())
    }

    /// Replaces the query mix, revalidating it against the schema,
    /// re-deriving the bitmap scheme and invalidating the cached ranking.
    pub fn set_mix(&mut self, mix: QueryMix) -> Result<(), WarlockError> {
        mix.validate(&self.schema)?;
        self.scheme = BitmapScheme::derive(&self.schema, &mix, self.config.scheme);
        self.mix = mix;
        self.ranking = None;
        self.eval_cache.clear();
        Ok(())
    }

    /// Replaces the advisor configuration, revalidating and re-deriving
    /// the scheme and skew model.
    pub fn set_config(&mut self, config: AdvisorConfig) -> Result<(), WarlockError> {
        let (scheme, skew) = engine::validate(&self.schema, &self.system, &self.mix, &config)?;
        self.config = config;
        self.scheme = scheme;
        self.skew = skew;
        self.ranking = None;
        self.eval_cache.clear();
        Ok(())
    }

    /// Overrides the bitmap scheme (interactive tuning: "the user may
    /// decide to exclude some of the suggested bitmap indices").
    pub fn with_scheme(mut self, scheme: BitmapScheme) -> Self {
        self.scheme = scheme;
        self.ranking = None;
        self.eval_cache.clear();
        self
    }

    // ------------------------------------------------------------------
    // The pipeline.

    /// The threshold context derived from the system configuration.
    pub fn threshold_context(&self) -> warlock_fragment::ThresholdContext {
        engine::threshold_context(&self.schema, &self.system, &self.config)
    }

    /// Runs the prediction pipeline, ignoring and leaving untouched the
    /// session's cached *ranking* (the per-candidate evaluation memo is
    /// still consulted and extended — see [`Warlock::cache_stats`]).
    pub fn run(&self) -> AdvisorReport {
        engine::run(
            &self.schema,
            &self.system,
            &self.mix,
            &self.config,
            &self.scheme,
            Some(&self.eval_cache),
        )
    }

    /// The ranked recommendation list, computed on first call and cached
    /// until an input changes.
    pub fn rank(&mut self) -> &AdvisorReport {
        if self.ranking.is_none() {
            self.ranking = Some(self.run());
        }
        self.ranking.as_ref().expect("just computed")
    }

    /// The cached ranking, if [`Warlock::rank`] has run since the last
    /// input change.
    #[inline]
    pub fn ranking(&self) -> Option<&AdvisorReport> {
        self.ranking.as_ref()
    }

    /// Drops the cached ranking **and** the per-candidate evaluation
    /// memo: the next [`Warlock::rank`] recomputes everything.
    pub fn invalidate(&mut self) {
        self.ranking = None;
        self.eval_cache.clear();
    }

    /// Counters of the per-session evaluation memo: how many candidate
    /// outcomes are held, and how many lookups hit or missed since the
    /// session was built (or last invalidated). Repeating a what-if
    /// variation on a warm session shows pure hits — nothing is
    /// re-costed.
    pub fn cache_stats(&self) -> EvalCacheStats {
        self.eval_cache.stats()
    }

    fn ranked_fragmentation(&mut self, rank: usize) -> Result<Fragmentation, WarlockError> {
        let report = self.rank();
        let available = report.ranked.len();
        report
            .ranked
            .get(rank.wrapping_sub(1))
            .map(|r| r.cost.fragmentation.clone())
            .ok_or(WarlockError::RankOutOfRange { rank, available })
    }

    /// The Fig.-2-style detailed query statistic of the candidate at
    /// 1-based `rank`, ranking first if necessary.
    pub fn analyze(&mut self, rank: usize) -> Result<FragmentationAnalysis, WarlockError> {
        let fragmentation = self.ranked_fragmentation(rank)?;
        Ok(self.analyze_candidate(&fragmentation))
    }

    /// The physical allocation plan of the candidate at 1-based `rank`,
    /// ranking first if necessary.
    pub fn plan_allocation(&mut self, rank: usize) -> Result<AllocationPlan, WarlockError> {
        let fragmentation = self.ranked_fragmentation(rank)?;
        Ok(self.plan_candidate(&fragmentation))
    }

    /// Evaluates an arbitrary candidate outside the ranking pipeline.
    pub fn evaluate(&self, fragmentation: &Fragmentation) -> CandidateCost {
        engine::evaluate(
            &self.schema,
            &self.system,
            &self.mix,
            &self.config,
            &self.scheme,
            fragmentation,
            Some(&self.eval_cache),
        )
    }

    /// The detailed query statistic of an arbitrary candidate.
    pub fn analyze_candidate(&self, fragmentation: &Fragmentation) -> FragmentationAnalysis {
        engine::analyze(
            &self.schema,
            &self.system,
            &self.mix,
            &self.config,
            &self.scheme,
            fragmentation,
        )
    }

    /// The physical allocation plan of an arbitrary candidate.
    pub fn plan_candidate(&self, fragmentation: &Fragmentation) -> AllocationPlan {
        engine::plan_allocation(
            &self.schema,
            &self.system,
            &self.mix,
            &self.config,
            &self.scheme,
            &self.skew,
            fragmentation,
        )
    }

    // ------------------------------------------------------------------
    // What-if tuning (§3.3): each variation re-runs the pipeline against
    // modified inputs without touching the session, and reports the
    // delta against the session's (cached) baseline ranking.

    fn with_delta(
        &mut self,
        (variation, report): (String, AdvisorReport),
    ) -> (AdvisorReport, TuningDelta) {
        let delta = TuningDelta::between(variation, self.rank(), &report);
        (report, delta)
    }

    /// What if the system had `num_disks` disks?
    pub fn what_if_disks(&mut self, num_disks: u32) -> (AdvisorReport, TuningDelta) {
        let varied = engine::vary_disks(
            &self.schema,
            &self.system,
            &self.mix,
            &self.config,
            &self.scheme,
            num_disks,
            Some(&self.eval_cache),
        );
        self.with_delta(varied)
    }

    /// What if prefetching were fixed at `pages` for both fact tables
    /// and bitmaps?
    pub fn what_if_fixed_prefetch(&mut self, pages: u32) -> (AdvisorReport, TuningDelta) {
        let varied = engine::vary_fixed_prefetch(
            &self.schema,
            &self.system,
            &self.mix,
            &self.config,
            &self.scheme,
            pages,
            Some(&self.eval_cache),
        );
        self.with_delta(varied)
    }

    /// What if the bitmap indexes of `dimension` were dropped (space
    /// limiting)?
    pub fn what_if_without_bitmap_dimension(
        &mut self,
        dimension: DimensionId,
    ) -> (AdvisorReport, TuningDelta) {
        let varied = engine::vary_without_bitmap_dimension(
            &self.schema,
            &self.system,
            &self.mix,
            &self.config,
            &self.scheme,
            dimension,
            Some(&self.eval_cache),
        );
        self.with_delta(varied)
    }

    /// What if query class `name` vanished from the workload?
    ///
    /// Returns `None` if removing the class would empty the mix or the
    /// name is unknown.
    pub fn what_if_without_class(&mut self, name: &str) -> Option<(AdvisorReport, TuningDelta)> {
        let varied = engine::vary_without_class(
            &self.schema,
            &self.system,
            &self.mix,
            &self.config,
            name,
            Some(&self.eval_cache),
        )?;
        Some(self.with_delta(varied))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_schema::{apb1_like_schema, Apb1Config};
    use warlock_skew::DimensionSkew;
    use warlock_workload::apb1_like_mix;

    fn session() -> Warlock {
        Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .mix(apb1_like_mix().unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_all_inputs() {
        let e = Warlock::builder().build().unwrap_err();
        assert_eq!(e, WarlockError::MissingInput { what: "schema" });
        let e = Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .build()
            .unwrap_err();
        assert_eq!(e, WarlockError::MissingInput { what: "system" });
        let e = Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .build()
            .unwrap_err();
        assert_eq!(e, WarlockError::MissingInput { what: "mix" });
    }

    #[test]
    fn rank_caches_until_invalidated() {
        let mut s = session();
        assert!(s.ranking().is_none());
        let top = s.rank().top().unwrap().label.clone();
        assert!(s.ranking().is_some());
        // Cached: same allocation returned.
        let again = s.rank().top().unwrap().label.clone();
        assert_eq!(top, again);
        s.invalidate();
        assert!(s.ranking().is_none());
    }

    #[test]
    fn analyze_and_plan_by_rank() {
        let mut s = session();
        let analysis = s.analyze(1).unwrap();
        let top = s.rank().top().unwrap().clone();
        assert_eq!(analysis.label, top.label);
        let plan = s.plan_allocation(1).unwrap();
        assert_eq!(plan.label, top.label);
        let available = s.rank().ranked.len();
        assert_eq!(
            s.analyze(0).unwrap_err(),
            WarlockError::RankOutOfRange { rank: 0, available }
        );
        assert_eq!(
            s.plan_allocation(available + 1).unwrap_err(),
            WarlockError::RankOutOfRange {
                rank: available + 1,
                available
            }
        );
    }

    #[test]
    fn matches_legacy_advisor_output() {
        #[allow(deprecated)]
        let legacy = {
            let schema = apb1_like_schema(Apb1Config::default()).unwrap();
            let system = SystemConfig::default_2001(16);
            let mix = apb1_like_mix().unwrap();
            crate::Advisor::new(&schema, &system, &mix, AdvisorConfig::default())
                .unwrap()
                .run()
        };
        assert_eq!(session().run(), legacy);
    }

    #[test]
    fn set_system_invalidates_and_changes_advice_inputs() {
        let mut s = session();
        let baseline = s.rank().top().unwrap().cost.response_ms;
        let mut system = *s.system();
        system.num_disks = 64;
        s.set_system(system).unwrap();
        assert!(s.ranking().is_none());
        let faster = s.rank().top().unwrap().cost.response_ms;
        assert!(faster < baseline);

        let mut bad = *s.system();
        bad.disk.transfer_mb_per_s = 0.0;
        assert!(matches!(s.set_system(bad), Err(WarlockError::System(_))));
    }

    #[test]
    fn what_if_variants_leave_session_untouched() {
        let mut s = session();
        let baseline = s.rank().clone();
        let (_, delta) = s.what_if_disks(64);
        assert!(delta.variation_response_ms < delta.baseline_response_ms);
        let (_, delta) = s.what_if_fixed_prefetch(1);
        assert!(delta.variation_response_ms > delta.baseline_response_ms);
        let (_, delta) = s.what_if_without_bitmap_dimension(DimensionId(0));
        assert!(delta.variation_response_ms >= delta.baseline_response_ms * 0.999);
        assert!(s.what_if_without_class("nonexistent").is_none());
        let (report, delta) = s.what_if_without_class("q01_month_store_code").unwrap();
        assert!(!report.ranked.is_empty());
        assert!(delta.variation.contains("q01"));
        // The session's own inputs and cache are untouched.
        assert_eq!(s.rank(), &baseline);
    }

    #[test]
    fn repeated_what_if_hits_the_eval_cache() {
        let mut s = session();
        s.rank();
        let (first_report, _) = s.what_if_disks(64);
        let after_first = s.cache_stats();
        assert!(after_first.misses > 0, "cold variation must miss");
        let (second_report, _) = s.what_if_disks(64);
        let after_second = s.cache_stats();
        assert_eq!(first_report, second_report);
        assert_eq!(
            after_second.misses, after_first.misses,
            "warm re-run of the same variation must not re-cost anything"
        );
        assert!(after_second.hits > after_first.hits);
    }

    #[test]
    fn evaluate_memoizes_per_candidate() {
        let s = session();
        let frag = Fragmentation::from_pairs(&[(2, 2)]).unwrap();
        let a = s.evaluate(&frag);
        let misses = s.cache_stats().misses;
        let b = s.evaluate(&frag);
        assert_eq!(a, b);
        assert_eq!(s.cache_stats().misses, misses);
        assert!(s.cache_stats().hits >= 1);
    }

    #[test]
    fn input_mutation_clears_the_eval_cache() {
        let mut s = session();
        s.rank();
        assert!(s.cache_stats().entries > 0);
        let mut system = *s.system();
        system.num_disks = 8;
        s.set_system(system).unwrap();
        assert_eq!(s.cache_stats().entries, 0);

        s.rank();
        assert!(s.cache_stats().entries > 0);
        s.invalidate();
        assert_eq!(s.cache_stats(), crate::cache::EvalCacheStats::default());
    }

    #[test]
    fn parallelism_knob_does_not_change_the_report() {
        let schema = apb1_like_schema(Apb1Config::default()).unwrap();
        let mix = apb1_like_mix().unwrap();
        let build = |workers: usize| {
            Warlock::builder()
                .schema(schema.clone())
                .system(SystemConfig::default_2001(16))
                .mix(mix.clone())
                .parallelism(workers)
                .build()
                .unwrap()
        };
        let serial = build(1);
        assert_eq!(serial.config().parallelism, 1);
        let reference = serial.run();
        for workers in [2, 3, 8] {
            assert_eq!(build(workers).run(), reference, "W={workers} diverged");
        }
    }

    #[test]
    fn builder_parallelism_overrides_config_in_any_order() {
        let schema = apb1_like_schema(Apb1Config::default()).unwrap();
        let mix = apb1_like_mix().unwrap();
        let s = Warlock::builder()
            .parallelism(5)
            .schema(schema)
            .system(SystemConfig::default_2001(16))
            .mix(mix)
            .config(AdvisorConfig::default())
            .build()
            .unwrap();
        assert_eq!(s.config().parallelism, 5);
    }

    #[test]
    fn invalid_skew_coverage_is_a_skew_error() {
        let e = Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .mix(apb1_like_mix().unwrap())
            .config(AdvisorConfig {
                skew: Some(vec![DimensionSkew::UNIFORM]),
                ..Default::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(e, WarlockError::Skew(_)));
    }

    #[test]
    fn from_config_str_round_trip() {
        let cfg = crate::config_file::render_config(&crate::config_file::demo_config());
        let mut s = Warlock::from_config_str(&cfg).unwrap();
        assert!(s.rank().top().is_some());
        assert!(matches!(
            Warlock::from_config_str("[nonsense"),
            Err(WarlockError::ConfigFile(_))
        ));
        assert!(matches!(
            Warlock::from_config_path("/definitely/not/a/file"),
            Err(WarlockError::Io(_))
        ));
    }
}
