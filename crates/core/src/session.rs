//! The owned, session-oriented WARLOCK facade.
//!
//! [`Warlock`] is the programmatic counterpart of the original tool's
//! interactive GUI session: it **owns** its inputs (schema, system,
//! weighted mix, configuration), validates them once at build time, and
//! then serves rankings, per-candidate analyses, allocation plans and
//! what-if variations from one long-lived handle. Construction goes
//! through [`Warlock::builder`]:
//!
//! ```
//! use warlock::prelude::*;
//!
//! let session = Warlock::builder()
//!     .schema(apb1_like_schema(Apb1Config::default())?)
//!     .system(SystemConfig::default_2001(16))
//!     .mix(apb1_like_mix()?)
//!     .build()?;
//! let best_label = session.rank()?.top().expect("candidates survive").label.clone();
//! let analysis = session.analyze(1)?;
//! assert_eq!(analysis.label, best_label);
//! # Ok::<(), warlock::WarlockError>(())
//! ```
//!
//! ## Snapshots, clones and concurrency
//!
//! Internally a session is a thin handle over two [`Arc`]s:
//!
//! - an immutable [`Snapshot`] — schema, system, mix, configuration,
//!   derived bitmap scheme and skew model, all validated exactly once,
//!   plus the lazily computed baseline ranking;
//! - shared mutable state — the cross-clone [`EvalCache`] and the
//!   persistent evaluation worker pool.
//!
//! `Warlock` is therefore [`Clone`], and cloning is cheap: clones
//! **share** the snapshot, the cache and the pool. Every read-side
//! method (`rank`, `analyze`, `evaluate`, `what_if_*`, …) takes
//! `&self`, so clones on different threads explore what-ifs
//! concurrently with no aliasing and no locks held across an
//! evaluation — and a variation priced on one clone is warm in the
//! shared cache for every other clone.
//!
//! Mutators ([`Warlock::set_system`], [`Warlock::set_mix`],
//! [`Warlock::set_config`]) are copy-on-write: they validate the new
//! input, build a **new** snapshot and swap the handle's `Arc` to it.
//! Clones holding the old snapshot keep reading it unblocked; the
//! shared cache keeps both snapshots' entries apart by fingerprint, so
//! flipping back and forth stays warm.

use std::sync::{Arc, OnceLock};

use warlock_bitmap::BitmapScheme;
use warlock_cost::{CandidateCost, KernelChoice};
use warlock_fragment::Fragmentation;
use warlock_schema::StarSchema;
use warlock_skew::SkewModel;
use warlock_storage::SystemConfig;
use warlock_workload::QueryMix;

use crate::advisor::AdvisorReport;
use crate::allocation_plan::AllocationPlan;
use crate::analysis::FragmentationAnalysis;
use crate::cache::{EvalCache, EvalCacheStats};
use crate::config::AdvisorConfig;
use crate::config_file::parse_config;
use crate::engine;
use crate::engine::exec::WorkerPool;
use crate::engine::EvalEnv;
use crate::error::WarlockError;
use crate::tuning::TuningDelta;
use warlock_schema::DimensionId;

/// One immutable, validated set of advisory inputs plus everything
/// derived from them — the unit [`Warlock`] clones share and
/// copy-on-write mutators swap. See the [module docs](self).
#[derive(Debug)]
pub struct Snapshot {
    schema: StarSchema,
    system: SystemConfig,
    mix: QueryMix,
    config: AdvisorConfig,
    scheme: BitmapScheme,
    skew: SkewModel,
    /// The baseline ranking, computed at most once per snapshot and
    /// shared by every clone holding it.
    ranking: OnceLock<Result<AdvisorReport, WarlockError>>,
    /// Memoized single-candidate evaluation fingerprint (computing one
    /// dumps every model input, and it is constant per snapshot).
    evaluate_fp: OnceLock<u128>,
}

impl Snapshot {
    fn new(
        schema: StarSchema,
        system: SystemConfig,
        mix: QueryMix,
        config: AdvisorConfig,
        scheme: BitmapScheme,
        skew: SkewModel,
    ) -> Self {
        Self {
            schema,
            system,
            mix,
            config,
            scheme,
            skew,
            ranking: OnceLock::new(),
            evaluate_fp: OnceLock::new(),
        }
    }

    /// A copy of this snapshot's inputs with fresh (empty) derived
    /// state, used by [`Warlock::invalidate`].
    fn fresh(&self) -> Self {
        Self::new(
            self.schema.clone(),
            self.system,
            self.mix.clone(),
            self.config.clone(),
            self.scheme.clone(),
            self.skew.clone(),
        )
    }

    /// The schema under advisement.
    #[inline]
    pub fn schema(&self) -> &StarSchema {
        &self.schema
    }

    /// The system configuration.
    #[inline]
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// The query mix.
    #[inline]
    pub fn mix(&self) -> &QueryMix {
        &self.mix
    }

    /// The advisor configuration.
    #[inline]
    pub fn config(&self) -> &AdvisorConfig {
        &self.config
    }

    /// The derived bitmap scheme.
    #[inline]
    pub fn scheme(&self) -> &BitmapScheme {
        &self.scheme
    }

    /// The skew model in effect.
    #[inline]
    pub fn skew(&self) -> &SkewModel {
        &self.skew
    }
}

/// State every clone of one session family shares: the evaluation memo
/// and the persistent worker pool.
#[derive(Debug, Default)]
pub(crate) struct Shared {
    pub(crate) cache: EvalCache,
    pub(crate) pool: WorkerPool,
}

impl Shared {
    pub(crate) fn env(&self) -> EvalEnv<'_> {
        EvalEnv {
            cache: Some(&self.cache),
            pool: &self.pool,
        }
    }
}

/// An owned WARLOCK advisory session. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Warlock {
    snapshot: Arc<Snapshot>,
    shared: Arc<Shared>,
}

/// Assembles a [`Warlock`] session from owned inputs.
///
/// `schema`, `system` and `mix` are required; `config` defaults to
/// [`AdvisorConfig::default`].
#[derive(Debug, Clone, Default)]
pub struct WarlockBuilder {
    schema: Option<StarSchema>,
    system: Option<SystemConfig>,
    mix: Option<QueryMix>,
    config: AdvisorConfig,
    parallelism: Option<usize>,
    max_candidates: Option<u64>,
    chunk_size: Option<usize>,
    kernel: Option<KernelChoice>,
    allocation_policy: Option<warlock_alloc::AllocationPolicy>,
}

impl WarlockBuilder {
    /// Sets the star schema under advisement.
    pub fn schema(mut self, schema: StarSchema) -> Self {
        self.schema = Some(schema);
        self
    }

    /// Sets the disk subsystem and architecture parameters.
    pub fn system(mut self, system: SystemConfig) -> Self {
        self.system = Some(system);
        self
    }

    /// Sets the weighted star-query mix.
    pub fn mix(mut self, mix: QueryMix) -> Self {
        self.mix = Some(mix);
        self
    }

    /// Sets the advisor configuration (thresholds, ranking knobs, skew).
    pub fn config(mut self, config: AdvisorConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the candidate-evaluation worker count (`0` = auto, `1` =
    /// serial). Takes precedence over [`AdvisorConfig::parallelism`]
    /// regardless of the order it is combined with [`config`](Self::config).
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = Some(workers);
        self
    }

    /// Sets the candidate-space budget (`0` = unlimited): pipeline runs
    /// whose exact predicted space exceeds it fail with
    /// [`WarlockError::CandidateBudget`] before any evaluation. Takes
    /// precedence over [`AdvisorConfig::max_candidates`] regardless of
    /// the order it is combined with [`config`](Self::config).
    pub fn max_candidates(mut self, budget: u64) -> Self {
        self.max_candidates = Some(budget);
        self
    }

    /// Sets the streaming evaluation chunk size (`0` = auto). Any value
    /// yields bit-identical reports. Takes precedence over
    /// [`AdvisorConfig::chunk_size`] regardless of the order it is
    /// combined with [`config`](Self::config).
    pub fn chunk_size(mut self, candidates: usize) -> Self {
        self.chunk_size = Some(candidates);
        self
    }

    /// Sets the costing kernel backend ([`KernelChoice::Auto`] resolves
    /// via the `WARLOCK_KERNEL` environment variable and then CPU
    /// feature detection). Every choice yields bit-identical reports.
    /// Takes precedence over [`AdvisorConfig::kernel`] regardless of
    /// the order it is combined with [`config`](Self::config).
    pub fn kernel(mut self, choice: KernelChoice) -> Self {
        self.kernel = Some(choice);
        self
    }

    /// Sets the fragment placement policy (e.g.
    /// [`AllocationPolicy::GraphPartition`] for the co-access graph
    /// partitioner). Takes precedence over
    /// [`AdvisorConfig::allocation_policy`] regardless of the order it
    /// is combined with [`config`](Self::config).
    ///
    /// [`AllocationPolicy::GraphPartition`]: warlock_alloc::AllocationPolicy::GraphPartition
    /// [`AdvisorConfig::allocation_policy`]: crate::AdvisorConfig
    pub fn allocation_policy(mut self, policy: warlock_alloc::AllocationPolicy) -> Self {
        self.allocation_policy = Some(policy);
        self
    }

    /// Validates every input and builds the session.
    ///
    /// # Errors
    ///
    /// [`WarlockError::MissingInput`] when a required input was never
    /// provided; [`WarlockError::Config`] / [`WarlockError::System`] /
    /// [`WarlockError::Workload`] / [`WarlockError::Skew`] when an input
    /// fails validation.
    pub fn build(self) -> Result<Warlock, WarlockError> {
        let schema = self
            .schema
            .ok_or(WarlockError::MissingInput { what: "schema" })?;
        let system = self
            .system
            .ok_or(WarlockError::MissingInput { what: "system" })?;
        let mix = self.mix.ok_or(WarlockError::MissingInput { what: "mix" })?;
        let mut config = self.config;
        if let Some(workers) = self.parallelism {
            config.parallelism = workers;
        }
        if let Some(budget) = self.max_candidates {
            config.max_candidates = budget;
        }
        if let Some(chunk) = self.chunk_size {
            config.chunk_size = chunk;
        }
        if let Some(choice) = self.kernel {
            config.kernel = choice;
        }
        if let Some(policy) = self.allocation_policy {
            config.allocation_policy = policy;
        }
        let (scheme, skew) = engine::validate(&schema, &system, &mix, &config)?;
        Ok(Warlock {
            snapshot: Arc::new(Snapshot::new(schema, system, mix, config, scheme, skew)),
            shared: Arc::new(Shared::default()),
        })
    }
}

impl Warlock {
    /// Starts assembling a session.
    pub fn builder() -> WarlockBuilder {
        WarlockBuilder::default()
    }

    /// Builds a session from an already parsed configuration — the
    /// shared construction path of every config-file entry point.
    pub fn from_parsed(parsed: crate::config_file::ParsedConfig) -> Result<Self, WarlockError> {
        Self::builder()
            .schema(parsed.schema)
            .system(parsed.system)
            .mix(parsed.mix)
            .config(parsed.advisor)
            .build()
    }

    /// Builds a session from a configuration-file string (the same
    /// INI-style format the `warlock` CLI reads; see
    /// [`crate::config_file`]).
    pub fn from_config_str(input: &str) -> Result<Self, WarlockError> {
        Self::from_parsed(parse_config(input)?)
    }

    /// Builds a session from a configuration file on disk.
    ///
    /// # Errors
    ///
    /// Every failure — unreadable file, parse error, validation error —
    /// is wrapped in [`WarlockError::AtPath`] so the message names the
    /// offending file.
    pub fn from_config_path(path: impl AsRef<std::path::Path>) -> Result<Self, WarlockError> {
        let path = path.as_ref();
        let parsed = crate::config_file::parse_config_path(path)?;
        Self::from_parsed(parsed).map_err(|e| e.at_path(path.display().to_string()))
    }

    // ------------------------------------------------------------------
    // Accessors.

    /// The immutable snapshot this handle currently reads from. Clones
    /// made now share it; mutators swap in a new one.
    #[inline]
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot)
    }

    /// Whether two handles currently read the same snapshot.
    #[inline]
    pub fn shares_snapshot_with(&self, other: &Warlock) -> bool {
        Arc::ptr_eq(&self.snapshot, &other.snapshot)
    }

    /// The schema under advisement.
    #[inline]
    pub fn schema(&self) -> &StarSchema {
        self.snapshot.schema()
    }

    /// The system configuration.
    #[inline]
    pub fn system(&self) -> &SystemConfig {
        self.snapshot.system()
    }

    /// The query mix.
    #[inline]
    pub fn mix(&self) -> &QueryMix {
        self.snapshot.mix()
    }

    /// The advisor configuration.
    #[inline]
    pub fn config(&self) -> &AdvisorConfig {
        self.snapshot.config()
    }

    /// The derived bitmap scheme.
    #[inline]
    pub fn scheme(&self) -> &BitmapScheme {
        self.snapshot.scheme()
    }

    /// The skew model in effect.
    #[inline]
    pub fn skew(&self) -> &SkewModel {
        self.snapshot.skew()
    }

    // ------------------------------------------------------------------
    // Input mutation: copy-on-write snapshot swaps. Only this handle
    // moves to the new snapshot; clones keep reading the old one
    // unblocked, and the shared cache keeps both warm (entries are
    // keyed by input fingerprints).

    fn swap_snapshot(&mut self, snapshot: Snapshot) {
        self.snapshot = Arc::new(snapshot);
    }

    /// Replaces the system configuration, revalidating it and swapping
    /// this handle to a fresh snapshot (clones are unaffected).
    pub fn set_system(&mut self, system: SystemConfig) -> Result<(), WarlockError> {
        system.validate().map_err(WarlockError::System)?;
        let s = &*self.snapshot;
        self.swap_snapshot(Snapshot::new(
            s.schema.clone(),
            system,
            s.mix.clone(),
            s.config.clone(),
            s.scheme.clone(),
            s.skew.clone(),
        ));
        Ok(())
    }

    /// Replaces the query mix, revalidating it against the schema,
    /// re-deriving the bitmap scheme and swapping this handle to a
    /// fresh snapshot (clones are unaffected).
    pub fn set_mix(&mut self, mix: QueryMix) -> Result<(), WarlockError> {
        let s = &*self.snapshot;
        mix.validate(&s.schema)?;
        let scheme = BitmapScheme::derive(&s.schema, &mix, s.config.scheme);
        self.swap_snapshot(Snapshot::new(
            s.schema.clone(),
            s.system,
            mix,
            s.config.clone(),
            scheme,
            s.skew.clone(),
        ));
        Ok(())
    }

    /// Replaces the advisor configuration, revalidating and re-deriving
    /// the scheme and skew model; swaps this handle to a fresh snapshot
    /// (clones are unaffected).
    pub fn set_config(&mut self, config: AdvisorConfig) -> Result<(), WarlockError> {
        let s = &*self.snapshot;
        let (scheme, skew) = engine::validate(&s.schema, &s.system, &s.mix, &config)?;
        self.swap_snapshot(Snapshot::new(
            s.schema.clone(),
            s.system,
            s.mix.clone(),
            config,
            scheme,
            skew,
        ));
        Ok(())
    }

    /// Replaces **every** input of this session from an already parsed
    /// configuration, as one atomic copy-on-write snapshot swap: the new
    /// inputs are validated in full first, and only then does this
    /// handle move to the new snapshot. On any error the session keeps
    /// serving its previous snapshot unchanged. Clones — including
    /// in-flight readers — finish on the old snapshot; the shared
    /// evaluation cache and worker pool are kept (entries are keyed by
    /// input fingerprints, so reverting to a previously served
    /// configuration is warm).
    pub fn reload_from_parsed(
        &mut self,
        parsed: crate::config_file::ParsedConfig,
    ) -> Result<(), WarlockError> {
        let (scheme, skew) =
            engine::validate(&parsed.schema, &parsed.system, &parsed.mix, &parsed.advisor)?;
        self.swap_snapshot(Snapshot::new(
            parsed.schema,
            parsed.system,
            parsed.mix,
            parsed.advisor,
            scheme,
            skew,
        ));
        Ok(())
    }

    /// Atomically re-reads this session's inputs from a configuration
    /// file on disk (see [`Warlock::reload_from_parsed`]). Every failure
    /// is wrapped in [`WarlockError::AtPath`] naming the file, and
    /// leaves the session on its previous snapshot.
    pub fn reload_from_config_path(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), WarlockError> {
        let path = path.as_ref();
        let parsed = crate::config_file::parse_config_path(path)?;
        self.reload_from_parsed(parsed)
            .map_err(|e| e.at_path(path.display().to_string()))
    }

    /// Overrides the bitmap scheme (interactive tuning: "the user may
    /// decide to exclude some of the suggested bitmap indices").
    pub fn with_scheme(mut self, scheme: BitmapScheme) -> Self {
        let s = &*self.snapshot;
        let snapshot = Snapshot::new(
            s.schema.clone(),
            s.system,
            s.mix.clone(),
            s.config.clone(),
            scheme,
            s.skew.clone(),
        );
        self.swap_snapshot(snapshot);
        self
    }

    // ------------------------------------------------------------------
    // The pipeline.

    /// The exact size of the candidate space the pipeline would
    /// enumerate for the current snapshot (point space plus any
    /// configured `range_options`), computed without generating a
    /// single candidate. Cheap enough for health checks — `warlockd`'s
    /// `ping` reports it without a rank round-trip.
    pub fn candidate_space_size(&self) -> u128 {
        let s = &*self.snapshot;
        warlock_fragment::CandidateSource::ranged(
            &s.schema,
            s.config.max_dimensionality,
            &s.config.range_options,
        )
        .space_size()
    }

    /// The threshold context derived from the system configuration.
    pub fn threshold_context(&self) -> warlock_fragment::ThresholdContext {
        engine::threshold_context(
            &self.snapshot.schema,
            &self.snapshot.system,
            &self.snapshot.config,
        )
    }

    /// Runs the prediction pipeline, ignoring and leaving untouched the
    /// snapshot's cached *ranking* (the shared per-candidate evaluation
    /// memo is still consulted and extended — see
    /// [`Warlock::cache_stats`]).
    pub fn run(&self) -> Result<AdvisorReport, WarlockError> {
        let s = &*self.snapshot;
        engine::run(
            &s.schema,
            &s.system,
            &s.mix,
            &s.config,
            &s.scheme,
            self.shared.env(),
        )
    }

    /// The ranked recommendation list, computed on first call and
    /// cached on the snapshot — every clone sharing this snapshot sees
    /// the same baseline without recomputing it. Takes `&self`: no lock
    /// is held across the computation (two clones racing a cold
    /// baseline may both compute it; the first result wins and both
    /// return identical reports).
    pub fn rank(&self) -> Result<&AdvisorReport, WarlockError> {
        if self.snapshot.ranking.get().is_none() {
            let computed = self.run();
            let _ = self.snapshot.ranking.set(computed);
        }
        match self.snapshot.ranking.get() {
            Some(Ok(report)) => Ok(report),
            Some(Err(e)) => Err(e.clone()),
            None => Err(WarlockError::internal("baseline ranking never settled")),
        }
    }

    /// The cached ranking, if [`Warlock::rank`] has succeeded on this
    /// snapshot.
    #[inline]
    pub fn ranking(&self) -> Option<&AdvisorReport> {
        match self.snapshot.ranking.get() {
            Some(Ok(report)) => Some(report),
            _ => None,
        }
    }

    /// Drops the cached ranking **and** the shared per-candidate
    /// evaluation memo: the next [`Warlock::rank`] recomputes
    /// everything. Clearing the memo is observable by clones (it is
    /// shared); their snapshots and cached rankings are untouched.
    pub fn invalidate(&mut self) {
        let fresh = self.snapshot.fresh();
        self.swap_snapshot(fresh);
        self.shared.cache.clear();
    }

    /// Counters of the shared evaluation memo: how many candidate
    /// outcomes are held, and how many lookups hit or missed since the
    /// session family was built (or last invalidated). Repeating a
    /// what-if variation on a warm session — or on any clone of it —
    /// shows pure hits: nothing is re-costed.
    pub fn cache_stats(&self) -> EvalCacheStats {
        self.shared.cache.stats()
    }

    fn ranked_fragmentation(&self, rank: usize) -> Result<Fragmentation, WarlockError> {
        let report = self.rank()?;
        let available = report.ranked.len();
        report
            .ranked
            .get(rank.wrapping_sub(1))
            .map(|r| r.cost.fragmentation.clone())
            .ok_or(WarlockError::RankOutOfRange { rank, available })
    }

    /// The Fig.-2-style detailed query statistic of the candidate at
    /// 1-based `rank`, ranking first if necessary.
    pub fn analyze(&self, rank: usize) -> Result<FragmentationAnalysis, WarlockError> {
        let fragmentation = self.ranked_fragmentation(rank)?;
        self.analyze_candidate(&fragmentation)
    }

    /// The physical allocation plan of the candidate at 1-based `rank`,
    /// ranking first if necessary.
    pub fn plan_allocation(&self, rank: usize) -> Result<AllocationPlan, WarlockError> {
        let fragmentation = self.ranked_fragmentation(rank)?;
        self.plan_candidate(&fragmentation)
    }

    /// Evaluates an arbitrary candidate outside the ranking pipeline.
    pub fn evaluate(&self, fragmentation: &Fragmentation) -> Result<CandidateCost, WarlockError> {
        let s = &*self.snapshot;
        engine::evaluate(
            &s.schema,
            &s.system,
            &s.mix,
            &s.config,
            &s.scheme,
            fragmentation,
            Some(&self.shared.cache),
            Some(&s.evaluate_fp),
        )
    }

    /// The detailed query statistic of an arbitrary candidate.
    pub fn analyze_candidate(
        &self,
        fragmentation: &Fragmentation,
    ) -> Result<FragmentationAnalysis, WarlockError> {
        let s = &*self.snapshot;
        engine::analyze(
            &s.schema,
            &s.system,
            &s.mix,
            &s.config,
            &s.scheme,
            fragmentation,
        )
    }

    /// The physical allocation plan of an arbitrary candidate.
    pub fn plan_candidate(
        &self,
        fragmentation: &Fragmentation,
    ) -> Result<AllocationPlan, WarlockError> {
        let s = &*self.snapshot;
        engine::plan_allocation(
            &s.schema,
            &s.system,
            &s.mix,
            &s.config,
            &s.scheme,
            &s.skew,
            fragmentation,
        )
    }

    // ------------------------------------------------------------------
    // What-if tuning (§3.3): each variation re-runs the pipeline against
    // modified inputs without touching the snapshot, and reports the
    // delta against the snapshot's (cached) baseline ranking. All
    // variations take `&self` — clones explore them concurrently.

    fn with_delta(
        &self,
        (variation, report): (String, AdvisorReport),
    ) -> Result<(AdvisorReport, TuningDelta), WarlockError> {
        let delta = TuningDelta::between(variation, self.rank()?, &report);
        Ok((report, delta))
    }

    /// What if the system had `num_disks` disks?
    pub fn what_if_disks(
        &self,
        num_disks: u32,
    ) -> Result<(AdvisorReport, TuningDelta), WarlockError> {
        let s = &*self.snapshot;
        let varied = engine::vary_disks(
            &s.schema,
            &s.system,
            &s.mix,
            &s.config,
            &s.scheme,
            num_disks,
            self.shared.env(),
        )?;
        self.with_delta(varied)
    }

    /// What if prefetching were fixed at `pages` for both fact tables
    /// and bitmaps?
    pub fn what_if_fixed_prefetch(
        &self,
        pages: u32,
    ) -> Result<(AdvisorReport, TuningDelta), WarlockError> {
        let s = &*self.snapshot;
        let varied = engine::vary_fixed_prefetch(
            &s.schema,
            &s.system,
            &s.mix,
            &s.config,
            &s.scheme,
            pages,
            self.shared.env(),
        )?;
        self.with_delta(varied)
    }

    /// What if the bitmap indexes of `dimension` were dropped (space
    /// limiting)?
    pub fn what_if_without_bitmap_dimension(
        &self,
        dimension: DimensionId,
    ) -> Result<(AdvisorReport, TuningDelta), WarlockError> {
        let s = &*self.snapshot;
        let varied = engine::vary_without_bitmap_dimension(
            &s.schema,
            &s.system,
            &s.mix,
            &s.config,
            &s.scheme,
            dimension,
            self.shared.env(),
        )?;
        self.with_delta(varied)
    }

    /// What if query class `name` vanished from the workload?
    ///
    /// # Errors
    ///
    /// [`WarlockError::UnknownClass`] when the name is unknown or
    /// removing the class would empty the mix.
    pub fn what_if_without_class(
        &self,
        name: &str,
    ) -> Result<(AdvisorReport, TuningDelta), WarlockError> {
        let s = &*self.snapshot;
        let varied = engine::vary_without_class(
            &s.schema,
            &s.system,
            &s.mix,
            &s.config,
            name,
            self.shared.env(),
        )?;
        self.with_delta(varied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_schema::{apb1_like_schema, Apb1Config};
    use warlock_skew::DimensionSkew;
    use warlock_workload::apb1_like_mix;

    fn session() -> Warlock {
        Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .mix(apb1_like_mix().unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_all_inputs() {
        let e = Warlock::builder().build().unwrap_err();
        assert_eq!(e, WarlockError::MissingInput { what: "schema" });
        let e = Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .build()
            .unwrap_err();
        assert_eq!(e, WarlockError::MissingInput { what: "system" });
        let e = Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .build()
            .unwrap_err();
        assert_eq!(e, WarlockError::MissingInput { what: "mix" });
    }

    #[test]
    fn rank_caches_until_invalidated() {
        let mut s = session();
        assert!(s.ranking().is_none());
        let top = s.rank().unwrap().top().unwrap().label.clone();
        assert!(s.ranking().is_some());
        // Cached: same snapshot-held report returned.
        let again = s.rank().unwrap().top().unwrap().label.clone();
        assert_eq!(top, again);
        s.invalidate();
        assert!(s.ranking().is_none());
    }

    #[test]
    fn analyze_and_plan_by_rank() {
        let s = session();
        let analysis = s.analyze(1).unwrap();
        let top = s.rank().unwrap().top().unwrap().clone();
        assert_eq!(analysis.label, top.label);
        let plan = s.plan_allocation(1).unwrap();
        assert_eq!(plan.label, top.label);
        let available = s.rank().unwrap().ranked.len();
        assert_eq!(
            s.analyze(0).unwrap_err(),
            WarlockError::RankOutOfRange { rank: 0, available }
        );
        assert_eq!(
            s.plan_allocation(available + 1).unwrap_err(),
            WarlockError::RankOutOfRange {
                rank: available + 1,
                available
            }
        );
    }

    #[test]
    fn set_system_invalidates_and_changes_advice_inputs() {
        let mut s = session();
        let baseline = s.rank().unwrap().top().unwrap().cost.response_ms;
        let mut system = *s.system();
        system.num_disks = 64;
        s.set_system(system).unwrap();
        assert!(s.ranking().is_none());
        let faster = s.rank().unwrap().top().unwrap().cost.response_ms;
        assert!(faster < baseline);

        let mut bad = *s.system();
        bad.disk.transfer_mb_per_s = 0.0;
        assert!(matches!(s.set_system(bad), Err(WarlockError::System(_))));
    }

    #[test]
    fn what_if_variants_leave_session_untouched() {
        let s = session();
        let baseline = s.rank().unwrap().clone();
        let (_, delta) = s.what_if_disks(64).unwrap();
        assert!(delta.variation_response_ms < delta.baseline_response_ms);
        let (_, delta) = s.what_if_fixed_prefetch(1).unwrap();
        assert!(delta.variation_response_ms > delta.baseline_response_ms);
        let (_, delta) = s.what_if_without_bitmap_dimension(DimensionId(0)).unwrap();
        assert!(delta.variation_response_ms >= delta.baseline_response_ms * 0.999);
        assert!(matches!(
            s.what_if_without_class("nonexistent"),
            Err(WarlockError::UnknownClass { .. })
        ));
        let (report, delta) = s.what_if_without_class("q01_month_store_code").unwrap();
        assert!(!report.ranked.is_empty());
        assert!(delta.variation.contains("q01"));
        // The session's own inputs and baseline are untouched.
        assert_eq!(s.rank().unwrap(), &baseline);
    }

    #[test]
    fn repeated_what_if_hits_the_eval_cache() {
        let s = session();
        s.rank().unwrap();
        let (first_report, _) = s.what_if_disks(64).unwrap();
        let after_first = s.cache_stats();
        assert!(after_first.misses > 0, "cold variation must miss");
        let (second_report, _) = s.what_if_disks(64).unwrap();
        let after_second = s.cache_stats();
        assert_eq!(first_report, second_report);
        assert_eq!(
            after_second.misses, after_first.misses,
            "warm re-run of the same variation must not re-cost anything"
        );
        assert!(after_second.hits > after_first.hits);
    }

    #[test]
    fn evaluate_memoizes_per_candidate() {
        let s = session();
        let frag = Fragmentation::from_pairs(&[(2, 2)]).unwrap();
        let a = s.evaluate(&frag).unwrap();
        let misses = s.cache_stats().misses;
        let b = s.evaluate(&frag).unwrap();
        assert_eq!(a, b);
        assert_eq!(s.cache_stats().misses, misses);
        assert!(s.cache_stats().hits >= 1);
    }

    #[test]
    fn clones_share_snapshot_cache_and_baseline() {
        let s1 = session();
        let s2 = s1.clone();
        assert!(s1.shares_snapshot_with(&s2));
        s1.rank().unwrap();
        // The clone sees the baseline without recomputing it.
        assert!(s2.ranking().is_some());
        // A what-if priced on one clone is warm on the other.
        let (r1, d1) = s1.what_if_disks(64).unwrap();
        let misses_after_s1 = s1.cache_stats().misses;
        let (r2, d2) = s2.what_if_disks(64).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(d1, d2);
        assert_eq!(
            s2.cache_stats().misses,
            misses_after_s1,
            "the clone's repeat what-if must be served warm from the shared cache"
        );
    }

    #[test]
    fn mutating_one_clone_leaves_the_other_on_the_old_snapshot() {
        let mut s1 = session();
        let s2 = s1.clone();
        let baseline = s2.rank().unwrap().clone();
        let entries_before = s2.cache_stats().entries;
        let mut system = *s1.system();
        system.num_disks = 64;
        s1.set_system(system).unwrap();
        assert!(!s1.shares_snapshot_with(&s2));
        assert_eq!(s1.system().num_disks, 64);
        assert_eq!(s2.system().num_disks, 16);
        // The sibling's snapshot, baseline and warm cache entries are
        // untouched — copy-on-write never clears the shared memo.
        assert_eq!(s2.rank().unwrap(), &baseline);
        assert!(s2.cache_stats().entries >= entries_before);
        // The mutated handle re-ranks under the new system.
        assert!(s1.ranking().is_none());
        assert!(
            s1.rank().unwrap().top().unwrap().cost.response_ms
                < baseline.top().unwrap().cost.response_ms
        );
    }

    #[test]
    fn flipping_back_to_a_prior_snapshot_is_warm() {
        let mut s = session();
        s.rank().unwrap();
        let misses_baseline = s.cache_stats().misses;
        let mut system = *s.system();
        system.num_disks = 64;
        s.set_system(system).unwrap();
        s.rank().unwrap();
        let misses_after_swap = s.cache_stats().misses;
        assert!(misses_after_swap > misses_baseline);
        // Swapping back re-uses the original snapshot's entries.
        let mut system = *s.system();
        system.num_disks = 16;
        s.set_system(system).unwrap();
        s.rank().unwrap();
        assert_eq!(
            s.cache_stats().misses,
            misses_after_swap,
            "returning to a previously priced configuration must be free"
        );
    }

    #[test]
    fn invalidate_clears_the_shared_cache() {
        let mut s = session();
        s.rank().unwrap();
        assert!(s.cache_stats().entries > 0);
        s.invalidate();
        assert_eq!(s.cache_stats(), crate::cache::EvalCacheStats::default());
        assert!(s.ranking().is_none());
        s.rank().unwrap();
        assert!(s.cache_stats().entries > 0);
    }

    #[test]
    fn parallelism_knob_does_not_change_the_report() {
        let schema = apb1_like_schema(Apb1Config::default()).unwrap();
        let mix = apb1_like_mix().unwrap();
        let build = |workers: usize| {
            Warlock::builder()
                .schema(schema.clone())
                .system(SystemConfig::default_2001(16))
                .mix(mix.clone())
                .parallelism(workers)
                .build()
                .unwrap()
        };
        let serial = build(1);
        assert_eq!(serial.config().parallelism, 1);
        let reference = serial.run().unwrap();
        for workers in [2, 3, 8] {
            assert_eq!(
                build(workers).run().unwrap(),
                reference,
                "W={workers} diverged"
            );
        }
    }

    #[test]
    fn builder_parallelism_overrides_config_in_any_order() {
        let schema = apb1_like_schema(Apb1Config::default()).unwrap();
        let mix = apb1_like_mix().unwrap();
        let s = Warlock::builder()
            .parallelism(5)
            .schema(schema)
            .system(SystemConfig::default_2001(16))
            .mix(mix)
            .config(AdvisorConfig::default())
            .build()
            .unwrap();
        assert_eq!(s.config().parallelism, 5);
    }

    #[test]
    fn builder_allocation_policy_overrides_config_in_any_order() {
        use warlock_alloc::{AllocationPolicy, AllocationScheme};
        let s = Warlock::builder()
            .allocation_policy(AllocationPolicy::GraphPartition { seed: 7 })
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .mix(apb1_like_mix().unwrap())
            .config(AdvisorConfig::default())
            .build()
            .unwrap();
        assert_eq!(
            s.config().allocation_policy,
            AllocationPolicy::GraphPartition { seed: 7 }
        );
        let plan = s.plan_allocation(1).unwrap();
        assert_eq!(plan.allocation.scheme(), AllocationScheme::GraphPartition);
    }

    #[test]
    fn builder_streaming_knobs_override_config() {
        let s = Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .mix(apb1_like_mix().unwrap())
            .config(AdvisorConfig::default())
            .max_candidates(5000)
            .chunk_size(32)
            .build()
            .unwrap();
        assert_eq!(s.config().max_candidates, 5000);
        assert_eq!(s.config().chunk_size, 32);
        assert_eq!(s.candidate_space_size(), 168);
        // The budget admits the 168-candidate space: advice flows.
        assert!(s.rank().unwrap().top().is_some());
    }

    #[test]
    fn exceeding_the_candidate_budget_is_a_typed_error() {
        let s = Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .mix(apb1_like_mix().unwrap())
            .max_candidates(100)
            .build()
            .unwrap();
        let err = s.rank().unwrap_err();
        assert_eq!(
            err,
            WarlockError::CandidateBudget {
                space: 168,
                budget: 100
            }
        );
        assert_eq!(err.kind(), "candidate_budget");
        // What-if variations run the pipeline too, so they fail the
        // same way instead of grinding through an over-budget space.
        assert!(matches!(
            s.what_if_disks(64),
            Err(WarlockError::CandidateBudget { .. })
        ));
    }

    #[test]
    fn chunk_size_does_not_change_the_report() {
        let schema = apb1_like_schema(Apb1Config::default()).unwrap();
        let mix = apb1_like_mix().unwrap();
        let build = |chunk: usize| {
            Warlock::builder()
                .schema(schema.clone())
                .system(SystemConfig::default_2001(16))
                .mix(mix.clone())
                .chunk_size(chunk)
                .build()
                .unwrap()
        };
        let reference = build(0).run().unwrap();
        for chunk in [1, 2, 7, 168, 10_000] {
            assert_eq!(build(chunk).run().unwrap(), reference, "chunk={chunk}");
        }
    }

    #[test]
    fn invalid_skew_coverage_is_a_skew_error() {
        let e = Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .mix(apb1_like_mix().unwrap())
            .config(AdvisorConfig {
                skew: Some(vec![DimensionSkew::UNIFORM]),
                ..Default::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(e, WarlockError::Skew(_)));
    }

    #[test]
    fn from_config_str_round_trip() {
        let cfg = crate::config_file::render_config(&crate::config_file::demo_config());
        let s = Warlock::from_config_str(&cfg).unwrap();
        assert!(s.rank().unwrap().top().is_some());
        assert!(matches!(
            Warlock::from_config_str("[nonsense"),
            Err(WarlockError::ConfigFile(_))
        ));
    }

    #[test]
    fn reload_swaps_atomically_and_keeps_clones_and_cache() {
        let demo = crate::config_file::demo_config();
        let cfg = crate::config_file::render_config(&demo);
        let mut s = Warlock::from_config_str(&cfg).unwrap();
        let sibling = s.clone();
        let baseline = s.rank().unwrap().clone();
        let misses_baseline = s.cache_stats().misses;

        // Reload with more disks: this handle moves, the sibling stays.
        let reloaded = cfg.replace("disks = 16", "disks = 64");
        assert_ne!(cfg, reloaded, "fixture must actually change");
        s.reload_from_parsed(crate::config_file::parse_config(&reloaded).unwrap())
            .unwrap();
        assert!(!s.shares_snapshot_with(&sibling));
        assert_eq!(s.system().num_disks, 64);
        assert_eq!(sibling.system().num_disks, 16);
        assert_eq!(sibling.rank().unwrap(), &baseline);
        assert!(
            s.rank().unwrap().top().unwrap().cost.response_ms
                < baseline.top().unwrap().cost.response_ms
        );

        // Reverting to the original configuration is warm: the shared
        // cache survived both swaps.
        let misses_after_variant = s.cache_stats().misses;
        s.reload_from_parsed(crate::config_file::parse_config(&cfg).unwrap())
            .unwrap();
        s.rank().unwrap();
        assert_eq!(s.cache_stats().misses, misses_after_variant);
        assert!(misses_after_variant > misses_baseline);
    }

    #[test]
    fn failed_reload_leaves_the_session_untouched() {
        let cfg = crate::config_file::render_config(&crate::config_file::demo_config());
        let mut s = Warlock::from_config_str(&cfg).unwrap();
        let snapshot = s.snapshot();
        let e = s
            .reload_from_config_path("/definitely/not/a/file.cfg")
            .unwrap_err();
        assert_eq!(e.kind(), "io");
        assert!(
            Arc::ptr_eq(&snapshot, &s.snapshot()),
            "snapshot must not move"
        );

        // A file that parses but fails validation is also rejected
        // atomically, with the path attached.
        let path = std::env::temp_dir().join(format!(
            "warlock-reload-bad-{}-{:?}.cfg",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, cfg.replace("disks = 16", "disks = 0")).unwrap();
        let e = s.reload_from_config_path(&path).unwrap_err();
        assert_eq!(e.kind(), "config_file");
        assert!(e.to_string().contains(&path.display().to_string()));
        assert!(Arc::ptr_eq(&snapshot, &s.snapshot()));
        assert_eq!(s.system().num_disks, 16);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn from_config_path_errors_name_the_file() {
        let missing = "/definitely/not/a/file.cfg";
        let e = Warlock::from_config_path(missing).unwrap_err();
        assert_eq!(e.kind(), "io");
        assert!(
            e.to_string().contains(missing),
            "`{e}` does not name the offending path"
        );

        // Parse errors carry the path too.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("warlock-bad-{}.cfg", std::process::id()));
        std::fs::write(&path, "[dimension broken\n").unwrap();
        let e = Warlock::from_config_path(&path).unwrap_err();
        assert_eq!(e.kind(), "config_file");
        assert!(
            e.to_string().contains(&path.display().to_string()),
            "`{e}` does not name the offending path"
        );
        let _ = std::fs::remove_file(&path);
    }
}
