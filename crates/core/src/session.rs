//! The owned, session-oriented WARLOCK facade.
//!
//! [`Warlock`] is the programmatic counterpart of the original tool's
//! interactive GUI session: it **owns** its inputs (schema, system,
//! weighted mix, configuration), validates them once at build time, and
//! then serves rankings, per-candidate analyses, allocation plans and
//! what-if variations from one long-lived handle. Construction goes
//! through [`Warlock::builder`]:
//!
//! ```
//! use warlock::prelude::*;
//!
//! let session = Warlock::builder()
//!     .schema(apb1_like_schema(Apb1Config::default())?)
//!     .system(SystemConfig::default_2001(16))
//!     .mix(apb1_like_mix()?)
//!     .build()?;
//! let best_label = session.rank()?.top().expect("candidates survive").label.clone();
//! let analysis = session.analyze(1)?;
//! assert_eq!(analysis.label, best_label);
//! # Ok::<(), warlock::WarlockError>(())
//! ```
//!
//! ## Snapshots, clones and concurrency
//!
//! Internally a session is a thin handle over two [`Arc`]s:
//!
//! - an immutable [`Snapshot`] — schema, system, mix, configuration,
//!   derived bitmap scheme and skew model, all validated exactly once,
//!   plus the lazily computed baseline ranking;
//! - shared mutable state — the cross-clone [`EvalCache`] and the
//!   persistent evaluation worker pool.
//!
//! `Warlock` is therefore [`Clone`], and cloning is cheap: clones
//! **share** the snapshot, the cache and the pool. Every read-side
//! method (`rank`, `analyze`, `evaluate`, `what_if_*`, …) takes
//! `&self`, so clones on different threads explore what-ifs
//! concurrently with no aliasing and no locks held across an
//! evaluation — and a variation priced on one clone is warm in the
//! shared cache for every other clone.
//!
//! Mutators ([`Warlock::set_system`], [`Warlock::set_mix`],
//! [`Warlock::set_config`]) are copy-on-write: they validate the new
//! input, build a **new** snapshot and swap the handle's `Arc` to it.
//! Clones holding the old snapshot keep reading it unblocked; the
//! shared cache keeps both snapshots' entries apart by fingerprint, so
//! flipping back and forth stays warm.

use std::sync::{Arc, OnceLock};

use warlock_bitmap::BitmapScheme;
use warlock_cost::{CandidateCost, KernelChoice};
use warlock_fragment::Fragmentation;
use warlock_schema::StarSchema;
use warlock_skew::SkewModel;
use warlock_storage::SystemConfig;
use warlock_workload::QueryMix;

use crate::advisor::AdvisorReport;
use crate::allocation_plan::AllocationPlan;
use crate::analysis::FragmentationAnalysis;
use crate::cache::{EvalCache, EvalCacheStats};
use crate::config::AdvisorConfig;
use crate::config_file::parse_config;
use crate::engine;
use crate::engine::exec::WorkerPool;
use crate::engine::EvalEnv;
use crate::error::WarlockError;
use crate::optimizer::{AdviceEvent, DriftStatus, OptimizerState};
use crate::tuning::TuningDelta;
use warlock_schema::DimensionId;
use warlock_workload::{mix_divergence, ClassObservation, DriftState, DriftTransition};

/// One immutable, validated set of advisory inputs plus everything
/// derived from them — the unit [`Warlock`] clones share and
/// copy-on-write mutators swap. See the [module docs](self).
#[derive(Debug)]
pub struct Snapshot {
    schema: StarSchema,
    system: SystemConfig,
    mix: QueryMix,
    config: AdvisorConfig,
    scheme: BitmapScheme,
    skew: SkewModel,
    /// The baseline ranking, computed at most once per snapshot and
    /// shared by every clone holding it.
    ranking: OnceLock<Result<AdvisorReport, WarlockError>>,
    /// Memoized single-candidate evaluation fingerprint (computing one
    /// dumps every model input, and it is constant per snapshot).
    evaluate_fp: OnceLock<u128>,
}

impl Snapshot {
    fn new(
        schema: StarSchema,
        system: SystemConfig,
        mix: QueryMix,
        config: AdvisorConfig,
        scheme: BitmapScheme,
        skew: SkewModel,
    ) -> Self {
        Self {
            schema,
            system,
            mix,
            config,
            scheme,
            skew,
            ranking: OnceLock::new(),
            evaluate_fp: OnceLock::new(),
        }
    }

    /// A copy of this snapshot's inputs with fresh (empty) derived
    /// state, used by [`Warlock::invalidate`].
    fn fresh(&self) -> Self {
        Self::new(
            self.schema.clone(),
            self.system,
            self.mix.clone(),
            self.config.clone(),
            self.scheme.clone(),
            self.skew.clone(),
        )
    }

    /// The schema under advisement.
    #[inline]
    pub fn schema(&self) -> &StarSchema {
        &self.schema
    }

    /// The system configuration.
    #[inline]
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// The query mix.
    #[inline]
    pub fn mix(&self) -> &QueryMix {
        &self.mix
    }

    /// The advisor configuration.
    #[inline]
    pub fn config(&self) -> &AdvisorConfig {
        &self.config
    }

    /// The derived bitmap scheme.
    #[inline]
    pub fn scheme(&self) -> &BitmapScheme {
        &self.scheme
    }

    /// The skew model in effect.
    #[inline]
    pub fn skew(&self) -> &SkewModel {
        &self.skew
    }
}

/// State every clone of one session family shares: the evaluation
/// memo, the persistent worker pool, and the resident optimizer's
/// observed-workload state (statistics window, drift detector, advice
/// events — `None` until the first [`Warlock::observe`]).
#[derive(Debug, Default)]
pub(crate) struct Shared {
    pub(crate) cache: EvalCache,
    pub(crate) pool: WorkerPool,
    pub(crate) optimizer: std::sync::Mutex<Option<OptimizerState>>,
}

impl Shared {
    pub(crate) fn env(&self) -> EvalEnv<'_> {
        EvalEnv {
            cache: Some(&self.cache),
            pool: &self.pool,
        }
    }
}

/// An owned WARLOCK advisory session. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Warlock {
    snapshot: Arc<Snapshot>,
    shared: Arc<Shared>,
}

/// Assembles a [`Warlock`] session from owned inputs.
///
/// `schema`, `system` and `mix` are required; `config` defaults to
/// [`AdvisorConfig::default`].
#[derive(Debug, Clone, Default)]
pub struct WarlockBuilder {
    schema: Option<StarSchema>,
    system: Option<SystemConfig>,
    mix: Option<QueryMix>,
    config: AdvisorConfig,
    parallelism: Option<usize>,
    max_candidates: Option<u64>,
    chunk_size: Option<usize>,
    kernel: Option<KernelChoice>,
    allocation_policy: Option<warlock_alloc::AllocationPolicy>,
}

impl WarlockBuilder {
    /// Sets the star schema under advisement.
    pub fn schema(mut self, schema: StarSchema) -> Self {
        self.schema = Some(schema);
        self
    }

    /// Sets the disk subsystem and architecture parameters.
    pub fn system(mut self, system: SystemConfig) -> Self {
        self.system = Some(system);
        self
    }

    /// Sets the weighted star-query mix.
    pub fn mix(mut self, mix: QueryMix) -> Self {
        self.mix = Some(mix);
        self
    }

    /// Sets the advisor configuration (thresholds, ranking knobs, skew).
    pub fn config(mut self, config: AdvisorConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the candidate-evaluation worker count (`0` = auto, `1` =
    /// serial). Takes precedence over [`AdvisorConfig::parallelism`]
    /// regardless of the order it is combined with [`config`](Self::config).
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = Some(workers);
        self
    }

    /// Sets the candidate-space budget (`0` = unlimited): pipeline runs
    /// whose exact predicted space exceeds it fail with
    /// [`WarlockError::CandidateBudget`] before any evaluation. Takes
    /// precedence over [`AdvisorConfig::max_candidates`] regardless of
    /// the order it is combined with [`config`](Self::config).
    pub fn max_candidates(mut self, budget: u64) -> Self {
        self.max_candidates = Some(budget);
        self
    }

    /// Sets the streaming evaluation chunk size (`0` = auto). Any value
    /// yields bit-identical reports. Takes precedence over
    /// [`AdvisorConfig::chunk_size`] regardless of the order it is
    /// combined with [`config`](Self::config).
    pub fn chunk_size(mut self, candidates: usize) -> Self {
        self.chunk_size = Some(candidates);
        self
    }

    /// Sets the costing kernel backend ([`KernelChoice::Auto`] resolves
    /// via the `WARLOCK_KERNEL` environment variable and then CPU
    /// feature detection). Every choice yields bit-identical reports.
    /// Takes precedence over [`AdvisorConfig::kernel`] regardless of
    /// the order it is combined with [`config`](Self::config).
    pub fn kernel(mut self, choice: KernelChoice) -> Self {
        self.kernel = Some(choice);
        self
    }

    /// Sets the fragment placement policy (e.g.
    /// [`AllocationPolicy::GraphPartition`] for the co-access graph
    /// partitioner). Takes precedence over
    /// [`AdvisorConfig::allocation_policy`] regardless of the order it
    /// is combined with [`config`](Self::config).
    ///
    /// [`AllocationPolicy::GraphPartition`]: warlock_alloc::AllocationPolicy::GraphPartition
    /// [`AdvisorConfig::allocation_policy`]: crate::AdvisorConfig
    pub fn allocation_policy(mut self, policy: warlock_alloc::AllocationPolicy) -> Self {
        self.allocation_policy = Some(policy);
        self
    }

    /// Validates every input and builds the session.
    ///
    /// # Errors
    ///
    /// [`WarlockError::MissingInput`] when a required input was never
    /// provided; [`WarlockError::Config`] / [`WarlockError::System`] /
    /// [`WarlockError::Workload`] / [`WarlockError::Skew`] when an input
    /// fails validation.
    pub fn build(self) -> Result<Warlock, WarlockError> {
        let schema = self
            .schema
            .ok_or(WarlockError::MissingInput { what: "schema" })?;
        let system = self
            .system
            .ok_or(WarlockError::MissingInput { what: "system" })?;
        let mix = self.mix.ok_or(WarlockError::MissingInput { what: "mix" })?;
        let mut config = self.config;
        if let Some(workers) = self.parallelism {
            config.parallelism = workers;
        }
        if let Some(budget) = self.max_candidates {
            config.max_candidates = budget;
        }
        if let Some(chunk) = self.chunk_size {
            config.chunk_size = chunk;
        }
        if let Some(choice) = self.kernel {
            config.kernel = choice;
        }
        if let Some(policy) = self.allocation_policy {
            config.allocation_policy = policy;
        }
        let (scheme, skew) = engine::validate(&schema, &system, &mix, &config)?;
        Ok(Warlock {
            snapshot: Arc::new(Snapshot::new(schema, system, mix, config, scheme, skew)),
            shared: Arc::new(Shared::default()),
        })
    }
}

impl Warlock {
    /// Starts assembling a session.
    pub fn builder() -> WarlockBuilder {
        WarlockBuilder::default()
    }

    /// Builds a session from an already parsed configuration — the
    /// shared construction path of every config-file entry point.
    pub fn from_parsed(parsed: crate::config_file::ParsedConfig) -> Result<Self, WarlockError> {
        Self::builder()
            .schema(parsed.schema)
            .system(parsed.system)
            .mix(parsed.mix)
            .config(parsed.advisor)
            .build()
    }

    /// Builds a session from a configuration-file string (the same
    /// INI-style format the `warlock` CLI reads; see
    /// [`crate::config_file`]).
    pub fn from_config_str(input: &str) -> Result<Self, WarlockError> {
        Self::from_parsed(parse_config(input)?)
    }

    /// Builds a session from a configuration file on disk.
    ///
    /// # Errors
    ///
    /// Every failure — unreadable file, parse error, validation error —
    /// is wrapped in [`WarlockError::AtPath`] so the message names the
    /// offending file.
    pub fn from_config_path(path: impl AsRef<std::path::Path>) -> Result<Self, WarlockError> {
        let path = path.as_ref();
        let parsed = crate::config_file::parse_config_path(path)?;
        Self::from_parsed(parsed).map_err(|e| e.at_path(path.display().to_string()))
    }

    // ------------------------------------------------------------------
    // Accessors.

    /// The immutable snapshot this handle currently reads from. Clones
    /// made now share it; mutators swap in a new one.
    #[inline]
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot)
    }

    /// Whether two handles currently read the same snapshot.
    #[inline]
    pub fn shares_snapshot_with(&self, other: &Warlock) -> bool {
        Arc::ptr_eq(&self.snapshot, &other.snapshot)
    }

    /// The schema under advisement.
    #[inline]
    pub fn schema(&self) -> &StarSchema {
        self.snapshot.schema()
    }

    /// The system configuration.
    #[inline]
    pub fn system(&self) -> &SystemConfig {
        self.snapshot.system()
    }

    /// The query mix.
    #[inline]
    pub fn mix(&self) -> &QueryMix {
        self.snapshot.mix()
    }

    /// The advisor configuration.
    #[inline]
    pub fn config(&self) -> &AdvisorConfig {
        self.snapshot.config()
    }

    /// The derived bitmap scheme.
    #[inline]
    pub fn scheme(&self) -> &BitmapScheme {
        self.snapshot.scheme()
    }

    /// The skew model in effect.
    #[inline]
    pub fn skew(&self) -> &SkewModel {
        self.snapshot.skew()
    }

    // ------------------------------------------------------------------
    // Input mutation: copy-on-write snapshot swaps. Only this handle
    // moves to the new snapshot; clones keep reading the old one
    // unblocked, and the shared cache keeps both warm (entries are
    // keyed by input fingerprints).

    fn swap_snapshot(&mut self, snapshot: Snapshot) {
        self.snapshot = Arc::new(snapshot);
    }

    /// Replaces the system configuration, revalidating it and swapping
    /// this handle to a fresh snapshot (clones are unaffected).
    pub fn set_system(&mut self, system: SystemConfig) -> Result<(), WarlockError> {
        system.validate().map_err(WarlockError::System)?;
        let s = &*self.snapshot;
        self.swap_snapshot(Snapshot::new(
            s.schema.clone(),
            system,
            s.mix.clone(),
            s.config.clone(),
            s.scheme.clone(),
            s.skew.clone(),
        ));
        Ok(())
    }

    /// Replaces the query mix, revalidating it against the schema,
    /// re-deriving the bitmap scheme and swapping this handle to a
    /// fresh snapshot (clones are unaffected).
    pub fn set_mix(&mut self, mix: QueryMix) -> Result<(), WarlockError> {
        let s = &*self.snapshot;
        mix.validate(&s.schema)?;
        let scheme = BitmapScheme::derive(&s.schema, &mix, s.config.scheme);
        self.swap_snapshot(Snapshot::new(
            s.schema.clone(),
            s.system,
            mix,
            s.config.clone(),
            scheme,
            s.skew.clone(),
        ));
        Ok(())
    }

    /// Replaces the advisor configuration, revalidating and re-deriving
    /// the scheme and skew model; swaps this handle to a fresh snapshot
    /// (clones are unaffected).
    pub fn set_config(&mut self, config: AdvisorConfig) -> Result<(), WarlockError> {
        let s = &*self.snapshot;
        let (scheme, skew) = engine::validate(&s.schema, &s.system, &s.mix, &config)?;
        self.swap_snapshot(Snapshot::new(
            s.schema.clone(),
            s.system,
            s.mix.clone(),
            config,
            scheme,
            skew,
        ));
        Ok(())
    }

    /// Replaces **every** input of this session from an already parsed
    /// configuration, as one atomic copy-on-write snapshot swap: the new
    /// inputs are validated in full first, and only then does this
    /// handle move to the new snapshot. On any error the session keeps
    /// serving its previous snapshot unchanged. Clones — including
    /// in-flight readers — finish on the old snapshot; the shared
    /// evaluation cache and worker pool are kept (entries are keyed by
    /// input fingerprints, so reverting to a previously served
    /// configuration is warm).
    pub fn reload_from_parsed(
        &mut self,
        parsed: crate::config_file::ParsedConfig,
    ) -> Result<(), WarlockError> {
        let (scheme, skew) =
            engine::validate(&parsed.schema, &parsed.system, &parsed.mix, &parsed.advisor)?;
        self.swap_snapshot(Snapshot::new(
            parsed.schema,
            parsed.system,
            parsed.mix,
            parsed.advisor,
            scheme,
            skew,
        ));
        Ok(())
    }

    /// Atomically re-reads this session's inputs from a configuration
    /// file on disk (see [`Warlock::reload_from_parsed`]). Every failure
    /// is wrapped in [`WarlockError::AtPath`] naming the file, and
    /// leaves the session on its previous snapshot.
    pub fn reload_from_config_path(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), WarlockError> {
        let path = path.as_ref();
        let parsed = crate::config_file::parse_config_path(path)?;
        self.reload_from_parsed(parsed)
            .map_err(|e| e.at_path(path.display().to_string()))
    }

    /// Overrides the bitmap scheme (interactive tuning: "the user may
    /// decide to exclude some of the suggested bitmap indices").
    pub fn with_scheme(mut self, scheme: BitmapScheme) -> Self {
        let s = &*self.snapshot;
        let snapshot = Snapshot::new(
            s.schema.clone(),
            s.system,
            s.mix.clone(),
            s.config.clone(),
            scheme,
            s.skew.clone(),
        );
        self.swap_snapshot(snapshot);
        self
    }

    // ------------------------------------------------------------------
    // The pipeline.

    /// The exact size of the candidate space the pipeline would
    /// enumerate for the current snapshot (point space plus any
    /// configured `range_options`), computed without generating a
    /// single candidate. Cheap enough for health checks — `warlockd`'s
    /// `ping` reports it without a rank round-trip.
    pub fn candidate_space_size(&self) -> u128 {
        let s = &*self.snapshot;
        warlock_fragment::CandidateSource::ranged(
            &s.schema,
            s.config.max_dimensionality,
            &s.config.range_options,
        )
        .space_size()
    }

    /// The threshold context derived from the system configuration.
    pub fn threshold_context(&self) -> warlock_fragment::ThresholdContext {
        engine::threshold_context(
            &self.snapshot.schema,
            &self.snapshot.system,
            &self.snapshot.config,
        )
    }

    /// Runs the prediction pipeline, ignoring and leaving untouched the
    /// snapshot's cached *ranking* (the shared per-candidate evaluation
    /// memo is still consulted and extended — see
    /// [`Warlock::cache_stats`]).
    pub fn run(&self) -> Result<AdvisorReport, WarlockError> {
        let s = &*self.snapshot;
        engine::run(
            &s.schema,
            &s.system,
            &s.mix,
            &s.config,
            &s.scheme,
            self.shared.env(),
        )
    }

    /// The ranked recommendation list, computed on first call and
    /// cached on the snapshot — every clone sharing this snapshot sees
    /// the same baseline without recomputing it. Takes `&self`: no lock
    /// is held across the computation (two clones racing a cold
    /// baseline may both compute it; the first result wins and both
    /// return identical reports).
    pub fn rank(&self) -> Result<&AdvisorReport, WarlockError> {
        if self.snapshot.ranking.get().is_none() {
            let computed = self.run();
            let _ = self.snapshot.ranking.set(computed);
        }
        match self.snapshot.ranking.get() {
            Some(Ok(report)) => Ok(report),
            Some(Err(e)) => Err(e.clone()),
            None => Err(WarlockError::internal("baseline ranking never settled")),
        }
    }

    /// The cached ranking, if [`Warlock::rank`] has succeeded on this
    /// snapshot.
    #[inline]
    pub fn ranking(&self) -> Option<&AdvisorReport> {
        match self.snapshot.ranking.get() {
            Some(Ok(report)) => Some(report),
            _ => None,
        }
    }

    /// Drops the cached ranking **and** the shared per-candidate
    /// evaluation memo: the next [`Warlock::rank`] recomputes
    /// everything. Clearing the memo is observable by clones (it is
    /// shared); their snapshots and cached rankings are untouched.
    pub fn invalidate(&mut self) {
        let fresh = self.snapshot.fresh();
        self.swap_snapshot(fresh);
        self.shared.cache.clear();
    }

    /// Counters of the shared evaluation memo: how many candidate
    /// outcomes are held, and how many lookups hit or missed since the
    /// session family was built (or last invalidated). Repeating a
    /// what-if variation on a warm session — or on any clone of it —
    /// shows pure hits: nothing is re-costed.
    pub fn cache_stats(&self) -> EvalCacheStats {
        self.shared.cache.stats()
    }

    fn ranked_fragmentation(&self, rank: usize) -> Result<Fragmentation, WarlockError> {
        let report = self.rank()?;
        let available = report.ranked.len();
        report
            .ranked
            .get(rank.wrapping_sub(1))
            .map(|r| r.cost.fragmentation.clone())
            .ok_or(WarlockError::RankOutOfRange { rank, available })
    }

    /// The Fig.-2-style detailed query statistic of the candidate at
    /// 1-based `rank`, ranking first if necessary.
    pub fn analyze(&self, rank: usize) -> Result<FragmentationAnalysis, WarlockError> {
        let fragmentation = self.ranked_fragmentation(rank)?;
        self.analyze_candidate(&fragmentation)
    }

    /// The physical allocation plan of the candidate at 1-based `rank`,
    /// ranking first if necessary.
    pub fn plan_allocation(&self, rank: usize) -> Result<AllocationPlan, WarlockError> {
        let fragmentation = self.ranked_fragmentation(rank)?;
        self.plan_candidate(&fragmentation)
    }

    /// Evaluates an arbitrary candidate outside the ranking pipeline.
    pub fn evaluate(&self, fragmentation: &Fragmentation) -> Result<CandidateCost, WarlockError> {
        let s = &*self.snapshot;
        engine::evaluate(
            &s.schema,
            &s.system,
            &s.mix,
            &s.config,
            &s.scheme,
            fragmentation,
            Some(&self.shared.cache),
            Some(&s.evaluate_fp),
        )
    }

    /// The detailed query statistic of an arbitrary candidate.
    pub fn analyze_candidate(
        &self,
        fragmentation: &Fragmentation,
    ) -> Result<FragmentationAnalysis, WarlockError> {
        let s = &*self.snapshot;
        engine::analyze(
            &s.schema,
            &s.system,
            &s.mix,
            &s.config,
            &s.scheme,
            fragmentation,
        )
    }

    /// The physical allocation plan of an arbitrary candidate.
    pub fn plan_candidate(
        &self,
        fragmentation: &Fragmentation,
    ) -> Result<AllocationPlan, WarlockError> {
        let s = &*self.snapshot;
        engine::plan_allocation(
            &s.schema,
            &s.system,
            &s.mix,
            &s.config,
            &s.scheme,
            &s.skew,
            fragmentation,
        )
    }

    // ------------------------------------------------------------------
    // What-if tuning (§3.3): each variation re-runs the pipeline against
    // modified inputs without touching the snapshot, and reports the
    // delta against the snapshot's (cached) baseline ranking. All
    // variations take `&self` — clones explore them concurrently.

    fn with_delta(
        &self,
        (variation, report): (String, AdvisorReport),
    ) -> Result<(AdvisorReport, TuningDelta), WarlockError> {
        let delta = TuningDelta::between(variation, self.rank()?, &report);
        Ok((report, delta))
    }

    /// What if the system had `num_disks` disks?
    pub fn what_if_disks(
        &self,
        num_disks: u32,
    ) -> Result<(AdvisorReport, TuningDelta), WarlockError> {
        let s = &*self.snapshot;
        let varied = engine::vary_disks(
            &s.schema,
            &s.system,
            &s.mix,
            &s.config,
            &s.scheme,
            num_disks,
            self.shared.env(),
        )?;
        self.with_delta(varied)
    }

    /// What if prefetching were fixed at `pages` for both fact tables
    /// and bitmaps?
    pub fn what_if_fixed_prefetch(
        &self,
        pages: u32,
    ) -> Result<(AdvisorReport, TuningDelta), WarlockError> {
        let s = &*self.snapshot;
        let varied = engine::vary_fixed_prefetch(
            &s.schema,
            &s.system,
            &s.mix,
            &s.config,
            &s.scheme,
            pages,
            self.shared.env(),
        )?;
        self.with_delta(varied)
    }

    /// What if the bitmap indexes of `dimension` were dropped (space
    /// limiting)?
    pub fn what_if_without_bitmap_dimension(
        &self,
        dimension: DimensionId,
    ) -> Result<(AdvisorReport, TuningDelta), WarlockError> {
        let s = &*self.snapshot;
        let varied = engine::vary_without_bitmap_dimension(
            &s.schema,
            &s.system,
            &s.mix,
            &s.config,
            &s.scheme,
            dimension,
            self.shared.env(),
        )?;
        self.with_delta(varied)
    }

    /// What if query class `name` vanished from the workload?
    ///
    /// # Errors
    ///
    /// [`WarlockError::UnknownClass`] when the name is unknown or
    /// removing the class would empty the mix.
    pub fn what_if_without_class(
        &self,
        name: &str,
    ) -> Result<(AdvisorReport, TuningDelta), WarlockError> {
        let s = &*self.snapshot;
        let varied = engine::vary_without_class(
            &s.schema,
            &s.system,
            &s.mix,
            &s.config,
            name,
            self.shared.env(),
        )?;
        self.with_delta(varied)
    }

    // ------------------------------------------------------------------
    // Resident optimizer: workload-stats ingestion, drift detection and
    // incremental auto re-advising. The observed-workload state (the
    // statistics window, the hysteresis detector, the advice-event log)
    // lives in the family-shared state, so every clone sees the same
    // traffic history; adopting the observed mix is a copy-on-write
    // snapshot swap on *this* handle only, like every other mutator.

    /// Ingests one batch of live-traffic observations and returns the
    /// resulting drift status.
    ///
    /// The statistics window decays in observed queries (half-life
    /// [`AdvisorConfig::stats_half_life`]), so the state — and every
    /// drift score and transition — is a pure function of the ordered
    /// observation stream, at any batch split. When the drift score
    /// crosses [`AdvisorConfig::drift_enter`] and
    /// [`AdvisorConfig::auto_advise`] is on, the session adopts the
    /// observed mix (configured classes re-weighted by their observed
    /// traffic) via the copy-on-write [`Warlock::set_mix`] path,
    /// re-ranks — warm through the shared evaluation memo, which keys
    /// costed candidates by a weight-free structure fingerprint, so
    /// only the recombination is recomputed — and emits an
    /// [`AdviceEvent::RecommendationChanged`] into the bounded event
    /// log ([`Warlock::advice_events`]).
    ///
    /// # Errors
    ///
    /// An auto re-advise surfaces its failures instead of silently
    /// keeping the stale ranking: notably the typed
    /// `WorkloadError::EmptyMix` (as [`WarlockError::Workload`]) when
    /// none of the *configured* classes has observed weight — drifted
    /// traffic consisting only of unknown classes cannot be costed.
    pub fn observe(&mut self, batch: &[ClassObservation]) -> Result<DriftStatus, WarlockError> {
        let shared = Arc::clone(&self.shared);
        let mut guard = shared.optimizer.lock().expect("optimizer state poisoned");
        let snapshot = Arc::clone(&self.snapshot);
        let state = guard.get_or_insert_with(|| OptimizerState::new(&snapshot.config));
        state.window.ingest(batch);
        let score = mix_divergence(&snapshot.mix, &state.window);
        let transition = state.detector.update(score);
        if transition == Some(DriftTransition::Entered) && snapshot.config.auto_advise {
            let observed = observed_mix(&snapshot.mix, &state.window)?;
            // Peek the old recommendation — never force-rank a mix the
            // session is about to abandon.
            let old = self
                .ranking()
                .and_then(|r| r.top())
                .map(|t| t.label.clone());
            self.set_mix(observed)?;
            let new = self
                .rank()?
                .top()
                .map(|t| t.label.clone())
                .ok_or_else(|| WarlockError::internal("re-advise produced an empty ranking"))?;
            state.seq += 1;
            state.push_event(AdviceEvent::RecommendationChanged {
                seq: state.seq,
                old,
                new,
                drift_score: score,
                observed_queries: state.window.observed_queries(),
            });
            // Re-score against the adopted mix: with the observed
            // traffic now configured, the detector falls back toward
            // `Stable` on its own hysteresis.
            let rescore = mix_divergence(&self.snapshot.mix, &state.window);
            let _ = state.detector.update(rescore);
        }
        let s = &*self.snapshot;
        Ok(DriftStatus {
            state: state.detector.state(),
            score: mix_divergence(&s.mix, &state.window),
            drift_enter: state.detector.thresholds().0,
            drift_exit: state.detector.thresholds().1,
            observed_queries: state.window.observed_queries(),
            tracked_classes: state.window.len(),
            auto_advise: s.config.auto_advise,
            events_emitted: state.seq,
        })
    }

    /// The current drift status, without ingesting anything or moving
    /// the detector. Before the first [`Warlock::observe`] the score is
    /// `0.0` and the thresholds are read from the configuration.
    pub fn drift_status(&self) -> DriftStatus {
        let guard = self
            .shared
            .optimizer
            .lock()
            .expect("optimizer state poisoned");
        let s = &*self.snapshot;
        match &*guard {
            None => DriftStatus {
                state: DriftState::Stable,
                score: 0.0,
                drift_enter: s.config.drift_enter,
                drift_exit: s.config.drift_exit,
                observed_queries: 0,
                tracked_classes: 0,
                auto_advise: s.config.auto_advise,
                events_emitted: 0,
            },
            Some(state) => DriftStatus {
                state: state.detector.state(),
                score: mix_divergence(&s.mix, &state.window),
                drift_enter: state.detector.thresholds().0,
                drift_exit: state.detector.thresholds().1,
                observed_queries: state.window.observed_queries(),
                tracked_classes: state.window.len(),
                auto_advise: s.config.auto_advise,
                events_emitted: state.seq,
            },
        }
    }

    /// The retained advice events in emission order (oldest first). At
    /// most the newest `limit` events are returned (`0` = all
    /// retained); the log itself keeps a bounded tail, and each event's
    /// `seq` stays monotonic across truncation.
    pub fn advice_events(&self, limit: usize) -> Vec<AdviceEvent> {
        let guard = self
            .shared
            .optimizer
            .lock()
            .expect("optimizer state poisoned");
        match &*guard {
            None => Vec::new(),
            Some(state) => {
                let skip = if limit == 0 {
                    0
                } else {
                    state.events.len().saturating_sub(limit)
                };
                state.events.iter().skip(skip).cloned().collect()
            }
        }
    }

    /// Turns auto re-advising on or off for this handle (a
    /// copy-on-write configuration swap; the observed-traffic history
    /// is shared and survives).
    pub fn set_auto_advise(&mut self, on: bool) -> Result<(), WarlockError> {
        if self.snapshot.config.auto_advise == on {
            return Ok(());
        }
        let mut config = self.snapshot.config.clone();
        config.auto_advise = on;
        self.set_config(config)
    }
}

/// The mix an auto re-advise adopts: the configured classes, in
/// configured order, re-weighted by their decayed observed weights.
/// Observed classes the configuration does not define are ignored —
/// there are no predicates to cost them with (they still push the
/// drift score up). Configured classes the traffic no longer exercises
/// drop out of the mix (zero weights are structural). Fails with the
/// typed `EmptyMix` workload error when no configured class has any
/// observed weight.
fn observed_mix(
    configured: &QueryMix,
    window: &warlock_workload::StatsWindow,
) -> Result<QueryMix, WarlockError> {
    let mut builder = QueryMix::builder();
    for (class, _) in configured.iter() {
        builder = builder.class(class.clone(), window.weight_of(class.name()));
    }
    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_schema::{apb1_like_schema, Apb1Config};
    use warlock_skew::DimensionSkew;
    use warlock_workload::apb1_like_mix;

    fn session() -> Warlock {
        Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .mix(apb1_like_mix().unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_all_inputs() {
        let e = Warlock::builder().build().unwrap_err();
        assert_eq!(e, WarlockError::MissingInput { what: "schema" });
        let e = Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .build()
            .unwrap_err();
        assert_eq!(e, WarlockError::MissingInput { what: "system" });
        let e = Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .build()
            .unwrap_err();
        assert_eq!(e, WarlockError::MissingInput { what: "mix" });
    }

    #[test]
    fn rank_caches_until_invalidated() {
        let mut s = session();
        assert!(s.ranking().is_none());
        let top = s.rank().unwrap().top().unwrap().label.clone();
        assert!(s.ranking().is_some());
        // Cached: same snapshot-held report returned.
        let again = s.rank().unwrap().top().unwrap().label.clone();
        assert_eq!(top, again);
        s.invalidate();
        assert!(s.ranking().is_none());
    }

    #[test]
    fn analyze_and_plan_by_rank() {
        let s = session();
        let analysis = s.analyze(1).unwrap();
        let top = s.rank().unwrap().top().unwrap().clone();
        assert_eq!(analysis.label, top.label);
        let plan = s.plan_allocation(1).unwrap();
        assert_eq!(plan.label, top.label);
        let available = s.rank().unwrap().ranked.len();
        assert_eq!(
            s.analyze(0).unwrap_err(),
            WarlockError::RankOutOfRange { rank: 0, available }
        );
        assert_eq!(
            s.plan_allocation(available + 1).unwrap_err(),
            WarlockError::RankOutOfRange {
                rank: available + 1,
                available
            }
        );
    }

    #[test]
    fn set_system_invalidates_and_changes_advice_inputs() {
        let mut s = session();
        let baseline = s.rank().unwrap().top().unwrap().cost.response_ms;
        let mut system = *s.system();
        system.num_disks = 64;
        s.set_system(system).unwrap();
        assert!(s.ranking().is_none());
        let faster = s.rank().unwrap().top().unwrap().cost.response_ms;
        assert!(faster < baseline);

        let mut bad = *s.system();
        bad.disk.transfer_mb_per_s = 0.0;
        assert!(matches!(s.set_system(bad), Err(WarlockError::System(_))));
    }

    #[test]
    fn what_if_variants_leave_session_untouched() {
        let s = session();
        let baseline = s.rank().unwrap().clone();
        let (_, delta) = s.what_if_disks(64).unwrap();
        assert!(delta.variation_response_ms < delta.baseline_response_ms);
        let (_, delta) = s.what_if_fixed_prefetch(1).unwrap();
        assert!(delta.variation_response_ms > delta.baseline_response_ms);
        let (_, delta) = s.what_if_without_bitmap_dimension(DimensionId(0)).unwrap();
        assert!(delta.variation_response_ms >= delta.baseline_response_ms * 0.999);
        assert!(matches!(
            s.what_if_without_class("nonexistent"),
            Err(WarlockError::UnknownClass { .. })
        ));
        let (report, delta) = s.what_if_without_class("q01_month_store_code").unwrap();
        assert!(!report.ranked.is_empty());
        assert!(delta.variation.contains("q01"));
        // The session's own inputs and baseline are untouched.
        assert_eq!(s.rank().unwrap(), &baseline);
    }

    #[test]
    fn repeated_what_if_hits_the_eval_cache() {
        let s = session();
        s.rank().unwrap();
        let (first_report, _) = s.what_if_disks(64).unwrap();
        let after_first = s.cache_stats();
        assert!(after_first.misses > 0, "cold variation must miss");
        let (second_report, _) = s.what_if_disks(64).unwrap();
        let after_second = s.cache_stats();
        assert_eq!(first_report, second_report);
        assert_eq!(
            after_second.misses, after_first.misses,
            "warm re-run of the same variation must not re-cost anything"
        );
        assert!(after_second.hits > after_first.hits);
    }

    #[test]
    fn evaluate_memoizes_per_candidate() {
        let s = session();
        let frag = Fragmentation::from_pairs(&[(2, 2)]).unwrap();
        let a = s.evaluate(&frag).unwrap();
        let misses = s.cache_stats().misses;
        let b = s.evaluate(&frag).unwrap();
        assert_eq!(a, b);
        assert_eq!(s.cache_stats().misses, misses);
        assert!(s.cache_stats().hits >= 1);
    }

    #[test]
    fn clones_share_snapshot_cache_and_baseline() {
        let s1 = session();
        let s2 = s1.clone();
        assert!(s1.shares_snapshot_with(&s2));
        s1.rank().unwrap();
        // The clone sees the baseline without recomputing it.
        assert!(s2.ranking().is_some());
        // A what-if priced on one clone is warm on the other.
        let (r1, d1) = s1.what_if_disks(64).unwrap();
        let misses_after_s1 = s1.cache_stats().misses;
        let (r2, d2) = s2.what_if_disks(64).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(d1, d2);
        assert_eq!(
            s2.cache_stats().misses,
            misses_after_s1,
            "the clone's repeat what-if must be served warm from the shared cache"
        );
    }

    #[test]
    fn mutating_one_clone_leaves_the_other_on_the_old_snapshot() {
        let mut s1 = session();
        let s2 = s1.clone();
        let baseline = s2.rank().unwrap().clone();
        let entries_before = s2.cache_stats().entries;
        let mut system = *s1.system();
        system.num_disks = 64;
        s1.set_system(system).unwrap();
        assert!(!s1.shares_snapshot_with(&s2));
        assert_eq!(s1.system().num_disks, 64);
        assert_eq!(s2.system().num_disks, 16);
        // The sibling's snapshot, baseline and warm cache entries are
        // untouched — copy-on-write never clears the shared memo.
        assert_eq!(s2.rank().unwrap(), &baseline);
        assert!(s2.cache_stats().entries >= entries_before);
        // The mutated handle re-ranks under the new system.
        assert!(s1.ranking().is_none());
        assert!(
            s1.rank().unwrap().top().unwrap().cost.response_ms
                < baseline.top().unwrap().cost.response_ms
        );
    }

    #[test]
    fn flipping_back_to_a_prior_snapshot_is_warm() {
        let mut s = session();
        s.rank().unwrap();
        let misses_baseline = s.cache_stats().misses;
        let mut system = *s.system();
        system.num_disks = 64;
        s.set_system(system).unwrap();
        s.rank().unwrap();
        let misses_after_swap = s.cache_stats().misses;
        assert!(misses_after_swap > misses_baseline);
        // Swapping back re-uses the original snapshot's entries.
        let mut system = *s.system();
        system.num_disks = 16;
        s.set_system(system).unwrap();
        s.rank().unwrap();
        assert_eq!(
            s.cache_stats().misses,
            misses_after_swap,
            "returning to a previously priced configuration must be free"
        );
    }

    #[test]
    fn invalidate_clears_the_shared_cache() {
        let mut s = session();
        s.rank().unwrap();
        assert!(s.cache_stats().entries > 0);
        s.invalidate();
        assert_eq!(s.cache_stats(), crate::cache::EvalCacheStats::default());
        assert!(s.ranking().is_none());
        s.rank().unwrap();
        assert!(s.cache_stats().entries > 0);
    }

    #[test]
    fn parallelism_knob_does_not_change_the_report() {
        let schema = apb1_like_schema(Apb1Config::default()).unwrap();
        let mix = apb1_like_mix().unwrap();
        let build = |workers: usize| {
            Warlock::builder()
                .schema(schema.clone())
                .system(SystemConfig::default_2001(16))
                .mix(mix.clone())
                .parallelism(workers)
                .build()
                .unwrap()
        };
        let serial = build(1);
        assert_eq!(serial.config().parallelism, 1);
        let reference = serial.run().unwrap();
        for workers in [2, 3, 8] {
            assert_eq!(
                build(workers).run().unwrap(),
                reference,
                "W={workers} diverged"
            );
        }
    }

    #[test]
    fn builder_parallelism_overrides_config_in_any_order() {
        let schema = apb1_like_schema(Apb1Config::default()).unwrap();
        let mix = apb1_like_mix().unwrap();
        let s = Warlock::builder()
            .parallelism(5)
            .schema(schema)
            .system(SystemConfig::default_2001(16))
            .mix(mix)
            .config(AdvisorConfig::default())
            .build()
            .unwrap();
        assert_eq!(s.config().parallelism, 5);
    }

    #[test]
    fn builder_allocation_policy_overrides_config_in_any_order() {
        use warlock_alloc::{AllocationPolicy, AllocationScheme};
        let s = Warlock::builder()
            .allocation_policy(AllocationPolicy::GraphPartition { seed: 7 })
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .mix(apb1_like_mix().unwrap())
            .config(AdvisorConfig::default())
            .build()
            .unwrap();
        assert_eq!(
            s.config().allocation_policy,
            AllocationPolicy::GraphPartition { seed: 7 }
        );
        let plan = s.plan_allocation(1).unwrap();
        assert_eq!(plan.allocation.scheme(), AllocationScheme::GraphPartition);
    }

    #[test]
    fn builder_streaming_knobs_override_config() {
        let s = Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .mix(apb1_like_mix().unwrap())
            .config(AdvisorConfig::default())
            .max_candidates(5000)
            .chunk_size(32)
            .build()
            .unwrap();
        assert_eq!(s.config().max_candidates, 5000);
        assert_eq!(s.config().chunk_size, 32);
        assert_eq!(s.candidate_space_size(), 168);
        // The budget admits the 168-candidate space: advice flows.
        assert!(s.rank().unwrap().top().is_some());
    }

    #[test]
    fn exceeding_the_candidate_budget_is_a_typed_error() {
        let s = Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .mix(apb1_like_mix().unwrap())
            .max_candidates(100)
            .build()
            .unwrap();
        let err = s.rank().unwrap_err();
        assert_eq!(
            err,
            WarlockError::CandidateBudget {
                space: 168,
                budget: 100
            }
        );
        assert_eq!(err.kind(), "candidate_budget");
        // What-if variations run the pipeline too, so they fail the
        // same way instead of grinding through an over-budget space.
        assert!(matches!(
            s.what_if_disks(64),
            Err(WarlockError::CandidateBudget { .. })
        ));
    }

    #[test]
    fn chunk_size_does_not_change_the_report() {
        let schema = apb1_like_schema(Apb1Config::default()).unwrap();
        let mix = apb1_like_mix().unwrap();
        let build = |chunk: usize| {
            Warlock::builder()
                .schema(schema.clone())
                .system(SystemConfig::default_2001(16))
                .mix(mix.clone())
                .chunk_size(chunk)
                .build()
                .unwrap()
        };
        let reference = build(0).run().unwrap();
        for chunk in [1, 2, 7, 168, 10_000] {
            assert_eq!(build(chunk).run().unwrap(), reference, "chunk={chunk}");
        }
    }

    #[test]
    fn invalid_skew_coverage_is_a_skew_error() {
        let e = Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .mix(apb1_like_mix().unwrap())
            .config(AdvisorConfig {
                skew: Some(vec![DimensionSkew::UNIFORM]),
                ..Default::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(e, WarlockError::Skew(_)));
    }

    #[test]
    fn from_config_str_round_trip() {
        let cfg = crate::config_file::render_config(&crate::config_file::demo_config());
        let s = Warlock::from_config_str(&cfg).unwrap();
        assert!(s.rank().unwrap().top().is_some());
        assert!(matches!(
            Warlock::from_config_str("[nonsense"),
            Err(WarlockError::ConfigFile(_))
        ));
    }

    #[test]
    fn reload_swaps_atomically_and_keeps_clones_and_cache() {
        let demo = crate::config_file::demo_config();
        let cfg = crate::config_file::render_config(&demo);
        let mut s = Warlock::from_config_str(&cfg).unwrap();
        let sibling = s.clone();
        let baseline = s.rank().unwrap().clone();
        let misses_baseline = s.cache_stats().misses;

        // Reload with more disks: this handle moves, the sibling stays.
        let reloaded = cfg.replace("disks = 16", "disks = 64");
        assert_ne!(cfg, reloaded, "fixture must actually change");
        s.reload_from_parsed(crate::config_file::parse_config(&reloaded).unwrap())
            .unwrap();
        assert!(!s.shares_snapshot_with(&sibling));
        assert_eq!(s.system().num_disks, 64);
        assert_eq!(sibling.system().num_disks, 16);
        assert_eq!(sibling.rank().unwrap(), &baseline);
        assert!(
            s.rank().unwrap().top().unwrap().cost.response_ms
                < baseline.top().unwrap().cost.response_ms
        );

        // Reverting to the original configuration is warm: the shared
        // cache survived both swaps.
        let misses_after_variant = s.cache_stats().misses;
        s.reload_from_parsed(crate::config_file::parse_config(&cfg).unwrap())
            .unwrap();
        s.rank().unwrap();
        assert_eq!(s.cache_stats().misses, misses_after_variant);
        assert!(misses_after_variant > misses_baseline);
    }

    #[test]
    fn failed_reload_leaves_the_session_untouched() {
        let cfg = crate::config_file::render_config(&crate::config_file::demo_config());
        let mut s = Warlock::from_config_str(&cfg).unwrap();
        let snapshot = s.snapshot();
        let e = s
            .reload_from_config_path("/definitely/not/a/file.cfg")
            .unwrap_err();
        assert_eq!(e.kind(), "io");
        assert!(
            Arc::ptr_eq(&snapshot, &s.snapshot()),
            "snapshot must not move"
        );

        // A file that parses but fails validation is also rejected
        // atomically, with the path attached.
        let path = std::env::temp_dir().join(format!(
            "warlock-reload-bad-{}-{:?}.cfg",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, cfg.replace("disks = 16", "disks = 0")).unwrap();
        let e = s.reload_from_config_path(&path).unwrap_err();
        assert_eq!(e.kind(), "config_file");
        assert!(e.to_string().contains(&path.display().to_string()));
        assert!(Arc::ptr_eq(&snapshot, &s.snapshot()));
        assert_eq!(s.system().num_disks, 16);
        let _ = std::fs::remove_file(&path);
    }

    /// A session with the resident optimizer armed: permissive budget,
    /// auto re-advising on, default hysteresis (enter 0.25 / exit 0.10).
    fn resident_session() -> Warlock {
        Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(16))
            .mix(apb1_like_mix().unwrap())
            .config(AdvisorConfig {
                auto_advise: true,
                ..Default::default()
            })
            .build()
            .unwrap()
    }

    /// One observation batch distributed like the configured mix
    /// (1000 queries).
    fn matching_batch(s: &Warlock) -> Vec<ClassObservation> {
        s.mix()
            .iter()
            .map(|(c, share)| ClassObservation::new(c.name(), (share * 1000.0).round() as u64))
            .collect()
    }

    /// A drifted 1000-query batch: `boost` takes 55 % of the traffic,
    /// the rest keep their configured proportions. L1 distance to the
    /// configured mix ≈ 0.4 — past the default enter threshold, but
    /// close enough that the *adopted* blend stays within hysteresis of
    /// the target (the detector must fire exactly once).
    fn drifted_batch(s: &Warlock, boost: &str) -> Vec<ClassObservation> {
        let boosted = s.mix().class_by_name(boost).expect("boost class").share;
        s.mix()
            .iter()
            .map(|(c, share)| {
                let target = if c.name() == boost {
                    0.55
                } else {
                    share * (0.45 / (1.0 - boosted))
                };
                ClassObservation::new(c.name(), (target * 1000.0).round() as u64)
            })
            .collect()
    }

    #[test]
    fn observe_without_auto_advise_only_tracks() {
        let mut s = session();
        assert!(!s.config().auto_advise);
        let baseline_mix = s.mix().clone();
        let matching = matching_batch(&s);
        let status = s.observe(&matching).unwrap();
        assert_eq!(status.state, DriftState::Stable);
        // Not exactly zero: within one batch each observation decays
        // the classes before it, so even matching traffic carries a
        // small ordering skew — well inside the hysteresis band.
        assert!(
            status.score < 0.15,
            "matching traffic scored {}",
            status.score
        );
        assert_eq!(status.observed_queries, 1000);
        // Hammer one class until the detector trips: drift is reported
        // but nothing is adopted and no event fires.
        let mut entered = false;
        for _ in 0..20 {
            let st = s
                .observe(&[ClassObservation::new("q02_month_class", 500)])
                .unwrap();
            assert_eq!(st.events_emitted, 0);
            entered |= st.state == DriftState::Drifting;
        }
        assert!(entered, "pure single-class traffic must trip the detector");
        assert_eq!(s.mix(), &baseline_mix, "tracking mode must not adopt");
        assert!(s.advice_events(0).is_empty());
    }

    #[test]
    fn auto_advise_fires_exactly_once_and_rescores_against_the_adopted_mix() {
        let mut s = resident_session();
        s.rank().unwrap();
        let baseline_mix = s.mix().clone();
        let matching = matching_batch(&s);
        s.observe(&matching).unwrap();
        let drifted = drifted_batch(&s, "q02_month_class");
        let mut last = None;
        for _ in 0..30 {
            last = Some(s.observe(&drifted).unwrap());
        }
        let status = last.unwrap();
        assert_eq!(status.events_emitted, 1, "exactly one re-advise");
        assert_eq!(
            status.state,
            DriftState::Stable,
            "after adoption the observed traffic matches the configured mix"
        );
        assert!(status.score < 0.25, "post-adoption score {}", status.score);
        assert_ne!(s.mix(), &baseline_mix, "the observed mix was adopted");
        assert!(
            s.mix().class_by_name("q02_month_class").unwrap().share > 0.3,
            "the boosted class dominates the adopted mix"
        );
        let events = s.advice_events(0);
        assert_eq!(events.len(), 1);
        let AdviceEvent::RecommendationChanged {
            seq,
            old,
            new,
            drift_score,
            ..
        } = &events[0];
        assert_eq!(*seq, 1);
        assert!(old.is_some(), "baseline was ranked before the drift");
        assert!(!new.is_empty());
        assert!(*drift_score > 0.25, "trigger score {drift_score}");
        // `advice_events` honors its limit.
        assert_eq!(s.advice_events(1).len(), 1);
        assert!(s.advice_events(0).len() <= crate::optimizer::MAX_ADVICE_EVENTS);
    }

    #[test]
    fn auto_readvise_is_warm_and_bit_identical_to_a_cold_run() {
        let mut s = resident_session();
        s.rank().unwrap();
        let cold_stats = s.cache_stats();
        assert!(cold_stats.misses > 0);
        let matching = matching_batch(&s);
        s.observe(&matching).unwrap();
        let drifted = drifted_batch(&s, "q02_month_class");
        for _ in 0..10 {
            s.observe(&drifted).unwrap();
        }
        assert_eq!(s.drift_status().events_emitted, 1);
        let warm_stats = s.cache_stats();
        assert_eq!(
            warm_stats.misses, cold_stats.misses,
            "the re-advise re-rank must not re-cost a single candidate"
        );
        assert!(
            warm_stats.hits > cold_stats.hits,
            "the re-advise re-rank must be served from the memo"
        );
        // The warm, recombined ranking is bit-identical to a cold
        // session built directly at the adopted mix.
        let cold = Warlock::builder()
            .schema(s.schema().clone())
            .system(*s.system())
            .mix(s.mix().clone())
            .config(s.config().clone())
            .build()
            .unwrap();
        assert_eq!(cold.rank().unwrap(), s.rank().unwrap());
    }

    #[test]
    fn drift_to_unknown_classes_surfaces_a_typed_workload_error() {
        let mut s = resident_session();
        // All traffic on a class the configuration cannot cost: the
        // detector trips immediately (score 1.0) and the re-advise
        // fails with the typed workload error instead of silently
        // keeping the stale ranking.
        let err = s
            .observe(&[ClassObservation::new("mystery_scan", 1000)])
            .unwrap_err();
        assert_eq!(err.kind(), "workload");
        // The window kept the traffic; the detector stays drifting and
        // later observations report it without re-erroring (no new
        // enter edge).
        let status = s
            .observe(&[ClassObservation::new("mystery_scan", 100)])
            .unwrap();
        assert_eq!(status.state, DriftState::Drifting);
        assert_eq!(status.events_emitted, 0);
    }

    #[test]
    fn drift_status_peeks_without_mutating() {
        let mut s = session();
        let idle = s.drift_status();
        assert_eq!(idle.state, DriftState::Stable);
        assert_eq!(idle.score, 0.0);
        assert_eq!(idle.observed_queries, 0);
        assert_eq!(idle.drift_enter, s.config().drift_enter);
        assert_eq!(idle.drift_exit, s.config().drift_exit);
        s.observe(&[ClassObservation::new("q02_month_class", 10)])
            .unwrap();
        let a = s.drift_status();
        let b = s.drift_status();
        assert_eq!(a, b, "peeking twice must not move anything");
        assert_eq!(a.observed_queries, 10);
        assert_eq!(a.tracked_classes, 1);
    }

    #[test]
    fn set_auto_advise_flips_the_mode_and_keeps_traffic_history() {
        let mut s = session();
        s.observe(&[ClassObservation::new("q02_month_class", 42)])
            .unwrap();
        s.set_auto_advise(true).unwrap();
        assert!(s.config().auto_advise);
        let status = s.drift_status();
        assert!(status.auto_advise);
        assert_eq!(status.observed_queries, 42, "history survives the flip");
        s.set_auto_advise(true).unwrap(); // idempotent
        s.set_auto_advise(false).unwrap();
        assert!(!s.config().auto_advise);
    }

    #[test]
    fn clones_share_the_observed_traffic() {
        let mut s1 = session();
        let s2 = s1.clone();
        s1.observe(&[ClassObservation::new("q02_month_class", 7)])
            .unwrap();
        assert_eq!(s2.drift_status().observed_queries, 7);
    }

    #[test]
    fn from_config_path_errors_name_the_file() {
        let missing = "/definitely/not/a/file.cfg";
        let e = Warlock::from_config_path(missing).unwrap_err();
        assert_eq!(e.kind(), "io");
        assert!(
            e.to_string().contains(missing),
            "`{e}` does not name the offending path"
        );

        // Parse errors carry the path too.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("warlock-bad-{}.cfg", std::process::id()));
        std::fs::write(&path, "[dimension broken\n").unwrap();
        let e = Warlock::from_config_path(&path).unwrap_err();
        assert_eq!(e.kind(), "config_file");
        assert!(
            e.to_string().contains(&path.display().to_string()),
            "`{e}` does not name the offending path"
        );
        let _ = std::fs::remove_file(&path);
    }
}
