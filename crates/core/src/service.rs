//! The `warlockd` service layer: a versioned, newline-delimited JSON
//! request protocol dispatched over a registry of named warehouses.
//!
//! The paper frames WARLOCK as an interactive tool — an analyst loads
//! one warehouse description and explores many what-if variations
//! against it. [`Service`] serves that interaction pattern at service
//! scale for **many warehouses at once**: it is a thin dispatcher over a
//! [`Registry`] of named [`Warlock`] sessions. Read requests resolve
//! their warehouse, clone its session handle (cheap — clones share the
//! immutable snapshot, the evaluation cache and the worker pool) and
//! evaluate **without holding any lock**, so concurrent what-ifs run
//! truly in parallel and a variation priced for one client is warm for
//! every other. Mutating ops (`set_mix`, `set_budget`, `reload`) swap
//! one warehouse's session to a new snapshot under a brief write lock;
//! in-flight readers finish on the old snapshot, and sibling warehouses
//! are never disturbed.
//!
//! ## Protocol v2
//!
//! One JSON object per line in, one per line out (stdio, TCP, or the
//! HTTP transport in [`crate::http`] — see the `warlockd` binary):
//!
//! ```text
//! → {"v":2, "id":7, "op":"rank", "warehouse":"eu"}
//! ← {"v":2, "id":7, "ok":true, "result":{"enumerated":168, "ranking":[…], …}}
//! → {"v":2, "id":8, "op":"what_if_disks", "params":{"disks":64}}
//! ← {"v":2, "id":8, "ok":true, "result":{"delta":{…}, "report":{…}}}
//! → {"v":2, "id":9, "op":"rank", "warehouse":"mars"}
//! ← {"v":2, "id":9, "ok":false, "error":{"kind":"unknown_warehouse", "message":"…"}}
//! ```
//!
//! Every op accepts an optional top-level `"warehouse"` routing field;
//! when omitted the request resolves to the registry's **default**
//! warehouse. v2 adds the registry ops `load` (`params.name`/`path`),
//! `unload` (`params.name`), `reload` (`params.name`, default: the
//! routed/default warehouse — atomic copy-on-write re-read of the
//! warehouse's configuration file) and `list_warehouses`, plus
//! `recommend_policy` — the head-to-head allocation-policy judge
//! replaying the mix through the disk simulator under each policy.
//!
//! ## v1 compatibility
//!
//! `v` defaults to [`PROTOCOL_VERSION`] when omitted; `{"v":1}` requests
//! are served through an explicit compat shim: they speak the exact PR-3
//! op set, always resolve to the default warehouse, get `"v":1`
//! responses, and are rejected with `bad_request` if they try to route
//! (`warehouse` is a v2 field) — and with `unknown_op` for the v2
//! registry ops, exactly as a v1 server would have answered. Any other
//! version is rejected with `unsupported_version` so clients fail loudly
//! when the protocol evolves. `id` is echoed verbatim (any JSON value,
//! default `null`).
//!
//! Operations: `rank`, `analyze`, `allocate`, `evaluate`,
//! `what_if_disks`, `what_if_prefetch`,
//! `what_if_without_bitmap_dimension`, `what_if_without_class`,
//! `set_mix`, `set_budget`, `cache_stats`, `ping`, `shutdown`, plus (v2)
//! `load`, `unload`, `reload`, `list_warehouses`, `recommend_policy`,
//! and the resident-optimizer ops `observe_stats`
//! (`params.observations`: array of `{class, count[, mean_latency_ms]}`
//! — feeds the warehouse's drift detector, may auto re-advise),
//! `drift_status`, `advice_events` (`params.limit`, 0/absent = all
//! retained) and `set_auto_advise` (`params.on`).
//!
//! `ping` doubles as a per-warehouse health probe: besides `protocol`
//! and the resolved `warehouse` name it reports the exact `space_size`
//! of the current candidate space (from the lazy source's predictor —
//! no enumeration happens), `enumerated` from the cached baseline
//! ranking (`null` until one was computed), and the warehouse's
//! `cache_stats`. `list_warehouses` reports the same counters for every
//! loaded warehouse. `set_budget` adjusts the streaming knobs
//! (`max_candidates`, `chunk_size`) of the routed warehouse.

use std::sync::Arc;

use warlock_json::{Json, ToJson};
use warlock_workload::QueryMix;

use crate::error::WarlockError;
use crate::registry::{Registry, Warehouse};
use crate::serial::{u128_json, FragmentationAttr};
use crate::session::Warlock;

/// The current wire protocol version `warlockd` speaks.
pub const PROTOCOL_VERSION: i64 = 2;

/// The oldest protocol version still served (via the compat shim).
pub const MIN_PROTOCOL_VERSION: i64 = 1;

/// A request outcome the server loop acts on: the response line to
/// write, whether the client asked the service to stop, and the error
/// kind (for transports that map kinds to status codes).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReply {
    /// The serialized JSON response (no trailing newline).
    pub line: String,
    /// `true` after a `shutdown` request was acknowledged.
    pub shutdown: bool,
    /// The error kind of a failed request (`None` on success), so
    /// transports like HTTP can pick a status code without re-parsing
    /// the response.
    pub error_kind: Option<&'static str>,
}

impl ServiceReply {
    /// A standalone error reply outside any request dispatch — used by
    /// server loops for failures the service never saw (oversized
    /// requests, panicking handlers). The envelope speaks the current
    /// protocol version; use
    /// [`error_for_version`](ServiceReply::error_for_version) when the
    /// failing request's version is known.
    pub fn error(kind: &'static str, message: &str) -> Self {
        Self::error_for_version(PROTOCOL_VERSION, kind, message)
    }

    /// Like [`error`](ServiceReply::error), with an explicit envelope
    /// version — so v1 clients get `"v":1` even on panic-path replies.
    pub fn error_for_version(version: i64, kind: &'static str, message: &str) -> Self {
        let line = Json::object([
            ("v", Json::Int(version)),
            ("id", Json::Null),
            ("ok", Json::Bool(false)),
            (
                "error",
                Json::object([("kind", kind.to_json()), ("message", message.to_json())]),
            ),
        ])
        .render();
        Self {
            line,
            shutdown: false,
            error_kind: Some(kind),
        }
    }

    /// The version a raw request line claims to speak, for shaping
    /// replies the service itself never produced (panic fallbacks).
    /// Unparseable lines report the current version.
    pub fn request_version(line: &str) -> i64 {
        warlock_json::parse(line)
            .ok()
            .and_then(|r| r.get("v").and_then(Json::as_i64))
            .filter(|v| (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(v))
            .unwrap_or(PROTOCOL_VERSION)
    }
}

/// A long-lived advisory service dispatching over a [`Registry`] of
/// named warehouses. See the [module docs](self).
#[derive(Debug)]
pub struct Service {
    registry: Arc<Registry>,
}

/// A protocol-level failure (malformed request, unknown op), distinct
/// from the advisory [`WarlockError`]s.
struct BadRequest {
    kind: &'static str,
    message: String,
}

impl BadRequest {
    fn new(kind: &'static str, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
        }
    }
}

enum ReplyError {
    Bad(BadRequest),
    Warlock(WarlockError),
}

impl From<WarlockError> for ReplyError {
    fn from(e: WarlockError) -> Self {
        Self::Warlock(e)
    }
}

impl ReplyError {
    fn kind_and_message(&self) -> (&'static str, String) {
        match self {
            Self::Bad(b) => (b.kind, b.message.clone()),
            Self::Warlock(e) => (e.kind(), e.to_string()),
        }
    }
}

type OpResult = Result<Json, ReplyError>;

fn bad(kind: &'static str, message: impl Into<String>) -> ReplyError {
    ReplyError::Bad(BadRequest::new(kind, message))
}

/// `params.key` as a u64, or an error naming the field.
fn u64_param(params: &Json, key: &str) -> Result<u64, ReplyError> {
    params.get(key).and_then(Json::as_u64).ok_or_else(|| {
        bad(
            "bad_request",
            format!("`params.{key}` must be an unsigned integer"),
        )
    })
}

fn str_param<'a>(params: &'a Json, key: &str) -> Result<&'a str, ReplyError> {
    params
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| bad("bad_request", format!("`params.{key}` must be a string")))
}

/// 1-based rank parameter, defaulting to 1 (the winner).
fn rank_param(params: &Json) -> Result<usize, ReplyError> {
    match params.get("rank") {
        None => Ok(1),
        Some(v) => v
            .as_usize()
            .filter(|&r| r > 0)
            .ok_or_else(|| bad("bad_request", "`params.rank` must be a positive integer")),
    }
}

/// The ping result, shaped for the negotiated version: v1 clients get
/// the exact PR-3 shape (`protocol: 1`, no `warehouse` field) so probes
/// written against the old server keep passing.
fn warehouse_ping(version: i64, warehouse: &Warehouse) -> Json {
    let session = warehouse.session();
    let enumerated = match session.ranking() {
        Some(report) => report.enumerated.to_json(),
        None => Json::Null,
    };
    let mut fields = vec![("protocol", Json::Int(version))];
    if version >= 2 {
        fields.push(("warehouse", warehouse.name().to_json()));
    }
    fields.extend([
        ("space_size", u128_json(session.candidate_space_size())),
        ("enumerated", enumerated),
        ("cache_stats", session.cache_stats().to_json()),
    ]);
    Json::object(fields)
}

fn cost_json(cost: &warlock_cost::CandidateCost, label: String) -> Json {
    Json::object([
        ("label", label.to_json()),
        ("num_fragments", cost.num_fragments.to_json()),
        ("io_cost_ms", cost.io_cost_ms.to_json()),
        ("response_ms", cost.response_ms.to_json()),
        ("total_ios", cost.total_ios.to_json()),
        ("total_pages", cost.total_pages.to_json()),
    ])
}

impl Service {
    /// Wraps a single programmatic session for service use: a registry
    /// holding it under the name `"default"`, which is also the default
    /// route.
    pub fn new(session: Warlock) -> Self {
        Self::with_registry(Arc::new(Registry::single("default", session)))
    }

    /// A dispatcher over an existing (possibly shared) registry.
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        Self { registry }
    }

    /// The warehouse registry this service dispatches over.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Handles one request line, returning the response line. Never
    /// panics on malformed input — every failure is a JSON error
    /// response.
    pub fn handle_line(&self, line: &str) -> ServiceReply {
        match warlock_json::parse(line) {
            Ok(request) => self.handle_request(&request),
            Err(e) => self.reply(
                PROTOCOL_VERSION,
                Json::Null,
                Err(bad(
                    "bad_request",
                    format!("request is not valid JSON: {e}"),
                )),
                false,
            ),
        }
    }

    /// Handles one already-parsed request object — the shared dispatch
    /// path of the line protocol and the HTTP transport.
    pub fn handle_request(&self, request: &Json) -> ServiceReply {
        let id = request.get("id").cloned().unwrap_or(Json::Null);
        match self.negotiate_version(request) {
            Err(e) => self.reply(PROTOCOL_VERSION, id, Err(e), false),
            Ok(version) => {
                let op = request.get("op").and_then(Json::as_str).unwrap_or("");
                let outcome = self.dispatch(version, request);
                // Only a well-formed, successful shutdown stops the
                // server.
                let shutdown = op == "shutdown" && outcome.is_ok();
                self.reply(version, id, outcome, shutdown)
            }
        }
    }

    fn reply(&self, version: i64, id: Json, outcome: OpResult, shutdown: bool) -> ServiceReply {
        let (line, error_kind) = match outcome {
            Ok(result) => (
                Json::object([
                    ("v", Json::Int(version)),
                    ("id", id),
                    ("ok", Json::Bool(true)),
                    ("result", result),
                ]),
                None,
            ),
            Err(e) => {
                let (kind, message) = e.kind_and_message();
                (
                    Json::object([
                        ("v", Json::Int(version)),
                        ("id", id),
                        ("ok", Json::Bool(false)),
                        (
                            "error",
                            Json::object([
                                ("kind", kind.to_json()),
                                ("message", message.to_json()),
                            ]),
                        ),
                    ]),
                    Some(kind),
                )
            }
        };
        ServiceReply {
            line: line.render(),
            shutdown,
            error_kind,
        }
    }

    /// The protocol version this request speaks: absent → the current
    /// version; 1 → the compat shim; anything else → rejected.
    fn negotiate_version(&self, request: &Json) -> Result<i64, ReplyError> {
        match request.get("v") {
            None => Ok(PROTOCOL_VERSION),
            Some(v) => match v.as_i64() {
                Some(n) if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&n) => Ok(n),
                _ => Err(bad(
                    "unsupported_version",
                    format!(
                        "protocol version {} is not supported \
                         (speak v{MIN_PROTOCOL_VERSION}..=v{PROTOCOL_VERSION})",
                        v.render()
                    ),
                )),
            },
        }
    }

    fn dispatch(&self, version: i64, request: &Json) -> OpResult {
        let op = request
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("bad_request", "`op` must be a string"))?;
        let params = request.get("params").cloned().unwrap_or(Json::Null);
        let route = match request.get("warehouse") {
            None => None,
            Some(Json::Str(name)) if version >= 2 => Some(name.as_str()),
            Some(Json::Str(_)) => {
                return Err(bad(
                    "bad_request",
                    "`warehouse` routing requires protocol v2 (this request speaks v1)",
                ))
            }
            Some(_) => return Err(bad("bad_request", "`warehouse` must be a string")),
        };
        // The v2 registry ops. In a v1 request they fall through to the
        // `unknown_op` arm below — exactly what a v1 server answered.
        if version >= 2 {
            match op {
                "load" => {
                    let name = str_param(&params, "name")?;
                    let path = str_param(&params, "path")?;
                    self.registry.load(name, path)?;
                    return Ok(self.registry.stats(name)?.to_json());
                }
                "unload" => {
                    let name = str_param(&params, "name")?;
                    self.registry.unload(name)?;
                    return Ok(Json::object([("unloaded", name.to_json())]));
                }
                "reload" => {
                    // An explicit `params.name` wins; otherwise the
                    // routed (or default) warehouse is reloaded.
                    let name = match params.get("name") {
                        None => self.registry.resolve(route).map(|w| w.name().to_owned())?,
                        Some(v) => v
                            .as_str()
                            .ok_or_else(|| bad("bad_request", "`params.name` must be a string"))?
                            .to_owned(),
                    };
                    self.registry.reload(&name)?;
                    return Ok(self.registry.stats(&name)?.to_json());
                }
                "list_warehouses" => {
                    let warehouses: Vec<Json> =
                        self.registry.list().iter().map(ToJson::to_json).collect();
                    return Ok(Json::object([
                        ("default", self.registry.default_name().to_json()),
                        ("warehouses", warehouses.to_json()),
                    ]));
                }
                "recommend_policy" => {
                    let session = self.registry.resolve(route)?.session();
                    return Ok(session.recommend_policy()?.to_json());
                }
                "observe_stats" => {
                    let observations = params
                        .get("observations")
                        .and_then(Json::as_array)
                        .ok_or_else(|| {
                            bad("bad_request", "`params.observations` must be an array")
                        })?;
                    let batch: Vec<crate::workload::ClassObservation> = observations
                        .iter()
                        .map(crate::serial::observation_from_json)
                        .collect::<Result<_, _>>()
                        .map_err(WarlockError::Json)?;
                    // `observe` may adopt the observed mix (auto
                    // re-advise), so it routes through the write
                    // session like `set_mix`.
                    let warehouse = self.registry.resolve(route)?;
                    let mut session = warehouse.write_session();
                    return Ok(session.observe(&batch)?.to_json());
                }
                "drift_status" => {
                    let session = self.registry.resolve(route)?.session();
                    return Ok(session.drift_status().to_json());
                }
                "advice_events" => {
                    let limit = match params.get("limit") {
                        None => 0,
                        Some(v) => v.as_usize().ok_or_else(|| {
                            bad("bad_request", "`params.limit` must be an unsigned integer")
                        })?,
                    };
                    let session = self.registry.resolve(route)?.session();
                    let events: Vec<Json> = session
                        .advice_events(limit)
                        .iter()
                        .map(ToJson::to_json)
                        .collect();
                    return Ok(Json::object([("events", events.to_json())]));
                }
                "set_auto_advise" => {
                    let on = params
                        .get("on")
                        .and_then(Json::as_bool)
                        .ok_or_else(|| bad("bad_request", "`params.on` must be a boolean"))?;
                    let warehouse = self.registry.resolve(route)?;
                    let mut session = warehouse.write_session();
                    session.set_auto_advise(on)?;
                    return Ok(session.drift_status().to_json());
                }
                _ => {}
            }
        }
        match op {
            "ping" => {
                // A health probe must stay cheap: the space size comes
                // from the source's exact predictor (no enumeration),
                // and `enumerated` only reflects an already-cached
                // baseline ranking — never triggers one.
                let warehouse = self.registry.resolve(route)?;
                Ok(warehouse_ping(version, &warehouse))
            }
            "shutdown" => Ok(Json::object([("stopping", Json::Bool(true))])),
            "rank" => {
                let session = self.registry.resolve(route)?.session();
                Ok(session.rank()?.to_json())
            }
            "analyze" => {
                let rank = rank_param(&params)?;
                let session = self.registry.resolve(route)?.session();
                Ok(session.analyze(rank)?.to_json())
            }
            "allocate" => {
                let rank = rank_param(&params)?;
                let session = self.registry.resolve(route)?.session();
                Ok(session.plan_allocation(rank)?.to_json())
            }
            "evaluate" => {
                let attrs = params
                    .get("fragmentation")
                    .and_then(Json::as_array)
                    .ok_or_else(|| bad("bad_request", "`params.fragmentation` must be an array"))?;
                let attrs: Vec<FragmentationAttr> = attrs
                    .iter()
                    .map(warlock_json::FromJson::from_json)
                    .collect::<Result<_, _>>()
                    .map_err(WarlockError::Json)?;
                let fragmentation = FragmentationAttr::to_fragmentation(&attrs)?;
                let session = self.registry.resolve(route)?.session();
                let cost = session.evaluate(&fragmentation)?;
                Ok(cost_json(&cost, fragmentation.label(session.schema())))
            }
            "what_if_disks" => {
                let disks = u32::try_from(u64_param(&params, "disks")?)
                    .map_err(|_| bad("bad_request", "`params.disks` out of range"))?;
                let session = self.registry.resolve(route)?.session();
                let (report, delta) = session.what_if_disks(disks)?;
                Ok(Json::object([
                    ("delta", delta.to_json()),
                    ("report", report.to_json()),
                ]))
            }
            "what_if_prefetch" => {
                let pages = u32::try_from(u64_param(&params, "pages")?)
                    .map_err(|_| bad("bad_request", "`params.pages` out of range"))?;
                let session = self.registry.resolve(route)?.session();
                let (report, delta) = session.what_if_fixed_prefetch(pages)?;
                Ok(Json::object([
                    ("delta", delta.to_json()),
                    ("report", report.to_json()),
                ]))
            }
            "what_if_without_bitmap_dimension" => {
                let dimension = u16::try_from(u64_param(&params, "dimension")?)
                    .map_err(|_| bad("bad_request", "`params.dimension` out of range"))?;
                let session = self.registry.resolve(route)?.session();
                let (report, delta) = session
                    .what_if_without_bitmap_dimension(warlock_schema::DimensionId(dimension))?;
                Ok(Json::object([
                    ("delta", delta.to_json()),
                    ("report", report.to_json()),
                ]))
            }
            "what_if_without_class" => {
                let name = str_param(&params, "class")?;
                let session = self.registry.resolve(route)?.session();
                let (report, delta) = session.what_if_without_class(name)?;
                Ok(Json::object([
                    ("delta", delta.to_json()),
                    ("report", report.to_json()),
                ]))
            }
            "set_mix" => self.set_mix(&*self.registry.resolve(route)?, &params),
            "set_budget" => self.set_budget(&*self.registry.resolve(route)?, &params),
            "cache_stats" => Ok(self
                .registry
                .resolve(route)?
                .session()
                .cache_stats()
                .to_json()),
            other => Err(bad("unknown_op", format!("unknown op `{other}`"))),
        }
    }

    /// Re-weights a warehouse's mix: `params.weights` maps class names
    /// to new (raw) weights; classes absent from the map are dropped.
    /// Unknown names fail with `unknown_class`, and the mix must keep
    /// at least one positively-weighted class. The swap happens under a
    /// brief write lock — in-flight readers keep their snapshot.
    fn set_mix(&self, warehouse: &Warehouse, params: &Json) -> OpResult {
        let weights = match params.get("weights") {
            Some(Json::Obj(members)) => members.clone(),
            _ => return Err(bad("bad_request", "`params.weights` must be an object")),
        };
        let mut session = warehouse.write_session();
        let current = session.mix().clone();
        for (name, _) in &weights {
            if current.class_by_name(name).is_none() {
                return Err(WarlockError::UnknownClass { name: name.clone() }.into());
            }
        }
        let mut builder = QueryMix::builder();
        for weighted in current.classes() {
            let name = weighted.class.name();
            if let Some((_, w)) = weights.iter().find(|(n, _)| n == name) {
                let weight = w.as_f64().ok_or_else(|| {
                    bad(
                        "bad_request",
                        format!("`params.weights.{name}` must be a number"),
                    )
                })?;
                builder = builder.class(weighted.class.clone(), weight);
            }
        }
        let mix = builder.build().map_err(WarlockError::Workload)?;
        session.set_mix(mix)?;
        let classes: Vec<Json> = session
            .mix()
            .classes()
            .iter()
            .map(|w| {
                Json::object([
                    ("name", w.class.name().to_json()),
                    ("share", w.share.to_json()),
                ])
            })
            .collect();
        Ok(Json::object([("classes", classes.to_json())]))
    }

    /// Adjusts a warehouse's streaming knobs: `params.max_candidates`
    /// (0 = unlimited) and/or `params.chunk_size` (0 = auto). Echoes the
    /// effective values plus the exact candidate-space size, so a client
    /// immediately sees whether the budget would admit the current
    /// space. Swaps under a brief write lock; in-flight readers keep
    /// their snapshot.
    fn set_budget(&self, warehouse: &Warehouse, params: &Json) -> OpResult {
        let max_candidates = match params.get("max_candidates") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                bad(
                    "bad_request",
                    "`params.max_candidates` must be an unsigned integer",
                )
            })?),
        };
        let chunk_size = match params.get("chunk_size") {
            None => None,
            Some(v) => Some(v.as_usize().ok_or_else(|| {
                bad(
                    "bad_request",
                    "`params.chunk_size` must be an unsigned integer",
                )
            })?),
        };
        if max_candidates.is_none() && chunk_size.is_none() {
            return Err(bad(
                "bad_request",
                "`params` must set `max_candidates` and/or `chunk_size`",
            ));
        }
        let mut session = warehouse.write_session();
        let mut config = session.config().clone();
        if let Some(budget) = max_candidates {
            config.max_candidates = budget;
        }
        if let Some(chunk) = chunk_size {
            config.chunk_size = chunk;
        }
        session.set_config(config)?;
        Ok(Json::object([
            ("max_candidates", session.config().max_candidates.to_json()),
            ("chunk_size", session.config().chunk_size.to_json()),
            ("space_size", u128_json(session.candidate_space_size())),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_schema::{apb1_like_schema, Apb1Config};
    use warlock_storage::SystemConfig;
    use warlock_workload::apb1_like_mix;

    fn demo_session(disks: u32) -> Warlock {
        Warlock::builder()
            .schema(apb1_like_schema(Apb1Config::default()).unwrap())
            .system(SystemConfig::default_2001(disks))
            .mix(apb1_like_mix().unwrap())
            .parallelism(1)
            .build()
            .unwrap()
    }

    fn service() -> Service {
        Service::new(demo_session(16))
    }

    /// A two-warehouse service: `us` (default, 16 disks) and `eu`
    /// (64 disks).
    fn two_warehouse_service() -> Service {
        let registry = Registry::new("us");
        registry.insert("us", None, demo_session(16)).unwrap();
        registry.insert("eu", None, demo_session(64)).unwrap();
        Service::with_registry(Arc::new(registry))
    }

    fn ok_result(service: &Service, line: &str) -> Json {
        let reply = service.handle_line(line);
        assert_eq!(reply.error_kind, None, "{}", reply.line);
        let json = warlock_json::parse(&reply.line).unwrap();
        assert_eq!(
            json.get("ok").and_then(Json::as_bool),
            Some(true),
            "{}",
            reply.line
        );
        json.get("result").unwrap().clone()
    }

    fn err_kind(service: &Service, line: &str) -> String {
        let reply = service.handle_line(line);
        let json = warlock_json::parse(&reply.line).unwrap();
        assert_eq!(json.get("ok").and_then(Json::as_bool), Some(false));
        let kind = json
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        assert_eq!(reply.error_kind, Some(kind.as_str()), "kinds must agree");
        kind
    }

    #[test]
    fn rank_round_trip_and_id_echo() {
        let service = service();
        let reply = service.handle_line(r#"{"v":2,"id":{"seq":7},"op":"rank"}"#);
        assert!(!reply.shutdown);
        let json = warlock_json::parse(&reply.line).unwrap();
        assert_eq!(json.get("v").and_then(Json::as_i64), Some(2));
        assert_eq!(
            json.get("id").unwrap().render(),
            r#"{"seq":7}"#,
            "ids echo verbatim"
        );
        let result = json.get("result").unwrap();
        assert!(!result
            .get("ranking")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn recommend_policy_is_a_v2_op() {
        let service = service();
        let result = ok_result(&service, r#"{"op":"recommend_policy"}"#);
        let recommended = result.get("recommended").and_then(Json::as_str).unwrap();
        assert!(["round_robin", "greedy", "graph"].contains(&recommended));
        let verdicts = result.get("verdicts").and_then(Json::as_array).unwrap();
        assert_eq!(verdicts.len(), 3);
        for v in verdicts {
            assert!(v.get("makespan_ms").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(v.get("scheme").and_then(Json::as_str).is_some());
        }
        // A pre-judge v1 client never knew the op; it must still see
        // `unknown_op`, exactly as the old server answered.
        assert_eq!(
            err_kind(&service, r#"{"v":1,"op":"recommend_policy"}"#),
            "unknown_op"
        );
    }

    #[test]
    fn v1_compat_requests_keep_working_unchanged() {
        let service = two_warehouse_service();
        // A v1 request: answered as v1, resolved to the default
        // warehouse.
        let reply = service.handle_line(r#"{"v":1,"id":1,"op":"rank"}"#);
        let json = warlock_json::parse(&reply.line).unwrap();
        assert_eq!(
            json.get("v").and_then(Json::as_i64),
            Some(1),
            "{}",
            reply.line
        );
        assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true));
        let v1_result = json.get("result").unwrap().render();
        // …which is bit-identical to an explicitly routed v2 rank of the
        // default warehouse.
        let v2_result = ok_result(&service, r#"{"v":2,"op":"rank","warehouse":"us"}"#);
        assert_eq!(v1_result, v2_result.render());

        // Routing is a v2 feature: the shim rejects it loudly rather
        // than silently ignoring the field.
        assert_eq!(
            err_kind(&service, r#"{"v":1,"op":"rank","warehouse":"eu"}"#),
            "bad_request"
        );
        // The v2 registry ops answer `unknown_op` under v1, exactly as a
        // v1 server would have.
        assert_eq!(
            err_kind(&service, r#"{"v":1,"op":"list_warehouses"}"#),
            "unknown_op"
        );
        assert_eq!(err_kind(&service, r#"{"v":1,"op":"reload"}"#), "unknown_op");
        // A v1 ping keeps the exact PR-3 shape: protocol 1, no
        // `warehouse` field — health probes written against the old
        // server keep passing.
        let reply = service.handle_line(r#"{"v":1,"op":"ping"}"#);
        let pong = warlock_json::parse(&reply.line).unwrap();
        let result = pong.get("result").unwrap();
        assert_eq!(result.get("protocol").and_then(Json::as_i64), Some(1));
        assert_eq!(result.get("warehouse"), None);
        assert_eq!(result.get("space_size").and_then(Json::as_u64), Some(168));
    }

    #[test]
    fn routing_selects_the_named_warehouse() {
        let service = two_warehouse_service();
        let us = ok_result(&service, r#"{"op":"rank","warehouse":"us"}"#);
        let eu = ok_result(&service, r#"{"op":"rank","warehouse":"eu"}"#);
        assert_ne!(us.render(), eu.render());
        // Unrouted requests resolve to the default warehouse.
        let unrouted = ok_result(&service, r#"{"op":"rank"}"#);
        assert_eq!(unrouted.render(), us.render());
        // Routed reports are bit-identical to a standalone session on
        // the same inputs.
        let standalone = demo_session(64);
        assert_eq!(eu.render(), standalone.rank().unwrap().to_json().render());

        assert_eq!(
            err_kind(&service, r#"{"op":"rank","warehouse":"mars"}"#),
            "unknown_warehouse"
        );
        assert_eq!(
            err_kind(&service, r#"{"op":"rank","warehouse":7}"#),
            "bad_request"
        );
    }

    #[test]
    fn registry_ops_over_the_wire() {
        let service = two_warehouse_service();
        let listed = ok_result(&service, r#"{"op":"list_warehouses"}"#);
        assert_eq!(listed.get("default").and_then(Json::as_str), Some("us"));
        let warehouses = listed.get("warehouses").unwrap().as_array().unwrap();
        assert_eq!(warehouses.len(), 2);
        assert_eq!(
            warehouses[0].get("name").and_then(Json::as_str),
            Some("eu"),
            "sorted by name"
        );
        assert_eq!(
            warehouses[0].get("space_size").and_then(Json::as_u64),
            Some(168)
        );

        // Load a third warehouse from a config file, route to it, unload
        // it again.
        let path = std::env::temp_dir().join(format!(
            "warlock-service-load-{}-{:?}.cfg",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(
            &path,
            crate::config_file::render_config(&crate::config_file::demo_config()),
        )
        .unwrap();
        let request = format!(
            r#"{{"op":"load","params":{{"name":"apac","path":{}}}}}"#,
            Json::Str(path.display().to_string()).render()
        );
        let loaded = ok_result(&service, &request);
        assert_eq!(loaded.get("name").and_then(Json::as_str), Some("apac"));
        assert_eq!(
            loaded.get("path").and_then(Json::as_str),
            Some(path.display().to_string().as_str())
        );
        assert_eq!(err_kind(&service, &request), "duplicate_warehouse");
        let pong = ok_result(&service, r#"{"op":"ping","warehouse":"apac"}"#);
        assert_eq!(pong.get("warehouse").and_then(Json::as_str), Some("apac"));

        // Unloading the default warehouse is refused — every unrouted
        // and v1 request would dead-end.
        assert_eq!(
            err_kind(&service, r#"{"op":"unload","params":{"name":"us"}}"#),
            "config"
        );

        let _ = ok_result(&service, r#"{"op":"unload","params":{"name":"apac"}}"#);
        assert_eq!(
            err_kind(&service, r#"{"op":"ping","warehouse":"apac"}"#),
            "unknown_warehouse"
        );
        assert_eq!(
            err_kind(&service, r#"{"op":"unload","params":{"name":"apac"}}"#),
            "unknown_warehouse"
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn reload_over_the_wire_swaps_the_routed_warehouse() {
        let path = std::env::temp_dir().join(format!(
            "warlock-service-reload-{}-{:?}.cfg",
            std::process::id(),
            std::thread::current().id()
        ));
        let cfg = crate::config_file::render_config(&crate::config_file::demo_config());
        std::fs::write(&path, &cfg).unwrap();
        let registry = Registry::new("main");
        registry.load("main", path.display().to_string()).unwrap();
        let service = Service::with_registry(Arc::new(registry));

        let baseline = ok_result(&service, r#"{"op":"rank"}"#);
        std::fs::write(&path, cfg.replace("disks = 16", "disks = 64")).unwrap();
        // The running service still answers from the old snapshot until
        // an explicit reload.
        assert_eq!(
            ok_result(&service, r#"{"op":"rank"}"#).render(),
            baseline.render()
        );
        let stats = ok_result(&service, r#"{"op":"reload"}"#);
        assert_eq!(stats.get("name").and_then(Json::as_str), Some("main"));
        let after = ok_result(&service, r#"{"op":"rank"}"#);
        assert_ne!(after.render(), baseline.render());

        // Reloads of pathless or unknown warehouses are typed failures.
        std::fs::write(&path, "[dimension broken\n").unwrap();
        assert_eq!(err_kind(&service, r#"{"op":"reload"}"#), "reload_failed");
        assert_eq!(
            ok_result(&service, r#"{"op":"rank"}"#).render(),
            after.render(),
            "failed reload must keep the current snapshot"
        );
        assert_eq!(
            err_kind(&service, r#"{"op":"reload","params":{"name":"ghost"}}"#),
            "unknown_warehouse"
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn analyze_allocate_and_evaluate() {
        let service = service();
        let analysis = ok_result(&service, r#"{"op":"analyze"}"#);
        assert!(!analysis
            .get("per_class")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        let allocation = ok_result(&service, r#"{"op":"allocate","params":{"rank":1}}"#);
        assert_eq!(
            allocation.get("disks").unwrap().as_array().unwrap().len(),
            16
        );
        let cost = ok_result(
            &service,
            r#"{"op":"evaluate","params":{"fragmentation":[{"dimension":2,"level":2,"range":1}]}}"#,
        );
        assert_eq!(cost.get("label").and_then(Json::as_str), Some("time.month"));
        assert!(cost.get("response_ms").and_then(Json::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn what_ifs_and_cache_stats() {
        let service = service();
        let first = ok_result(&service, r#"{"op":"what_if_disks","params":{"disks":64}}"#);
        assert!(first.get("delta").unwrap().get("variation").is_some());
        let misses_after_first = ok_result(&service, r#"{"op":"cache_stats"}"#)
            .get("misses")
            .and_then(Json::as_u64)
            .unwrap();
        let _ = ok_result(&service, r#"{"op":"what_if_disks","params":{"disks":64}}"#);
        let misses_after_second = ok_result(&service, r#"{"op":"cache_stats"}"#)
            .get("misses")
            .and_then(Json::as_u64)
            .unwrap();
        assert_eq!(
            misses_after_first, misses_after_second,
            "repeat what-if must be served from the shared cache"
        );
        let prefetch = ok_result(
            &service,
            r#"{"op":"what_if_prefetch","params":{"pages":4}}"#,
        );
        assert!(prefetch.get("report").is_some());
        let nobitmaps = ok_result(
            &service,
            r#"{"op":"what_if_without_bitmap_dimension","params":{"dimension":0}}"#,
        );
        assert!(nobitmaps.get("delta").is_some());
    }

    #[test]
    fn set_mix_reshapes_only_the_routed_warehouse() {
        let service = two_warehouse_service();
        let us_baseline = ok_result(&service, r#"{"op":"rank","warehouse":"us"}"#);
        let eu_baseline = ok_result(&service, r#"{"op":"rank","warehouse":"eu"}"#);
        // Keep only two classes on `us`.
        let result = ok_result(
            &service,
            r#"{"op":"set_mix","warehouse":"us","params":{"weights":{"q01_month_store_code":3,"q02_month_class":1}}}"#,
        );
        let classes = result.get("classes").unwrap().as_array().unwrap();
        assert_eq!(classes.len(), 2);
        assert!((classes[0].get("share").and_then(Json::as_f64).unwrap() - 0.75).abs() < 1e-9);
        // `us` now advises on the reduced mix; `eu` is untouched.
        let after = ok_result(&service, r#"{"op":"rank","warehouse":"us"}"#);
        assert_ne!(us_baseline.render(), after.render());
        assert_eq!(
            ok_result(&service, r#"{"op":"rank","warehouse":"eu"}"#).render(),
            eu_baseline.render()
        );
        // Unknown classes fail loudly and atomically.
        assert_eq!(
            err_kind(
                &service,
                r#"{"op":"set_mix","params":{"weights":{"nope":1}}}"#
            ),
            "unknown_class"
        );
    }

    #[test]
    fn errors_are_typed_and_never_panic() {
        let service = service();
        assert_eq!(err_kind(&service, "not json at all"), "bad_request");
        assert_eq!(err_kind(&service, r#"{"op":"frobnicate"}"#), "unknown_op");
        assert_eq!(err_kind(&service, r#"{"op":42}"#), "bad_request");
        assert_eq!(
            err_kind(&service, r#"{"v":3,"op":"rank"}"#),
            "unsupported_version"
        );
        assert_eq!(
            err_kind(&service, r#"{"v":0,"op":"rank"}"#),
            "unsupported_version"
        );
        assert_eq!(
            err_kind(&service, r#"{"v":"two","op":"rank"}"#),
            "unsupported_version"
        );
        assert_eq!(
            err_kind(&service, r#"{"op":"analyze","params":{"rank":999}}"#),
            "rank_out_of_range"
        );
        assert_eq!(
            err_kind(
                &service,
                r#"{"op":"what_if_without_class","params":{"class":"nope"}}"#
            ),
            "unknown_class"
        );
        assert_eq!(
            err_kind(&service, r#"{"op":"what_if_disks","params":{}}"#),
            "bad_request"
        );
        assert_eq!(
            err_kind(&service, r#"{"op":"load","params":{"name":"x"}}"#),
            "bad_request"
        );
    }

    #[test]
    fn standalone_error_replies_carry_version_and_kind() {
        let reply = ServiceReply::error("bad_request", "request exceeds 16 bytes");
        assert!(!reply.shutdown);
        assert_eq!(reply.error_kind, Some("bad_request"));
        let json = warlock_json::parse(&reply.line).unwrap();
        assert_eq!(json.get("v").and_then(Json::as_i64), Some(PROTOCOL_VERSION));
        assert_eq!(json.get("ok").and_then(Json::as_bool), Some(false));
        assert!(reply.line.contains("exceeds"));
    }

    #[test]
    fn ping_reports_warehouse_health_without_ranking() {
        let service = service();
        let pong = ok_result(&service, r#"{"op":"ping"}"#);
        assert_eq!(pong.get("protocol").and_then(Json::as_i64), Some(2));
        assert_eq!(
            pong.get("warehouse").and_then(Json::as_str),
            Some("default")
        );
        // The exact space predictor answers before anything was ranked…
        assert_eq!(pong.get("space_size").and_then(Json::as_u64), Some(168));
        // …and `enumerated` stays null until a baseline ranking exists.
        assert_eq!(pong.get("enumerated"), Some(&Json::Null));
        let stats = pong.get("cache_stats").unwrap();
        assert_eq!(stats.get("entries").and_then(Json::as_u64), Some(0));

        let _ = ok_result(&service, r#"{"op":"rank"}"#);
        let pong = ok_result(&service, r#"{"op":"ping"}"#);
        assert_eq!(pong.get("enumerated").and_then(Json::as_u64), Some(168));
        assert!(
            pong.get("cache_stats")
                .and_then(|s| s.get("entries"))
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );
    }

    #[test]
    fn set_budget_adjusts_streaming_knobs() {
        let service = service();
        let result = ok_result(
            &service,
            r#"{"op":"set_budget","params":{"max_candidates":100,"chunk_size":7}}"#,
        );
        assert_eq!(
            result.get("max_candidates").and_then(Json::as_u64),
            Some(100)
        );
        assert_eq!(result.get("chunk_size").and_then(Json::as_u64), Some(7));
        assert_eq!(result.get("space_size").and_then(Json::as_u64), Some(168));
        // The 168-candidate space now exceeds the budget: rank fails
        // with the typed error instead of evaluating anything.
        assert_eq!(err_kind(&service, r#"{"op":"rank"}"#), "candidate_budget");
        // Raising the budget restores service.
        let _ = ok_result(
            &service,
            r#"{"op":"set_budget","params":{"max_candidates":0}}"#,
        );
        let _ = ok_result(&service, r#"{"op":"rank"}"#);
        // Parameterless calls are rejected.
        assert_eq!(
            err_kind(&service, r#"{"op":"set_budget","params":{}}"#),
            "bad_request"
        );
    }

    #[test]
    fn drift_ops_over_the_wire() {
        let service = two_warehouse_service();
        // A fresh warehouse reports a cold, stable optimizer.
        let status = ok_result(&service, r#"{"op":"drift_status","warehouse":"us"}"#);
        assert_eq!(status.get("state").and_then(Json::as_str), Some("stable"));
        assert_eq!(
            status.get("observed_queries").and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(
            status.get("auto_advise").and_then(Json::as_bool),
            Some(false)
        );

        // Observed traffic lands on the routed warehouse only.
        let result = ok_result(
            &service,
            r#"{"op":"observe_stats","warehouse":"us","params":{"observations":[
                {"class":"q01_month_store_code","count":40,"mean_latency_ms":12.5},
                {"class":"q02_month_class","count":60}]}}"#,
        );
        assert_eq!(
            result.get("observed_queries").and_then(Json::as_u64),
            Some(100)
        );
        assert_eq!(
            result.get("tracked_classes").and_then(Json::as_u64),
            Some(2)
        );
        let eu = ok_result(&service, r#"{"op":"drift_status","warehouse":"eu"}"#);
        assert_eq!(eu.get("observed_queries").and_then(Json::as_u64), Some(0));

        // No events yet; the log answers an empty array.
        let events = ok_result(&service, r#"{"op":"advice_events","warehouse":"us"}"#);
        assert!(events.get("events").unwrap().as_array().unwrap().is_empty());

        // Toggling auto-advise answers the updated status.
        let status = ok_result(
            &service,
            r#"{"op":"set_auto_advise","warehouse":"us","params":{"on":true}}"#,
        );
        assert_eq!(
            status.get("auto_advise").and_then(Json::as_bool),
            Some(true)
        );

        // Malformed requests fail loudly.
        assert_eq!(
            err_kind(&service, r#"{"op":"observe_stats","params":{}}"#),
            "bad_request"
        );
        assert_eq!(
            err_kind(
                &service,
                r#"{"op":"observe_stats","params":{"observations":[{"class":"q01"}]}}"#
            ),
            "json"
        );
        assert_eq!(
            err_kind(&service, r#"{"op":"set_auto_advise","params":{}}"#),
            "bad_request"
        );
        assert_eq!(
            err_kind(&service, r#"{"op":"advice_events","params":{"limit":-1}}"#),
            "bad_request"
        );
        // The resident optimizer is a v2 feature; v1 clients see
        // `unknown_op`, exactly as the old server answered.
        for op in [
            "observe_stats",
            "drift_status",
            "advice_events",
            "set_auto_advise",
        ] {
            assert_eq!(
                err_kind(&service, &format!(r#"{{"v":1,"op":"{op}"}}"#)),
                "unknown_op"
            );
        }
    }

    #[test]
    fn observe_stats_auto_advises_over_the_wire() {
        let service = two_warehouse_service();
        let _ = ok_result(
            &service,
            r#"{"op":"set_auto_advise","warehouse":"us","params":{"on":true}}"#,
        );
        let _ = ok_result(&service, r#"{"op":"rank","warehouse":"us"}"#);
        // Traffic concentrated on one class drifts far from the
        // configured mix and must fire exactly one re-advise.
        let line = r#"{"op":"observe_stats","warehouse":"us","params":{"observations":[
            {"class":"q04_year_line","count":10000}]}}"#;
        let status = ok_result(&service, line);
        assert_eq!(status.get("events_emitted").and_then(Json::as_u64), Some(1));
        let events = ok_result(&service, r#"{"op":"advice_events","warehouse":"us"}"#);
        let events = events.get("events").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].get("event").and_then(Json::as_str),
            Some("recommendation_changed")
        );
        assert!(events[0].get("old").unwrap().as_str().is_some());
        assert!(events[0].get("new").unwrap().as_str().is_some());
        // The sibling warehouse never saw any of it.
        let eu = ok_result(&service, r#"{"op":"drift_status","warehouse":"eu"}"#);
        assert_eq!(eu.get("events_emitted").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn shutdown_is_acknowledged() {
        let service = service();
        let reply = service.handle_line(r#"{"op":"shutdown"}"#);
        assert!(reply.shutdown);
        assert!(reply.line.contains("stopping"));
        // A malformed shutdown is not honored.
        let reply = service.handle_line(r#"{"v":9,"op":"shutdown"}"#);
        assert!(!reply.shutdown);
        // v1 clients can still stop the server.
        let reply = service.handle_line(r#"{"v":1,"op":"shutdown"}"#);
        assert!(reply.shutdown);
    }

    #[test]
    fn concurrent_connections_share_warehouses() {
        let service = std::sync::Arc::new(two_warehouse_service());
        let baseline = ok_result(&service, r#"{"op":"rank"}"#).render();
        let mut handles = Vec::new();
        for (i, d) in [8u32, 16, 32, 64].into_iter().enumerate() {
            let service = service.clone();
            let warehouse = if i % 2 == 0 { "us" } else { "eu" };
            handles.push(std::thread::spawn(move || {
                let line = format!(
                    r#"{{"op":"what_if_disks","warehouse":"{warehouse}","params":{{"disks":{d}}}}}"#
                );
                let reply = service.handle_line(&line);
                let json = warlock_json::parse(&reply.line).unwrap();
                assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // The default warehouse is warm and unchanged.
        assert_eq!(ok_result(&service, r#"{"op":"rank"}"#).render(), baseline);
        let stats = ok_result(&service, r#"{"op":"cache_stats"}"#);
        assert!(stats.get("entries").and_then(Json::as_u64).unwrap() > 0);
    }
}
