//! The `warlockd` service layer: a versioned, newline-delimited JSON
//! request protocol over one shared advisory session.
//!
//! The paper frames WARLOCK as an interactive tool — an analyst loads
//! one warehouse description and explores many what-if variations
//! against it. [`Service`] serves that interaction pattern at service
//! scale: it owns a single [`Warlock`] session and answers requests
//! from any number of concurrent connections. Read requests clone the
//! session handle (cheap — clones share the immutable snapshot, the
//! evaluation cache and the worker pool) and evaluate **without holding
//! any lock**, so concurrent what-ifs run truly in parallel and a
//! variation priced for one client is warm for every other.
//! [`set_mix`](self#set_mix) swaps the shared session to a new snapshot
//! under a brief write lock; in-flight readers keep their old snapshot.
//!
//! ## Protocol
//!
//! One JSON object per line in, one per line out (stdio or TCP — see
//! the `warlockd` binary):
//!
//! ```text
//! → {"v":1, "id":7, "op":"rank"}
//! ← {"v":1, "id":7, "ok":true, "result":{"enumerated":168, "ranking":[…], …}}
//! → {"v":1, "id":8, "op":"what_if_disks", "params":{"disks":64}}
//! ← {"v":1, "id":8, "ok":true, "result":{"delta":{…}, "report":{…}}}
//! → {"v":1, "id":9, "op":"nope"}
//! ← {"v":1, "id":9, "ok":false, "error":{"kind":"unknown_op", "message":"…"}}
//! ```
//!
//! `v` defaults to [`PROTOCOL_VERSION`] when omitted; any other value
//! is rejected with `unsupported_version` so clients fail loudly when
//! the protocol evolves. `id` is echoed verbatim (any JSON value,
//! default `null`). Operations: `rank`, `analyze`, `allocate`,
//! `evaluate`, `what_if_disks`, `what_if_prefetch`,
//! `what_if_without_bitmap_dimension`, `what_if_without_class`,
//! `set_mix`, `set_budget`, `cache_stats`, `ping`, `shutdown`.
//!
//! `ping` doubles as a health probe: besides `protocol` it reports the
//! exact `space_size` of the current candidate space (from the lazy
//! source's predictor — no enumeration happens), `enumerated` from the
//! cached baseline ranking (`null` until one was computed), and the
//! shared `cache_stats` — so operators see session health without
//! paying for a rank round-trip. `set_budget` adjusts the streaming
//! knobs (`max_candidates`, `chunk_size`) of the shared session.

use std::sync::RwLock;

use warlock_json::{Json, ToJson};
use warlock_workload::QueryMix;

use crate::error::WarlockError;
use crate::serial::FragmentationAttr;
use crate::session::Warlock;

/// The wire protocol version `warlockd` speaks.
pub const PROTOCOL_VERSION: i64 = 1;

/// A request outcome the server loop acts on: the response line to
/// write, and whether the client asked the service to stop.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReply {
    /// The serialized JSON response (no trailing newline).
    pub line: String,
    /// `true` after a `shutdown` request was acknowledged.
    pub shutdown: bool,
}

/// A long-lived advisory service over one shared [`Warlock`] session.
/// See the [module docs](self).
#[derive(Debug)]
pub struct Service {
    session: RwLock<Warlock>,
}

/// A protocol-level failure (malformed request, unknown op), distinct
/// from the advisory [`WarlockError`]s.
struct BadRequest {
    kind: &'static str,
    message: String,
}

impl BadRequest {
    fn new(kind: &'static str, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
        }
    }
}

enum ReplyError {
    Bad(BadRequest),
    Warlock(WarlockError),
}

impl From<WarlockError> for ReplyError {
    fn from(e: WarlockError) -> Self {
        Self::Warlock(e)
    }
}

impl ReplyError {
    fn kind_and_message(&self) -> (&'static str, String) {
        match self {
            Self::Bad(b) => (b.kind, b.message.clone()),
            Self::Warlock(e) => (e.kind(), e.to_string()),
        }
    }
}

type OpResult = Result<Json, ReplyError>;

fn bad(kind: &'static str, message: impl Into<String>) -> ReplyError {
    ReplyError::Bad(BadRequest::new(kind, message))
}

/// `params.key` as a u64, or an error naming the field.
fn u64_param(params: &Json, key: &str) -> Result<u64, ReplyError> {
    params.get(key).and_then(Json::as_u64).ok_or_else(|| {
        bad(
            "bad_request",
            format!("`params.{key}` must be an unsigned integer"),
        )
    })
}

fn str_param<'a>(params: &'a Json, key: &str) -> Result<&'a str, ReplyError> {
    params
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| bad("bad_request", format!("`params.{key}` must be a string")))
}

/// 1-based rank parameter, defaulting to 1 (the winner).
fn rank_param(params: &Json) -> Result<usize, ReplyError> {
    match params.get("rank") {
        None => Ok(1),
        Some(v) => v
            .as_usize()
            .filter(|&r| r > 0)
            .ok_or_else(|| bad("bad_request", "`params.rank` must be a positive integer")),
    }
}

/// Serializes a `u128` counter: an exact `Int` when it fits `i64`,
/// otherwise an approximate `Num` (astronomical spaces lose precision
/// on the wire but never wrap).
fn u128_json(value: u128) -> Json {
    match i64::try_from(value) {
        Ok(exact) => Json::Int(exact),
        Err(_) => Json::Num(value as f64),
    }
}

fn cache_stats_json(stats: &crate::cache::EvalCacheStats) -> Json {
    Json::object([
        ("entries", stats.entries.to_json()),
        ("hits", stats.hits.to_json()),
        ("misses", stats.misses.to_json()),
    ])
}

fn cost_json(cost: &warlock_cost::CandidateCost, label: String) -> Json {
    Json::object([
        ("label", label.to_json()),
        ("num_fragments", cost.num_fragments.to_json()),
        ("io_cost_ms", cost.io_cost_ms.to_json()),
        ("response_ms", cost.response_ms.to_json()),
        ("total_ios", cost.total_ios.to_json()),
        ("total_pages", cost.total_pages.to_json()),
    ])
}

impl Service {
    /// Wraps a session for concurrent service use.
    pub fn new(session: Warlock) -> Self {
        Self {
            session: RwLock::new(session),
        }
    }

    /// A clone of the shared session: snapshot, cache and pool are
    /// shared with it, so work done on the clone warms the service.
    ///
    /// Lock poisoning is deliberately ignored: writers only assign an
    /// already-validated session at the very end of their critical
    /// section, so a panic under the lock cannot leave a torn value —
    /// and a long-lived server must keep answering after one bad
    /// request.
    pub fn session(&self) -> Warlock {
        self.session
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// Handles one request line, returning the response line. Never
    /// panics on malformed input — every failure is a JSON error
    /// response.
    pub fn handle_line(&self, line: &str) -> ServiceReply {
        let parsed = warlock_json::parse(line);
        let (id, outcome, shutdown) = match parsed {
            Err(e) => (
                Json::Null,
                Err(bad(
                    "bad_request",
                    format!("request is not valid JSON: {e}"),
                )),
                false,
            ),
            Ok(request) => {
                let id = request.get("id").cloned().unwrap_or(Json::Null);
                match self.check_version(&request) {
                    Err(e) => (id, Err(e), false),
                    Ok(()) => {
                        let op = request.get("op").and_then(Json::as_str).unwrap_or("");
                        let outcome = self.dispatch(&request);
                        // Only a well-formed, successful shutdown stops
                        // the server.
                        let shutdown = op == "shutdown" && outcome.is_ok();
                        (id, outcome, shutdown)
                    }
                }
            }
        };
        let line = match outcome {
            Ok(result) => Json::object([
                ("v", Json::Int(PROTOCOL_VERSION)),
                ("id", id),
                ("ok", Json::Bool(true)),
                ("result", result),
            ]),
            Err(e) => {
                let (kind, message) = e.kind_and_message();
                Json::object([
                    ("v", Json::Int(PROTOCOL_VERSION)),
                    ("id", id),
                    ("ok", Json::Bool(false)),
                    (
                        "error",
                        Json::object([("kind", kind.to_json()), ("message", message.to_json())]),
                    ),
                ])
            }
        }
        .render();
        ServiceReply { line, shutdown }
    }

    fn check_version(&self, request: &Json) -> Result<(), ReplyError> {
        match request.get("v") {
            None => Ok(()),
            Some(v) if v.as_i64() == Some(PROTOCOL_VERSION) => Ok(()),
            Some(v) => Err(bad(
                "unsupported_version",
                format!(
                    "protocol version {} is not supported (speak v{PROTOCOL_VERSION})",
                    v.render()
                ),
            )),
        }
    }

    fn dispatch(&self, request: &Json) -> OpResult {
        let op = request
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("bad_request", "`op` must be a string"))?;
        let params = request.get("params").cloned().unwrap_or(Json::Null);
        match op {
            "ping" => {
                // A health probe must stay cheap: the space size comes
                // from the source's exact predictor (no enumeration),
                // and `enumerated` only reflects an already-cached
                // baseline ranking — never triggers one.
                let session = self.session();
                let enumerated = match session.ranking() {
                    Some(report) => report.enumerated.to_json(),
                    None => Json::Null,
                };
                Ok(Json::object([
                    ("protocol", Json::Int(PROTOCOL_VERSION)),
                    ("space_size", u128_json(session.candidate_space_size())),
                    ("enumerated", enumerated),
                    ("cache_stats", cache_stats_json(&session.cache_stats())),
                ]))
            }
            "shutdown" => Ok(Json::object([("stopping", Json::Bool(true))])),
            "rank" => {
                let session = self.session();
                Ok(session.rank()?.to_json())
            }
            "analyze" => {
                let rank = rank_param(&params)?;
                let session = self.session();
                Ok(session.analyze(rank)?.to_json())
            }
            "allocate" => {
                let rank = rank_param(&params)?;
                let session = self.session();
                Ok(session.plan_allocation(rank)?.to_json())
            }
            "evaluate" => {
                let attrs = params
                    .get("fragmentation")
                    .and_then(Json::as_array)
                    .ok_or_else(|| bad("bad_request", "`params.fragmentation` must be an array"))?;
                let attrs: Vec<FragmentationAttr> = attrs
                    .iter()
                    .map(warlock_json::FromJson::from_json)
                    .collect::<Result<_, _>>()
                    .map_err(WarlockError::Json)?;
                let fragmentation = FragmentationAttr::to_fragmentation(&attrs)?;
                let session = self.session();
                let cost = session.evaluate(&fragmentation)?;
                Ok(cost_json(&cost, fragmentation.label(session.schema())))
            }
            "what_if_disks" => {
                let disks = u32::try_from(u64_param(&params, "disks")?)
                    .map_err(|_| bad("bad_request", "`params.disks` out of range"))?;
                let session = self.session();
                let (report, delta) = session.what_if_disks(disks)?;
                Ok(Json::object([
                    ("delta", delta.to_json()),
                    ("report", report.to_json()),
                ]))
            }
            "what_if_prefetch" => {
                let pages = u32::try_from(u64_param(&params, "pages")?)
                    .map_err(|_| bad("bad_request", "`params.pages` out of range"))?;
                let session = self.session();
                let (report, delta) = session.what_if_fixed_prefetch(pages)?;
                Ok(Json::object([
                    ("delta", delta.to_json()),
                    ("report", report.to_json()),
                ]))
            }
            "what_if_without_bitmap_dimension" => {
                let dimension = u16::try_from(u64_param(&params, "dimension")?)
                    .map_err(|_| bad("bad_request", "`params.dimension` out of range"))?;
                let session = self.session();
                let (report, delta) = session
                    .what_if_without_bitmap_dimension(warlock_schema::DimensionId(dimension))?;
                Ok(Json::object([
                    ("delta", delta.to_json()),
                    ("report", report.to_json()),
                ]))
            }
            "what_if_without_class" => {
                let name = str_param(&params, "class")?;
                let session = self.session();
                let (report, delta) = session.what_if_without_class(name)?;
                Ok(Json::object([
                    ("delta", delta.to_json()),
                    ("report", report.to_json()),
                ]))
            }
            "set_mix" => self.set_mix(&params),
            "set_budget" => self.set_budget(&params),
            "cache_stats" => Ok(cache_stats_json(&self.session().cache_stats())),
            other => Err(bad("unknown_op", format!("unknown op `{other}`"))),
        }
    }

    /// Re-weights the shared mix: `params.weights` maps class names to
    /// new (raw) weights; classes absent from the map are dropped.
    /// Unknown names fail with `unknown_class`, and the mix must keep
    /// at least one positively-weighted class. The swap happens under a
    /// brief write lock — in-flight readers keep their snapshot.
    fn set_mix(&self, params: &Json) -> OpResult {
        let weights = match params.get("weights") {
            Some(Json::Obj(members)) => members.clone(),
            _ => return Err(bad("bad_request", "`params.weights` must be an object")),
        };
        let mut session = self
            .session
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let current = session.mix().clone();
        for (name, _) in &weights {
            if current.class_by_name(name).is_none() {
                return Err(WarlockError::UnknownClass { name: name.clone() }.into());
            }
        }
        let mut builder = QueryMix::builder();
        for weighted in current.classes() {
            let name = weighted.class.name();
            if let Some((_, w)) = weights.iter().find(|(n, _)| n == name) {
                let weight = w.as_f64().ok_or_else(|| {
                    bad(
                        "bad_request",
                        format!("`params.weights.{name}` must be a number"),
                    )
                })?;
                builder = builder.class(weighted.class.clone(), weight);
            }
        }
        let mix = builder.build().map_err(WarlockError::Workload)?;
        session.set_mix(mix)?;
        let classes: Vec<Json> = session
            .mix()
            .classes()
            .iter()
            .map(|w| {
                Json::object([
                    ("name", w.class.name().to_json()),
                    ("share", w.share.to_json()),
                ])
            })
            .collect();
        Ok(Json::object([("classes", classes.to_json())]))
    }

    /// Adjusts the shared session's streaming knobs:
    /// `params.max_candidates` (0 = unlimited) and/or
    /// `params.chunk_size` (0 = auto). Echoes the effective values plus
    /// the exact candidate-space size, so a client immediately sees
    /// whether the budget would admit the current space. Swaps under a
    /// brief write lock; in-flight readers keep their snapshot.
    fn set_budget(&self, params: &Json) -> OpResult {
        let max_candidates = match params.get("max_candidates") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                bad(
                    "bad_request",
                    "`params.max_candidates` must be an unsigned integer",
                )
            })?),
        };
        let chunk_size = match params.get("chunk_size") {
            None => None,
            Some(v) => Some(v.as_usize().ok_or_else(|| {
                bad(
                    "bad_request",
                    "`params.chunk_size` must be an unsigned integer",
                )
            })?),
        };
        if max_candidates.is_none() && chunk_size.is_none() {
            return Err(bad(
                "bad_request",
                "`params` must set `max_candidates` and/or `chunk_size`",
            ));
        }
        let mut session = self
            .session
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut config = session.config().clone();
        if let Some(budget) = max_candidates {
            config.max_candidates = budget;
        }
        if let Some(chunk) = chunk_size {
            config.chunk_size = chunk;
        }
        session.set_config(config)?;
        Ok(Json::object([
            ("max_candidates", session.config().max_candidates.to_json()),
            ("chunk_size", session.config().chunk_size.to_json()),
            ("space_size", u128_json(session.candidate_space_size())),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_schema::{apb1_like_schema, Apb1Config};
    use warlock_storage::SystemConfig;
    use warlock_workload::apb1_like_mix;

    fn service() -> Service {
        Service::new(
            Warlock::builder()
                .schema(apb1_like_schema(Apb1Config::default()).unwrap())
                .system(SystemConfig::default_2001(16))
                .mix(apb1_like_mix().unwrap())
                .parallelism(1)
                .build()
                .unwrap(),
        )
    }

    fn ok_result(service: &Service, line: &str) -> Json {
        let reply = service.handle_line(line);
        let json = warlock_json::parse(&reply.line).unwrap();
        assert_eq!(
            json.get("ok").and_then(Json::as_bool),
            Some(true),
            "{}",
            reply.line
        );
        json.get("result").unwrap().clone()
    }

    fn err_kind(service: &Service, line: &str) -> String {
        let reply = service.handle_line(line);
        let json = warlock_json::parse(&reply.line).unwrap();
        assert_eq!(json.get("ok").and_then(Json::as_bool), Some(false));
        json.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
            .unwrap()
            .to_owned()
    }

    #[test]
    fn rank_round_trip_and_id_echo() {
        let service = service();
        let reply = service.handle_line(r#"{"v":1,"id":{"seq":7},"op":"rank"}"#);
        assert!(!reply.shutdown);
        let json = warlock_json::parse(&reply.line).unwrap();
        assert_eq!(json.get("v").and_then(Json::as_i64), Some(1));
        assert_eq!(
            json.get("id").unwrap().render(),
            r#"{"seq":7}"#,
            "ids echo verbatim"
        );
        let result = json.get("result").unwrap();
        assert!(!result
            .get("ranking")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn analyze_allocate_and_evaluate() {
        let service = service();
        let analysis = ok_result(&service, r#"{"op":"analyze"}"#);
        assert!(!analysis
            .get("per_class")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        let allocation = ok_result(&service, r#"{"op":"allocate","params":{"rank":1}}"#);
        assert_eq!(
            allocation.get("disks").unwrap().as_array().unwrap().len(),
            16
        );
        let cost = ok_result(
            &service,
            r#"{"op":"evaluate","params":{"fragmentation":[{"dimension":2,"level":2,"range":1}]}}"#,
        );
        assert_eq!(cost.get("label").and_then(Json::as_str), Some("time.month"));
        assert!(cost.get("response_ms").and_then(Json::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn what_ifs_and_cache_stats() {
        let service = service();
        let first = ok_result(&service, r#"{"op":"what_if_disks","params":{"disks":64}}"#);
        assert!(first.get("delta").unwrap().get("variation").is_some());
        let misses_after_first = ok_result(&service, r#"{"op":"cache_stats"}"#)
            .get("misses")
            .and_then(Json::as_u64)
            .unwrap();
        let _ = ok_result(&service, r#"{"op":"what_if_disks","params":{"disks":64}}"#);
        let misses_after_second = ok_result(&service, r#"{"op":"cache_stats"}"#)
            .get("misses")
            .and_then(Json::as_u64)
            .unwrap();
        assert_eq!(
            misses_after_first, misses_after_second,
            "repeat what-if must be served from the shared cache"
        );
        let prefetch = ok_result(
            &service,
            r#"{"op":"what_if_prefetch","params":{"pages":4}}"#,
        );
        assert!(prefetch.get("report").is_some());
        let nobitmaps = ok_result(
            &service,
            r#"{"op":"what_if_without_bitmap_dimension","params":{"dimension":0}}"#,
        );
        assert!(nobitmaps.get("delta").is_some());
    }

    #[test]
    fn set_mix_reshapes_the_shared_session() {
        let service = service();
        let baseline = ok_result(&service, r#"{"op":"rank"}"#);
        // Keep only two classes.
        let result = ok_result(
            &service,
            r#"{"op":"set_mix","params":{"weights":{"q01_month_store_code":3,"q02_month_class":1}}}"#,
        );
        let classes = result.get("classes").unwrap().as_array().unwrap();
        assert_eq!(classes.len(), 2);
        assert!((classes[0].get("share").and_then(Json::as_f64).unwrap() - 0.75).abs() < 1e-9);
        // The service now advises on the reduced mix.
        let after = ok_result(&service, r#"{"op":"rank"}"#);
        assert_ne!(baseline.render(), after.render());
        // Unknown classes fail loudly and atomically.
        assert_eq!(
            err_kind(
                &service,
                r#"{"op":"set_mix","params":{"weights":{"nope":1}}}"#
            ),
            "unknown_class"
        );
    }

    #[test]
    fn errors_are_typed_and_never_panic() {
        let service = service();
        assert_eq!(err_kind(&service, "not json at all"), "bad_request");
        assert_eq!(err_kind(&service, r#"{"op":"frobnicate"}"#), "unknown_op");
        assert_eq!(err_kind(&service, r#"{"op":42}"#), "bad_request");
        assert_eq!(
            err_kind(&service, r#"{"v":2,"op":"rank"}"#),
            "unsupported_version"
        );
        assert_eq!(
            err_kind(&service, r#"{"op":"analyze","params":{"rank":999}}"#),
            "rank_out_of_range"
        );
        assert_eq!(
            err_kind(
                &service,
                r#"{"op":"what_if_without_class","params":{"class":"nope"}}"#
            ),
            "unknown_class"
        );
        assert_eq!(
            err_kind(&service, r#"{"op":"what_if_disks","params":{}}"#),
            "bad_request"
        );
    }

    #[test]
    fn ping_reports_session_health_without_ranking() {
        let service = service();
        let pong = ok_result(&service, r#"{"op":"ping"}"#);
        assert_eq!(pong.get("protocol").and_then(Json::as_i64), Some(1));
        // The exact space predictor answers before anything was ranked…
        assert_eq!(pong.get("space_size").and_then(Json::as_u64), Some(168));
        // …and `enumerated` stays null until a baseline ranking exists.
        assert_eq!(pong.get("enumerated"), Some(&Json::Null));
        let stats = pong.get("cache_stats").unwrap();
        assert_eq!(stats.get("entries").and_then(Json::as_u64), Some(0));

        let _ = ok_result(&service, r#"{"op":"rank"}"#);
        let pong = ok_result(&service, r#"{"op":"ping"}"#);
        assert_eq!(pong.get("enumerated").and_then(Json::as_u64), Some(168));
        assert!(
            pong.get("cache_stats")
                .and_then(|s| s.get("entries"))
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );
    }

    #[test]
    fn set_budget_adjusts_streaming_knobs() {
        let service = service();
        let result = ok_result(
            &service,
            r#"{"op":"set_budget","params":{"max_candidates":100,"chunk_size":7}}"#,
        );
        assert_eq!(
            result.get("max_candidates").and_then(Json::as_u64),
            Some(100)
        );
        assert_eq!(result.get("chunk_size").and_then(Json::as_u64), Some(7));
        assert_eq!(result.get("space_size").and_then(Json::as_u64), Some(168));
        // The 168-candidate space now exceeds the budget: rank fails
        // with the typed error instead of evaluating anything.
        assert_eq!(err_kind(&service, r#"{"op":"rank"}"#), "candidate_budget");
        // Raising the budget restores service.
        let _ = ok_result(
            &service,
            r#"{"op":"set_budget","params":{"max_candidates":0}}"#,
        );
        let _ = ok_result(&service, r#"{"op":"rank"}"#);
        // Parameterless calls are rejected.
        assert_eq!(
            err_kind(&service, r#"{"op":"set_budget","params":{}}"#),
            "bad_request"
        );
    }

    #[test]
    fn shutdown_is_acknowledged() {
        let service = service();
        let reply = service.handle_line(r#"{"op":"shutdown"}"#);
        assert!(reply.shutdown);
        assert!(reply.line.contains("stopping"));
        // A malformed shutdown is not honored.
        let reply = service.handle_line(r#"{"v":9,"op":"shutdown"}"#);
        assert!(!reply.shutdown);
    }

    #[test]
    fn concurrent_connections_share_one_session() {
        let service = std::sync::Arc::new(service());
        let baseline = ok_result(&service, r#"{"op":"rank"}"#).render();
        let mut handles = Vec::new();
        for d in [8u32, 16, 32, 64] {
            let service = service.clone();
            handles.push(std::thread::spawn(move || {
                let line = format!(r#"{{"op":"what_if_disks","params":{{"disks":{d}}}}}"#);
                let reply = service.handle_line(&line);
                let json = warlock_json::parse(&reply.line).unwrap();
                assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // The shared session is warm and unchanged.
        assert_eq!(ok_result(&service, r#"{"op":"rank"}"#).render(), baseline);
        let stats = ok_result(&service, r#"{"op":"cache_stats"}"#);
        assert!(stats.get("entries").and_then(Json::as_u64).unwrap() > 0);
    }
}
