//! Analytical I/O cost model for WARLOCK.
//!
//! The prediction layer "estimates … I/O access cost or overhead
//! (throughput) and I/O response time … by means of an analytical model"
//! (paper §3.2, reconstructing Stöhr's BTW 2001 model). For every
//! (query class, fragmentation candidate) pair the model derives:
//!
//! * the *access path* per fragment — full fragment scan vs bitmap-guided
//!   row fetch, whichever is cheaper (and scan when a residual predicate
//!   has no covering index),
//! * page, I/O and device-busy-time totals (the throughput metric), and
//! * a declustered response-time estimate (the parallelism metric),
//!   capped by the architecture's processor count.
//!
//! Modules:
//!
//! * [`yao`] — Yao/Cardenas page-hit estimation,
//! * [`contention`] — multi-user load inflation (why low total I/O wins
//!   under concurrency),
//! * [`prefetch`] — effective prefetch granule per object size,
//! * [`access`] — the per-query access-plan estimator,
//! * [`response`] — declustered response-time estimation,
//! * [`model`] — the [`CostModel`](model::CostModel) facade evaluating whole
//!   candidates against a weighted query mix,
//! * [`tables`] — per-dimension cost tables precomputed once per model
//!   ([`CostTables`](tables::CostTables)),
//! * [`batch`] — SoA batched evaluation of whole candidate chunks
//!   ([`evaluate_chunk`](batch::evaluate_chunk)), bit-identical to the
//!   scalar path,
//! * [`kernel`] — lane-structured costing kernels behind runtime
//!   backend dispatch (scalar reference / portable lane arrays /
//!   AVX2), all bit-identical by construction.

//!
//! # Example
//!
//! ```
//! use warlock_bitmap::{BitmapScheme, SchemeConfig};
//! use warlock_cost::CostModel;
//! use warlock_fragment::Fragmentation;
//! use warlock_schema::{apb1_like_schema, Apb1Config};
//! use warlock_storage::SystemConfig;
//! use warlock_workload::apb1_like_mix;
//!
//! let schema = apb1_like_schema(Apb1Config::default()).unwrap();
//! let mix = apb1_like_mix().unwrap();
//! let scheme = BitmapScheme::derive(&schema, &mix, SchemeConfig::default());
//! let system = SystemConfig::default_2001(16);
//!
//! let model = CostModel::new(&schema, &system, &scheme, &mix);
//! let monthly = model.evaluate(&Fragmentation::from_pairs(&[(2, 2)]).unwrap());
//! let baseline = model.evaluate(&Fragmentation::none());
//! assert!(monthly.response_ms < baseline.response_ms);
//! ```

#![warn(missing_docs)]

pub mod access;
pub mod batch;
pub mod contention;
pub mod kernel;
pub mod model;
pub mod prefetch;
pub mod response;
pub mod tables;
pub mod yao;

pub use access::{AccessPath, QueryCost};
pub use batch::{
    evaluate_chunk, evaluate_chunk_kernel, evaluate_chunk_rows, evaluate_chunk_with, ChunkBatch,
    PerQueryDetail,
};
pub use contention::{contention_estimate, load_curve, ContentionEstimate, LoadPoint};
pub use kernel::{
    AlignedF64Col, CostKernel, CostPassInput, CostPassOutput, KernelBackend, KernelChoice,
    KERNEL_ENV, LANES,
};
pub use model::{combine_class_costs, fingerprint128, CandidateCost, ClassCost, CostModel};
pub use prefetch::effective_prefetch;
pub use response::estimated_response_ms;
pub use tables::{BitmapContrib, ClassTable, CostTables, FragDimEntry, PredTable};
pub use yao::{cardenas_page_hits, yao_page_hits};
