//! Per-query access-plan estimation.
//!
//! For one query class and one fragmentation candidate this module decides
//! how each accessed fragment is read — full scan or bitmap-guided row
//! fetch — and prices pages, physical I/Os and device busy time.

use warlock_bitmap::{estimate, BitmapScheme, IndexKind};
use warlock_fragment::{FragmentLayout, QueryMatch};
use warlock_schema::StarSchema;
use warlock_storage::SystemConfig;
use warlock_workload::QueryClass;

use crate::prefetch::effective_prefetch;
use crate::response::estimated_response_ms;
use crate::yao::yao_page_hits;

/// How accessed fragments are read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Sequential scan of every accessed fragment.
    FullScan,
    /// Bitmap evaluation followed by selective page fetches.
    BitmapFetch,
}

/// The estimated I/O behaviour of one query class under one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryCost {
    /// Name of the query class (shared, cheap to clone).
    pub query_name: std::sync::Arc<str>,
    /// Chosen access path.
    pub path: AccessPath,
    /// Expected number of fragments accessed.
    pub fragments_accessed: f64,
    /// Pages of one (average) fact fragment.
    pub fragment_pages: u64,
    /// Total fact pages read by the query.
    pub fact_pages: f64,
    /// Total bitmap pages read by the query.
    pub bitmap_pages: f64,
    /// Total physical I/Os issued.
    pub total_ios: f64,
    /// Total device busy time in milliseconds (the throughput metric).
    pub busy_ms: f64,
    /// Device time per accessed fragment.
    pub per_fragment_ms: f64,
    /// Declustered response-time estimate in milliseconds.
    pub response_ms: f64,
    /// Prefetch granule used for fact access.
    pub fact_prefetch: u32,
    /// Prefetch granule used for bitmap access.
    pub bitmap_prefetch: u32,
    /// Expected rows the query selects.
    pub selected_rows: f64,
}

/// Estimates `query` against the candidate embodied by `layout`.
///
/// The access-path decision mirrors the tool's heuristic: a fragment is
/// scanned when some residual predicate has no covering bitmap index, or
/// when the scan is simply cheaper than bitmap evaluation plus scattered
/// row fetches (high residual selectivity).
pub fn estimate_query(
    schema: &StarSchema,
    layout: &FragmentLayout,
    scheme: &BitmapScheme,
    system: &SystemConfig,
    query: &QueryClass,
    fact_index: usize,
) -> QueryCost {
    let fragmentation = layout.fragmentation();
    let m = QueryMatch::evaluate(schema, fragmentation, query);
    let fragments_accessed = m.expected_fragments();

    let page = system.page;
    let page_bytes = u64::from(page.page_bytes);
    let disk = system.disk;
    let row_bytes = schema.fact_row_bytes(fact_index);

    let frag_rows_avg = layout.uniform_rows_per_fragment();
    let frag_rows = (frag_rows_avg.round() as u64).max(1);
    let fragment_pages = page.pages_for_rows(frag_rows, row_bytes).max(1);

    // --- Full-scan path -------------------------------------------------
    let fact_prefetch = effective_prefetch(system.fact_prefetch, fragment_pages);
    let scan_ms = disk.sequential_ms(fragment_pages, fact_prefetch, page_bytes);
    let scan_ios = disk.sequential_ios(fragment_pages, fact_prefetch) as f64;

    // --- Bitmap path ----------------------------------------------------
    let vector_pages = estimate::vector_pages(frag_rows, page);
    let bitmap_prefetch = effective_prefetch(system.bitmap_prefetch, vector_pages);
    let vector_ms = disk.sequential_ms(vector_pages, bitmap_prefetch, page_bytes);
    let vector_ios = disk.sequential_ios(vector_pages, bitmap_prefetch) as f64;

    let mut bitmap_vectors = 0.0f64; // vectors/slices read per fragment
    let mut indexable = true;
    for (&dim, pred) in query.predicates() {
        if let Some(frag_card) = fragmentation.effective_cardinality_on(schema, dim) {
            let query_card = schema
                .dimension(dim)
                .and_then(|d| d.cardinality(pred.level))
                .expect("validated query");
            if query_card <= frag_card {
                // Fully resolved by fragment confinement: matched fragments
                // are read in whole, no in-fragment filtering needed.
                continue;
            }
        }
        match scheme.access_for(schema, dim, pred.level) {
            None => {
                indexable = false;
                break;
            }
            Some(IndexKind::Standard { .. }) => {
                // Values relevant within one accessed fragment: predicates
                // on a fragmentation dimension split their values across
                // the matched fragments; others apply in full everywhere.
                let k_eff = match m
                    .per_dimension()
                    .iter()
                    .find(|d| d.dimension == dim && d.referenced)
                {
                    Some(d) => (pred.values as f64 / d.matched_values).max(1.0),
                    None => pred.values as f64,
                };
                bitmap_vectors += k_eff;
            }
            Some(IndexKind::Encoded { slices }) => {
                // The slice AND reads each prefix slice once, independent
                // of how many values the predicate selects.
                bitmap_vectors += f64::from(slices);
            }
        }
    }

    let selected_rows_per_fragment = frag_rows_avg * m.residual_selectivity();
    let touched_pages = yao_page_hits(frag_rows, fragment_pages, selected_rows_per_fragment);
    let fetch_ms = touched_pages * disk.random_ms(1, page_bytes);
    let bitmap_ms = bitmap_vectors * vector_ms + fetch_ms;
    let bitmap_ios = bitmap_vectors * vector_ios + touched_pages;
    let bitmap_pages_per_fragment = bitmap_vectors * vector_pages as f64;

    // --- Path choice ----------------------------------------------------
    let use_scan = !indexable || scan_ms <= bitmap_ms;
    let (path, per_fragment_ms, ios_pf, fact_pages_pf, bitmap_pages_pf) = if use_scan {
        (
            AccessPath::FullScan,
            scan_ms,
            scan_ios,
            fragment_pages as f64,
            0.0,
        )
    } else {
        (
            AccessPath::BitmapFetch,
            bitmap_ms,
            bitmap_ios,
            touched_pages,
            bitmap_pages_per_fragment,
        )
    };

    let busy_ms = fragments_accessed * per_fragment_ms;
    let response_ms = estimated_response_ms(
        fragments_accessed,
        per_fragment_ms,
        system.num_disks,
        system.architecture.total_processors(),
        system.architecture.overhead_factor(),
    );

    QueryCost {
        query_name: query.name().into(),
        path,
        fragments_accessed,
        fragment_pages,
        fact_pages: fragments_accessed * fact_pages_pf,
        bitmap_pages: fragments_accessed * bitmap_pages_pf,
        total_ios: fragments_accessed * ios_pf,
        busy_ms,
        per_fragment_ms,
        response_ms,
        fact_prefetch,
        bitmap_prefetch,
        selected_rows: m.expected_rows(layout.fact_rows()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_bitmap::SchemeConfig;
    use warlock_fragment::Fragmentation;
    use warlock_schema::{apb1_like_schema, Apb1Config};
    use warlock_workload::{apb1_like_mix, DimensionPredicate, QueryClass};

    fn setup() -> (StarSchema, BitmapScheme, SystemConfig) {
        let schema = apb1_like_schema(Apb1Config::default()).unwrap();
        let mix = apb1_like_mix().unwrap();
        let scheme = BitmapScheme::derive(&schema, &mix, SchemeConfig::default());
        let system = SystemConfig::default_2001(16);
        (schema, scheme, system)
    }

    fn layout(schema: &StarSchema, pairs: &[(u16, u16)]) -> FragmentLayout {
        let frag = if pairs.is_empty() {
            Fragmentation::none()
        } else {
            Fragmentation::from_pairs(pairs).unwrap()
        };
        FragmentLayout::new(schema, frag, 0)
    }

    #[test]
    fn confined_query_reads_fraction_of_fragments() {
        let (schema, scheme, system) = setup();
        let l = layout(&schema, &[(2, 2)]); // by month: 24 fragments
        let q = QueryClass::new("one_month").with(2, DimensionPredicate::point(2));
        let c = estimate_query(&schema, &l, &scheme, &system, &q, 0);
        assert!((c.fragments_accessed - 1.0).abs() < 1e-9);
        // Whole-fragment coverage: scan of exactly one fragment.
        assert_eq!(c.path, AccessPath::FullScan);
        assert!((c.fact_pages - c.fragment_pages as f64).abs() < 1e-6);
        assert!(c.busy_ms > 0.0 && c.response_ms > 0.0);
        // Single fragment: response equals busy time.
        assert!((c.response_ms - c.busy_ms).abs() < 1e-9);
    }

    #[test]
    fn unconfined_query_reads_every_fragment() {
        let (schema, scheme, system) = setup();
        let l = layout(&schema, &[(3, 0)]); // by channel: 9 fragments
                                            // A mildly selective predicate (1/24 of rows) touches almost every
                                            // page (Yao), so scanning all 9 fragments is the right plan.
        let q = QueryClass::new("one_month").with(2, DimensionPredicate::point(2));
        let c = estimate_query(&schema, &l, &scheme, &system, &q, 0);
        assert!((c.fragments_accessed - 9.0).abs() < 1e-9);
        assert_eq!(c.path, AccessPath::FullScan);
    }

    #[test]
    fn selective_predicate_switches_to_bitmap_fetch() {
        let (schema, scheme, system) = setup();
        let l = layout(&schema, &[(3, 0)]); // by channel: 9 fragments
                                            // 1/9000 selectivity: ~216 rows per fragment — bitmap evaluation
                                            // plus scattered fetches beat a 13 000-page scan.
        let q = QueryClass::new("one_code").with(0, DimensionPredicate::point(5));
        let c = estimate_query(&schema, &l, &scheme, &system, &q, 0);
        assert!((c.fragments_accessed - 9.0).abs() < 1e-9);
        assert_eq!(c.path, AccessPath::BitmapFetch);
        assert!(c.bitmap_pages > 0.0);
        // Fetches far fewer fact pages than the scan would.
        assert!(c.fact_pages < 9.0 * c.fragment_pages as f64 / 10.0);
    }

    #[test]
    fn response_time_benefits_from_declustering() {
        let (schema, scheme, system) = setup();
        let q = QueryClass::new("one_quarter").with(2, DimensionPredicate::point(1));
        // Coarse: fragment by quarter → 1 fragment accessed, serial.
        let coarse = estimate_query(
            &schema,
            &layout(&schema, &[(2, 1)]),
            &scheme,
            &system,
            &q,
            0,
        );
        // Fine: fragment by month × channel → 27 fragments, parallel.
        let fine = estimate_query(
            &schema,
            &layout(&schema, &[(2, 2), (3, 0)]),
            &scheme,
            &system,
            &q,
            0,
        );
        assert!(fine.fragments_accessed > coarse.fragments_accessed);
        assert!(
            fine.response_ms < coarse.response_ms,
            "declustering should cut response: fine {} vs coarse {}",
            fine.response_ms,
            coarse.response_ms
        );
    }

    #[test]
    fn throughput_prefers_clustering() {
        // The flip side of the trade-off: the declustered plan must not
        // consume *less* total device time than the clustered one.
        let (schema, scheme, system) = setup();
        let q = QueryClass::new("one_quarter").with(2, DimensionPredicate::point(1));
        let coarse = estimate_query(
            &schema,
            &layout(&schema, &[(2, 1)]),
            &scheme,
            &system,
            &q,
            0,
        );
        let fine = estimate_query(
            &schema,
            &layout(&schema, &[(2, 2), (3, 0)]),
            &scheme,
            &system,
            &q,
            0,
        );
        assert!(fine.busy_ms >= coarse.busy_ms * 0.99);
    }

    #[test]
    fn missing_index_forces_scan() {
        let (schema, scheme, system) = setup();
        // Drop all product indexes; a product-referencing query must scan.
        let reduced = scheme.without_dimension(warlock_schema::DimensionId(0));
        let l = layout(&schema, &[(2, 2)]);
        let q = QueryClass::new("one_code").with(0, DimensionPredicate::point(5));
        let c = estimate_query(&schema, &l, &reduced, &system, &q, 0);
        assert_eq!(c.path, AccessPath::FullScan);
        let with_index = estimate_query(&schema, &l, &scheme, &system, &q, 0);
        assert_eq!(with_index.path, AccessPath::BitmapFetch);
        assert!(with_index.busy_ms < c.busy_ms);
    }

    #[test]
    fn baseline_scan_costs_whole_table() {
        let (schema, scheme, system) = setup();
        let l = layout(&schema, &[]);
        // Query with an unindexable predicate — force the scan path by
        // removing every index.
        let mut s2 = scheme.clone();
        for d in 0..4 {
            s2 = s2.without_dimension(warlock_schema::DimensionId(d));
        }
        let q = QueryClass::new("q").with(2, DimensionPredicate::point(2));
        let c = estimate_query(&schema, &l, &s2, &system, &q, 0);
        let total_pages = system
            .page
            .pages_for_rows(schema.fact_rows(0), schema.fact_row_bytes(0));
        assert_eq!(c.fragment_pages, total_pages);
        assert!((c.fact_pages - total_pages as f64).abs() < 1e-6);
    }

    #[test]
    fn auto_prefetch_adapts_to_object_sizes() {
        let (schema, scheme, system) = setup();
        let l = layout(&schema, &[(2, 2)]);
        let q = QueryClass::new("q")
            .with(2, DimensionPredicate::point(2))
            .with(3, DimensionPredicate::point(0));
        let c = estimate_query(&schema, &l, &scheme, &system, &q, 0);
        // Fact fragments are thousands of pages → cap; bitmap vectors are
        // a couple of pages → small granule.
        assert_eq!(c.fact_prefetch, 256);
        assert!(c.bitmap_prefetch < 32);
    }

    #[test]
    fn selected_rows_match_selectivity() {
        let (schema, scheme, system) = setup();
        let l = layout(&schema, &[(2, 2)]);
        let q = QueryClass::new("q").with(2, DimensionPredicate::point(2));
        let c = estimate_query(&schema, &l, &scheme, &system, &q, 0);
        let expect = schema.fact_rows(0) as f64 / 24.0;
        assert!((c.selected_rows - expect).abs() / expect < 1e-9);
    }
}
