//! Effective prefetch-granule selection.
//!
//! Sequential service time `ceil(s/p)·t_pos + s·t_page` is monotonically
//! non-increasing in the granule `p`, but prefetching beyond the object
//! being read wastes buffer space and transfer time on other objects'
//! pages. The cost-optimal granule for an object of `s` pages is therefore
//! `min(s, cap)` — which is exactly why the paper lets the tool pick
//! *different* optimal granules for fact fragments (large) and bitmap
//! vectors (small).

use warlock_storage::PrefetchPolicy;

/// Resolves the prefetch granule to use for an object of `object_pages`
/// contiguous pages under `policy`.
///
/// * [`PrefetchPolicy::Fixed`] returns the fixed granule unchanged (the
///   DBA's explicit choice, even if sub-optimal);
/// * [`PrefetchPolicy::Auto`] returns `clamp(object_pages, 1, max_pages)`.
pub fn effective_prefetch(policy: PrefetchPolicy, object_pages: u64) -> u32 {
    match policy {
        PrefetchPolicy::Fixed(p) => p.max(1),
        PrefetchPolicy::Auto { max_pages } => {
            object_pages.clamp(1, u64::from(max_pages.max(1))) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_storage::DiskParams;

    #[test]
    fn fixed_is_respected() {
        assert_eq!(effective_prefetch(PrefetchPolicy::Fixed(8), 1000), 8);
        assert_eq!(effective_prefetch(PrefetchPolicy::Fixed(8), 2), 8);
        // Degenerate fixed-zero clamps to one.
        assert_eq!(effective_prefetch(PrefetchPolicy::Fixed(0), 2), 1);
    }

    #[test]
    fn auto_tracks_object_size() {
        let auto = PrefetchPolicy::Auto { max_pages: 256 };
        assert_eq!(effective_prefetch(auto, 1), 1);
        assert_eq!(effective_prefetch(auto, 100), 100);
        assert_eq!(effective_prefetch(auto, 10_000), 256);
        assert_eq!(effective_prefetch(auto, 0), 1);
    }

    #[test]
    fn auto_is_cost_optimal_within_cap() {
        // Verify the claimed optimality: no granule in [1, cap] beats
        // min(s, cap) for sequential service time.
        let disk = DiskParams::ca_2001();
        let pages = 100u64;
        let cap = 256u32;
        let chosen = effective_prefetch(PrefetchPolicy::Auto { max_pages: cap }, pages);
        let best = disk.sequential_ms(pages, chosen, 8192);
        for p in 1..=cap {
            assert!(
                best <= disk.sequential_ms(pages, p, 8192) + 1e-9,
                "granule {p} beats auto choice {chosen}"
            );
        }
    }

    #[test]
    fn fact_and_bitmap_optima_differ() {
        // The paper's observation: fact fragments (thousands of pages) and
        // bitmap vectors (a few pages) want very different granules.
        let auto = PrefetchPolicy::Auto { max_pages: 256 };
        let fact = effective_prefetch(auto, 5000);
        let bitmap = effective_prefetch(auto, 2);
        assert_eq!(fact, 256);
        assert_eq!(bitmap, 2);
    }
}
