//! The cost-model facade: evaluating whole candidates against a mix.

use warlock_bitmap::BitmapScheme;
use warlock_fragment::{FragmentLayout, Fragmentation};
use warlock_schema::StarSchema;
use warlock_storage::SystemConfig;
use warlock_workload::QueryMix;

use crate::access::{estimate_query, QueryCost};

/// Evaluated cost of one fragmentation candidate under a query mix.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateCost {
    /// The evaluated candidate.
    pub fragmentation: Fragmentation,
    /// Number of fragments of the candidate.
    pub num_fragments: u64,
    /// Workload-weighted total device busy time per query, in milliseconds
    /// — the paper's "overall I/O access cost" (throughput metric).
    pub io_cost_ms: f64,
    /// Workload-weighted response time per query, in milliseconds.
    pub response_ms: f64,
    /// Workload-weighted physical I/Os per query.
    pub total_ios: f64,
    /// Workload-weighted pages read per query (fact + bitmap).
    pub total_pages: f64,
    /// Per-class details, in mix order.
    pub per_query: Vec<QueryCost>,
}

/// The WARLOCK cost model: a schema, a system, a bitmap scheme and a
/// weighted query mix, evaluating fragmentation candidates.
#[derive(Debug, Clone)]
pub struct CostModel<'a> {
    schema: &'a StarSchema,
    system: &'a SystemConfig,
    scheme: &'a BitmapScheme,
    mix: &'a QueryMix,
    fact_index: usize,
}

impl<'a> CostModel<'a> {
    /// Creates the model over the primary fact table.
    pub fn new(
        schema: &'a StarSchema,
        system: &'a SystemConfig,
        scheme: &'a BitmapScheme,
        mix: &'a QueryMix,
    ) -> Self {
        Self {
            schema,
            system,
            scheme,
            mix,
            fact_index: 0,
        }
    }

    /// Selects a different fact table.
    pub fn with_fact_index(mut self, fact_index: usize) -> Self {
        assert!(fact_index < self.schema.facts().len(), "fact index");
        self.fact_index = fact_index;
        self
    }

    /// The schema the model evaluates against.
    #[inline]
    pub fn schema(&self) -> &StarSchema {
        self.schema
    }

    /// The system configuration.
    #[inline]
    pub fn system(&self) -> &SystemConfig {
        self.system
    }

    /// The fact table index.
    #[inline]
    pub fn fact_index(&self) -> usize {
        self.fact_index
    }

    /// Evaluates one candidate: every class of the mix, weighted by share.
    pub fn evaluate(&self, fragmentation: &Fragmentation) -> CandidateCost {
        let layout = FragmentLayout::new(self.schema, fragmentation.clone(), self.fact_index);
        self.evaluate_layout(&layout)
    }

    /// Evaluates a pre-built layout (avoids re-deriving it).
    pub fn evaluate_layout(&self, layout: &FragmentLayout) -> CandidateCost {
        let mut io_cost_ms = 0.0;
        let mut response_ms = 0.0;
        let mut total_ios = 0.0;
        let mut total_pages = 0.0;
        let mut per_query = Vec::with_capacity(self.mix.len());
        for (class, share) in self.mix.iter() {
            let qc = estimate_query(
                self.schema,
                layout,
                self.scheme,
                self.system,
                class,
                self.fact_index,
            );
            io_cost_ms += share * qc.busy_ms;
            response_ms += share * qc.response_ms;
            total_ios += share * qc.total_ios;
            total_pages += share * (qc.fact_pages + qc.bitmap_pages);
            per_query.push(qc);
        }
        CandidateCost {
            fragmentation: layout.fragmentation().clone(),
            num_fragments: layout.num_fragments(),
            io_cost_ms,
            response_ms,
            total_ios,
            total_pages,
            per_query,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_bitmap::SchemeConfig;
    use warlock_schema::{apb1_like_schema, Apb1Config};
    use warlock_workload::apb1_like_mix;

    struct Fixture {
        schema: StarSchema,
        system: SystemConfig,
        scheme: BitmapScheme,
        mix: QueryMix,
    }

    fn fixture() -> Fixture {
        let schema = apb1_like_schema(Apb1Config::default()).unwrap();
        let mix = apb1_like_mix().unwrap();
        let scheme = BitmapScheme::derive(&schema, &mix, SchemeConfig::default());
        let system = SystemConfig::default_2001(16);
        Fixture {
            schema,
            system,
            scheme,
            mix,
        }
    }

    #[test]
    fn evaluates_all_classes() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let c = model.evaluate(&Fragmentation::from_pairs(&[(2, 2)]).unwrap());
        assert_eq!(c.per_query.len(), 10);
        assert_eq!(c.num_fragments, 24);
        assert!(c.io_cost_ms > 0.0);
        assert!(c.response_ms > 0.0);
        assert!(c.total_ios > 0.0);
        assert!(c.total_pages > 0.0);
        // Weighted totals are convex combinations of per-query values.
        let max_busy = c
            .per_query
            .iter()
            .map(|q| q.busy_ms)
            .fold(f64::MIN, f64::max);
        assert!(c.io_cost_ms <= max_busy + 1e-9);
    }

    #[test]
    fn fragmented_beats_unfragmented_for_star_mix() {
        // The reason MDHF exists: confining queries to fragments must beat
        // scanning the monolithic fact table for the APB-1-like mix.
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let baseline = model.evaluate(&Fragmentation::none());
        let by_month = model.evaluate(&Fragmentation::from_pairs(&[(2, 2)]).unwrap());
        assert!(by_month.response_ms < baseline.response_ms);
    }

    #[test]
    fn multi_dimensional_fragmentation_helps_response() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let one_d = model.evaluate(&Fragmentation::from_pairs(&[(2, 2)]).unwrap());
        let two_d = model.evaluate(&Fragmentation::from_pairs(&[(2, 2), (0, 1)]).unwrap());
        // month × line confines product queries too → better response.
        assert!(
            two_d.response_ms < one_d.response_ms,
            "2-D {} should beat 1-D {}",
            two_d.response_ms,
            one_d.response_ms
        );
    }

    #[test]
    fn with_fact_index_validates() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        assert_eq!(model.with_fact_index(0).fact_index(), 0);
    }

    #[test]
    #[should_panic(expected = "fact index")]
    fn bad_fact_index_panics() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let _ = model.with_fact_index(3);
    }

    #[test]
    fn evaluate_layout_matches_evaluate() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let frag = Fragmentation::from_pairs(&[(2, 1), (3, 0)]).unwrap();
        let a = model.evaluate(&frag);
        let layout = FragmentLayout::new(&f.schema, frag, 0);
        let b = model.evaluate_layout(&layout);
        assert_eq!(a, b);
    }
}
