//! The cost-model facade: evaluating whole candidates against a mix.

use warlock_bitmap::BitmapScheme;
use warlock_fragment::{FragmentLayout, Fragmentation};
use warlock_schema::StarSchema;
use warlock_storage::SystemConfig;
use warlock_workload::QueryMix;

use crate::access::{estimate_query, QueryCost};

/// Evaluated cost of one fragmentation candidate under a query mix.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateCost {
    /// The evaluated candidate.
    pub fragmentation: Fragmentation,
    /// Number of fragments of the candidate.
    pub num_fragments: u64,
    /// Workload-weighted total device busy time per query, in milliseconds
    /// — the paper's "overall I/O access cost" (throughput metric).
    pub io_cost_ms: f64,
    /// Workload-weighted response time per query, in milliseconds.
    pub response_ms: f64,
    /// Workload-weighted physical I/Os per query.
    pub total_ios: f64,
    /// Workload-weighted pages read per query (fact + bitmap).
    pub total_pages: f64,
    /// Per-class details, in mix order.
    pub per_query: Vec<QueryCost>,
}

/// Unweighted cost of one (candidate, query class) pair — the per-class
/// quantities of [`CandidateCost`] *before* the mix share is applied.
///
/// Per-class costs never see the class's workload share (the share
/// enters only the weighted accumulation), so these rows are invariant
/// under pure mix re-weights. The advisor's evaluation cache stores
/// them keyed by [`CostModel::structure_fingerprint`] and recombines
/// them under the current shares with [`combine_class_costs`] —
/// bit-identical to a cold evaluation at the new mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassCost {
    /// Device busy time of the class, in milliseconds.
    pub busy_ms: f64,
    /// Response time of the class, in milliseconds.
    pub response_ms: f64,
    /// Physical I/Os of the class.
    pub total_ios: f64,
    /// Pages read by the class (`fact_pages + bitmap_pages`, summed in
    /// the kernel's order).
    pub pages: f64,
}

/// Recombines per-class unweighted rows under `shares` into the
/// aggregate [`CandidateCost`] fields, using the exact accumulation
/// sequence of every costing backend (`acc += share * value`, one term
/// per class in mix order, from `0.0`) — so the result is bit-identical
/// to evaluating the candidate fresh under a mix with those shares.
/// `per_query` detail is not reconstructible from the rows and is left
/// empty (the ranking pipeline re-derives it for the ranked handful).
pub fn combine_class_costs(
    fragmentation: Fragmentation,
    num_fragments: u64,
    classes: &[ClassCost],
    shares: &[f64],
) -> CandidateCost {
    debug_assert_eq!(classes.len(), shares.len());
    let mut io_cost_ms = 0.0;
    let mut response_ms = 0.0;
    let mut total_ios = 0.0;
    let mut total_pages = 0.0;
    for (row, &share) in classes.iter().zip(shares) {
        io_cost_ms += share * row.busy_ms;
        response_ms += share * row.response_ms;
        total_ios += share * row.total_ios;
        total_pages += share * row.pages;
    }
    CandidateCost {
        fragmentation,
        num_fragments,
        io_cost_ms,
        response_ms,
        total_ios,
        total_pages,
        per_query: Vec::new(),
    }
}

/// The WARLOCK cost model: a schema, a system, a bitmap scheme and a
/// weighted query mix, evaluating fragmentation candidates.
#[derive(Debug, Clone)]
pub struct CostModel<'a> {
    schema: &'a StarSchema,
    system: &'a SystemConfig,
    scheme: &'a BitmapScheme,
    mix: &'a QueryMix,
    fact_index: usize,
}

impl<'a> CostModel<'a> {
    /// Creates the model over the primary fact table.
    pub fn new(
        schema: &'a StarSchema,
        system: &'a SystemConfig,
        scheme: &'a BitmapScheme,
        mix: &'a QueryMix,
    ) -> Self {
        Self {
            schema,
            system,
            scheme,
            mix,
            fact_index: 0,
        }
    }

    /// Selects a different fact table.
    ///
    /// # Errors
    ///
    /// Returns a message when `fact_index` does not name a fact table of
    /// the schema. (This used to panic, which let data-dependent input
    /// crash library callers.)
    pub fn with_fact_index(mut self, fact_index: usize) -> Result<Self, String> {
        let available = self.schema.facts().len();
        if fact_index >= available {
            return Err(format!(
                "fact index {fact_index} out of range (schema has {available} fact table(s))"
            ));
        }
        self.fact_index = fact_index;
        Ok(self)
    }

    /// A cheap fingerprint of every input that determines this model's
    /// outputs: schema, system, bitmap scheme, weighted mix and fact
    /// index. Two models with equal fingerprints produce bit-identical
    /// [`CandidateCost`]s for the same candidate.
    ///
    /// The value is only meaningful within one process (it hashes the
    /// `Debug` representations); it exists so sessions can memoize
    /// evaluations across what-if variations without deep comparisons.
    pub fn fingerprint(&self) -> u128 {
        crate::fingerprint128(&format!(
            "{:?}|{:?}|{:?}|{:?}|{}",
            self.schema, self.system, self.scheme, self.mix, self.fact_index
        ))
    }

    /// Like [`CostModel::fingerprint`], but **excluding the mix
    /// weights**: it hashes the schema, system, scheme, fact index and
    /// the mix's classes in mix order, with every share dropped.
    ///
    /// Two models with equal structure fingerprints produce
    /// bit-identical *per-class* costs ([`ClassCost`]) for the same
    /// candidate — the share never reaches the per-class estimator, it
    /// only weights the final accumulation. The advisor's pipeline
    /// cache keys on this so a pure re-weight (the drift detector's
    /// normal case) stays warm, while any structural change — a class
    /// added, dropped, or its predicates edited, a scheme or system
    /// change — miss-keys correctly. Note a re-weight that zeroes out a
    /// class *is* structural: mix construction drops zero-weight
    /// classes, changing the class list.
    pub fn structure_fingerprint(&self) -> u128 {
        use std::fmt::Write;
        let mut input = format!(
            "{:?}|{:?}|{:?}|{}|",
            self.schema, self.system, self.scheme, self.fact_index
        );
        for (class, _) in self.mix.iter() {
            let _ = write!(input, "{class:?};");
        }
        crate::fingerprint128(&input)
    }

    /// The schema the model evaluates against.
    #[inline]
    pub fn schema(&self) -> &StarSchema {
        self.schema
    }

    /// The system configuration.
    #[inline]
    pub fn system(&self) -> &SystemConfig {
        self.system
    }

    /// The bitmap scheme queries are priced against.
    #[inline]
    pub fn scheme(&self) -> &BitmapScheme {
        self.scheme
    }

    /// The weighted query mix.
    #[inline]
    pub fn mix(&self) -> &QueryMix {
        self.mix
    }

    /// The fact table index.
    #[inline]
    pub fn fact_index(&self) -> usize {
        self.fact_index
    }

    /// Builds the precomputed [`CostTables`](crate::CostTables) for this
    /// model (point fragmentations only — pass enumeration range options
    /// to [`CostTables::build`](crate::CostTables::build) directly for
    /// ranged coverage).
    pub fn tables(&self) -> crate::CostTables {
        crate::CostTables::build(self, &[])
    }

    /// Evaluates one candidate: every class of the mix, weighted by share.
    pub fn evaluate(&self, fragmentation: &Fragmentation) -> CandidateCost {
        let layout = FragmentLayout::new(self.schema, fragmentation.clone(), self.fact_index);
        self.evaluate_layout(&layout)
    }

    /// Evaluates a pre-built layout (avoids re-deriving it).
    pub fn evaluate_layout(&self, layout: &FragmentLayout) -> CandidateCost {
        let mut io_cost_ms = 0.0;
        let mut response_ms = 0.0;
        let mut total_ios = 0.0;
        let mut total_pages = 0.0;
        let mut per_query = Vec::with_capacity(self.mix.len());
        for (class, share) in self.mix.iter() {
            let qc = estimate_query(
                self.schema,
                layout,
                self.scheme,
                self.system,
                class,
                self.fact_index,
            );
            io_cost_ms += share * qc.busy_ms;
            response_ms += share * qc.response_ms;
            total_ios += share * qc.total_ios;
            total_pages += share * (qc.fact_pages + qc.bitmap_pages);
            per_query.push(qc);
        }
        CandidateCost {
            fragmentation: layout.fragmentation().clone(),
            num_fragments: layout.num_fragments(),
            io_cost_ms,
            response_ms,
            total_ios,
            total_pages,
            per_query,
        }
    }
}

/// Hashes any input into a 128-bit value via two independently salted
/// passes of the standard hasher. The shared widening primitive behind
/// [`CostModel::fingerprint`] and the advisor's cache keys; only
/// meaningful within one process.
pub fn fingerprint128<H: std::hash::Hash + ?Sized>(input: &H) -> u128 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut lo = DefaultHasher::new();
    input.hash(&mut lo);
    let mut hi = DefaultHasher::new();
    (0xa5a5_5a5au32, input).hash(&mut hi);
    (u128::from(hi.finish()) << 64) | u128::from(lo.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_bitmap::SchemeConfig;
    use warlock_schema::{apb1_like_schema, Apb1Config};
    use warlock_workload::apb1_like_mix;

    struct Fixture {
        schema: StarSchema,
        system: SystemConfig,
        scheme: BitmapScheme,
        mix: QueryMix,
    }

    fn fixture() -> Fixture {
        let schema = apb1_like_schema(Apb1Config::default()).unwrap();
        let mix = apb1_like_mix().unwrap();
        let scheme = BitmapScheme::derive(&schema, &mix, SchemeConfig::default());
        let system = SystemConfig::default_2001(16);
        Fixture {
            schema,
            system,
            scheme,
            mix,
        }
    }

    #[test]
    fn evaluates_all_classes() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let c = model.evaluate(&Fragmentation::from_pairs(&[(2, 2)]).unwrap());
        assert_eq!(c.per_query.len(), 10);
        assert_eq!(c.num_fragments, 24);
        assert!(c.io_cost_ms > 0.0);
        assert!(c.response_ms > 0.0);
        assert!(c.total_ios > 0.0);
        assert!(c.total_pages > 0.0);
        // Weighted totals are convex combinations of per-query values.
        let max_busy = c
            .per_query
            .iter()
            .map(|q| q.busy_ms)
            .fold(f64::MIN, f64::max);
        assert!(c.io_cost_ms <= max_busy + 1e-9);
    }

    #[test]
    fn fragmented_beats_unfragmented_for_star_mix() {
        // The reason MDHF exists: confining queries to fragments must beat
        // scanning the monolithic fact table for the APB-1-like mix.
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let baseline = model.evaluate(&Fragmentation::none());
        let by_month = model.evaluate(&Fragmentation::from_pairs(&[(2, 2)]).unwrap());
        assert!(by_month.response_ms < baseline.response_ms);
    }

    #[test]
    fn multi_dimensional_fragmentation_helps_response() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let one_d = model.evaluate(&Fragmentation::from_pairs(&[(2, 2)]).unwrap());
        let two_d = model.evaluate(&Fragmentation::from_pairs(&[(2, 2), (0, 1)]).unwrap());
        // month × line confines product queries too → better response.
        assert!(
            two_d.response_ms < one_d.response_ms,
            "2-D {} should beat 1-D {}",
            two_d.response_ms,
            one_d.response_ms
        );
    }

    #[test]
    fn with_fact_index_validates() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        assert_eq!(model.with_fact_index(0).unwrap().fact_index(), 0);
    }

    #[test]
    fn bad_fact_index_is_an_error_not_a_panic() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let err = model.with_fact_index(3).unwrap_err();
        assert!(err.contains("fact index 3"), "{err}");
        assert!(err.contains("1 fact table"), "{err}");
    }

    #[test]
    fn model_and_inputs_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CostModel<'static>>();
        assert_send_sync::<CandidateCost>();
        assert_send_sync::<StarSchema>();
        assert_send_sync::<SystemConfig>();
        assert_send_sync::<BitmapScheme>();
        assert_send_sync::<QueryMix>();
    }

    #[test]
    fn fingerprint_tracks_every_input() {
        let f = fixture();
        let base = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix).fingerprint();
        assert_eq!(
            base,
            CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix).fingerprint(),
            "fingerprint must be deterministic"
        );
        let mut other_system = f.system;
        other_system.num_disks += 1;
        assert_ne!(
            base,
            CostModel::new(&f.schema, &other_system, &f.scheme, &f.mix).fingerprint()
        );
        let reduced = f.scheme.without_dimension(warlock_schema::DimensionId(0));
        assert_ne!(
            base,
            CostModel::new(&f.schema, &f.system, &reduced, &f.mix).fingerprint()
        );
    }

    #[test]
    fn evaluate_layout_matches_evaluate() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let frag = Fragmentation::from_pairs(&[(2, 1), (3, 0)]).unwrap();
        let a = model.evaluate(&frag);
        let layout = FragmentLayout::new(&f.schema, frag, 0);
        let b = model.evaluate_layout(&layout);
        assert_eq!(a, b);
    }
}
