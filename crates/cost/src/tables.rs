//! Precomputed per-dimension cost tables.
//!
//! Everything [`estimate_query`](crate::access::estimate_query) derives
//! from the *model* alone — per-class selectivities, bitmap index shapes,
//! prefetch and contention constants — is invariant across an entire
//! chunk of candidates. [`CostTables`] hoists those quantities out of the
//! per-candidate loop: one build per [`CostModel`] fingerprint, then the
//! batch evaluator ([`crate::batch::evaluate_chunk`]) turns each query
//! match into table lookups instead of re-running occupancy statistics
//! per (candidate, class) pair.
//!
//! Every precomputed value is produced by the *same expression sequence*
//! as the scalar path, so batched results are bit-identical to
//! [`CostModel::evaluate_layout`]. Table coverage is an optimization, not
//! a correctness requirement: a fragment cardinality outside the table
//! (possible only for exotic range sizes) falls back to inline
//! computation with identical arithmetic.

use std::sync::Arc;

use warlock_bitmap::IndexKind;
use warlock_fragment::expected_distinct_groups;
use warlock_schema::{DimensionId, LevelId};
use warlock_storage::{DiskParams, PageConfig, PrefetchPolicy};

use crate::model::CostModel;

/// What one predicate contributes to the bitmap-path vector count, for
/// one fragment cardinality on its dimension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BitmapContrib {
    /// Fully resolved by fragment confinement — no vectors read.
    Resolved,
    /// Reads this many bitmap vectors (or encoded slices) per fragment.
    Vectors(f64),
    /// No covering index: the fragment must be scanned.
    Unindexable,
}

/// Match quantities of one predicate against one fragment cardinality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragDimEntry {
    /// Expected fragmentation-attribute values the predicate matches.
    pub matched: f64,
    /// Multiplicative residual-selectivity contribution (1.0 when whole
    /// fragments are covered).
    pub residual_factor: f64,
    /// Bitmap-path contribution of the predicate at this cardinality.
    pub bitmap: BitmapContrib,
}

/// Precomputed quantities for one predicate of one query class.
#[derive(Debug, Clone)]
pub struct PredTable {
    /// The predicated dimension.
    pub dimension: DimensionId,
    /// The predicate level.
    pub level: LevelId,
    /// Number of values the predicate selects.
    pub values: u64,
    /// Cardinality of the predicate level.
    pub query_card: u64,
    /// Covering bitmap index for the predicate, if any.
    pub index: Option<IndexKind>,
    /// Residual factor when the dimension is *not* a fragmentation
    /// attribute: `values / query_card`.
    pub residual_unfragmented: f64,
    /// Bitmap contribution when the dimension is not fragmented.
    pub unfragmented_bitmap: BitmapContrib,
    /// `(fragment cardinality → entry)`, sorted by cardinality.
    by_card: Vec<(u64, FragDimEntry)>,
}

impl PredTable {
    /// The entry for `frag_card`, from the table when covered and computed
    /// inline (identical expressions) otherwise.
    #[inline]
    pub fn entry_for(&self, frag_card: u64) -> FragDimEntry {
        match self.by_card.binary_search_by_key(&frag_card, |e| e.0) {
            Ok(i) => self.by_card[i].1,
            Err(_) => compute_entry(self.values, self.query_card, self.index, frag_card),
        }
    }
}

/// Precomputed quantities for one query class of the mix.
#[derive(Debug, Clone)]
pub struct ClassTable {
    /// The class name (shared into each emitted [`crate::QueryCost`]
    /// by reference-count bump, never a fresh string).
    pub name: Arc<str>,
    /// Workload share of the class.
    pub share: f64,
    /// Expected selected rows: `total_selectivity × fact_rows`.
    pub selected_rows: f64,
    /// Per-predicate tables, in ascending dimension order (the class's
    /// predicate iteration order).
    pub preds: Vec<PredTable>,
    /// Dense dimension → predicate index map (`preds` position), so the
    /// hot matching loop resolves a dimension in O(1).
    pred_by_dim: Vec<Option<u16>>,
}

impl ClassTable {
    /// The predicate table for `dimension`, if the class references it.
    #[inline]
    pub fn pred_for(&self, dimension: DimensionId) -> Option<&PredTable> {
        match self.pred_by_dim.get(usize::from(dimension.0)) {
            Some(&Some(i)) => Some(&self.preds[usize::from(i)]),
            _ => None,
        }
    }
}

/// All model-invariant constants and per-class tables the batch evaluator
/// needs — built once per [`CostModel`] fingerprint, shared by every chunk.
#[derive(Debug, Clone)]
pub struct CostTables {
    /// Fingerprint of the model the tables were derived from.
    pub fingerprint: u128,
    /// Fact rows of the model's fact table.
    pub fact_rows: u64,
    /// Bytes per fact row.
    pub row_bytes: u32,
    /// Page configuration.
    pub page: PageConfig,
    /// Disk parameters.
    pub disk: DiskParams,
    /// Page size in bytes (widened once).
    pub page_bytes: u64,
    /// Prefetch policy for fact fragments.
    pub fact_prefetch: PrefetchPolicy,
    /// Prefetch policy for bitmap vectors.
    pub bitmap_prefetch: PrefetchPolicy,
    /// Number of disks (declustering width).
    pub num_disks: u32,
    /// Total processors of the architecture.
    pub processors: u32,
    /// Architecture overhead factor.
    pub overhead: f64,
    /// Cost of one random page read: `disk.random_ms(1, page_bytes)`.
    pub random_page_ms: f64,
    /// Per-class tables, in mix order.
    pub classes: Vec<ClassTable>,
}

impl CostTables {
    /// Builds the tables for `model`.
    ///
    /// `range_options` mirrors the enumeration config: for every level the
    /// sub-tables cover the plain cardinality plus `cardinality / r` for
    /// each option `r` that divides the level's fan-out — exactly the
    /// effective cardinalities ranged enumeration can produce. Lookups
    /// outside the covered set fall back to inline computation.
    pub fn build(model: &CostModel<'_>, range_options: &[u64]) -> Self {
        let schema = model.schema();
        let system = model.system();
        let scheme = model.scheme();
        let page = system.page;
        let page_bytes = u64::from(page.page_bytes);
        let fact_rows = schema.fact_rows(model.fact_index());
        let classes = model
            .mix()
            .iter()
            .map(|(class, share)| {
                let preds = class
                    .predicates()
                    .iter()
                    .map(|(&dimension, pred)| {
                        let dim = schema.dimension(dimension).expect("validated query");
                        let query_card = dim.cardinality(pred.level).expect("validated query");
                        let n = pred.values;
                        let index = scheme.access_for(schema, dimension, pred.level);
                        let unfragmented_bitmap = match index {
                            None => BitmapContrib::Unindexable,
                            Some(IndexKind::Standard { .. }) => BitmapContrib::Vectors(n as f64),
                            Some(IndexKind::Encoded { slices }) => {
                                BitmapContrib::Vectors(f64::from(slices))
                            }
                        };
                        // Every effective cardinality enumeration can put on
                        // this dimension: each level's cardinality, divided
                        // by each range option that divides its fan-out.
                        let mut cards: Vec<u64> = Vec::new();
                        for (li, level) in dim.levels().iter().enumerate() {
                            let card = level.cardinality();
                            cards.push(card);
                            let level_id = LevelId(li as u16);
                            if let Ok(fanout) = dim.fanout(level_id) {
                                for &r in range_options {
                                    if r > 1 && fanout.is_multiple_of(r) {
                                        cards.push(card / r);
                                    }
                                }
                            }
                        }
                        cards.sort_unstable();
                        cards.dedup();
                        let by_card = cards
                            .into_iter()
                            .map(|card| (card, compute_entry(n, query_card, index, card)))
                            .collect();
                        PredTable {
                            dimension,
                            level: pred.level,
                            values: n,
                            query_card,
                            index,
                            residual_unfragmented: n as f64 / query_card as f64,
                            unfragmented_bitmap,
                            by_card,
                        }
                    })
                    .collect();
                let preds: Vec<PredTable> = preds;
                let mut pred_by_dim = vec![None; schema.num_dimensions()];
                for (i, p) in preds.iter().enumerate() {
                    pred_by_dim[usize::from(p.dimension.0)] = Some(i as u16);
                }
                ClassTable {
                    name: class.name().into(),
                    share,
                    selected_rows: class.selectivity(schema) * fact_rows as f64,
                    preds,
                    pred_by_dim,
                }
            })
            .collect();
        Self {
            fingerprint: model.fingerprint(),
            fact_rows,
            row_bytes: schema.fact_row_bytes(model.fact_index()),
            page,
            disk: system.disk,
            page_bytes,
            fact_prefetch: system.fact_prefetch,
            bitmap_prefetch: system.bitmap_prefetch,
            num_disks: system.num_disks,
            processors: system.architecture.total_processors(),
            overhead: system.architecture.overhead_factor(),
            random_page_ms: system.disk.random_ms(1, page_bytes),
            classes,
        }
    }
}

/// One predicate matched against one fragment cardinality — the exact
/// expression sequence of [`warlock_fragment::QueryMatch::evaluate`] and
/// the bitmap loop of [`crate::access::estimate_query`], factored out so
/// table build and fallback share it.
fn compute_entry(
    n: u64,
    query_card: u64,
    index: Option<IndexKind>,
    frag_card: u64,
) -> FragDimEntry {
    if query_card <= frag_card {
        // Coarser or equal: whole fragments are covered, no residual
        // filtering and no in-fragment bitmap work.
        FragDimEntry {
            matched: n as f64 * (frag_card as f64 / query_card as f64),
            residual_factor: 1.0,
            bitmap: BitmapContrib::Resolved,
        }
    } else {
        let matched = expected_distinct_groups(query_card, frag_card, n);
        let covered_fraction = matched / frag_card as f64;
        let bitmap = match index {
            None => BitmapContrib::Unindexable,
            Some(IndexKind::Standard { .. }) => {
                BitmapContrib::Vectors((n as f64 / matched).max(1.0))
            }
            Some(IndexKind::Encoded { slices }) => BitmapContrib::Vectors(f64::from(slices)),
        };
        FragDimEntry {
            matched,
            residual_factor: (n as f64 / query_card as f64) / covered_fraction,
            bitmap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warlock_bitmap::{BitmapScheme, SchemeConfig};
    use warlock_schema::{apb1_like_schema, Apb1Config, StarSchema};
    use warlock_storage::SystemConfig;
    use warlock_workload::{apb1_like_mix, QueryMix};

    struct Fixture {
        schema: StarSchema,
        system: SystemConfig,
        scheme: BitmapScheme,
        mix: QueryMix,
    }

    fn fixture() -> Fixture {
        let schema = apb1_like_schema(Apb1Config::default()).unwrap();
        let mix = apb1_like_mix().unwrap();
        let scheme = BitmapScheme::derive(&schema, &mix, SchemeConfig::default());
        let system = SystemConfig::default_2001(16);
        Fixture {
            schema,
            system,
            scheme,
            mix,
        }
    }

    #[test]
    fn tables_cover_every_level_cardinality() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let tables = CostTables::build(&model, &[]);
        assert_eq!(tables.classes.len(), f.mix.len());
        assert_eq!(tables.fingerprint, model.fingerprint());
        for (ct, (class, share)) in tables.classes.iter().zip(f.mix.iter()) {
            assert_eq!(&*ct.name, class.name());
            assert_eq!(ct.share, share);
            assert_eq!(ct.preds.len(), class.predicates().len());
            for pt in &ct.preds {
                let dim = f.schema.dimension(pt.dimension).unwrap();
                for level in dim.levels() {
                    let card = level.cardinality();
                    // Covered: entry_for equals a fresh inline computation.
                    let lookup = pt.entry_for(card);
                    let inline = compute_entry(pt.values, pt.query_card, pt.index, card);
                    assert_eq!(lookup, inline);
                }
            }
        }
    }

    #[test]
    fn ranged_coverage_and_fallback_agree() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let with_ranges = CostTables::build(&model, &[2, 3, 5]);
        let without = CostTables::build(&model, &[]);
        for (a, b) in with_ranges.classes.iter().zip(&without.classes) {
            for (pa, pb) in a.preds.iter().zip(&b.preds) {
                // Ranged tables have strictly more coverage, but lookups
                // (table hit vs inline fallback) must agree bit-for-bit.
                assert!(pa.by_card.len() >= pb.by_card.len());
                for &(card, entry) in &pa.by_card {
                    assert_eq!(entry, pb.entry_for(card), "card {card}");
                }
            }
        }
    }

    #[test]
    fn class_constants_match_scalar_sources() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let tables = CostTables::build(&model, &[]);
        let fact_rows = f.schema.fact_rows(0);
        for (ct, (class, _)) in tables.classes.iter().zip(f.mix.iter()) {
            let expect = class.selectivity(&f.schema) * fact_rows as f64;
            assert_eq!(ct.selected_rows.to_bits(), expect.to_bits());
        }
        assert_eq!(
            tables.random_page_ms.to_bits(),
            f.system
                .disk
                .random_ms(1, u64::from(f.system.page.page_bytes))
                .to_bits()
        );
    }
}
