//! Multi-user contention model.
//!
//! The paper's heuristic prefers "fragmentations reducing overall I/O
//! requirements, which is also advantageous with respect to multi-user
//! query processing" — low total device work keeps disk utilization, and
//! therefore queueing delay, low when many queries run concurrently.
//!
//! This module makes that argument quantitative with an open-system M/G/1
//! approximation per disk: at arrival rate λ (queries/s) with a mix whose
//! weighted device demand is `busy_ms` per query spread over `num_disks`
//! disks, per-disk utilization is `ρ = λ · busy_ms / (1000 · disks)`, and
//! the single-user response time inflates by the classic waiting-time
//! factor. The event-driven simulator (`warlock-sim`) provides the exact
//! counterpart; experiment V1 compares the two.

/// Multi-user load description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Query arrival rate in queries per second (all classes combined).
    pub arrivals_per_s: f64,
}

/// Result of the contention model at one load point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionEstimate {
    /// Mean per-disk utilization in `[0, 1)`; ≥ 1 means saturation.
    pub utilization: f64,
    /// Multiplicative response-time inflation over the single-user
    /// estimate (∞ at/beyond saturation).
    pub inflation: f64,
    /// Inflated mean response time in milliseconds.
    pub response_ms: f64,
    /// The largest sustainable arrival rate (queries/s) before saturation.
    pub saturation_rate_per_s: f64,
}

/// Estimates multi-user response inflation for a candidate whose
/// workload-weighted single-user response is `single_user_response_ms` and
/// whose weighted device demand is `busy_ms_per_query`, on `num_disks`
/// disks at the given load.
///
/// Uses the M/M/1-style inflation `1 / (1 − ρ)` per disk, assuming the
/// allocation spreads load evenly (which round-robin and greedy both aim
/// for). Beyond saturation the inflation and response are `f64::INFINITY`.
pub fn contention_estimate(
    single_user_response_ms: f64,
    busy_ms_per_query: f64,
    num_disks: u32,
    load: LoadPoint,
) -> ContentionEstimate {
    assert!(num_disks > 0, "need at least one disk");
    assert!(
        busy_ms_per_query >= 0.0 && single_user_response_ms >= 0.0,
        "costs must be non-negative"
    );
    let capacity_ms_per_s = 1000.0 * f64::from(num_disks);
    let saturation_rate_per_s = if busy_ms_per_query > 0.0 {
        capacity_ms_per_s / busy_ms_per_query
    } else {
        f64::INFINITY
    };
    let utilization = load.arrivals_per_s * busy_ms_per_query / capacity_ms_per_s;
    let (inflation, response_ms) = if utilization >= 1.0 {
        (f64::INFINITY, f64::INFINITY)
    } else {
        let inflation = 1.0 / (1.0 - utilization);
        (inflation, single_user_response_ms * inflation)
    };
    ContentionEstimate {
        utilization,
        inflation,
        response_ms,
        saturation_rate_per_s,
    }
}

/// Sweeps arrival rates from idle to a fraction of saturation, returning
/// `(rate, estimate)` pairs — the load curve the analysis layer plots.
pub fn load_curve(
    single_user_response_ms: f64,
    busy_ms_per_query: f64,
    num_disks: u32,
    points: usize,
    max_utilization: f64,
) -> Vec<(f64, ContentionEstimate)> {
    assert!(points >= 2, "need at least two points");
    assert!(
        (0.0..1.0).contains(&max_utilization),
        "max utilization must be in [0, 1)"
    );
    let capacity_ms_per_s = 1000.0 * f64::from(num_disks);
    let max_rate = if busy_ms_per_query > 0.0 {
        max_utilization * capacity_ms_per_s / busy_ms_per_query
    } else {
        1.0
    };
    (0..points)
        .map(|i| {
            let rate = max_rate * i as f64 / (points - 1) as f64;
            let est = contention_estimate(
                single_user_response_ms,
                busy_ms_per_query,
                num_disks,
                LoadPoint {
                    arrivals_per_s: rate,
                },
            );
            (rate, est)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() <= eps, "{a} !~ {b}");
    }

    #[test]
    fn idle_load_has_no_inflation() {
        let e = contention_estimate(
            100.0,
            500.0,
            16,
            LoadPoint {
                arrivals_per_s: 0.0,
            },
        );
        assert_close(e.utilization, 0.0, 1e-12);
        assert_close(e.inflation, 1.0, 1e-12);
        assert_close(e.response_ms, 100.0, 1e-12);
    }

    #[test]
    fn utilization_math() {
        // 500 ms demand per query, 16 disks = 16 000 ms/s capacity.
        // 16 q/s → 8 000 ms demand → ρ = 0.5 → inflation 2×.
        let e = contention_estimate(
            100.0,
            500.0,
            16,
            LoadPoint {
                arrivals_per_s: 16.0,
            },
        );
        assert_close(e.utilization, 0.5, 1e-12);
        assert_close(e.inflation, 2.0, 1e-12);
        assert_close(e.response_ms, 200.0, 1e-12);
        assert_close(e.saturation_rate_per_s, 32.0, 1e-12);
    }

    #[test]
    fn saturation_is_infinite() {
        let e = contention_estimate(
            100.0,
            500.0,
            16,
            LoadPoint {
                arrivals_per_s: 32.0,
            },
        );
        assert!(e.inflation.is_infinite());
        assert!(e.response_ms.is_infinite());
        assert_close(e.utilization, 1.0, 1e-12);
    }

    #[test]
    fn lower_io_cost_sustains_higher_load() {
        // The paper's heuristic in one assertion: the candidate with half
        // the device demand saturates at twice the arrival rate.
        let cheap = contention_estimate(
            120.0,
            250.0,
            16,
            LoadPoint {
                arrivals_per_s: 0.0,
            },
        );
        let costly = contention_estimate(
            80.0,
            500.0,
            16,
            LoadPoint {
                arrivals_per_s: 0.0,
            },
        );
        assert_close(
            cheap.saturation_rate_per_s,
            2.0 * costly.saturation_rate_per_s,
            1e-9,
        );
        // And at moderate load the cheap candidate can win despite a worse
        // single-user response.
        let load = LoadPoint {
            arrivals_per_s: 28.0,
        };
        let cheap = contention_estimate(120.0, 250.0, 16, load);
        let costly = contention_estimate(80.0, 500.0, 16, load);
        assert!(cheap.response_ms < costly.response_ms);
    }

    #[test]
    fn load_curve_is_monotone() {
        let curve = load_curve(100.0, 500.0, 16, 10, 0.9);
        assert_eq!(curve.len(), 10);
        assert_close(curve[0].0, 0.0, 1e-12);
        for w in curve.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1.response_ms >= w[0].1.response_ms);
        }
        // Last point at 90 % utilization → 10× inflation.
        assert_close(curve[9].1.inflation, 10.0, 1e-6);
    }

    #[test]
    fn zero_cost_query_never_saturates() {
        let e = contention_estimate(
            0.0,
            0.0,
            4,
            LoadPoint {
                arrivals_per_s: 1e9,
            },
        );
        assert!(e.saturation_rate_per_s.is_infinite());
        assert_close(e.utilization, 0.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn curve_needs_points() {
        let _ = load_curve(1.0, 1.0, 1, 1, 0.5);
    }
}
