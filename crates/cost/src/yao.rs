//! Page-hit estimation: how many pages a random row selection touches.

use warlock_fragment::expected_distinct_groups;

/// Yao's formula: expected number of pages touched when selecting `k` rows
/// without replacement from `rows` rows stored in `pages` pages of equal
/// occupancy.
///
/// Exact when `pages` divides `rows`; otherwise falls back to the Cardenas
/// approximation. `k` may be fractional (expected row counts); it is
/// evaluated at the rounded value, clamped to `rows`.
pub fn yao_page_hits(rows: u64, pages: u64, k: f64) -> f64 {
    if rows == 0 || pages == 0 || k <= 0.0 {
        return 0.0;
    }
    let k_int = (k.round() as u64).clamp(1, rows);
    if rows.is_multiple_of(pages) {
        expected_distinct_groups(rows, pages, k_int)
    } else {
        // Clamp to `rows` exactly like the exact branch: selecting more
        // rows than exist cannot touch more pages than selecting them all.
        cardenas_page_hits(pages, k.min(rows as f64))
    }
}

/// Cardenas' approximation: `pages · (1 − (1 − 1/pages)^k)` — selection
/// *with* replacement; a slight underestimate of Yao for small `k`.
pub fn cardenas_page_hits(pages: u64, k: f64) -> f64 {
    if pages == 0 || k <= 0.0 {
        return 0.0;
    }
    let m = pages as f64;
    m * (1.0 - (1.0 - 1.0 / m).powf(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() <= eps, "{a} !~ {b}");
    }

    #[test]
    fn zero_cases() {
        assert_eq!(yao_page_hits(0, 10, 5.0), 0.0);
        assert_eq!(yao_page_hits(100, 0, 5.0), 0.0);
        assert_eq!(yao_page_hits(100, 10, 0.0), 0.0);
        assert_eq!(cardenas_page_hits(0, 5.0), 0.0);
    }

    #[test]
    fn selecting_everything_touches_every_page() {
        assert_close(yao_page_hits(1000, 10, 1000.0), 10.0, 1e-9);
    }

    #[test]
    fn selecting_one_row_touches_one_page() {
        assert_close(yao_page_hits(1000, 10, 1.0), 1.0, 1e-9);
        assert_close(cardenas_page_hits(10, 1.0), 1.0, 1e-9);
    }

    #[test]
    fn yao_is_monotone_in_k() {
        let mut prev = 0.0;
        for k in 0..=200 {
            let h = yao_page_hits(200, 20, k as f64);
            assert!(h >= prev - 1e-12);
            assert!(h <= 20.0 + 1e-12);
            prev = h;
        }
    }

    #[test]
    fn yao_upper_bounds_k_and_pages() {
        for k in [1.0, 5.0, 50.0, 150.0] {
            let h = yao_page_hits(1500, 15, k);
            assert!(h <= k + 1e-9, "hits {h} exceed k {k}");
            assert!(h <= 15.0 + 1e-9);
        }
    }

    #[test]
    fn cardenas_close_to_yao_for_large_pages() {
        // 100 rows/page, many pages: both formulas nearly agree.
        let y = yao_page_hits(100_000, 1000, 500.0);
        let c = cardenas_page_hits(1000, 500.0);
        assert!((y - c).abs() / y < 0.01, "yao {y} vs cardenas {c}");
    }

    #[test]
    fn cardenas_never_exceeds_yao() {
        // With-replacement can only collide more.
        for k in [2.0, 10.0, 100.0, 900.0] {
            let y = yao_page_hits(10_000, 100, k);
            let c = cardenas_page_hits(100, k);
            assert!(c <= y + 1e-9, "k={k}: cardenas {c} > yao {y}");
        }
    }

    #[test]
    fn non_divisible_layout_falls_back() {
        // 1001 rows in 10 pages — Yao precondition fails, Cardenas used.
        let h = yao_page_hits(1001, 10, 5.0);
        assert_close(h, cardenas_page_hits(10, 5.0), 1e-12);
    }

    #[test]
    fn cardenas_fallback_clamps_k_to_rows() {
        // 1001 rows in 10 pages: non-divisible, so the Cardenas fallback
        // runs. Selecting "more rows than exist" must report exactly the
        // hits of selecting every row — the unclamped formula kept
        // climbing past it.
        let all = yao_page_hits(1001, 10, 1001.0);
        for k in [1002.0, 2000.0, 1e6] {
            assert_close(yao_page_hits(1001, 10, k), all, 1e-12);
        }
        // Few rows spread over many pages: hits can never exceed the
        // row count even when k is wildly oversized.
        let h = yao_page_hits(7, 5, 1e9);
        assert!(h <= 7.0 + 1e-9, "hits {h} exceed the 7 rows that exist");
    }

    #[test]
    fn fractional_k_rounds() {
        let a = yao_page_hits(1000, 10, 4.4);
        let b = yao_page_hits(1000, 10, 4.0);
        assert_close(a, b, 1e-12);
        let c = yao_page_hits(1000, 10, 4.6);
        let d = yao_page_hits(1000, 10, 5.0);
        assert_close(c, d, 1e-12);
    }
}
