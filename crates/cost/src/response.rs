//! Declustered response-time estimation.
//!
//! "Fragmentations declustering query hits broadly over many fragments and
//! database pages often enable a high degree of parallelism and small
//! response times, but may lead to a high number of disk I/O thus limiting
//! throughput." (§3.2) — this module prices the parallelism side.

/// Estimates the I/O response time of a query that accesses `fragments`
/// fragments, each costing `per_fragment_ms` of device time, declustered
/// round-robin over `num_disks` disks and processed by `processors`
/// parallel workers with a multiplicative coordination `overhead`.
///
/// Model: accessed fragments spread over `min(fragments, disks)` disks
/// (logical round-robin placement spreads any contiguous run of fragments
/// maximally); each disk serves its fragments sequentially, so the I/O
/// bound is `ceil(fragments / disks_hit) · per_fragment_ms`. Processing
/// capacity bounds the achievable parallelism from the other side:
/// response time can never drop below `total_busy / processors`. The
/// larger bound wins, times the architecture overhead.
pub fn estimated_response_ms(
    fragments: f64,
    per_fragment_ms: f64,
    num_disks: u32,
    processors: u32,
    overhead: f64,
) -> f64 {
    if fragments <= 0.0 || per_fragment_ms <= 0.0 {
        return 0.0;
    }
    let disks = f64::from(num_disks.max(1));
    let disks_hit = fragments.min(disks).max(1.0);
    // Whole fragments queue per disk (ceiling), but `fragments` is an
    // expected value and may be fractional — the wave count must never
    // exceed the total expected work, or a 1.5-fragment query on one disk
    // would be billed two full fragments.
    let waves = (fragments / disks_hit).ceil().min(fragments);
    let rt_io = waves * per_fragment_ms;
    let total_busy = fragments * per_fragment_ms;
    let rt_proc = total_busy / f64::from(processors.max(1));
    rt_io.max(rt_proc) * overhead.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() <= eps, "{a} !~ {b}");
    }

    #[test]
    fn zero_work_is_free() {
        assert_eq!(estimated_response_ms(0.0, 10.0, 4, 4, 1.0), 0.0);
        assert_eq!(estimated_response_ms(5.0, 0.0, 4, 4, 1.0), 0.0);
    }

    #[test]
    fn single_fragment_is_serial() {
        assert_close(estimated_response_ms(1.0, 50.0, 16, 16, 1.0), 50.0, 1e-9);
    }

    #[test]
    fn full_declustering_divides_by_disks() {
        // 16 fragments over 16 disks: one wave.
        assert_close(estimated_response_ms(16.0, 10.0, 16, 16, 1.0), 10.0, 1e-9);
        // 32 fragments over 16 disks: two waves.
        assert_close(estimated_response_ms(32.0, 10.0, 16, 16, 1.0), 20.0, 1e-9);
    }

    #[test]
    fn more_disks_help_until_fragments_run_out() {
        let few_disks = estimated_response_ms(8.0, 10.0, 4, 64, 1.0);
        let enough = estimated_response_ms(8.0, 10.0, 8, 64, 1.0);
        let surplus = estimated_response_ms(8.0, 10.0, 64, 64, 1.0);
        assert!(few_disks > enough);
        assert_close(enough, surplus, 1e-9); // can't go below one wave
    }

    #[test]
    fn processors_cap_parallelism() {
        // 16 fragments, 16 disks, but only 2 processors: 16·10/2 = 80 ms.
        assert_close(estimated_response_ms(16.0, 10.0, 16, 2, 1.0), 80.0, 1e-9);
        // With 16 processors the I/O bound (10 ms) wins.
        assert_close(estimated_response_ms(16.0, 10.0, 16, 16, 1.0), 10.0, 1e-9);
    }

    #[test]
    fn overhead_scales_response() {
        let base = estimated_response_ms(16.0, 10.0, 16, 16, 1.0);
        let sd = estimated_response_ms(16.0, 10.0, 16, 16, 1.05);
        assert_close(sd, base * 1.05, 1e-9);
        // Sub-1.0 overhead is clamped.
        assert_close(estimated_response_ms(16.0, 10.0, 16, 16, 0.5), base, 1e-9);
    }

    #[test]
    fn monotone_in_fragments_for_fixed_per_fragment_cost() {
        let mut prev = 0.0;
        for a in 1..=64 {
            let rt = estimated_response_ms(a as f64, 10.0, 16, 16, 1.0);
            assert!(rt >= prev - 1e-9);
            prev = rt;
        }
    }

    #[test]
    fn never_exceeds_total_busy_time() {
        // Fractional expected fragment counts must not be billed a full
        // extra wave (regression: 1.5 fragments on 1 disk is 1.5× the
        // per-fragment time, not 2×).
        assert_close(estimated_response_ms(1.5, 10.0, 1, 16, 1.0), 15.0, 1e-9);
        for a in [1.0f64, 1.2, 2.5, 7.9, 16.1, 33.3] {
            for disks in [1u32, 2, 7, 16] {
                let rt = estimated_response_ms(a, 10.0, disks, 1024, 1.0);
                assert!(
                    rt <= a * 10.0 + 1e-9,
                    "A={a} disks={disks}: response {rt} exceeds busy {}",
                    a * 10.0
                );
            }
        }
    }
}
