//! Lane-structured costing kernels with runtime-dispatched backends.
//!
//! The batched evaluator ([`evaluate_chunk_with`](crate::batch::evaluate_chunk_with))
//! prices a chunk in two phases per query class: an irregular matching
//! pass (table lookups) and a straight-line arithmetic pass over `f64`
//! columns. This module owns the arithmetic pass — restructured into
//! fixed-width lane blocks of [`LANES`] candidates, operated on only
//! **elementwise** (no cross-lane reduction ever happens in a different
//! order than the scalar path), so results are bit-identical at any lane
//! width *by construction* — plus the lane-batched Yao/Cardenas page-hit
//! evaluation that feeds it.
//!
//! Three interchangeable backends implement the [`CostKernel`] trait:
//!
//! * **scalar** — the reference implementation: the exact per-candidate
//!   expression sequence of the scalar
//!   [`estimate_query`](crate::access::estimate_query) path, branches
//!   and all.
//! * **lanes** — branch-free select form over `[f64; LANES]` blocks,
//!   written so the autovectorizer can keep whole blocks in vector
//!   registers on any architecture.
//! * **avx2** — explicit `std::arch` AVX2 intrinsics (x86_64 only),
//!   selected at runtime via `is_x86_feature_detected!`. Uses separate
//!   multiply and add everywhere (never FMA — fusing changes rounding),
//!   ordered comparisons plus blends for the select form, and
//!   `vroundpd` only for `ceil` (exact). On non-AVX2 hardware the
//!   request falls back cleanly to **lanes**.
//!
//! Backend choice threads through [`AdvisorConfig`] / config files / the
//! CLI as [`KernelChoice`]; `Auto` consults the [`KERNEL_ENV`]
//! environment variable (`WARLOCK_KERNEL=scalar|lanes|avx2`) and then
//! detects the best available backend. Equivalence across all backends
//! is pinned bit-for-bit by the `batched_equivalence` proptests in
//! `xtests`.
//!
//! # Why elementwise blending is bit-safe here
//!
//! The kernels replace `f64::min`/`f64::max` and branches with compare +
//! select. That is only bit-identical when no NaN and no `-0.0` can
//! reach a tie: every input column is a product/sum of non-negative
//! finite quantities (page counts, milliseconds, selectivities in
//! `[0, 1]`), `disks`/`processors` are clamped `>= 1`, and padded tail
//! lanes hold inert zeros — so the domain contains neither, and
//! `vminpd`-style "return b on tie" semantics coincide with
//! `f64::min`/`max` exactly.
//!
//! [`AdvisorConfig`]: https://docs.rs/warlock/latest/warlock/struct.AdvisorConfig.html

use crate::yao::yao_page_hits;

/// Fixed lane width of the blocked kernels. Columns are padded to a
/// multiple of this; AVX2 operates on exactly one block per vector.
pub const LANES: usize = 4;

/// Environment variable overriding the automatic kernel backend choice
/// (only consulted when the configured [`KernelChoice`] is `Auto`).
/// CI uses it to pin a forced-`scalar` lane without editing
/// configurations, mirroring `WARLOCK_CHUNK_SIZE`.
pub const KERNEL_ENV: &str = "WARLOCK_KERNEL";

// ---------------------------------------------------------------------
// Aligned column storage
// ---------------------------------------------------------------------

/// One cache line of column data; the allocation unit of
/// [`AlignedF64Col`].
#[repr(C, align(64))]
#[derive(Debug, Clone, Copy, Default)]
struct CacheLine([f64; 8]);

/// A growable `f64` column whose backing buffer starts on a 64-byte
/// cache-line boundary and is always a whole number of cache lines.
///
/// Because 64 is a multiple of `LANES * 8` bytes, every lane block of a
/// padded column is 32-byte aligned — vector loads never split a cache
/// line. Alignment is a *performance* property, not a safety contract:
/// the kernels use unaligned load instructions and accept any `&[f64]`.
///
/// Dereferences to `[f64]`, so call sites index it like a `Vec<f64>`.
#[derive(Debug, Default)]
pub struct AlignedF64Col {
    buf: Vec<CacheLine>,
    len: usize,
}

impl AlignedF64Col {
    /// An empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all elements, retaining the allocation.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Appends one element.
    pub fn push(&mut self, v: f64) {
        if self.len == self.buf.len() * 8 {
            self.buf.push(CacheLine::default());
        }
        let line = self.len / 8;
        self.buf[line].0[self.len % 8] = v;
        self.len += 1;
    }

    /// Resizes to `n` elements, filling any growth with `fill`.
    pub fn resize(&mut self, n: usize, fill: f64) {
        self.buf.resize(n.div_ceil(8), CacheLine::default());
        while self.len < n {
            let line = self.len / 8;
            self.buf[line].0[self.len % 8] = fill;
            self.len += 1;
        }
        self.len = n;
    }

    /// The live elements as a slice.
    pub fn as_slice(&self) -> &[f64] {
        // SAFETY: `buf` holds at least `len.div_ceil(8)` contiguous
        // `CacheLine`s, each exactly eight `f64`s with no padding
        // (`repr(C)`), so the first `len` `f64`s are initialized and
        // in bounds.
        unsafe { std::slice::from_raw_parts(self.buf.as_ptr().cast::<f64>(), self.len) }
    }

    /// The live elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        // SAFETY: as `as_slice`, plus exclusive access via `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.buf.as_mut_ptr().cast::<f64>(), self.len) }
    }
}

impl std::ops::Deref for AlignedF64Col {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for AlignedF64Col {
    fn deref_mut(&mut self) -> &mut [f64] {
        self.as_mut_slice()
    }
}

// ---------------------------------------------------------------------
// Backend choice and resolution
// ---------------------------------------------------------------------

/// The configuration-facing kernel knob: which costing backend the
/// evaluator should use. Spelled `auto | scalar | lanes | avx2` in
/// config files and on the CLI. Every choice produces bit-identical
/// reports; the knob only trades instruction throughput.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelChoice {
    /// Resolve via the [`KERNEL_ENV`] environment variable if set,
    /// otherwise detect the best backend for this CPU.
    #[default]
    Auto,
    /// The scalar reference path.
    Scalar,
    /// The autovectorizer-friendly lane-array path.
    Lanes,
    /// The explicit AVX2 path; falls back to `lanes` off x86_64 or when
    /// the CPU lacks AVX2.
    Avx2,
}

impl KernelChoice {
    /// The config-file spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Scalar => "scalar",
            Self::Lanes => "lanes",
            Self::Avx2 => "avx2",
        }
    }
}

impl std::fmt::Display for KernelChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for KernelChoice {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Ok(Self::Auto),
            "scalar" => Ok(Self::Scalar),
            "lanes" => Ok(Self::Lanes),
            "avx2" => Ok(Self::Avx2),
            other => Err(format!(
                "unknown kernel `{other}` (expected auto, scalar, lanes or avx2)"
            )),
        }
    }
}

/// A resolved, runnable backend — the outcome of feature detection and
/// overrides applied to a [`KernelChoice`]. Resolve once per run and
/// thread the copy through; resolution reads the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// Scalar reference kernels.
    Scalar,
    /// Lane-array kernels (portable).
    Lanes,
    /// AVX2 intrinsic kernels (x86_64 with AVX2 only).
    Avx2,
}

impl KernelBackend {
    /// Resolves a configured choice to a runnable backend: an explicit
    /// choice wins (with `avx2` degrading to `lanes` when unavailable);
    /// `Auto` consults [`KERNEL_ENV`] and then detects.
    pub fn resolve(choice: KernelChoice) -> Self {
        match choice {
            KernelChoice::Scalar => Self::Scalar,
            KernelChoice::Lanes => Self::Lanes,
            KernelChoice::Avx2 => Self::avx2_or_lanes(),
            KernelChoice::Auto => Self::resolve_auto(),
        }
    }

    fn resolve_auto() -> Self {
        if let Ok(v) = std::env::var(KERNEL_ENV) {
            if let Ok(choice) = v.parse::<KernelChoice>() {
                if choice != KernelChoice::Auto {
                    return Self::resolve(choice);
                }
            }
        }
        Self::detect()
    }

    /// The best backend this CPU supports (ignoring the environment).
    pub fn detect() -> Self {
        Self::avx2_or_lanes()
    }

    fn avx2_or_lanes() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") {
                return Self::Avx2;
            }
        }
        Self::Lanes
    }

    /// The kernel implementation for this backend.
    pub fn kernel(self) -> &'static dyn CostKernel {
        match self {
            Self::Scalar => &ScalarKernel,
            Self::Lanes => &LanesKernel,
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => &Avx2Kernel,
            // Unreachable through `resolve`, but a hand-built value must
            // still run correctly off x86_64.
            #[cfg(not(target_arch = "x86_64"))]
            Self::Avx2 => &LanesKernel,
        }
    }

    /// Stable lowercase name (for logs, benches, reports).
    pub fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Lanes => "lanes",
            Self::Avx2 => "avx2",
        }
    }
}

// ---------------------------------------------------------------------
// Kernel interface
// ---------------------------------------------------------------------

/// Input columns and hoisted per-class scalars of one arithmetic pass.
///
/// All slices have the same padded length (a multiple of [`LANES`] for
/// the blocked backends); padded tail lanes hold inert zeros that
/// produce finite, ignored outputs. The scalar fields are pre-clamped
/// exactly as the scalar path clamps them
/// (`disks = max(num_disks, 1)`, `processors = max(processors, 1)`,
/// `overhead = max(overhead, 1.0)`), so hoisting changes no bits.
#[derive(Debug)]
pub struct CostPassInput<'a> {
    /// Expected fragments accessed per candidate (`A` in the paper).
    pub fragments: &'a [f64],
    /// Yao page hits per fragment; `0.0` wherever a candidate is not
    /// bitmap-indexable for this class.
    pub touched: &'a [f64],
    /// `1.0` where every residual predicate has a covering bitmap,
    /// `0.0` otherwise.
    pub indexable: &'a [f64],
    /// Sequential full-scan time per fragment (ms).
    pub scan_ms: &'a [f64],
    /// Sequential full-scan I/O count per fragment.
    pub scan_ios: &'a [f64],
    /// Fragment size in pages (as `f64`).
    pub fragment_pages: &'a [f64],
    /// Sequential read time of one bitmap vector (ms).
    pub vector_ms: &'a [f64],
    /// Sequential I/O count of one bitmap vector.
    pub vector_ios: &'a [f64],
    /// Bitmap vector size in pages (as `f64`).
    pub vector_pages: &'a [f64],
    /// Bitmap vectors this class reads per fragment.
    pub bitmap_vectors: &'a [f64],
    /// Random page access time (ms).
    pub random_page_ms: f64,
    /// `f64::from(num_disks.max(1))`.
    pub disks: f64,
    /// `f64::from(processors.max(1))`.
    pub processors: f64,
    /// `overhead.max(1.0)`.
    pub overhead: f64,
    /// The class weight multiplying into the accumulators.
    pub share: f64,
}

/// Output and accumulator columns of one arithmetic pass. Same padded
/// length as the inputs. The `out_*` columns are fully overwritten; the
/// `acc_*` columns are `+=`-updated (one term per class, in class
/// order — the exact scalar summation order).
#[derive(Debug)]
pub struct CostPassOutput<'a> {
    /// `1.0` where the scan path wins (or is forced), `0.0` for the
    /// bitmap-fetch path.
    pub out_use_scan: &'a mut [f64],
    /// Chosen per-fragment device time (ms).
    pub out_per_fragment_ms: &'a mut [f64],
    /// Device busy time (ms).
    pub out_busy_ms: &'a mut [f64],
    /// Declustered response time (ms).
    pub out_response_ms: &'a mut [f64],
    /// Fact-table pages read.
    pub out_fact_pages: &'a mut [f64],
    /// Bitmap pages read.
    pub out_bitmap_pages: &'a mut [f64],
    /// Total I/O operations.
    pub out_total_ios: &'a mut [f64],
    /// Mix-weighted busy-time accumulator.
    pub acc_io_ms: &'a mut [f64],
    /// Mix-weighted response-time accumulator.
    pub acc_response_ms: &'a mut [f64],
    /// Mix-weighted I/O-count accumulator.
    pub acc_ios: &'a mut [f64],
    /// Mix-weighted page-count accumulator.
    pub acc_pages: &'a mut [f64],
}

/// One costing backend: the straight-line arithmetic pass over the SoA
/// columns plus the lane-batched Yao page-hit evaluation. All
/// implementations are bit-identical on the evaluator's input domain;
/// see the module docs for the argument.
pub trait CostKernel: Sync {
    /// Stable lowercase backend name.
    fn name(&self) -> &'static str;

    /// Runs the arithmetic pass for one query class over all (padded)
    /// candidates. Every column of `inp` and `out` must share one
    /// length; blocked backends additionally require it to be a
    /// multiple of [`LANES`].
    fn cost_pass(&self, inp: &CostPassInput<'_>, out: &mut CostPassOutput<'_>);

    /// Evaluates `hits[j] = yao_page_hits(rows[j], pages[j], k[j])` for
    /// a gathered block of memo misses. Elementwise per lane — entries
    /// are independent, so any evaluation order is bit-identical.
    /// Padded tail entries use `rows = 0` (inert: yields `0.0`).
    fn yao_pass(&self, rows: &[u64], pages: &[u64], k: &[f64], hits: &mut [f64]) {
        yao_pass_lanes(rows, pages, k, hits);
    }
}

// ---------------------------------------------------------------------
// Scalar backend (reference)
// ---------------------------------------------------------------------

/// The reference backend: the exact expression sequence (branches and
/// all) of the scalar `estimate_query` path, one candidate at a time.
struct ScalarKernel;

impl CostKernel for ScalarKernel {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn cost_pass(&self, inp: &CostPassInput<'_>, out: &mut CostPassOutput<'_>) {
        let n = inp.fragments.len();
        for i in 0..n {
            let fragments = inp.fragments[i];
            let touched = inp.touched[i];
            let indexable = inp.indexable[i] != 0.0;
            let fetch_ms = touched * inp.random_page_ms;
            let bitmap_ms = inp.bitmap_vectors[i] * inp.vector_ms[i] + fetch_ms;
            let use_scan = !indexable || inp.scan_ms[i] <= bitmap_ms;
            let (per_fragment_ms, ios_pf, fact_pages_pf, bitmap_pages_pf) = if use_scan {
                (inp.scan_ms[i], inp.scan_ios[i], inp.fragment_pages[i], 0.0)
            } else {
                let bitmap_ios = inp.bitmap_vectors[i] * inp.vector_ios[i] + touched;
                let bitmap_pages_pf = inp.bitmap_vectors[i] * inp.vector_pages[i];
                (bitmap_ms, bitmap_ios, touched, bitmap_pages_pf)
            };
            let busy_ms = fragments * per_fragment_ms;
            let response_ms = if fragments <= 0.0 || per_fragment_ms <= 0.0 {
                0.0
            } else {
                let disks_hit = fragments.min(inp.disks).max(1.0);
                let waves = (fragments / disks_hit).ceil().min(fragments);
                let rt_io = waves * per_fragment_ms;
                let total_busy = fragments * per_fragment_ms;
                let rt_proc = total_busy / inp.processors;
                rt_io.max(rt_proc) * inp.overhead
            };
            let fact_pages = fragments * fact_pages_pf;
            let bitmap_pages = fragments * bitmap_pages_pf;
            let total_ios = fragments * ios_pf;
            out.out_use_scan[i] = if use_scan { 1.0 } else { 0.0 };
            out.out_per_fragment_ms[i] = per_fragment_ms;
            out.out_busy_ms[i] = busy_ms;
            out.out_response_ms[i] = response_ms;
            out.out_fact_pages[i] = fact_pages;
            out.out_bitmap_pages[i] = bitmap_pages;
            out.out_total_ios[i] = total_ios;
            out.acc_io_ms[i] += inp.share * busy_ms;
            out.acc_response_ms[i] += inp.share * response_ms;
            out.acc_ios[i] += inp.share * total_ios;
            out.acc_pages[i] += inp.share * (fact_pages + bitmap_pages);
        }
    }

    fn yao_pass(&self, rows: &[u64], pages: &[u64], k: &[f64], hits: &mut [f64]) {
        for j in 0..rows.len() {
            hits[j] = yao_page_hits(rows[j], pages[j], k[j]);
        }
    }
}

// ---------------------------------------------------------------------
// Lane-array backend (portable, autovectorizer-friendly)
// ---------------------------------------------------------------------

/// Select-form `min`: identical to `f64::min` for non-NaN inputs
/// without a negative-zero tie — the kernels' whole domain.
#[inline(always)]
fn sel_min(a: f64, b: f64) -> f64 {
    if a < b {
        a
    } else {
        b
    }
}

/// Select-form `max`; same domain argument as [`sel_min`].
#[inline(always)]
fn sel_max(a: f64, b: f64) -> f64 {
    if a > b {
        a
    } else {
        b
    }
}

/// Branch-free lane-array backend: processes `[f64; LANES]` blocks with
/// purely elementwise compare + select, the shape LLVM turns into
/// `vcmppd`/`vblendvpd` sequences on its own.
struct LanesKernel;

impl CostKernel for LanesKernel {
    fn name(&self) -> &'static str {
        "lanes"
    }

    fn cost_pass(&self, inp: &CostPassInput<'_>, out: &mut CostPassOutput<'_>) {
        let n = inp.fragments.len();
        debug_assert_eq!(n % LANES, 0, "blocked kernels require padded columns");
        let mut base = 0;
        while base < n {
            let mut frag = [0.0f64; LANES];
            let mut touched = [0.0f64; LANES];
            let mut scan_ms = [0.0f64; LANES];
            let mut scan_ios = [0.0f64; LANES];
            let mut fpages = [0.0f64; LANES];
            let mut vms = [0.0f64; LANES];
            let mut vios = [0.0f64; LANES];
            let mut vpages = [0.0f64; LANES];
            let mut bv = [0.0f64; LANES];
            let mut idx = [0.0f64; LANES];
            let block = base..base + LANES;
            frag.copy_from_slice(&inp.fragments[block.clone()]);
            touched.copy_from_slice(&inp.touched[block.clone()]);
            scan_ms.copy_from_slice(&inp.scan_ms[block.clone()]);
            scan_ios.copy_from_slice(&inp.scan_ios[block.clone()]);
            fpages.copy_from_slice(&inp.fragment_pages[block.clone()]);
            vms.copy_from_slice(&inp.vector_ms[block.clone()]);
            vios.copy_from_slice(&inp.vector_ios[block.clone()]);
            vpages.copy_from_slice(&inp.vector_pages[block.clone()]);
            bv.copy_from_slice(&inp.bitmap_vectors[block.clone()]);
            idx.copy_from_slice(&inp.indexable[block]);
            let mut bitmap_ms = [0.0f64; LANES];
            let mut use_scan = [false; LANES];
            for l in 0..LANES {
                // Separate mul + add on purpose: fusing would change
                // rounding vs the scalar reference.
                bitmap_ms[l] = bv[l] * vms[l] + touched[l] * inp.random_page_ms;
                use_scan[l] = idx[l] == 0.0 || scan_ms[l] <= bitmap_ms[l];
            }
            let mut pf = [0.0f64; LANES];
            let mut ios_pf = [0.0f64; LANES];
            let mut fact_pf = [0.0f64; LANES];
            let mut bpages_pf = [0.0f64; LANES];
            for l in 0..LANES {
                pf[l] = if use_scan[l] {
                    scan_ms[l]
                } else {
                    bitmap_ms[l]
                };
                ios_pf[l] = if use_scan[l] {
                    scan_ios[l]
                } else {
                    bv[l] * vios[l] + touched[l]
                };
                fact_pf[l] = if use_scan[l] { fpages[l] } else { touched[l] };
                bpages_pf[l] = if use_scan[l] { 0.0 } else { bv[l] * vpages[l] };
            }
            let mut busy = [0.0f64; LANES];
            let mut resp = [0.0f64; LANES];
            for l in 0..LANES {
                busy[l] = frag[l] * pf[l];
                let disks_hit = sel_max(sel_min(frag[l], inp.disks), 1.0);
                let waves = sel_min((frag[l] / disks_hit).ceil(), frag[l]);
                let rt_io = waves * pf[l];
                let rt_proc = busy[l] / inp.processors;
                let expr = sel_max(rt_io, rt_proc) * inp.overhead;
                resp[l] = if frag[l] > 0.0 && pf[l] > 0.0 {
                    expr
                } else {
                    0.0
                };
            }
            for l in 0..LANES {
                let i = base + l;
                let fact_pages = frag[l] * fact_pf[l];
                let bitmap_pages = frag[l] * bpages_pf[l];
                let total_ios = frag[l] * ios_pf[l];
                out.out_use_scan[i] = if use_scan[l] { 1.0 } else { 0.0 };
                out.out_per_fragment_ms[i] = pf[l];
                out.out_busy_ms[i] = busy[l];
                out.out_response_ms[i] = resp[l];
                out.out_fact_pages[i] = fact_pages;
                out.out_bitmap_pages[i] = bitmap_pages;
                out.out_total_ios[i] = total_ios;
                out.acc_io_ms[i] += inp.share * busy[l];
                out.acc_response_ms[i] += inp.share * resp[l];
                out.acc_ios[i] += inp.share * total_ios;
                out.acc_pages[i] += inp.share * (fact_pages + bitmap_pages);
            }
            base += LANES;
        }
    }
}

/// The shared lane-blocked Yao pass: classification, rounding and
/// clamping run per lane; the Cardenas `m · (1 − (1 − 1/m)^k)` scaffold
/// is elementwise over the block; the transcendental `powf` and the
/// exact-Yao product recurrence stay per element (they are inherently
/// sequential per lane and dominate regardless of ISA — which is also
/// why the AVX2 backend shares this implementation).
fn yao_pass_lanes(rows: &[u64], pages: &[u64], k: &[f64], hits: &mut [f64]) {
    let n = rows.len();
    debug_assert_eq!(n % LANES, 0, "blocked kernels require padded miss arrays");
    let mut base = 0;
    while base < n {
        let mut cardenas = [false; LANES];
        let mut m = [1.0f64; LANES];
        let mut e = [0.0f64; LANES];
        for l in 0..LANES {
            let (r, p, kv) = (rows[base + l], pages[base + l], k[base + l]);
            if r == 0 || p == 0 || kv <= 0.0 {
                hits[base + l] = 0.0;
            } else if r.is_multiple_of(p) {
                let k_int = (kv.round() as u64).clamp(1, r);
                hits[base + l] = warlock_fragment::expected_distinct_groups(r, p, k_int);
            } else {
                cardenas[l] = true;
                m[l] = p as f64;
                e[l] = kv.min(r as f64);
            }
        }
        let mut base_pow = [0.0f64; LANES];
        let mut pw = [0.0f64; LANES];
        for l in 0..LANES {
            base_pow[l] = 1.0 - 1.0 / m[l];
        }
        for l in 0..LANES {
            pw[l] = base_pow[l].powf(e[l]);
        }
        for l in 0..LANES {
            if cardenas[l] {
                hits[base + l] = m[l] * (1.0 - pw[l]);
            }
        }
        base += LANES;
    }
}

// ---------------------------------------------------------------------
// AVX2 backend (x86_64)
// ---------------------------------------------------------------------

/// Explicit AVX2 backend. Constructed only behind
/// `is_x86_feature_detected!("avx2")` (see [`KernelBackend::resolve`]).
#[cfg(target_arch = "x86_64")]
struct Avx2Kernel;

#[cfg(target_arch = "x86_64")]
impl CostKernel for Avx2Kernel {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn cost_pass(&self, inp: &CostPassInput<'_>, out: &mut CostPassOutput<'_>) {
        // SAFETY: `Avx2Kernel` is only reachable through
        // `KernelBackend::kernel`, whose `Avx2` value is only produced
        // by `resolve` after `is_x86_feature_detected!("avx2")`.
        unsafe { avx2_cost_pass(inp, out) }
    }
}

/// The AVX2 arithmetic pass: one 4-lane block per iteration, separate
/// `vmulpd` + `vaddpd` (never FMA), ordered compares + `vblendvpd` for
/// the selects, `vroundpd`-based `ceil` (exact), and mask-AND for the
/// zero-response early-out (`x & 0 == +0.0`, the scalar early-return
/// value).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn avx2_cost_pass(inp: &CostPassInput<'_>, out: &mut CostPassOutput<'_>) {
    use std::arch::x86_64::*;

    let n = inp.fragments.len();
    debug_assert_eq!(n % LANES, 0, "blocked kernels require padded columns");
    let zero = _mm256_setzero_pd();
    let one = _mm256_set1_pd(1.0);
    let rpms = _mm256_set1_pd(inp.random_page_ms);
    let disks = _mm256_set1_pd(inp.disks);
    let procs = _mm256_set1_pd(inp.processors);
    let ovh = _mm256_set1_pd(inp.overhead);
    let share = _mm256_set1_pd(inp.share);

    let mut i = 0;
    while i < n {
        let frag = _mm256_loadu_pd(inp.fragments.as_ptr().add(i));
        let touched = _mm256_loadu_pd(inp.touched.as_ptr().add(i));
        let idx = _mm256_loadu_pd(inp.indexable.as_ptr().add(i));
        let scan_ms = _mm256_loadu_pd(inp.scan_ms.as_ptr().add(i));
        let scan_ios = _mm256_loadu_pd(inp.scan_ios.as_ptr().add(i));
        let fpages = _mm256_loadu_pd(inp.fragment_pages.as_ptr().add(i));
        let vms = _mm256_loadu_pd(inp.vector_ms.as_ptr().add(i));
        let vios = _mm256_loadu_pd(inp.vector_ios.as_ptr().add(i));
        let vpages = _mm256_loadu_pd(inp.vector_pages.as_ptr().add(i));
        let bv = _mm256_loadu_pd(inp.bitmap_vectors.as_ptr().add(i));

        // bitmap_ms = bv·vector_ms + touched·random_page_ms (unfused).
        let fetch_ms = _mm256_mul_pd(touched, rpms);
        let bitmap_ms = _mm256_add_pd(_mm256_mul_pd(bv, vms), fetch_ms);
        // use_scan = (indexable == 0) | (scan_ms <= bitmap_ms)
        let not_idx = _mm256_cmp_pd::<_CMP_EQ_OQ>(idx, zero);
        let scan_le = _mm256_cmp_pd::<_CMP_LE_OQ>(scan_ms, bitmap_ms);
        let scan_mask = _mm256_or_pd(not_idx, scan_le);
        // Both arms are always finite; select per lane.
        let bitmap_ios = _mm256_add_pd(_mm256_mul_pd(bv, vios), touched);
        let bitmap_pages_pf = _mm256_mul_pd(bv, vpages);
        let pf = _mm256_blendv_pd(bitmap_ms, scan_ms, scan_mask);
        let ios_pf = _mm256_blendv_pd(bitmap_ios, scan_ios, scan_mask);
        let fact_pf = _mm256_blendv_pd(touched, fpages, scan_mask);
        let bpages_pf = _mm256_blendv_pd(bitmap_pages_pf, zero, scan_mask);

        let busy = _mm256_mul_pd(frag, pf);
        // Inlined `estimated_response_ms`, elementwise. min/max
        // intrinsics match `f64::min`/`max` on this NaN-free,
        // negative-zero-free domain.
        let disks_hit = _mm256_max_pd(_mm256_min_pd(frag, disks), one);
        let waves = _mm256_min_pd(_mm256_ceil_pd(_mm256_div_pd(frag, disks_hit)), frag);
        let rt_io = _mm256_mul_pd(waves, pf);
        let rt_proc = _mm256_div_pd(busy, procs);
        let resp_expr = _mm256_mul_pd(_mm256_max_pd(rt_io, rt_proc), ovh);
        // Zero-work early-out: response is exactly +0.0 unless both
        // fragments > 0 and per-fragment time > 0.
        let live = _mm256_and_pd(
            _mm256_cmp_pd::<_CMP_GT_OQ>(frag, zero),
            _mm256_cmp_pd::<_CMP_GT_OQ>(pf, zero),
        );
        let resp = _mm256_and_pd(resp_expr, live);

        let fact_pages = _mm256_mul_pd(frag, fact_pf);
        let bitmap_pages = _mm256_mul_pd(frag, bpages_pf);
        let total_ios = _mm256_mul_pd(frag, ios_pf);

        _mm256_storeu_pd(
            out.out_use_scan.as_mut_ptr().add(i),
            _mm256_and_pd(one, scan_mask),
        );
        _mm256_storeu_pd(out.out_per_fragment_ms.as_mut_ptr().add(i), pf);
        _mm256_storeu_pd(out.out_busy_ms.as_mut_ptr().add(i), busy);
        _mm256_storeu_pd(out.out_response_ms.as_mut_ptr().add(i), resp);
        _mm256_storeu_pd(out.out_fact_pages.as_mut_ptr().add(i), fact_pages);
        _mm256_storeu_pd(out.out_bitmap_pages.as_mut_ptr().add(i), bitmap_pages);
        _mm256_storeu_pd(out.out_total_ios.as_mut_ptr().add(i), total_ios);

        let acc = |col: &mut [f64], term: __m256d| {
            let p = col.as_mut_ptr().add(i);
            _mm256_storeu_pd(p, _mm256_add_pd(_mm256_loadu_pd(p), term));
        };
        acc(out.acc_io_ms, _mm256_mul_pd(share, busy));
        acc(out.acc_response_ms, _mm256_mul_pd(share, resp));
        acc(out.acc_ios, _mm256_mul_pd(share, total_ios));
        acc(
            out.acc_pages,
            _mm256_mul_pd(share, _mm256_add_pd(fact_pages, bitmap_pages)),
        );

        i += LANES;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream (splitmix64) for synthesizing
    /// kernel inputs without a dev-dependency.
    struct Mix(u64);
    impl Mix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        /// Uniform-ish in `[0, hi)`.
        fn f(&mut self, hi: f64) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * hi
        }
    }

    fn synth_input(seed: u64, n: usize) -> Vec<Vec<f64>> {
        let mut rng = Mix(seed);
        let mut cols: Vec<Vec<f64>> = (0..10).map(|_| Vec::with_capacity(n)).collect();
        for _ in 0..n {
            cols[0].push((rng.f(500.0) + 1.0).floor()); // fragments
            let indexable = !rng.next_u64().is_multiple_of(4);
            cols[2].push(if indexable { 1.0 } else { 0.0 });
            cols[1].push(if indexable { rng.f(200.0) } else { 0.0 }); // touched
            cols[3].push(rng.f(50.0)); // scan_ms
            cols[4].push((rng.f(100.0) + 1.0).floor()); // scan_ios
            cols[5].push((rng.f(4000.0) + 1.0).floor()); // fragment_pages
            cols[6].push(rng.f(3.0)); // vector_ms
            cols[7].push((rng.f(8.0) + 1.0).floor()); // vector_ios
            cols[8].push((rng.f(64.0) + 1.0).floor()); // vector_pages
            cols[9].push(rng.f(4.0)); // bitmap_vectors
        }
        cols
    }

    fn run_backend(backend: KernelBackend, cols: &[Vec<f64>], share: f64) -> Vec<Vec<f64>> {
        let n = cols[0].len();
        let inp = CostPassInput {
            fragments: &cols[0],
            touched: &cols[1],
            indexable: &cols[2],
            scan_ms: &cols[3],
            scan_ios: &cols[4],
            fragment_pages: &cols[5],
            vector_ms: &cols[6],
            vector_ios: &cols[7],
            vector_pages: &cols[8],
            bitmap_vectors: &cols[9],
            random_page_ms: 10.3,
            disks: 16.0,
            processors: 16.0,
            overhead: 1.05,
            share,
        };
        let mut outs: Vec<Vec<f64>> = vec![vec![0.0; n]; 7];
        // Accumulators pre-seeded with a prior-class term, to check the
        // += path too.
        let mut accs: Vec<Vec<f64>> = (0..4)
            .map(|c| (0..n).map(|i| (c * n + i) as f64 * 0.5).collect())
            .collect();
        {
            let (o0, rest) = outs.split_at_mut(1);
            let (o1, rest) = rest.split_at_mut(1);
            let (o2, rest) = rest.split_at_mut(1);
            let (o3, rest) = rest.split_at_mut(1);
            let (o4, rest) = rest.split_at_mut(1);
            let (o5, o6) = rest.split_at_mut(1);
            let (a0, arest) = accs.split_at_mut(1);
            let (a1, arest) = arest.split_at_mut(1);
            let (a2, a3) = arest.split_at_mut(1);
            let mut out = CostPassOutput {
                out_use_scan: &mut o0[0],
                out_per_fragment_ms: &mut o1[0],
                out_busy_ms: &mut o2[0],
                out_response_ms: &mut o3[0],
                out_fact_pages: &mut o4[0],
                out_bitmap_pages: &mut o5[0],
                out_total_ios: &mut o6[0],
                acc_io_ms: &mut a0[0],
                acc_response_ms: &mut a1[0],
                acc_ios: &mut a2[0],
                acc_pages: &mut a3[0],
            };
            backend.kernel().cost_pass(&inp, &mut out);
        }
        outs.extend(accs);
        outs
    }

    #[test]
    fn lane_backends_match_scalar_bit_for_bit() {
        for seed in 0..8u64 {
            let cols = synth_input(seed, 64);
            let reference = run_backend(KernelBackend::Scalar, &cols, 0.37);
            for backend in [KernelBackend::Lanes, KernelBackend::detect()] {
                let got = run_backend(backend, &cols, 0.37);
                for (c, (a, b)) in reference.iter().zip(&got).enumerate() {
                    for i in 0..a.len() {
                        assert_eq!(
                            a[i].to_bits(),
                            b[i].to_bits(),
                            "seed {seed} backend {} column {c} row {i}: {} != {}",
                            backend.name(),
                            a[i],
                            b[i],
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn yao_pass_matches_elementwise_reference() {
        let mut rng = Mix(7);
        let mut rows = Vec::new();
        let mut pages = Vec::new();
        let mut k = Vec::new();
        for _ in 0..64 {
            // Mix exact-Yao (divisible) and Cardenas (non-divisible)
            // shapes, plus degenerate zeros.
            let p = rng.next_u64() % 50;
            let r = match rng.next_u64() % 3 {
                0 => p * (1 + rng.next_u64() % 40), // divisible
                1 => p * 7 + 3,                     // non-divisible
                _ => 0,
            };
            rows.push(r);
            pages.push(p);
            k.push(rng.f(300.0) - 1.0);
        }
        let mut got = vec![0.0; 64];
        for backend in [
            KernelBackend::Scalar,
            KernelBackend::Lanes,
            KernelBackend::detect(),
        ] {
            backend.kernel().yao_pass(&rows, &pages, &k, &mut got);
            for j in 0..64 {
                let want = yao_page_hits(rows[j], pages[j], k[j]);
                assert_eq!(
                    got[j].to_bits(),
                    want.to_bits(),
                    "backend {} j={j}",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn choice_parses_and_displays() {
        for (s, c) in [
            ("auto", KernelChoice::Auto),
            ("scalar", KernelChoice::Scalar),
            ("lanes", KernelChoice::Lanes),
            ("avx2", KernelChoice::Avx2),
        ] {
            assert_eq!(s.parse::<KernelChoice>().unwrap(), c);
            assert_eq!(c.to_string(), s);
            assert_eq!(c.as_str().parse::<KernelChoice>().unwrap(), c);
        }
        assert_eq!(
            "  AVX2 ".parse::<KernelChoice>().unwrap(),
            KernelChoice::Avx2
        );
        assert!("sse9".parse::<KernelChoice>().is_err());
    }

    #[test]
    fn explicit_choices_resolve_cleanly() {
        assert_eq!(
            KernelBackend::resolve(KernelChoice::Scalar),
            KernelBackend::Scalar
        );
        assert_eq!(
            KernelBackend::resolve(KernelChoice::Lanes),
            KernelBackend::Lanes
        );
        // avx2 resolves to itself where supported and degrades to
        // lanes everywhere else — never an error.
        let avx2 = KernelBackend::resolve(KernelChoice::Avx2);
        assert!(matches!(avx2, KernelBackend::Avx2 | KernelBackend::Lanes));
        assert_eq!(avx2, KernelBackend::detect());
        // Backend names are stable.
        for b in [KernelBackend::Scalar, KernelBackend::Lanes, avx2] {
            assert_eq!(b.kernel().name(), b.name());
        }
    }

    #[test]
    fn aligned_column_is_cache_line_aligned() {
        let mut col = AlignedF64Col::new();
        assert!(col.is_empty());
        for i in 0..37 {
            col.push(i as f64);
        }
        assert_eq!(col.len(), 37);
        assert_eq!(col.as_slice().as_ptr() as usize % 64, 0);
        for i in 0..37 {
            assert_eq!(col[i], i as f64);
        }
        col.resize(40, -1.0);
        assert_eq!(col.len(), 40);
        assert_eq!(&col[37..], &[-1.0, -1.0, -1.0]);
        // Shrink keeps the prefix; regrow refills with the new value.
        col.resize(2, 9.0);
        assert_eq!(col.as_slice(), &[0.0, 1.0]);
        col.resize(4, 7.0);
        assert_eq!(col.as_slice(), &[0.0, 1.0, 7.0, 7.0]);
        col.clear();
        assert!(col.is_empty());
        col.push(5.0);
        assert_eq!(col.as_slice(), &[5.0]);
    }
}
