//! Batched candidate costing in structure-of-arrays layout.
//!
//! [`ChunkBatch`] accumulates a chunk of candidates as flat columns
//! (fragment counts, per-candidate page geometry, per-class match
//! results), and [`evaluate_chunk`] prices all of them against a
//! [`CostTables`] in two phases per query class: an irregular matching
//! pass that resolves predicates through the precomputed tables, then a
//! straight-line arithmetic pass over the `f64` columns. The expression
//! sequence per (candidate, class) is exactly the scalar
//! [`estimate_query`](crate::access::estimate_query) path, so batched
//! results are bit-identical to [`CostModel::evaluate_layout`]
//! (crate::CostModel::evaluate_layout) — pinned by the
//! `batched_equivalence` proptest in `xtests`.
//!
//! Compared to the scalar path, a chunk of N candidates × C classes
//! performs the class-independent geometry (Yao/Cardenas inputs, prefetch
//! granules, sequential-scan pricing) once per candidate instead of C
//! times, resolves per-dimension occupancy statistics by table lookup
//! instead of recomputation, and memoizes the Yao page-hit curve — both
//! across classes that share a residual selectivity within one candidate
//! and across candidates/chunks through a persistent exact-argument memo
//! (`yao_page_hits` is a pure function, so identical arguments reproduce
//! identical bits).

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use warlock_bitmap::estimate;
use warlock_fragment::{FragmentLayout, Fragmentation, LayoutScratch};
use warlock_schema::DimensionId;

use crate::access::{AccessPath, QueryCost};
use crate::model::CandidateCost;
use crate::prefetch::effective_prefetch;
use crate::response::estimated_response_ms;
use crate::tables::{BitmapContrib, CostTables};
use crate::yao::yao_page_hits;

/// How much per-class detail [`evaluate_chunk_with`] materializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerQueryDetail {
    /// Materialize the full per-class [`QueryCost`] rows.
    Full,
    /// Leave `per_query` empty. All aggregate fields of the returned
    /// [`CandidateCost`]s are still bit-identical to the scalar path —
    /// only the per-class detail rows are skipped. The ranking pipeline
    /// uses this and re-derives detail for the final ranked handful.
    Omit,
}

/// Entry cap of the persistent Yao memo — far above what any realistic
/// workload produces, purely a bound against pathological key churn.
const YAO_MEMO_CAP: usize = 1 << 20;

/// Mixes the three 64-bit key words of the Yao memo directly — the keys
/// are already high-entropy (cardinalities and `f64` bit patterns), so a
/// multiplicative mix beats SipHash by an order of magnitude here.
#[derive(Debug, Default)]
struct YaoKeyHasher(u64);

impl std::hash::Hasher for YaoKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 ^= self.0 >> 29;
    }
}

/// A chunk of candidates staged for batched evaluation, stored as flat
/// columns. Reusable: [`evaluate_chunk`] drains it back to empty with all
/// column capacity retained, so one `ChunkBatch` per worker amortizes to
/// zero steady-state allocation (bar the output itself).
#[derive(Debug, Default)]
pub struct ChunkBatch {
    // --- Per-candidate input columns -----------------------------------
    fragmentations: Vec<Fragmentation>,
    num_fragments: Vec<u64>,
    /// Prefix offsets into `attr_dims`/`attr_cards`; `len() + 1` entries.
    attr_offsets: Vec<u32>,
    attr_dims: Vec<DimensionId>,
    attr_cards: Vec<u64>,
    // --- Class-independent geometry (stage A) --------------------------
    frag_rows_avg: Vec<f64>,
    frag_rows: Vec<u64>,
    fragment_pages: Vec<u64>,
    fact_prefetch: Vec<u32>,
    scan_ms: Vec<f64>,
    scan_ios: Vec<f64>,
    vector_pages: Vec<u64>,
    bitmap_prefetch: Vec<u32>,
    vector_ms: Vec<f64>,
    vector_ios: Vec<f64>,
    // --- Per-class working columns -------------------------------------
    expected_fragments: Vec<f64>,
    residual: Vec<f64>,
    bitmap_vectors: Vec<f64>,
    indexable: Vec<bool>,
    attr_bitmap: Vec<BitmapContrib>,
    // --- Yao memo: one entry per candidate, keyed on the exact bit
    // pattern of the residual row count (classes sharing a residual
    // selectivity share the curve point).
    yao_k: Vec<f64>,
    yao_hits: Vec<f64>,
    // --- Persistent Yao memo, keyed on the exact `yao_page_hits`
    // arguments `(rows, pages, k.to_bits())`. Never cleared: the
    // function is pure, so an entry stays valid across chunks, models
    // and sessions sharing this batch (one per worker thread).
    yao_memo: HashMap<(u64, u64, u64), f64, BuildHasherDefault<YaoKeyHasher>>,
    // --- Output accumulators -------------------------------------------
    acc_io_ms: Vec<f64>,
    acc_response_ms: Vec<f64>,
    acc_ios: Vec<f64>,
    acc_pages: Vec<f64>,
    per_query: Vec<Vec<QueryCost>>,
}

impl ChunkBatch {
    /// An empty batch; columns grow on first use and keep their capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of candidates staged.
    pub fn len(&self) -> usize {
        self.fragmentations.len()
    }

    /// Whether the batch holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.fragmentations.is_empty()
    }

    /// Stages one candidate, consuming its layout: the layout's buffers
    /// return to `scratch` and its fragmentation moves into the batch
    /// (re-emerging in the output [`CandidateCost`] without a clone).
    pub fn push(&mut self, layout: FragmentLayout, scratch: &mut LayoutScratch) {
        if self.attr_offsets.is_empty() {
            self.attr_offsets.push(0);
        }
        self.num_fragments.push(layout.num_fragments());
        for (attr, &card) in layout
            .fragmentation()
            .attributes()
            .iter()
            .zip(layout.radices())
        {
            self.attr_dims.push(attr.dimension);
            self.attr_cards.push(card);
        }
        self.attr_offsets.push(self.attr_dims.len() as u32);
        let fragmentation = layout.recycle(scratch);
        self.fragmentations.push(fragmentation);
    }

    /// Drops all staged candidates, retaining column capacity.
    pub fn clear(&mut self) {
        self.fragmentations.clear();
        self.num_fragments.clear();
        self.attr_offsets.clear();
        self.attr_dims.clear();
        self.attr_cards.clear();
        self.per_query.clear();
    }
}

/// Prices every staged candidate against every class of `tables`,
/// returning one [`CandidateCost`] per candidate in staging order and
/// draining the batch (column capacity retained for the next chunk).
///
/// Bit-identical to calling
/// [`CostModel::evaluate_layout`](crate::CostModel::evaluate_layout) on
/// each candidate with the model the tables were built from.
pub fn evaluate_chunk(tables: &CostTables, batch: &mut ChunkBatch) -> Vec<CandidateCost> {
    evaluate_chunk_with(tables, batch, PerQueryDetail::Full)
}

/// [`evaluate_chunk`] with an explicit per-class detail level; see
/// [`PerQueryDetail`].
pub fn evaluate_chunk_with(
    tables: &CostTables,
    batch: &mut ChunkBatch,
    detail: PerQueryDetail,
) -> Vec<CandidateCost> {
    let n = batch.fragmentations.len();
    if n == 0 {
        batch.clear();
        return Vec::new();
    }

    // --- Stage A: class-independent geometry, once per candidate -------
    batch.frag_rows_avg.clear();
    batch.frag_rows.clear();
    batch.fragment_pages.clear();
    batch.fact_prefetch.clear();
    batch.scan_ms.clear();
    batch.scan_ios.clear();
    batch.vector_pages.clear();
    batch.bitmap_prefetch.clear();
    batch.vector_ms.clear();
    batch.vector_ios.clear();
    for i in 0..n {
        let avg = tables.fact_rows as f64 / batch.num_fragments[i] as f64;
        let rows = (avg.round() as u64).max(1);
        let pages = tables.page.pages_for_rows(rows, tables.row_bytes).max(1);
        let fact_prefetch = effective_prefetch(tables.fact_prefetch, pages);
        batch.frag_rows_avg.push(avg);
        batch.frag_rows.push(rows);
        batch.fragment_pages.push(pages);
        batch.fact_prefetch.push(fact_prefetch);
        batch.scan_ms.push(
            tables
                .disk
                .sequential_ms(pages, fact_prefetch, tables.page_bytes),
        );
        batch
            .scan_ios
            .push(tables.disk.sequential_ios(pages, fact_prefetch) as f64);
        let vector_pages = estimate::vector_pages(rows, tables.page);
        let bitmap_prefetch = effective_prefetch(tables.bitmap_prefetch, vector_pages);
        batch.vector_pages.push(vector_pages);
        batch.bitmap_prefetch.push(bitmap_prefetch);
        batch.vector_ms.push(tables.disk.sequential_ms(
            vector_pages,
            bitmap_prefetch,
            tables.page_bytes,
        ));
        batch
            .vector_ios
            .push(tables.disk.sequential_ios(vector_pages, bitmap_prefetch) as f64);
    }

    batch.yao_k.clear();
    batch.yao_k.resize(n, f64::NAN);
    batch.yao_hits.clear();
    batch.yao_hits.resize(n, 0.0);
    batch.acc_io_ms.clear();
    batch.acc_io_ms.resize(n, 0.0);
    batch.acc_response_ms.clear();
    batch.acc_response_ms.resize(n, 0.0);
    batch.acc_ios.clear();
    batch.acc_ios.resize(n, 0.0);
    batch.acc_pages.clear();
    batch.acc_pages.resize(n, 0.0);
    batch.per_query.clear();
    if detail == PerQueryDetail::Full {
        batch
            .per_query
            .resize_with(n, || Vec::with_capacity(tables.classes.len()));
    }

    for class in &tables.classes {
        // --- Matching pass: predicates → table entries -----------------
        batch.expected_fragments.clear();
        batch.residual.clear();
        batch.bitmap_vectors.clear();
        batch.indexable.clear();
        for i in 0..n {
            let s = batch.attr_offsets[i] as usize;
            let e = batch.attr_offsets[i + 1] as usize;
            let dims = &batch.attr_dims[s..e];
            let cards = &batch.attr_cards[s..e];
            batch.attr_bitmap.clear();
            let mut expected_fragments = 1.0f64;
            let mut residual = 1.0f64;
            for (&dim, &card) in dims.iter().zip(cards) {
                match class.pred_for(dim) {
                    None => {
                        expected_fragments *= card as f64;
                        batch.attr_bitmap.push(BitmapContrib::Resolved);
                    }
                    Some(pred) => {
                        let entry = pred.entry_for(card);
                        expected_fragments *= entry.matched;
                        residual *= entry.residual_factor;
                        batch.attr_bitmap.push(entry.bitmap);
                    }
                }
            }
            // Residual of unfragmented referenced dimensions, and the
            // bitmap vector count, both in predicate (dimension) order —
            // matching the scalar path's iteration exactly.
            let mut bitmap_vectors = 0.0f64;
            let mut indexable = true;
            for pred in &class.preds {
                let contrib = match dims.iter().position(|&d| d == pred.dimension) {
                    Some(j) => batch.attr_bitmap[j],
                    None => {
                        residual *= pred.residual_unfragmented;
                        pred.unfragmented_bitmap
                    }
                };
                if indexable {
                    match contrib {
                        BitmapContrib::Resolved => {}
                        BitmapContrib::Vectors(v) => bitmap_vectors += v,
                        BitmapContrib::Unindexable => indexable = false,
                    }
                }
            }
            batch.expected_fragments.push(expected_fragments);
            batch.residual.push(residual.min(1.0));
            batch.bitmap_vectors.push(bitmap_vectors);
            batch.indexable.push(indexable);
        }

        // --- Costing pass: straight-line arithmetic over the columns ---
        for i in 0..n {
            let fragments_accessed = batch.expected_fragments[i];
            let selected_rows_per_fragment = batch.frag_rows_avg[i] * batch.residual[i];
            let indexable = batch.indexable[i];
            let touched_pages = if indexable {
                if batch.yao_k[i].to_bits() == selected_rows_per_fragment.to_bits() {
                    batch.yao_hits[i]
                } else {
                    let rows = batch.frag_rows[i];
                    let pages = batch.fragment_pages[i];
                    let key = (rows, pages, selected_rows_per_fragment.to_bits());
                    let hits = match batch.yao_memo.get(&key) {
                        Some(&hits) => hits,
                        None => {
                            let hits = yao_page_hits(rows, pages, selected_rows_per_fragment);
                            if batch.yao_memo.len() < YAO_MEMO_CAP {
                                batch.yao_memo.insert(key, hits);
                            }
                            hits
                        }
                    };
                    batch.yao_k[i] = selected_rows_per_fragment;
                    batch.yao_hits[i] = hits;
                    hits
                }
            } else {
                // The scan path never consults the bitmap estimate.
                0.0
            };
            let fetch_ms = touched_pages * tables.random_page_ms;
            let bitmap_ms = batch.bitmap_vectors[i] * batch.vector_ms[i] + fetch_ms;
            let use_scan = !indexable || batch.scan_ms[i] <= bitmap_ms;
            let (path, per_fragment_ms, ios_pf, fact_pages_pf, bitmap_pages_pf) = if use_scan {
                (
                    AccessPath::FullScan,
                    batch.scan_ms[i],
                    batch.scan_ios[i],
                    batch.fragment_pages[i] as f64,
                    0.0,
                )
            } else {
                let bitmap_ios = batch.bitmap_vectors[i] * batch.vector_ios[i] + touched_pages;
                let bitmap_pages_per_fragment =
                    batch.bitmap_vectors[i] * batch.vector_pages[i] as f64;
                (
                    AccessPath::BitmapFetch,
                    bitmap_ms,
                    bitmap_ios,
                    touched_pages,
                    bitmap_pages_per_fragment,
                )
            };
            let busy_ms = fragments_accessed * per_fragment_ms;
            let response_ms = estimated_response_ms(
                fragments_accessed,
                per_fragment_ms,
                tables.num_disks,
                tables.processors,
                tables.overhead,
            );
            let fact_pages = fragments_accessed * fact_pages_pf;
            let bitmap_pages = fragments_accessed * bitmap_pages_pf;
            let total_ios = fragments_accessed * ios_pf;
            batch.acc_io_ms[i] += class.share * busy_ms;
            batch.acc_response_ms[i] += class.share * response_ms;
            batch.acc_ios[i] += class.share * total_ios;
            batch.acc_pages[i] += class.share * (fact_pages + bitmap_pages);
            if detail == PerQueryDetail::Omit {
                continue;
            }
            batch.per_query[i].push(QueryCost {
                query_name: class.name.clone(),
                path,
                fragments_accessed,
                fragment_pages: batch.fragment_pages[i],
                fact_pages,
                bitmap_pages,
                total_ios,
                busy_ms,
                per_fragment_ms,
                response_ms,
                fact_prefetch: batch.fact_prefetch[i],
                bitmap_prefetch: batch.bitmap_prefetch[i],
                selected_rows: class.selected_rows,
            });
        }
    }

    // --- Finalize: move fragmentations and per-query details out -------
    let mut out = Vec::with_capacity(n);
    for (i, fragmentation) in batch.fragmentations.drain(..).enumerate() {
        out.push(CandidateCost {
            fragmentation,
            num_fragments: batch.num_fragments[i],
            io_cost_ms: batch.acc_io_ms[i],
            response_ms: batch.acc_response_ms[i],
            total_ios: batch.acc_ios[i],
            total_pages: batch.acc_pages[i],
            per_query: match detail {
                PerQueryDetail::Full => std::mem::take(&mut batch.per_query[i]),
                PerQueryDetail::Omit => Vec::new(),
            },
        });
    }
    batch.clear();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CostModel;
    use warlock_bitmap::{BitmapScheme, SchemeConfig};
    use warlock_schema::{apb1_like_schema, Apb1Config, StarSchema};
    use warlock_storage::SystemConfig;
    use warlock_workload::{apb1_like_mix, QueryMix};

    struct Fixture {
        schema: StarSchema,
        system: SystemConfig,
        scheme: BitmapScheme,
        mix: QueryMix,
    }

    fn fixture() -> Fixture {
        let schema = apb1_like_schema(Apb1Config::default()).unwrap();
        let mix = apb1_like_mix().unwrap();
        let scheme = BitmapScheme::derive(&schema, &mix, SchemeConfig::default());
        let system = SystemConfig::default_2001(16);
        Fixture {
            schema,
            system,
            scheme,
            mix,
        }
    }

    fn candidates() -> Vec<Fragmentation> {
        vec![
            Fragmentation::none(),
            Fragmentation::from_pairs(&[(2, 2)]).unwrap(),
            Fragmentation::from_pairs(&[(0, 4), (2, 2)]).unwrap(),
            Fragmentation::from_pairs(&[(3, 0)]).unwrap(),
            Fragmentation::from_ranged_pairs(&[(2, 2, 3), (3, 0, 1)]).unwrap(),
            Fragmentation::from_pairs(&[(0, 1), (1, 0), (2, 1)]).unwrap(),
        ]
    }

    #[test]
    fn chunk_matches_scalar_bit_for_bit() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let tables = CostTables::build(&model, &[3]);
        let mut scratch = LayoutScratch::new();
        let mut batch = ChunkBatch::new();
        for frag in candidates() {
            let layout = FragmentLayout::new_in(&mut scratch, &f.schema, frag, model.fact_index());
            batch.push(layout, &mut scratch);
        }
        let batched = evaluate_chunk(&tables, &mut batch);
        assert!(batch.is_empty(), "evaluate_chunk must drain the batch");
        let scalar: Vec<_> = candidates()
            .iter()
            .map(|frag| model.evaluate(frag))
            .collect();
        assert_eq!(batched.len(), scalar.len());
        for (b, s) in batched.iter().zip(&scalar) {
            assert_eq!(b, s);
            assert_eq!(b.io_cost_ms.to_bits(), s.io_cost_ms.to_bits());
            assert_eq!(b.response_ms.to_bits(), s.response_ms.to_bits());
            assert_eq!(b.total_ios.to_bits(), s.total_ios.to_bits());
            assert_eq!(b.total_pages.to_bits(), s.total_pages.to_bits());
            for (bq, sq) in b.per_query.iter().zip(&s.per_query) {
                assert_eq!(bq.busy_ms.to_bits(), sq.busy_ms.to_bits());
                assert_eq!(bq.response_ms.to_bits(), sq.response_ms.to_bits());
                assert_eq!(bq.selected_rows.to_bits(), sq.selected_rows.to_bits());
            }
        }
    }

    #[test]
    fn batch_reuse_across_chunks_is_clean() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let tables = model.tables();
        let mut scratch = LayoutScratch::new();
        let mut batch = ChunkBatch::new();
        // Two rounds over the same batch: wide chunk first, then a
        // single-candidate chunk — stale columns must not leak.
        for round in 0..2 {
            let frags = if round == 0 {
                candidates()
            } else {
                vec![Fragmentation::from_pairs(&[(2, 1)]).unwrap()]
            };
            for frag in frags.clone() {
                let layout =
                    FragmentLayout::new_in(&mut scratch, &f.schema, frag, model.fact_index());
                batch.push(layout, &mut scratch);
            }
            let batched = evaluate_chunk(&tables, &mut batch);
            for (b, frag) in batched.iter().zip(&frags) {
                assert_eq!(b, &model.evaluate(frag), "round {round}");
            }
        }
    }

    #[test]
    fn omitted_detail_keeps_aggregates_bit_identical() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let tables = CostTables::build(&model, &[3]);
        let mut scratch = LayoutScratch::new();
        let mut batch = ChunkBatch::new();
        for frag in candidates() {
            let layout = FragmentLayout::new_in(&mut scratch, &f.schema, frag, model.fact_index());
            batch.push(layout, &mut scratch);
        }
        let lean = evaluate_chunk_with(&tables, &mut batch, PerQueryDetail::Omit);
        for (l, frag) in lean.iter().zip(candidates()) {
            let s = model.evaluate(&frag);
            assert!(l.per_query.is_empty());
            assert_eq!(l.io_cost_ms.to_bits(), s.io_cost_ms.to_bits());
            assert_eq!(l.response_ms.to_bits(), s.response_ms.to_bits());
            assert_eq!(l.total_ios.to_bits(), s.total_ios.to_bits());
            assert_eq!(l.total_pages.to_bits(), s.total_pages.to_bits());
            assert_eq!(l.fragmentation, s.fragmentation);
        }
        // Interleaving detail levels over the same batch (and its
        // persistent Yao memo) must not perturb the full output.
        for frag in candidates() {
            let layout = FragmentLayout::new_in(&mut scratch, &f.schema, frag, model.fact_index());
            batch.push(layout, &mut scratch);
        }
        let full = evaluate_chunk(&tables, &mut batch);
        for (b, frag) in full.iter().zip(candidates()) {
            assert_eq!(b, &model.evaluate(&frag));
        }
    }

    #[test]
    fn empty_chunk_is_a_noop() {
        let f = fixture();
        let model = CostModel::new(&f.schema, &f.system, &f.scheme, &f.mix);
        let tables = model.tables();
        let mut batch = ChunkBatch::new();
        assert!(evaluate_chunk(&tables, &mut batch).is_empty());
    }
}
